//! # sdo-sim — umbrella crate
//!
//! Re-exports the crates of the SDO reproduction workspace under one roof:
//!
//! * [`isa`] — the mini-ISA, assembler and golden-model interpreter,
//! * [`mem`] — the cache/memory hierarchy with data-oblivious lookups,
//! * [`sdo`] — the SDO framework: DO variants, location predictors, Obl-Ld,
//! * [`uarch`] — the speculative out-of-order core with STT and SDO,
//! * [`workloads`] — SPEC17-like kernels and the Spectre V1 attack,
//! * [`harness`] — experiment runners for the paper's tables and figures,
//! * [`verify`] — automated leakage verification: secret-swap differential
//!   testing, the dynamic invariant oracle, and the fuzzed litmus campaign.
//!
//! ## End-to-end example
//!
//! Write a program, check its architectural semantics against the golden
//! model, then measure it under the insecure baseline and under STT+SDO:
//!
//! ```rust
//! use sdo_sim::harness::{RunRequest, SimConfig, Simulator, Variant};
//! use sdo_sim::isa::{parse_asm, Interpreter, Reg};
//! use sdo_sim::uarch::AttackModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_asm(r"
//!     .name demo
//!     .word 0x1000 7 11 13
//!     li r1, 0x1000
//!     ld r2, 0(r1)      ; access instruction
//!     blt r2, r0, done  ; bounds check on the loaded value
//!     slli r3, r2, 3
//!     add  r3, r3, r1
//!     ld   r4, 0(r3)    ; transmit instruction (tainted address)
//! done:
//!     halt
//! ")?;
//!
//! // Architectural semantics (golden model).
//! let mut golden = Interpreter::new(&program);
//! golden.run(10_000)?;
//!
//! // Timing under two Table II variants, through the one `RunRequest`
//! // entry point every figure, campaign and service request shares.
//! let sim = Simulator::new(SimConfig::table_i());
//! let spectre = |v: Variant| RunRequest::program(&program).variant(v).attack(AttackModel::Spectre);
//! let base = sim.run(&spectre(Variant::Unsafe))?.into_result();
//! let sdo = sim.run(&spectre(Variant::Hybrid))?.into_result();
//!
//! // Protection changes timing, never results.
//! assert_eq!(base.core.committed, golden.executed());
//! assert_eq!(sdo.core.committed, golden.executed());
//! assert!(sdo.cycles >= base.cycles);
//! # Ok(())
//! # }
//! ```

pub use sdo_core as sdo;
pub use sdo_harness as harness;
pub use sdo_isa as isa;
pub use sdo_mem as mem;
pub use sdo_uarch as uarch;
pub use sdo_verify as verify;
pub use sdo_workloads as workloads;
