//! # sdo-rng — deterministic pseudo-random numbers for the SDO simulator
//!
//! A self-contained xoshiro256\*\* generator (seeded through splitmix64)
//! with the small surface the workload generators need: uniform integers
//! over a range, uniform floats, Bernoulli draws and raw 64-bit words.
//! The whole repository builds offline, so randomness lives here instead
//! of an external crate.
//!
//! Determinism is a hard requirement: the same seed must produce the same
//! stream on every platform and in every build profile. Everything below
//! is pure integer/float arithmetic with no platform-dependent state.
//!
//! ```rust
//! use sdo_rng::SdoRng;
//!
//! let mut a = SdoRng::seed_from_u64(7);
//! let mut b = SdoRng::seed_from_u64(7);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! let die = a.gen_range(1..=6u8);
//! assert!((1..=6).contains(&die));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use core::ops::{Range, RangeInclusive};

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// Not cryptographically secure — it drives workload data generation and
/// differential fuzzing, where speed and reproducibility are what matter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdoRng {
    s: [u64; 4],
}

/// Splitmix64 step: expands a 64-bit seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SdoRng {
    /// Creates a generator whose stream is a pure function of `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SdoRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded(0) is an empty range");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(1..=6u8)` or `rng.gen_range(0.5f64..2.0)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.unit_f64() < p
    }

    /// A uniform value of the whole type's domain (`[0, 1)` for floats).
    pub fn gen<T: Fill>(&mut self) -> T {
        T::fill(self)
    }

    /// Fisher–Yates shuffle of a slice (uniform over permutations).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Types [`SdoRng::gen`] can produce directly.
pub trait Fill: Sized {
    /// Draws one value.
    fn fill(rng: &mut SdoRng) -> Self;
}

impl Fill for u64 {
    fn fill(rng: &mut SdoRng) -> Self {
        rng.next_u64()
    }
}

impl Fill for u32 {
    fn fill(rng: &mut SdoRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Fill for u16 {
    fn fill(rng: &mut SdoRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Fill for u8 {
    fn fill(rng: &mut SdoRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Fill for bool {
    fn fill(rng: &mut SdoRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn fill(rng: &mut SdoRng) -> Self {
        rng.unit_f64()
    }
}

/// Ranges [`SdoRng::gen_range`] can sample from; the element type is the
/// generic parameter so the expected type at the call site flows into
/// unsuffixed literals (as with `rand`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut SdoRng) -> T;
}

/// Element types with a uniform sampler over half-open and inclusive
/// ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)`.
    fn sample_exclusive(rng: &mut SdoRng, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive(rng: &mut SdoRng, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut SdoRng) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut SdoRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive(rng: &mut SdoRng, start: $t, end: $t) -> $t {
                assert!(start < end, "empty range");
                let span = end.wrapping_sub(start) as $u as u64;
                start.wrapping_add(rng.bounded(span) as $t)
            }
            fn sample_inclusive(rng: &mut SdoRng, start: $t, end: $t) -> $t {
                assert!(start <= end, "empty range");
                let span = end.wrapping_sub(start) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.bounded(span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleUniform for f64 {
    fn sample_exclusive(rng: &mut SdoRng, start: f64, end: f64) -> f64 {
        assert!(start < end, "empty range");
        start + (end - start) * rng.unit_f64()
    }
    fn sample_inclusive(rng: &mut SdoRng, start: f64, end: f64) -> f64 {
        assert!(start <= end, "empty range");
        start + (end - start) * rng.unit_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SdoRng::seed_from_u64(42);
        let mut b = SdoRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SdoRng::seed_from_u64(1);
        let mut b = SdoRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_is_stable_across_builds() {
        // Golden values pin the algorithm: any change to seeding or the
        // core permutation silently regenerates every workload, so make
        // it loud instead.
        let mut r = SdoRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0x99ec_5f36_cb75_f2b4);
        assert_eq!(r.next_u64(), 0xbf6e_1f78_4956_452a);
        assert_eq!(r.next_u64(), 0x1a5f_849d_4933_e6e0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SdoRng::seed_from_u64(7);
        for _ in 0..2000 {
            assert!((0..10).contains(&r.gen_range(0..10)));
            assert!((-50i64..50).contains(&r.gen_range(-50i64..50)));
            assert!((1u8..=6).contains(&r.gen_range(1..=6u8)));
            let f = r.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = SdoRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.bounded(8) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SdoRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut r = SdoRng::seed_from_u64(3);
        let _ = r.gen_range(u64::MIN..=u64::MAX);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SdoRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SdoRng::seed_from_u64(0);
        let _ = r.gen_range(5..5);
    }
}
