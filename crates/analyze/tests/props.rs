//! Property tests for the taint fixpoint, driven by the in-tree
//! `sdo-rng`:
//!
//! * **determinism** — analyzing the same `Program` twice is
//!   byte-identical (same `Analysis` value, same rendered findings);
//! * **prefix monotonicity** — appending an instruction never removes
//!   a transmit or training finding from the unchanged prefix. The
//!   analysis is a may-analysis over a join semilattice: new
//!   instructions (including new back edges) can only add taint and
//!   delay resolution, so prefix findings are stable. `dead_untaint`
//!   is deliberately excluded: it is anti-monotone by design (an
//!   appended use of a dead root un-deads it).

use sdo_analyze::{analyze, findings_csv, findings_for};
use sdo_harness::Variant;
use sdo_isa::{Assembler, Program, Reg};
use sdo_rng::SdoRng;
use std::collections::BTreeSet;

/// One generated instruction, position-independent except for branch
/// targets, which always point at an already-emitted pc so that every
/// prefix of a sequence is a well-formed program.
#[derive(Debug, Clone, Copy)]
enum GenInst {
    Alu(u8, u8, u8, u8),
    Li(u8, i64),
    Load(u8, u8, i64),
    Store(u8, u8, i64),
    Fpu(u8, u8, u8, u8),
    Fld(u8, u8),
    /// Conditional branch back to an absolute earlier pc.
    Branch(u8, u8, u64),
}

fn reg(rng: &mut SdoRng, lo: u64) -> u8 {
    (lo + rng.bounded(8 - lo)) as u8
}

fn gen_seq(seed: u64, n: usize) -> Vec<GenInst> {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let roll = rng.bounded(100);
        out.push(if roll < 30 || i == 0 {
            GenInst::Alu(rng.bounded(4) as u8, reg(&mut rng, 1), reg(&mut rng, 0), reg(&mut rng, 0))
        } else if roll < 40 {
            GenInst::Li(reg(&mut rng, 1), rng.bounded(1 << 12) as i64)
        } else if roll < 60 {
            GenInst::Load(reg(&mut rng, 1), reg(&mut rng, 0), (rng.bounded(64) * 8) as i64)
        } else if roll < 70 {
            GenInst::Store(reg(&mut rng, 0), reg(&mut rng, 0), (rng.bounded(64) * 8) as i64)
        } else if roll < 80 {
            GenInst::Fpu(
                rng.bounded(3) as u8,
                reg(&mut rng, 1) % 4,
                reg(&mut rng, 0) % 4,
                reg(&mut rng, 0) % 4,
            )
        } else if roll < 85 {
            GenInst::Fld(reg(&mut rng, 1) % 4, reg(&mut rng, 0))
        } else {
            GenInst::Branch(reg(&mut rng, 0), reg(&mut rng, 0), rng.bounded(i as u64))
        });
    }
    out
}

/// Builds the first `k` generated instructions plus a trailing halt.
fn build(seq: &[GenInst], k: usize) -> Program {
    let mut asm = Assembler::new();
    let r = Reg::new;
    let f = sdo_isa::FReg::new;
    for inst in &seq[..k] {
        match *inst {
            GenInst::Alu(op, d, a, b) => {
                match op {
                    0 => asm.add(r(d), r(a), r(b)),
                    1 => asm.xor(r(d), r(a), r(b)),
                    2 => asm.sltu(r(d), r(a), r(b)),
                    _ => asm.sll(r(d), r(a), r(b)),
                };
            }
            GenInst::Li(d, v) => {
                asm.li(r(d), v);
            }
            GenInst::Load(d, base, off) => {
                asm.ld(r(d), r(base), off);
            }
            GenInst::Store(s, base, off) => {
                asm.st(r(s), r(base), off);
            }
            GenInst::Fpu(op, d, a, b) => {
                match op {
                    0 => asm.fadd(f(d), f(a), f(b)),
                    1 => asm.fmul(f(d), f(a), f(b)),
                    _ => asm.fdiv(f(d), f(a), f(b)),
                };
            }
            GenInst::Fld(d, base) => {
                asm.fld(f(d), r(base), 0);
            }
            GenInst::Branch(a, b, target) => {
                let label = asm.label();
                asm.bind_at(label, target);
                asm.bne(r(a), r(b), label);
            }
        }
    }
    asm.halt();
    asm.finish().expect("generated program assembles")
}

#[test]
fn fixpoint_is_deterministic() {
    for seed in 0..25u64 {
        let seq = gen_seq(seed, 24);
        let program = build(&seq, seq.len());
        let a = analyze(&program);
        let b = analyze(&program);
        assert_eq!(a, b, "seed {seed}: Analysis value differs across runs");
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        for v in Variant::ALL {
            assert_eq!(
                findings_csv(&findings_for(&a, v)),
                findings_csv(&findings_for(&b, v)),
                "seed {seed}, variant {}",
                v.slug()
            );
        }
    }
}

#[test]
fn prefix_findings_are_monotone_under_append() {
    for seed in 0..40u64 {
        let seq = gen_seq(seed, 20);
        for k in 1..seq.len() {
            let shorter = analyze(&build(&seq, k));
            let longer = analyze(&build(&seq, k + 1));
            // Transmit sites of the prefix (all at pc < k: the halt at
            // pc k transmits nothing) must survive the append.
            let t_short: BTreeSet<(u64, &str)> = shorter
                .transmits
                .iter()
                .filter(|t| t.pc < k as u64)
                .map(|t| (t.pc, sdo_analyze::findings::channel_name(t.channel)))
                .collect();
            let t_long: BTreeSet<(u64, &str)> = longer
                .transmits
                .iter()
                .map(|t| (t.pc, sdo_analyze::findings::channel_name(t.channel)))
                .collect();
            assert!(
                t_short.is_subset(&t_long),
                "seed {seed}, k {k}: transmit sites lost on append: {t_short:?} vs {t_long:?}"
            );
            let tr_short: BTreeSet<u64> =
                shorter.trainings.iter().map(|t| t.pc).filter(|&pc| pc < k as u64).collect();
            let tr_long: BTreeSet<u64> = longer.trainings.iter().map(|t| t.pc).collect();
            assert!(
                tr_short.is_subset(&tr_long),
                "seed {seed}, k {k}: training sites lost on append"
            );
        }
    }
}

#[test]
fn generated_programs_hit_every_shape() {
    // Sanity on the generator itself: across the seed range the corpus
    // must contain speculative roots, transmits and trainings, or the
    // properties above would hold vacuously.
    let mut roots = 0;
    let mut transmits = 0;
    let mut trainings = 0;
    for seed in 0..40u64 {
        let seq = gen_seq(seed, 20);
        let a = analyze(&build(&seq, seq.len()));
        roots += a.speculative_accesses;
        transmits += a.transmits.len();
        trainings += a.trainings.len();
    }
    assert!(roots > 0 && transmits > 0 && trainings > 0, "{roots}/{transmits}/{trainings}");
}
