//! Decode→lower→scan goldens: the full binary pipeline — raw RV32
//! words through the translator, callgraph recovery, region-memory
//! taint, and chain extraction — pinned byte-for-byte at the report
//! layer. Any drift in instruction lowering, provenance mapping, or
//! chain extraction shows up here as a changed RV32 address.

use sdo_analyze::scan::{gadgets_csv, scan_program};
use sdo_harness::Variant;

/// The exact gadget line the scanner must emit for the compiled
/// Spectre-v1 binary under the Unsafe variant.
const GADGET_JSONL: &str = concat!(
    r#"{"type":"gadget","program":"rv32_gadget","variant":"unsafe","channel":"cache","#,
    r#""access_pc":4248,"transmit_pc":4260,"pending_branch":4240,"witness_path":[4248,4260]}"#
);

fn scan(name: &str) -> sdo_analyze::ScanResult {
    let entry = sdo_rv32::corpus::entry(name).expect("corpus entry");
    let (program, prov) =
        sdo_rv32::translate_with_provenance(&entry.image(), entry.name).expect("translates");
    scan_program(&program, &prov)
}

#[test]
fn gadget_binary_jsonl_is_pinned_byte_for_byte() {
    let result = scan("rv32_gadget");
    let gadgets = result.gadgets_for(Variant::Unsafe);
    assert_eq!(gadgets.len(), 1, "exactly one chain under Unsafe");
    assert_eq!(gadgets[0].to_jsonl(), GADGET_JSONL);
    // And the pinned line survives its own parser.
    let parsed = sdo_analyze::Gadget::parse_jsonl(GADGET_JSONL).expect("parses");
    assert_eq!(parsed.to_jsonl(), GADGET_JSONL);
}

#[test]
fn gadget_binary_csv_is_pinned() {
    let result = scan("rv32_gadget");
    let csv = gadgets_csv(&result.gadgets_for(Variant::Unsafe));
    assert_eq!(
        csv,
        "program,variant,channel,access_pc,transmit_pc,pending_branch,witness\n\
         rv32_gadget,unsafe,cache,4248,4260,4240,4248+4260\n"
    );
}

#[test]
fn gadget_addresses_decode_to_the_expected_instructions() {
    // The pinned addresses must point at the instructions the chain
    // claims: both loads and the bounds check, straight from the
    // corpus words.
    let entry = sdo_rv32::corpus::entry("rv32_gadget").expect("corpus entry");
    let base = sdo_rv32::corpus::TEXT_BASE;
    let word_at = |pc: u64| {
        let idx = (u32::try_from(pc).expect("fits") - base) / 4;
        entry.words[idx as usize]
    };
    // 0x1098 / 0x10a4: lbu (opcode 0x03, funct3 0b100).
    for pc in [4248u64, 4260] {
        let w = word_at(pc);
        assert_eq!(w & 0x7f, 0x03, "pc {pc:#x} is a load");
        assert_eq!((w >> 12) & 0x7, 0b100, "pc {pc:#x} is lbu");
    }
    // 0x1090: bgeu (opcode 0x63, funct3 0b111) — the bounds check.
    let w = word_at(4240);
    assert_eq!(w & 0x7f, 0x63, "pc 0x1090 is a branch");
    assert_eq!((w >> 12) & 0x7, 0b111, "pc 0x1090 is bgeu");
}

#[test]
fn kernel_binaries_scan_clean_across_all_variants() {
    for name in ["rv32_crc32", "rv32_matmul", "rv32_sort", "rv32_strsearch"] {
        let result = scan(name);
        assert_eq!(result.chain_count(), 0, "{name} must have no gadget chains");
        assert!(result.gadgets_all_variants().is_empty(), "{name} reports gadgets");
    }
}
