//! Golden tests pinning the static verdict for the litmus corpus —
//! the acceptance criteria of the analyzer, in executable form:
//! both Unsafe positive controls must be flagged as
//! `potential_transmit_gadget`, and no SDO variant may carry a gating
//! finding on a channel the policy closes.

use sdo_analyze::findings::closed_channel_findings;
use sdo_analyze::{analyze, findings_csv, findings_for, FindingKind};
use sdo_harness::Variant;
use sdo_workloads::{litmus_case, Channel, CORPUS};

fn corpus_analysis(name: &str) -> sdo_analyze::Analysis {
    analyze(&(litmus_case(name).expect(name).build)(0))
}

#[test]
fn positive_controls_flagged_under_unsafe() {
    // The two positive controls of the dynamic campaign (cache and FP
    // timing) must be caught statically too.
    for (name, channel) in [("spectre_v1", Channel::Cache), ("spectre_fp", Channel::FpTiming)] {
        let fs = findings_for(&corpus_analysis(name), Variant::Unsafe);
        assert!(
            fs.iter().any(|f| {
                f.kind == FindingKind::PotentialTransmitGadget && f.channel == Some(channel)
            }),
            "{name}: no potential_transmit_gadget[{channel:?}] under Unsafe: {fs:?}"
        );
    }
}

#[test]
fn sdo_variants_have_zero_closed_channel_findings_on_corpus() {
    // The acceptance gate: no finding may survive on a channel the
    // dynamic policy says the variant closes. The predictor-based SDO
    // variants close both channels, so they must carry no gating
    // finding at all; `Perfect` intentionally keeps the cache channel
    // open (oracle predictions are residency-dependent), so it is
    // covered by the closed-channel assertion only.
    for case in CORPUS {
        let analysis = analyze(&(case.build)(0));
        for v in Variant::ALL {
            assert!(
                closed_channel_findings(&findings_for(&analysis, v)).is_empty(),
                "{} under {}",
                case.name,
                v.slug()
            );
        }
        for v in [Variant::StaticL1, Variant::StaticL2, Variant::StaticL3, Variant::Hybrid] {
            let fs = findings_for(&analysis, v);
            assert!(
                fs.iter().all(|f| !f.kind.gates()),
                "{}: gating finding under {}: {fs:?}",
                case.name,
                v.slug()
            );
        }
    }
}

#[test]
fn golden_spectre_v1_csv_under_unsafe() {
    // Full byte-level pin of the flagship litmus verdict: one cache
    // transmitter at the speculative probe load, rooted at the
    // out-of-bounds access under the bounds-check branch.
    let fs = findings_for(&corpus_analysis("spectre_v1"), Variant::Unsafe);
    assert_eq!(
        findings_csv(&fs),
        "program,variant,kind,pc,channel,sources,branches\n\
         spectre_v1,unsafe,potential_transmit_gadget,30,cache,27,24\n"
    );
}

#[test]
fn golden_corpus_verdict_matrix() {
    // (cache transmits, fp transmits, trainings, dead) per corpus case
    // — variant-independent counts out of the fixpoint itself.
    let expected = [
        ("spectre_v1", (1, 0, 0, 0)),
        ("spectre_fp", (0, 14, 0, 0)),
        ("spectre_v1_dead", (0, 0, 0, 1)),
        ("benign_branchy", (0, 0, 1, 0)),
    ];
    for (name, (cache, fp, training, dead)) in expected {
        let a = corpus_analysis(name);
        assert_eq!(
            (
                a.transmits_via(Channel::Cache),
                a.transmits_via(Channel::FpTiming),
                a.trainings.len(),
                a.dead.len()
            ),
            (cache, fp, training, dead),
            "{name}"
        );
    }
}

#[test]
fn rv32_gadget_flagged_under_unsafe_and_clean_where_policy_closes() {
    // The compiled RV32 Spectre gadget goes through decode → lowering
    // → taint, and must land exactly where the hand-written litmus
    // does: one cache transmitter under Unsafe, nothing surviving on a
    // closed channel anywhere.
    for e in sdo_rv32::corpus::CORPUS {
        let analysis = analyze(&e.with_secret(0));
        let unsafe_fs = findings_for(&analysis, Variant::Unsafe);
        let flagged = unsafe_fs.iter().any(|f| {
            f.kind == FindingKind::PotentialTransmitGadget && f.channel == Some(Channel::Cache)
        });
        assert_eq!(
            flagged,
            e.secret_addr.is_some(),
            "{}: cache transmit flag under Unsafe: {unsafe_fs:?}",
            e.name
        );
        for v in Variant::ALL {
            assert!(
                closed_channel_findings(&findings_for(&analysis, v)).is_empty(),
                "{} under {}",
                e.name,
                v.slug()
            );
        }
    }
}

#[test]
fn stt_ld_keeps_fp_channel_open() {
    // STT{ld} delays tainted loads but not FP transmitters: the FP
    // litmus must still carry gating findings under it, and none under
    // STT{ld+fp}.
    let analysis = corpus_analysis("spectre_fp");
    assert!(findings_for(&analysis, Variant::SttLd)
        .iter()
        .any(|f| f.channel == Some(Channel::FpTiming)));
    assert!(findings_for(&analysis, Variant::SttLdFp).iter().all(|f| !f.kind.gates()));
}

#[test]
fn dead_untaint_is_informational_everywhere() {
    let analysis = corpus_analysis("spectre_v1_dead");
    for v in Variant::ALL {
        let fs = findings_for(&analysis, v);
        assert!(fs.iter().all(|f| f.kind == FindingKind::DeadUntaint || f.kind.gates()));
        assert!(
            fs.iter().any(|f| f.kind == FindingKind::DeadUntaint),
            "dead access must be reported under {}",
            v.slug()
        );
    }
}
