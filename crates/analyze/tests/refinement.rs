//! Region-memory refinement property: the region-partitioned abstract
//! memory ([`MemModel::Regions`]) must never report taint the one-cell
//! lattice misses — it is a *refinement* (fewer false positives, no
//! new reachability), so soundness relative to the PR 5 lattice is
//! machine-checked rather than argued.
//!
//! Checked over the fuzzed `LitmusSpec` population (the same generator
//! the dynamic campaign uses) and the translated RV32 corpus, under
//! the *same* CFG for both models so the comparison isolates the
//! memory lattice.

use sdo_analyze::cfg::Cfg;
use sdo_analyze::{analyze_with, Analysis, MemModel};
use sdo_verify::fuzz::LitmusSpec;
use std::collections::BTreeSet;

const SEEDS: u64 = 40;

/// Site sets of an analysis, as comparable pc sets.
fn sites(a: &Analysis) -> (BTreeSet<u64>, BTreeSet<u64>, BTreeSet<u64>) {
    (
        a.transmits.iter().map(|t| t.pc).collect(),
        a.trainings.iter().map(|t| t.pc).collect(),
        a.dead.iter().map(|d| d.pc).collect(),
    )
}

fn assert_refines(name: &str, refined: &Analysis, coarse: &Analysis) {
    let (rt, rr, _) = sites(refined);
    let (ct, cr, _) = sites(coarse);
    assert!(
        rt.is_subset(&ct),
        "{name}: regions reports transmit pcs {:?} the one-cell lattice misses",
        rt.difference(&ct).collect::<Vec<_>>()
    );
    assert!(
        rr.is_subset(&cr),
        "{name}: regions reports training pcs {:?} the one-cell lattice misses",
        rr.difference(&cr).collect::<Vec<_>>()
    );
    // Speculative roots depend on pending sets, not memory: identical.
    assert_eq!(
        refined.speculative_accesses, coarse.speculative_accesses,
        "{name}: root count must not depend on the memory model"
    );
    // Per-site taint provenance is also a subset: on sites both models
    // flag, every source/branch the refined model blames must be one
    // the coarse model blames too.
    for r in &refined.transmits {
        if let Some(c) = coarse.transmits.iter().find(|c| c.pc == r.pc) {
            let rs: BTreeSet<u64> = r.sources.iter().copied().collect();
            let cs: BTreeSet<u64> = c.sources.iter().copied().collect();
            assert!(rs.is_subset(&cs), "{name}: pc {}: sources {rs:?} ⊄ {cs:?}", r.pc);
            let rb: BTreeSet<u64> = r.branches.iter().copied().collect();
            let cb: BTreeSet<u64> = c.branches.iter().copied().collect();
            assert!(rb.is_subset(&cb), "{name}: pc {}: branches {rb:?} ⊄ {cb:?}", r.pc);
        }
    }
}

#[test]
fn regions_refine_one_cell_on_fuzzed_litmus_specs() {
    let mut checked = 0u64;
    for seed in 0..SEEDS {
        let spec = LitmusSpec::generate(seed);
        let program = spec.build(0);
        let cfg = Cfg::build(&program);
        let refined = analyze_with(&program, &cfg, MemModel::Regions);
        let coarse = analyze_with(&program, &cfg, MemModel::OneCell);
        assert_refines(&spec.name(), &refined, &coarse);
        checked += 1;
    }
    assert!(checked >= 25, "property needs at least 25 seeds, ran {checked}");
}

#[test]
fn regions_refine_one_cell_on_the_rv32_corpus() {
    for entry in sdo_rv32::corpus::CORPUS {
        let (program, prov) =
            sdo_rv32::translate_with_provenance(&entry.image(), entry.name).expect("translates");
        let cg = sdo_analyze::callgraph::build(&program, &prov);
        let cfg = Cfg::build_with_jalr_targets(&program, &cg.jalr_succs);
        let refined = analyze_with(&program, &cfg, MemModel::Regions);
        let coarse = analyze_with(&program, &cfg, MemModel::OneCell);
        assert_refines(entry.name, &refined, &coarse);
    }
}

#[test]
fn one_cell_path_is_bit_identical_to_the_litmus_configuration() {
    // `analyze` (the litmus checker) and `analyze_with(OneCell)` over
    // the default CFG must agree exactly: the scanner refactor may not
    // perturb the pinned PR 5 behaviour.
    for seed in 0..5 {
        let program = LitmusSpec::generate(seed).build(0);
        let cfg = Cfg::build(&program);
        assert_eq!(
            sdo_analyze::analyze(&program),
            analyze_with(&program, &cfg, MemModel::OneCell)
        );
    }
}
