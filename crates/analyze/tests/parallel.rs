//! `--jobs` fan-out regression: analyzing the default target set
//! through a `JobPool` must merge canonically — byte-identical reports
//! and rendered artifacts at any worker count (the analyzer-side twin
//! of `crates/harness/tests/parallel.rs`).

use sdo_analyze::corpus::{analyze_all, default_targets, findings_under};
use sdo_analyze::findings_csv;
use sdo_harness::{JobPool, Variant};

#[test]
fn parallel_analysis_is_byte_identical_to_serial() {
    let targets = default_targets();
    let serial = analyze_all(&targets, &JobPool::new(1));
    for jobs in [2, 3, 8] {
        let par = analyze_all(&targets, &JobPool::new(jobs));
        assert_eq!(serial.len(), par.len());
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.name, p.name, "target order at {jobs} jobs");
            assert_eq!(s.analysis, p.analysis, "{}: analysis diverged at {jobs} jobs", s.name);
            assert_eq!(s.mismatches, p.mismatches);
        }
        // The rendered artifact (the CSV the CI gate consumes) must be
        // byte-identical too, for every variant.
        for v in Variant::ALL {
            assert_eq!(
                findings_csv(&findings_under(&serial, v)),
                findings_csv(&findings_under(&par, v)),
                "findings CSV diverged at {jobs} jobs under {}",
                v.slug()
            );
        }
    }
}
