//! Per-variant classification of taint-analysis results into typed
//! findings, with JSONL and typed-CSV emission.
//!
//! The taint fixpoint ([`crate::taint::analyze`]) is
//! variant-independent: it reports every instruction whose operand
//! *may* carry speculative taint. Whether such a site is an actual
//! finding depends on the protection variant — STT-style mechanisms
//! delay tainted loads until their visibility point, so a tainted
//! address can never reach the cache; SDO issues them obliviously, so
//! the cache channel is closed too. The mapping here is cross-checked
//! against `sdo_verify::policy` in tests: a channel this module keeps
//! findings for must be exactly a channel the policy calls open.

use crate::taint::Analysis;
use sdo_harness::export::Column;
use sdo_harness::Variant;
use sdo_workloads::Channel;
use std::fmt;

/// The kind of a static finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// A transmitter (load/store address or FP timing op) whose
    /// operand may be tainted, on a channel the variant leaves open.
    PotentialTransmitGadget,
    /// A conditional branch or indirect jump steered by a possibly
    /// tainted value — predictor training on speculative data.
    TaintedTraining,
    /// A speculative access whose taint reaches no transmitter,
    /// branch or store: the protection work is dead. Informational.
    DeadUntaint,
}

impl FindingKind {
    /// Stable wire name used in JSONL and CSV.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            FindingKind::PotentialTransmitGadget => "potential_transmit_gadget",
            FindingKind::TaintedTraining => "tainted_training",
            FindingKind::DeadUntaint => "dead_untaint",
        }
    }

    /// Whether findings of this kind gate (non-zero exit / CI red)
    /// when present under a variant that claims the channel is closed.
    #[must_use]
    pub fn gates(self) -> bool {
        !matches!(self, FindingKind::DeadUntaint)
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// One static finding for one (program, variant) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Program the finding is in.
    pub program: String,
    /// Protection variant the classification was done under.
    pub variant: Variant,
    /// Finding kind.
    pub kind: FindingKind,
    /// Instruction index of the flagged site.
    pub pc: u64,
    /// Covert channel for transmit findings, `None` otherwise.
    pub channel: Option<Channel>,
    /// Disassembly of the flagged instruction.
    pub inst: String,
    /// Root access pcs whose taint reaches the site.
    pub sources: Vec<u64>,
    /// Terminator pcs of the branches the taint is speculative under.
    pub branches: Vec<u64>,
}

impl Finding {
    /// Serializes the finding as one JSONL record.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let channel = match self.channel {
            Some(ch) => format!("\"{}\"", channel_name(ch)),
            None => "null".to_string(),
        };
        format!(
            "{{\"type\":\"finding\",\"program\":\"{}\",\"variant\":\"{}\",\"kind\":\"{}\",\
             \"pc\":{},\"channel\":{},\"inst\":\"{}\",\"sources\":[{}],\"branches\":[{}]}}",
            json_escape(&self.program),
            self.variant.slug(),
            self.kind,
            self.pc,
            channel,
            json_escape(&self.inst),
            join_u64(&self.sources, ","),
            join_u64(&self.branches, ","),
        )
    }

    /// Parses one line produced by [`Finding::to_jsonl`] — the same
    /// round-trip contract `sdo_verify::Counterexample` has had since
    /// PR 3, so report files are machine-consumable, not write-only.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn parse_jsonl(line: &str) -> Result<Finding, String> {
        let program = str_field(line, "program")?;
        let variant = parse_variant(&str_field(line, "variant")?)?;
        let kind_s = str_field(line, "kind")?;
        let kind = [
            FindingKind::PotentialTransmitGadget,
            FindingKind::TaintedTraining,
            FindingKind::DeadUntaint,
        ]
        .into_iter()
        .find(|k| k.wire_name() == kind_s)
        .ok_or_else(|| format!("unknown kind {kind_s:?}"))?;
        let pc = int_field(line, "pc")?;
        let channel = opt_channel_field(line)?;
        let inst = str_field(line, "inst")?;
        let sources = int_list_field(line, "sources")?;
        let branches = int_list_field(line, "branches")?;
        Ok(Finding { program, variant, kind, pc, channel, inst, sources, branches })
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

pub(crate) fn join_u64(xs: &[u64], sep: &str) -> String {
    xs.iter().map(u64::to_string).collect::<Vec<_>>().join(sep)
}

/// Extracts and unescapes a `"key":"value"` string field, honoring
/// backslash escapes in the value (so fields before the last are safe
/// even when the disassembly ever grows a quote).
pub(crate) fn str_field(line: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat).ok_or_else(|| format!("missing field {key:?}"))? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some(e) => out.push(e),
                None => return Err(format!("dangling escape in field {key:?}")),
            },
            '"' => return Ok(out),
            _ => out.push(c),
        }
    }
    Err(format!("unterminated field {key:?}"))
}

/// Extracts a bare-integer `"key":N` field.
pub(crate) fn int_field(line: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat).ok_or_else(|| format!("missing field {key:?}"))? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).ok_or_else(|| format!("unterminated field {key:?}"))?;
    rest[..end].trim().parse().map_err(|e| format!("bad integer for {key:?}: {e}"))
}

/// Extracts a `"key":[1,2,...]` integer-array field.
pub(crate) fn int_list_field(line: &str, key: &str) -> Result<Vec<u64>, String> {
    let pat = format!("\"{key}\":[");
    let start = line.find(&pat).ok_or_else(|| format!("missing field {key:?}"))? + pat.len();
    let rest = &line[start..];
    let end = rest.find(']').ok_or_else(|| format!("unterminated field {key:?}"))?;
    let body = &rest[..end];
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split(',')
        .map(|x| x.trim().parse().map_err(|e| format!("bad integer in {key:?}: {e}")))
        .collect()
}

/// Parses a variant slug back into a [`Variant`].
pub(crate) fn parse_variant(s: &str) -> Result<Variant, String> {
    Variant::ALL
        .into_iter()
        .find(|v| v.slug() == s)
        .ok_or_else(|| format!("unknown variant {s:?}"))
}

/// Parses a channel wire name back into a [`Channel`].
pub(crate) fn parse_channel(s: &str) -> Result<Channel, String> {
    [Channel::Cache, Channel::FpTiming]
        .into_iter()
        .find(|c| channel_name(*c) == s)
        .ok_or_else(|| format!("unknown channel {s:?}"))
}

/// Extracts the nullable `"channel":` field (string wire name or
/// `null`).
pub(crate) fn opt_channel_field(line: &str) -> Result<Option<Channel>, String> {
    if line.contains("\"channel\":null") {
        return Ok(None);
    }
    parse_channel(&str_field(line, "channel")?).map(Some)
}

/// Stable channel wire name shared by JSONL and CSV.
#[must_use]
pub fn channel_name(ch: Channel) -> &'static str {
    match ch {
        Channel::Cache => "cache",
        Channel::FpTiming => "fp_timing",
    }
}

/// Whether `variant`'s protection mechanism suppresses transmissions
/// on `channel`. This is `sdo_verify::policy::closes` — the shared,
/// exhaustively-matched suppression table — not a hand-mirrored copy:
/// the static and dynamic layers consume one table, so adding a
/// variant breaks the build in `policy.rs` rather than silently
/// desynchronizing the two.
///
/// * `SttLd`/`SttLdFp` delay tainted loads until the visibility
///   point, so a tainted address never reaches the cache. `SttLdFp`
///   additionally delays tainted FP transmitters.
/// * The SDO variants (`Static*`/`Hybrid`) issue predicted-safe
///   oblivious accesses: both channels are data-oblivious.
/// * `Perfect` closes FP timing but its oracle *prediction itself*
///   is a function of residency — and residency of a tainted-address
///   access is secret-dependent — so cache findings are kept.
#[must_use]
pub fn mechanism_suppresses(variant: Variant, channel: Channel) -> bool {
    sdo_verify::policy::closes(variant, channel)
}

/// Classifies a taint [`Analysis`] under one protection variant.
/// Output is pc-ordered within each kind (transmits, trainings, dead),
/// a pure function of the analysis.
#[must_use]
pub fn findings_for(analysis: &Analysis, variant: Variant) -> Vec<Finding> {
    let mut out = Vec::new();
    for t in &analysis.transmits {
        if mechanism_suppresses(variant, t.channel) {
            continue;
        }
        out.push(Finding {
            program: analysis.program.clone(),
            variant,
            kind: FindingKind::PotentialTransmitGadget,
            pc: t.pc,
            channel: Some(t.channel),
            inst: t.inst.clone(),
            sources: t.sources.clone(),
            branches: t.branches.clone(),
        });
    }
    // Tainted training only matters where loads are unprotected: under
    // every STT/SDO variant the trained-on value is delayed or
    // oblivious, so the predictor never observes it.
    if !sdo_verify::policy::protects_loads(variant) {
        for t in &analysis.trainings {
            out.push(Finding {
                program: analysis.program.clone(),
                variant,
                kind: FindingKind::TaintedTraining,
                pc: t.pc,
                channel: None,
                inst: t.inst.clone(),
                sources: t.sources.clone(),
                branches: t.branches.clone(),
            });
        }
    }
    // Dead untaint is variant-independent and informational.
    for d in &analysis.dead {
        out.push(Finding {
            program: analysis.program.clone(),
            variant,
            kind: FindingKind::DeadUntaint,
            pc: d.pc,
            channel: None,
            inst: d.inst.clone(),
            sources: Vec::new(),
            branches: d.branches.clone(),
        });
    }
    out
}

/// Whether `findings` contains a gating finding on a channel the
/// dynamic policy says `variant` closes — an internal contradiction
/// that makes the analyzer exit non-zero.
#[must_use]
pub fn closed_channel_findings(findings: &[Finding]) -> Vec<&Finding> {
    findings
        .iter()
        .filter(|f| {
            f.kind.gates()
                && f.channel.is_some_and(|ch| sdo_verify::policy::closes(f.variant, ch))
        })
        .collect()
}

/// CSV column descriptors for [`Finding`] rows.
pub const FINDING_COLUMNS: &[Column<Finding>] = &[
    Column { name: "program", extract: |f| f.program.clone() },
    Column { name: "variant", extract: |f| f.variant.slug().to_string() },
    Column { name: "kind", extract: |f| f.kind.to_string() },
    Column { name: "pc", extract: |f| f.pc.to_string() },
    Column { name: "channel", extract: |f| f.channel.map_or(String::new(), |c| channel_name(c).to_string()) },
    Column { name: "sources", extract: |f| join_u64(&f.sources, "+") },
    Column { name: "branches", extract: |f| join_u64(&f.branches, "+") },
];

/// CSV header row for [`FINDING_COLUMNS`].
#[must_use]
pub fn findings_csv_header() -> String {
    FINDING_COLUMNS.iter().map(|c| c.name).collect::<Vec<_>>().join(",")
}

/// Renders findings as CSV (header + one row per finding).
#[must_use]
pub fn findings_csv(findings: &[Finding]) -> String {
    sdo_harness::export::table_csv(FINDING_COLUMNS, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_mirrors_dynamic_policy_exactly() {
        for v in Variant::ALL {
            for ch in [Channel::Cache, Channel::FpTiming] {
                assert_eq!(
                    mechanism_suppresses(v, ch),
                    sdo_verify::policy::closes(v, ch),
                    "variant {v:?} channel {ch:?}: static suppression must match policy"
                );
            }
        }
    }

    #[test]
    fn closed_channel_findings_are_empty_by_construction() {
        // findings_for only keeps transmit findings on open channels,
        // so the contradiction detector finds nothing on its output.
        let analysis = crate::taint::analyze(&(sdo_workloads::CORPUS[0].build)(0));
        for v in Variant::ALL {
            let fs = findings_for(&analysis, v);
            assert!(closed_channel_findings(&fs).is_empty(), "variant {v:?}");
        }
    }

    #[test]
    fn golden_csv_header() {
        assert_eq!(
            findings_csv_header(),
            "program,variant,kind,pc,channel,sources,branches"
        );
    }

    #[test]
    fn jsonl_shape() {
        let f = Finding {
            program: "p".into(),
            variant: Variant::Unsafe,
            kind: FindingKind::PotentialTransmitGadget,
            pc: 7,
            channel: Some(Channel::Cache),
            inst: "ld r1, 0(r2)".into(),
            sources: vec![3, 4],
            branches: vec![1],
        };
        let line = f.to_jsonl();
        assert!(line.starts_with("{\"type\":\"finding\""));
        assert!(line.contains("\"kind\":\"potential_transmit_gadget\""));
        assert!(line.contains("\"channel\":\"cache\""));
        assert!(line.contains("\"sources\":[3,4]"));
        let none = Finding { channel: None, ..f };
        assert!(none.to_jsonl().contains("\"channel\":null"));
    }

    #[test]
    fn jsonl_round_trips_byte_identical() {
        // The PR 3 counterexample contract, applied to findings: parse
        // then re-serialize must reproduce the input byte-for-byte.
        let analysis = crate::taint::analyze(&(sdo_workloads::CORPUS[0].build)(0));
        let mut seen = 0;
        for v in Variant::ALL {
            for f in findings_for(&analysis, v) {
                let line = f.to_jsonl();
                let parsed = Finding::parse_jsonl(&line).expect("parse");
                assert_eq!(parsed, f);
                assert_eq!(parsed.to_jsonl(), line);
                seen += 1;
            }
        }
        assert!(seen > 0, "corpus produced no findings to round-trip");
    }

    #[test]
    fn jsonl_parse_handles_escapes_and_empty_lists() {
        let f = Finding {
            program: "a\"b\\c".into(),
            variant: Variant::Hybrid,
            kind: FindingKind::DeadUntaint,
            pc: 0,
            channel: None,
            inst: "ld \"r1\"".into(),
            sources: Vec::new(),
            branches: Vec::new(),
        };
        let parsed = Finding::parse_jsonl(&f.to_jsonl()).expect("parse");
        assert_eq!(parsed, f);
        assert!(Finding::parse_jsonl("{}").is_err());
        assert!(Finding::parse_jsonl("{\"type\":\"finding\",\"program\":\"p\"").is_err());
    }

    #[test]
    fn jsonl_serialization_is_deterministic() {
        let analysis = crate::taint::analyze(&(sdo_workloads::CORPUS[0].build)(0));
        let render = || {
            findings_for(&analysis, Variant::Unsafe)
                .iter()
                .map(Finding::to_jsonl)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(), render());
    }
}
