//! The static↔dynamic soundness differential.
//!
//! The taint fixpoint is a *may* analysis, so its strong claim is the
//! negative one: a program it calls transmit-free (and training-free)
//! under a variant cannot leak under that variant. The differential
//! puts that claim against `sdo-verify`'s dynamic checker over the
//! same fuzzed `LitmusSpec` population the dynamic campaign uses:
//!
//! * **soundness** — for every (spec, variant) the analyzer calls
//!   clean, the secret-swap check must find observables
//!   indistinguishable and the invariant oracle silent. A dynamic
//!   failure on a statically-clean program means the static model
//!   under-taints somewhere — the worst kind of analyzer bug;
//! * **completeness floor** — a spec containing the guaranteed-leak
//!   gadget (`SpectreCache`) must be flagged as a cache transmitter
//!   under `Unsafe`. Full completeness is impossible (the analysis is
//!   conservative the *other* way), but missing the one gadget that
//!   provably leaks means the analyzer is blind, not conservative.
//!
//! Disagreements are shrunk with
//! [`sdo_verify::minimize_with_invariant`], which re-establishes the
//! static verdict on every shrink candidate — deleting a gadget
//! rebuilds the program and can change its CFG, so the stored verdict
//! must not be assumed to survive. A candidate that still fails
//! dynamically but whose static verdict flips is counted as a finding
//! in its own right ([`DifferentialResult::verdict_flips`]).

use crate::findings::{findings_for, FindingKind};
use crate::taint::{analyze, Analysis};
use sdo_harness::Variant;
use sdo_uarch::AttackModel;
use sdo_verify::fuzz::LitmusSpec;
use sdo_verify::{minimize_with_invariant, CampaignConfig, Checker, Counterexample};
use sdo_workloads::Channel;

/// Outcome of one differential run.
#[derive(Debug)]
pub struct DifferentialResult {
    /// Fuzzed specs analyzed.
    pub specs: usize,
    /// (spec, variant) pairs the analyzer called clean and the dynamic
    /// checker confirmed.
    pub confirmed_clean: usize,
    /// (spec, variant) pairs with static findings, skipped dynamically
    /// (the static claim is one-directional).
    pub skipped: usize,
    /// Guaranteed-leak specs whose cache transmitter the analyzer saw.
    pub completeness_hits: usize,
    /// Static↔dynamic disagreements, minimized. Empty on a sound
    /// analyzer.
    pub disagreements: Vec<Counterexample>,
    /// Shrink candidates that kept the dynamic failure but flipped the
    /// static verdict (see module docs). Non-zero values are reported
    /// but do not gate: the *minimized* counterexample is still valid.
    pub verdict_flips: usize,
}

impl DifferentialResult {
    /// Whether the static and dynamic views agreed everywhere.
    #[must_use]
    pub fn agreed(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Whether the analyzer calls `spec` clean under `variant`: no
/// transmit finding on an open channel and no tainted-training site
/// the variant leaves unprotected. Dead-untaint findings don't affect
/// eligibility — a dead access cannot reach an observable.
#[must_use]
pub fn statically_clean(analysis: &Analysis, variant: Variant) -> bool {
    findings_for(analysis, variant).iter().all(|f| f.kind == FindingKind::DeadUntaint)
}

/// Runs the differential: `count` fuzzed specs (plus the anchor
/// corpus) from `seed`, each analyzed statically once and checked
/// dynamically under every variant where the analyzer claims
/// cleanliness.
#[must_use]
pub fn run(checker: &Checker, seed: u64, count: usize) -> DifferentialResult {
    let cfg = CampaignConfig { seed, quick: false, fuzz_count: Some(count), variants: None };
    let specs = cfg.fuzz_specs();
    let mut result = DifferentialResult {
        specs: specs.len(),
        confirmed_clean: 0,
        skipped: 0,
        completeness_hits: 0,
        disagreements: Vec::new(),
        verdict_flips: 0,
    };

    for spec in &specs {
        // The instruction stream is secret-independent (asserted in
        // tests), so one analysis covers both swap-check builds.
        let analysis = analyze(&spec.build(0));

        if spec.guaranteed_leak() {
            let unsafe_cache = findings_for(&analysis, Variant::Unsafe).iter().any(|f| {
                f.kind == FindingKind::PotentialTransmitGadget && f.channel == Some(Channel::Cache)
            });
            if unsafe_cache {
                result.completeness_hits += 1;
            } else {
                result.disagreements.push(blindness_cex(spec));
            }
        }

        for variant in Variant::ALL {
            if !statically_clean(&analysis, variant) {
                result.skipped += 1;
                continue;
            }
            match check_clean(checker, spec, variant) {
                CleanCheck::Pass => result.confirmed_clean += 1,
                CleanCheck::Error(detail) => {
                    // A statically-clean spec that can't even simulate is
                    // reported as-is; shrinking against a broken run
                    // would minimize the wrong predicate.
                    result.disagreements.push(error_cex(spec, variant, &detail));
                }
                CleanCheck::Fail(outcome) => {
                    // Shrink while the dynamic check still fails AND the
                    // static verdict is still "clean" — otherwise the
                    // minimized program wouldn't witness a *disagreement*.
                    let (min, flips) = minimize_with_invariant(
                        spec,
                        |cand| !matches!(check_clean(checker, cand, variant), CleanCheck::Pass),
                        |cand| statically_clean(&analyze(&cand.build(0)), variant),
                    );
                    result.verdict_flips += flips;
                    let min_outcome = match check_clean(checker, &min, variant) {
                        CleanCheck::Fail(o) => o,
                        _ => outcome,
                    };
                    result.disagreements.push(Counterexample::from_outcome(
                        &min_outcome,
                        min.seed,
                        min.gadget_names(),
                    ));
                }
            }
        }
    }
    result
}

/// Outcome of dynamically verifying one static "clean" claim.
enum CleanCheck {
    /// Indistinguishable observables, silent oracle: claim confirmed.
    Pass,
    /// The dynamic checker contradicted the claim.
    Fail(sdo_verify::SwapOutcome),
    /// The simulation itself failed (hang/config error).
    Error(String),
}

/// Dynamically verifies the static "clean" claim for one (spec,
/// variant): `leaks_via` is forced to `None` — the analyzer said
/// nothing transmits, so observables must be indistinguishable and the
/// oracle silent.
fn check_clean(checker: &Checker, spec: &LitmusSpec, variant: Variant) -> CleanCheck {
    match checker.swap_check(&spec.name(), None, |s| spec.build(s), variant, AttackModel::Spectre)
    {
        Ok(o) if o.passed() => CleanCheck::Pass,
        Ok(o) => CleanCheck::Fail(o),
        Err(e) => CleanCheck::Error(e.to_string()),
    }
}

fn error_cex(spec: &LitmusSpec, variant: Variant, detail: &str) -> Counterexample {
    Counterexample {
        case: spec.name(),
        variant,
        attack: AttackModel::Spectre,
        kind: sdo_verify::CexKind::UnexpectedDivergence,
        seed: spec.seed,
        gadgets: spec.gadget_names(),
        detail: format!("simulation failed on statically-clean spec: {detail}"),
        window: Vec::new(),
    }
}

fn blindness_cex(spec: &LitmusSpec) -> Counterexample {
    use sdo_verify::CexKind;
    Counterexample {
        case: spec.name(),
        variant: Variant::Unsafe,
        attack: AttackModel::Spectre,
        kind: CexKind::MissingDivergence,
        seed: spec.seed,
        gadgets: spec.gadget_names(),
        detail: "static analyzer blind to guaranteed cache leak (no \
                 potential_transmit_gadget[cache] under Unsafe)"
            .to_string(),
        window: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_is_secret_independent() {
        for seed in [0u64, 7, 99] {
            let spec = LitmusSpec::generate(seed);
            assert_eq!(analyze(&spec.build(0)), analyze(&spec.build(42)), "seed {seed}");
        }
    }

    #[test]
    fn anchor_spectre_cache_is_not_statically_clean_under_unsafe() {
        let spec = LitmusSpec::anchor(0);
        assert!(spec.guaranteed_leak());
        let analysis = analyze(&spec.build(0));
        assert!(!statically_clean(&analysis, Variant::Unsafe));
        assert!(findings_for(&analysis, Variant::Unsafe)
            .iter()
            .any(|f| f.channel == Some(Channel::Cache)));
    }
}
