//! Control-flow graph over a [`Program`]'s instruction indices.
//!
//! Program counters in the mini-ISA are instruction indices (the pc
//! steps by 1), so basic blocks are index ranges. Edges:
//!
//! * fallthrough to `pc + 1` for every non-control instruction;
//! * both arms of a conditional branch;
//! * the direct target of `jal`/`j`;
//! * indirect jumps (`jalr`/`jr`) are over-approximated by the
//!   program's *return-point table* — the set of `pc + 1` for every
//!   `jal` site (the only way the mini-ISA materializes a code address
//!   into a register is a `jal` link write). A program with an indirect
//!   jump but no `jal` site falls back to every block leader, the
//!   maximally conservative target set.
//!
//! Fetching past the end of the program yields `Halt`
//! ([`Program::fetch`] is total), so a block that runs off the end, a
//! `halt`, and an out-of-range branch target all edge to a single
//! virtual **exit node** with id [`Cfg::exit`].
//!
//! On top of the graph the module computes **post-dominators** (the
//! iterative dataflow formulation, rooted at the virtual exit). The
//! immediate post-dominator of a branch's block is the static
//! stand-in for the branch's dynamic *visibility point* (STT's
//! untaint point): once control reaches it on every path, the analysis
//! treats the branch as resolved. Blocks that cannot reach the exit
//! (statically infinite loops) get no immediate post-dominator and
//! their branches simply never untaint — conservative in the safe
//! direction.

use sdo_isa::{Instruction, Program};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies a basic block; the virtual exit node is [`Cfg::exit`]
/// (one past the last real block).
pub type BlockId = usize;

/// One basic block: the instruction index range `[start, end)` plus
/// its successor/predecessor block ids (which may include the virtual
/// exit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index of the block.
    pub start: u64,
    /// One past the last instruction index of the block.
    pub end: u64,
    /// Successor block ids, deduplicated, in ascending order.
    pub succs: Vec<BlockId>,
    /// Predecessor block ids, deduplicated, in ascending order.
    pub preds: Vec<BlockId>,
}

impl Block {
    /// The pc of the block's terminator (its last instruction).
    #[must_use]
    pub fn terminator_pc(&self) -> u64 {
        self.end - 1
    }
}

/// The control-flow graph of one program, with post-dominator
/// information.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
    /// Immediate post-dominator of each block (`None` when the block
    /// cannot reach the exit); the exit itself has none.
    ipdom: Vec<Option<BlockId>>,
    /// Block containing each instruction index.
    block_of: Vec<BlockId>,
    edges: usize,
}

impl Cfg {
    /// Builds the CFG (blocks, edges, post-dominators) of `program`,
    /// with every indirect jump over-approximated by the return-point
    /// table.
    #[must_use]
    pub fn build(program: &Program) -> Cfg {
        Cfg::build_inner(program, None)
    }

    /// [`Cfg::build`] with *resolved* indirect-jump successors: for
    /// every `Jalr` pc present in `jalr_succs`, its successor set is
    /// exactly the given instruction indices instead of the global
    /// return-point heuristic. The binary scanner derives this map
    /// from the RV32 call graph ([`crate::callgraph`]): a return
    /// `jalr` edges to its callers' return points, an indirect call
    /// edges to the known function entries. `Jalr`s absent from the
    /// map keep the conservative fallback.
    #[must_use]
    pub fn build_with_jalr_targets(program: &Program, jalr_succs: &BTreeMap<u64, Vec<u64>>) -> Cfg {
        Cfg::build_inner(program, Some(jalr_succs))
    }

    fn build_inner(program: &Program, jalr_succs: Option<&BTreeMap<u64, Vec<u64>>>) -> Cfg {
        let insts = program.instructions();
        let n = insts.len();
        if n == 0 {
            return Cfg { blocks: Vec::new(), ipdom: Vec::new(), block_of: Vec::new(), edges: 0 };
        }

        // Indirect-target over-approximation: every return point
        // (`jal` link value), or every leader when there are none.
        let ret_points: Vec<u64> = insts
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instruction::Jal { .. }))
            .map(|(pc, _)| pc as u64 + 1)
            .filter(|&t| t < n as u64)
            .collect();
        let has_indirect = insts.iter().any(Instruction::is_indirect);

        // Leaders: entry, every in-range direct target, every
        // instruction after a control transfer or halt, and (for the
        // indirect fallback) every return point.
        let mut leaders: BTreeSet<u64> = BTreeSet::new();
        leaders.insert(0);
        for (pc, inst) in insts.iter().enumerate() {
            if let Some(t) = inst.direct_target() {
                if t < n as u64 {
                    leaders.insert(t);
                }
            }
            if (inst.is_control() || matches!(inst, Instruction::Halt)) && pc + 1 < n {
                leaders.insert(pc as u64 + 1);
            }
        }
        if has_indirect {
            for &t in &ret_points {
                leaders.insert(t);
            }
        }
        if let Some(map) = jalr_succs {
            for t in map.values().flatten() {
                if *t < n as u64 {
                    leaders.insert(*t);
                }
            }
        }

        let starts: Vec<u64> = leaders.into_iter().collect();
        let nb = starts.len();
        let exit = nb;
        let mut block_of = vec![0usize; n];
        let mut blocks: Vec<Block> = Vec::with_capacity(nb);
        for (b, &start) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(n as u64);
            for pc in start..end {
                block_of[pc as usize] = b;
            }
            blocks.push(Block { start, end, succs: Vec::new(), preds: Vec::new() });
        }

        // Edges. A target at or past `n` fetches `Halt`: edge to exit.
        let block_or_exit = |t: u64| if t < n as u64 { block_of[t as usize] } else { exit };
        let mut edges = 0usize;
        for block in &mut blocks {
            let term = block.terminator_pc();
            let mut succs: BTreeSet<BlockId> = BTreeSet::new();
            match insts[term as usize] {
                Instruction::Halt => {
                    succs.insert(exit);
                }
                Instruction::Branch { target, .. } => {
                    succs.insert(block_or_exit(term + 1));
                    succs.insert(block_or_exit(target));
                }
                Instruction::Jal { target, .. } => {
                    succs.insert(block_or_exit(target));
                }
                Instruction::Jalr { .. } => {
                    if let Some(targets) = jalr_succs.and_then(|m| m.get(&term)) {
                        for &t in targets {
                            succs.insert(block_or_exit(t));
                        }
                    } else if ret_points.is_empty() {
                        succs.extend(0..nb);
                    } else {
                        for &t in &ret_points {
                            succs.insert(block_or_exit(t));
                        }
                    }
                }
                Instruction::Alu { .. }
                | Instruction::AluImm { .. }
                | Instruction::Li { .. }
                | Instruction::Load { .. }
                | Instruction::Store { .. }
                | Instruction::FLoad { .. }
                | Instruction::FStore { .. }
                | Instruction::Fpu { .. }
                | Instruction::FMvToInt { .. }
                | Instruction::FMvFromInt { .. }
                | Instruction::Nop => {
                    succs.insert(block_or_exit(term + 1));
                }
            }
            edges += succs.len();
            block.succs = succs.into_iter().collect();
        }
        for b in 0..nb {
            let succs = blocks[b].succs.clone();
            for s in succs {
                if s < nb && !blocks[s].preds.contains(&b) {
                    blocks[s].preds.push(b);
                }
            }
        }

        let ipdom = post_dominators(&blocks, exit);
        Cfg { blocks, ipdom, block_of, edges }
    }

    /// The blocks, in ascending `start` order.
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of edges (counting edges to the virtual exit).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Id of the virtual exit node.
    #[must_use]
    pub fn exit(&self) -> BlockId {
        self.blocks.len()
    }

    /// The block containing instruction index `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range for the program.
    #[must_use]
    pub fn block_of(&self, pc: u64) -> BlockId {
        self.block_of[pc as usize]
    }

    /// Immediate post-dominator of `b`, or `None` when `b` cannot
    /// reach the exit (its branches never untaint) or is the exit.
    #[must_use]
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom.get(b).copied().flatten()
    }
}

/// Iterative post-dominator computation over the block graph, rooted
/// at the virtual `exit` node. Returns each block's immediate
/// post-dominator. Standard maximal-fixpoint dataflow: correct for
/// every block that reaches the exit; blocks that don't are detected
/// by reverse reachability and get `None`.
fn post_dominators(blocks: &[Block], exit: BlockId) -> Vec<Option<BlockId>> {
    let n = blocks.len() + 1; // + virtual exit

    // Reverse reachability from the exit.
    let mut reaches_exit = vec![false; n];
    reaches_exit[exit] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for (b, blk) in blocks.iter().enumerate() {
            if !reaches_exit[b] && blk.succs.iter().any(|&s| reaches_exit[s]) {
                reaches_exit[b] = true;
                changed = true;
            }
        }
    }

    // pdom sets as dense bool rows; init: exit = {exit}, rest = all.
    let mut pdom: Vec<Vec<bool>> = vec![vec![true; n]; n];
    pdom[exit] = vec![false; n];
    pdom[exit][exit] = true;

    let mut changed = true;
    while changed {
        changed = false;
        // Reverse order approximates reverse post-order on the
        // reverse graph; convergence does not depend on it.
        for b in (0..blocks.len()).rev() {
            if !reaches_exit[b] {
                continue;
            }
            let mut new: Vec<bool> = vec![true; n];
            let mut any = false;
            for &s in &blocks[b].succs {
                if !reaches_exit[s] {
                    continue;
                }
                any = true;
                for (x, cell) in new.iter_mut().enumerate() {
                    *cell = *cell && pdom[s][x];
                }
            }
            if !any {
                new = vec![false; n];
            }
            new[b] = true;
            if new != pdom[b] {
                pdom[b] = new;
                changed = true;
            }
        }
    }

    // ipdom(b): the strict post-dominator closest to b. Strict pdoms
    // form a chain; the closest one is post-dominated by all the
    // others, i.e. has the largest pdom set.
    (0..blocks.len())
        .map(|b| {
            if !reaches_exit[b] {
                return None;
            }
            let mut best: Option<(usize, BlockId)> = None;
            for (p, &is_pdom) in pdom[b].iter().enumerate() {
                if p == b || !is_pdom {
                    continue;
                }
                let size = pdom[p].iter().filter(|&&x| x).count();
                if best.is_none_or(|(bs, _)| size > bs) {
                    best = Some((size, p));
                }
            }
            best.map(|(_, p)| p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_isa::{Assembler, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// li; blt -> (then | join); then: nop; join: halt
    fn diamond() -> Program {
        let mut asm = Assembler::new();
        let then = asm.label();
        asm.li(r(1), 1);
        asm.blt(r(1), r(2), then);
        asm.nop();
        asm.bind(then);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn straightline_is_one_block_to_exit() {
        let mut asm = Assembler::new();
        asm.li(r(1), 1).addi(r(1), r(1), 1);
        asm.halt();
        let cfg = Cfg::build(&asm.finish().unwrap());
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].succs, vec![cfg.exit()]);
        assert_eq!(cfg.ipdom(0), Some(cfg.exit()));
    }

    #[test]
    fn branch_splits_blocks_and_ipdom_is_the_join() {
        let prog = diamond();
        let cfg = Cfg::build(&prog);
        // Blocks: [li,blt], [nop], [halt].
        assert_eq!(cfg.blocks().len(), 3);
        let b0 = cfg.block_of(0);
        let join = cfg.block_of(3);
        assert_eq!(cfg.blocks()[b0].succs.len(), 2);
        assert_eq!(cfg.ipdom(b0), Some(join), "branch resolves at the join block");
    }

    #[test]
    fn loop_backedge_and_ipdom_after_loop() {
        let mut asm = Assembler::new();
        asm.li(r(1), 4);
        let top = asm.here();
        asm.addi(r(1), r(1), -1);
        asm.bne(r(1), Reg::ZERO, top);
        asm.halt();
        let cfg = Cfg::build(&asm.finish().unwrap());
        let body = cfg.block_of(1);
        let after = cfg.block_of(3);
        assert!(cfg.blocks()[body].succs.contains(&body), "backedge");
        assert_eq!(cfg.ipdom(body), Some(after), "loop branch resolves after the loop");
    }

    #[test]
    fn infinite_loop_has_no_ipdom() {
        let mut asm = Assembler::new();
        let top = asm.here();
        asm.addi(r(1), r(1), 1);
        asm.j(top);
        let cfg = Cfg::build(&asm.finish().unwrap());
        assert_eq!(cfg.ipdom(cfg.block_of(0)), None);
    }

    #[test]
    fn jalr_targets_are_return_points() {
        let mut asm = Assembler::new();
        let func = asm.label();
        asm.jal(r(31), func);
        asm.halt();
        asm.bind(func);
        asm.jr(r(31));
        let prog = asm.finish().unwrap();
        let cfg = Cfg::build(&prog);
        let jr_block = cfg.block_of(2);
        // The only return point is pc 1 (after the jal).
        assert_eq!(cfg.blocks()[jr_block].succs, vec![cfg.block_of(1)]);
    }

    #[test]
    fn out_of_range_target_edges_to_exit() {
        let mut asm = Assembler::new();
        let far = asm.label();
        asm.beq(r(1), r(2), far);
        asm.halt();
        asm.bind_at(far, 1000);
        let prog = asm.finish().unwrap();
        let cfg = Cfg::build(&prog);
        assert!(cfg.blocks()[cfg.block_of(0)].succs.contains(&cfg.exit()));
    }

    #[test]
    fn falling_off_the_end_edges_to_exit() {
        let mut asm = Assembler::new();
        asm.nop();
        let cfg = Cfg::build(&asm.finish().unwrap());
        assert_eq!(cfg.blocks()[0].succs, vec![cfg.exit()]);
    }

    #[test]
    fn empty_program_builds() {
        let cfg = Cfg::build(&Assembler::new().finish().unwrap());
        assert!(cfg.blocks().is_empty());
        assert_eq!(cfg.edge_count(), 0);
    }
}
