//! Whole-binary speculative-gadget scanning over lowered RV32
//! programs.
//!
//! The litmus checker ([`crate::corpus`]) analyzes hand-written
//! mini-ISA programs one at a time. This module is the binary-scanner
//! configuration of the same fixpoint, aimed at *compiled* RV32
//! images:
//!
//! 1. [`crate::callgraph`] recovers the function structure from the
//!    lowering [`Provenance`] and resolves every `jalr` (returns go to
//!    their callers' return points, indirect calls to the known
//!    entries);
//! 2. [`crate::cfg::Cfg::build_with_jalr_targets`] threads those edges
//!    into one interprocedural CFG;
//! 3. [`crate::taint::analyze_with`] runs the STT taint fixpoint over
//!    it under the region-partitioned memory lattice
//!    ([`crate::memory::MemModel::Regions`]) — stack slots, named
//!    globals and an unknown summary instead of one cell;
//! 4. every (speculative access → transmitter) pair the analysis
//!    proves *may* leak becomes a typed [`Gadget`] with a
//!    control-flow witness path, all pcs mapped back to **RV32 byte
//!    addresses** through the provenance side table;
//! 5. [`ScanResult::gadgets_for`] projects the variant-independent
//!    chains through the shared suppression table
//!    (`sdo_verify::policy::closes`) — a gadget is reported under a
//!    variant only on a channel that variant leaves open.
//!
//! Like the rest of the crate this is a *may* analysis: a reported
//! gadget is a candidate, and `sdo-verify`'s secret-swap replay
//! (`sdo_verify::gadget`) classifies it CONFIRMED or OVER-APPROX
//! dynamically.

use crate::callgraph;
use crate::cfg::Cfg;
use crate::findings::{
    channel_name, int_field, int_list_field, join_u64, json_escape, mechanism_suppresses,
    parse_channel, parse_variant, str_field,
};
use crate::memory::MemModel;
use crate::taint::{analyze_with, Analysis};
use sdo_harness::export::Column;
use sdo_harness::Variant;
use sdo_isa::Program;
use sdo_rv32::Provenance;
use sdo_workloads::Channel;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One speculative transmit gadget, reported for one protection
/// variant, with every pc in **RV32 byte-address space** (not µop
/// indices — the scanner's output names locations in the binary the
/// user compiled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gadget {
    /// Program (image) name.
    pub program: String,
    /// Protection variant the gadget is reported under (its channel is
    /// open under this variant).
    pub variant: Variant,
    /// Covert channel the transmitter uses.
    pub channel: Channel,
    /// RV32 address of the speculative access the secret enters at.
    pub access_pc: u64,
    /// RV32 address of the transmitter the secret leaves through.
    pub transmit_pc: u64,
    /// RV32 address of the oldest conditional branch the chain is
    /// speculative under (the branch an attacker mistrains).
    pub pending_branch: u64,
    /// RV32 addresses of a control-flow path from the access to the
    /// transmitter (block terminators between them), the witness that
    /// the chain is reachable in the threaded CFG.
    pub witness_path: Vec<u64>,
}

impl Gadget {
    /// Serializes the gadget as one JSONL record.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"type\":\"gadget\",\"program\":\"{}\",\"variant\":\"{}\",\"channel\":\"{}\",\
             \"access_pc\":{},\"transmit_pc\":{},\"pending_branch\":{},\"witness_path\":[{}]}}",
            json_escape(&self.program),
            self.variant.slug(),
            channel_name(self.channel),
            self.access_pc,
            self.transmit_pc,
            self.pending_branch,
            join_u64(&self.witness_path, ","),
        )
    }

    /// Parses one line produced by [`Gadget::to_jsonl`] — the same
    /// machine-consumable round-trip contract as
    /// `sdo_verify::Counterexample` and [`crate::Finding`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn parse_jsonl(line: &str) -> Result<Gadget, String> {
        Ok(Gadget {
            program: str_field(line, "program")?,
            variant: parse_variant(&str_field(line, "variant")?)?,
            channel: parse_channel(&str_field(line, "channel")?)?,
            access_pc: int_field(line, "access_pc")?,
            transmit_pc: int_field(line, "transmit_pc")?,
            pending_branch: int_field(line, "pending_branch")?,
            witness_path: int_list_field(line, "witness_path")?,
        })
    }
}

/// CSV column descriptors for [`Gadget`] rows.
pub const GADGET_COLUMNS: &[Column<Gadget>] = &[
    Column { name: "program", extract: |g| g.program.clone() },
    Column { name: "variant", extract: |g| g.variant.slug().to_string() },
    Column { name: "channel", extract: |g| channel_name(g.channel).to_string() },
    Column { name: "access_pc", extract: |g| g.access_pc.to_string() },
    Column { name: "transmit_pc", extract: |g| g.transmit_pc.to_string() },
    Column { name: "pending_branch", extract: |g| g.pending_branch.to_string() },
    Column { name: "witness", extract: |g| join_u64(&g.witness_path, "+") },
];

/// Renders gadgets as CSV (header + one row per gadget).
#[must_use]
pub fn gadgets_csv(gadgets: &[Gadget]) -> String {
    sdo_harness::export::table_csv(GADGET_COLUMNS, gadgets)
}

/// One variant-independent (access → transmit) chain, already mapped
/// to RV32 addresses.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Chain {
    channel: Channel,
    access_pc: u64,
    transmit_pc: u64,
    pending_branch: u64,
    witness_path: Vec<u64>,
}

/// Result of scanning one binary: the raw interprocedural taint
/// analysis plus the extracted gadget chains and call-graph stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// The underlying taint analysis (µop-indexed sites).
    pub analysis: Analysis,
    /// Recovered function count.
    pub functions: usize,
    /// Call-site count (direct + indirect).
    pub call_sites: usize,
    chains: Vec<Chain>,
}

impl ScanResult {
    /// Number of variant-independent gadget chains.
    #[must_use]
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Gadgets reported under `variant`: every chain whose channel the
    /// variant leaves open (projection through the shared suppression
    /// table `sdo_verify::policy::closes`).
    #[must_use]
    pub fn gadgets_for(&self, variant: Variant) -> Vec<Gadget> {
        self.chains
            .iter()
            .filter(|c| !mechanism_suppresses(variant, c.channel))
            .map(|c| Gadget {
                program: self.analysis.program.clone(),
                variant,
                channel: c.channel,
                access_pc: c.access_pc,
                transmit_pc: c.transmit_pc,
                pending_branch: c.pending_branch,
                witness_path: c.witness_path.clone(),
            })
            .collect()
    }

    /// Gadgets across every variant, in [`Variant::ALL`] order.
    #[must_use]
    pub fn gadgets_all_variants(&self) -> Vec<Gadget> {
        Variant::ALL.into_iter().flat_map(|v| self.gadgets_for(v)).collect()
    }
}

/// Scans one lowered RV32 program: callgraph recovery, threaded
/// interprocedural CFG, region-memory taint fixpoint, gadget-chain
/// extraction. Pure function of the instruction stream + provenance.
#[must_use]
pub fn scan_program(program: &Program, prov: &Provenance) -> ScanResult {
    let cg = callgraph::build(program, prov);
    let cfg = Cfg::build_with_jalr_targets(program, &cg.jalr_succs);
    let analysis = analyze_with(program, &cfg, MemModel::Regions);
    let chains = extract_chains(&analysis, &cfg, prov);
    ScanResult { analysis, functions: cg.functions.len(), call_sites: prov.calls.len(), chains }
}

/// Maps a µop pc to its RV32 byte address (falls back to the µop index
/// for out-of-provenance pcs, which cannot happen for translated
/// images but keeps the function total).
fn rv32_addr(prov: &Provenance, uop: u64) -> u64 {
    prov.rv32_pc(uop).map_or(uop, u64::from)
}

/// Builds one chain per (transmit site, taint source), mapped to RV32
/// addresses and deduplicated (several µops of one RV32 instruction
/// collapse to the same address).
fn extract_chains(analysis: &Analysis, cfg: &Cfg, prov: &Provenance) -> Vec<Chain> {
    let mut out: BTreeSet<Chain> = BTreeSet::new();
    for t in &analysis.transmits {
        // Oldest mispredictable branch the chain rides on. A tainted
        // value always has at least one pending branch; guard anyway.
        let pending_branch = t.branches.iter().copied().min().map_or(0, |b| rv32_addr(prov, b));
        let sources: Vec<u64> =
            if t.sources.is_empty() { vec![t.pc] } else { t.sources.clone() };
        for &src in &sources {
            out.insert(Chain {
                channel: t.channel,
                access_pc: rv32_addr(prov, src),
                transmit_pc: rv32_addr(prov, t.pc),
                pending_branch,
                witness_path: witness(cfg, prov, src, t.pc),
            });
        }
    }
    out.into_iter().collect()
}

/// A shortest block path from the access to the transmitter, rendered
/// as RV32 addresses: the access, each intervening block terminator,
/// the transmitter. Consecutive duplicates (µops of one RV32
/// instruction) are collapsed. Falls back to `[access, transmit]`
/// when no CFG path exists (taint flowed through memory joins).
fn witness(cfg: &Cfg, prov: &Provenance, access: u64, transmit: u64) -> Vec<u64> {
    let from = cfg.block_of(access);
    let to = cfg.block_of(transmit);

    // BFS for a shortest block path from..=to.
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(from);
    let mut found = from == to;
    while let Some(b) = queue.pop_front() {
        if found {
            break;
        }
        for &s in &cfg.blocks()[b].succs {
            if s == cfg.exit() || prev.contains_key(&s) || s == from {
                continue;
            }
            prev.insert(s, b);
            if s == to {
                found = true;
                break;
            }
            queue.push_back(s);
        }
    }

    let mut uops: Vec<u64> = vec![access];
    if found && from != to {
        let mut blocks = vec![to];
        let mut b = to;
        while let Some(&p) = prev.get(&b) {
            blocks.push(p);
            b = p;
        }
        blocks.reverse();
        // Terminators of every block on the path except the last (the
        // transmitter's own block contributes the transmitter itself).
        for &blk in &blocks[..blocks.len() - 1] {
            let term = cfg.blocks()[blk].terminator_pc();
            if term != access {
                uops.push(term);
            }
        }
    }
    uops.push(transmit);

    let mut path: Vec<u64> = Vec::with_capacity(uops.len());
    for u in uops {
        let a = rv32_addr(prov, u);
        if path.last() != Some(&a) {
            path.push(a);
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_rv32::{corpus, translate_with_provenance};

    fn scan_corpus(name: &str) -> ScanResult {
        let entry = corpus::CORPUS.iter().find(|e| e.name == name).expect("corpus entry");
        let (program, prov) =
            translate_with_provenance(&entry.image(), entry.name).expect("translates");
        scan_program(&program, &prov)
    }

    #[test]
    fn gadget_binary_is_flagged_under_unsafe_and_suppressed_under_sdo() {
        let scan = scan_corpus("rv32_gadget");
        assert!(scan.chain_count() > 0, "the Spectre-v1 gadget must be found");

        let unsafe_gadgets = scan.gadgets_for(Variant::Unsafe);
        assert!(!unsafe_gadgets.is_empty());
        assert!(unsafe_gadgets.iter().all(|g| g.channel == Channel::Cache));
        for g in &unsafe_gadgets {
            assert!(g.witness_path.first() == Some(&g.access_pc));
            assert!(g.witness_path.last() == Some(&g.transmit_pc));
        }

        for v in [Variant::StaticL1, Variant::Hybrid, Variant::SttLd] {
            assert!(scan.gadgets_for(v).is_empty(), "{v:?} closes the cache channel");
        }
    }

    #[test]
    fn benchmark_kernels_are_gadget_free() {
        for name in ["rv32_crc32", "rv32_matmul", "rv32_sort", "rv32_strsearch"] {
            let scan = scan_corpus(name);
            assert_eq!(scan.chain_count(), 0, "{name} must scan clean");
        }
    }

    #[test]
    fn gadget_jsonl_round_trips() {
        let scan = scan_corpus("rv32_gadget");
        for g in scan.gadgets_all_variants() {
            let line = g.to_jsonl();
            let back = Gadget::parse_jsonl(&line).expect("parses back");
            assert_eq!(back, g);
            assert_eq!(back.to_jsonl(), line, "byte-identical re-serialization");
        }
    }

    #[test]
    fn scan_is_deterministic() {
        let a = scan_corpus("rv32_gadget");
        let b = scan_corpus("rv32_gadget");
        assert_eq!(a, b);
        assert_eq!(
            a.gadgets_all_variants()
                .iter()
                .map(Gadget::to_jsonl)
                .collect::<Vec<_>>(),
            b.gadgets_all_variants().iter().map(Gadget::to_jsonl).collect::<Vec<_>>(),
        );
    }
}
