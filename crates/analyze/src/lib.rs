//! Static STT taint analysis over the mini-ISA.
//!
//! `sdo-verify` checks the paper's security argument *dynamically*:
//! secret-swap differentials, an invariant oracle and fuzzed litmus
//! campaigns, all over whatever executions the simulator happens to
//! reach. This crate re-derives the same argument *statically*, without
//! simulating a cycle:
//!
//! 1. [`mod@cfg`] builds a control-flow graph from an [`sdo_isa::Program`]
//!    and computes immediate post-dominators — the static stand-in for
//!    the dynamic visibility point at which STT untaints;
//! 2. [`taint`] runs a fixpoint abstract interpretation of the STT
//!    taint lattice (pending-branch sets × root-access sets, per
//!    register and for one coarse memory cell) and classifies every
//!    instruction as a potential transmitter, a tainted training site,
//!    or a dead speculative access;
//! 3. [`findings`] projects that variant-independent analysis through
//!    each protection variant's channel policy
//!    (`sdo_verify::policy`) into typed findings with JSONL/CSV
//!    emission;
//! 4. [`corpus`] fans the analyzer out over the litmus corpus and all
//!    workload kernels (optionally through a `JobPool`, with a
//!    canonical byte-identical merge) and checks pinned expectations;
//! 5. [`differential`] closes the loop: every fuzzed `LitmusSpec` the
//!    analyzer calls transmit-free must be dynamically clean under the
//!    secret-swap checker, and every guaranteed-leak spec must be
//!    statically flagged — disagreements are minimized and dumped as
//!    `sdo_verify` counterexamples.
//!
//! The analysis is a *may* analysis: it over-taints (coarse memory,
//! over-approximated indirect targets), so "statically transmit-free"
//! is the strong claim the differential leans on, while a static
//! finding is only a *potential* gadget.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod callgraph;
pub mod cfg;
pub mod corpus;
pub mod differential;
pub mod findings;
pub mod memory;
pub mod scan;
pub mod taint;

pub use cfg::{Block, BlockId, Cfg};
pub use findings::{findings_csv, findings_for, Finding, FindingKind};
pub use memory::{AbsMem, MemModel, Val};
pub use scan::{scan_program, Gadget, ScanResult};
pub use taint::{analyze, analyze_with, Analysis};
