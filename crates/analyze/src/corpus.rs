//! The default analysis target set — the litmus corpus plus every
//! workload kernel — with pinned expectations and `JobPool` fan-out.
//!
//! Each target carries an optional [`StaticExpect`] (from the corpus
//! annotations in `sdo-workloads`); a mismatch between the pinned and
//! the computed verdict is itself reported, so regressions in either
//! the analyzer or the programs turn CI red.

use crate::findings::{findings_for, Finding};
use crate::scan::scan_program;
use crate::taint::{analyze, Analysis};
use sdo_harness::{JobPool, Variant};
use sdo_isa::Program;
use sdo_rv32::Provenance;
use sdo_workloads::litmus::StaticExpect;
use sdo_workloads::Channel;

/// One program to analyze, with its pinned expectation if any.
#[derive(Debug)]
pub struct Target {
    /// Program name (also the program's own name).
    pub name: String,
    /// The instruction stream to analyze.
    pub program: Program,
    /// Pinned static verdict, `None` for unannotated targets.
    pub expect: Option<StaticExpect>,
    /// Lowering provenance for translated RV32 targets: present means
    /// the target is analyzed in the binary-scanner configuration
    /// (interprocedural CFG + region memory) instead of the litmus
    /// one.
    pub prov: Option<Provenance>,
}

/// The default target set: the 4-case litmus corpus (secret 0 — the
/// analysis only reads the instruction stream, so the secret value is
/// irrelevant) followed by every workload kernel in suite order, then
/// the translated RV32 corpus (benchmarks plus the compiled gadget).
#[must_use]
pub fn default_targets() -> Vec<Target> {
    let mut out = Vec::new();
    for case in sdo_workloads::CORPUS {
        out.push(Target {
            name: case.name.to_string(),
            program: (case.build)(0),
            expect: Some(case.expect),
            prov: None,
        });
    }
    for w in sdo_workloads::suite() {
        let name = w.name().to_string();
        out.push(Target {
            name: name.clone(),
            expect: sdo_workloads::kernels::kernel_expect(&name),
            program: w.into_program(),
            prov: None,
        });
    }
    for e in sdo_rv32::corpus::CORPUS {
        let (program, prov) = sdo_rv32::translate_with_provenance(&e.image(), e.name)
            .expect("corpus entries are pinned translatable");
        out.push(Target {
            name: e.name.to_string(),
            program,
            expect: sdo_workloads::rv32_expect(e.name),
            prov: Some(prov),
        });
    }
    out
}

/// The analysis of one target plus its expectation check.
#[derive(Debug)]
pub struct TargetReport {
    /// Target name.
    pub name: String,
    /// The variant-independent taint analysis.
    pub analysis: Analysis,
    /// Ways the computed verdict contradicts the pinned
    /// [`StaticExpect`]; empty when unannotated or matching.
    pub mismatches: Vec<String>,
}

fn check_expect(analysis: &Analysis, expect: &StaticExpect) -> Vec<String> {
    let mut out = Vec::new();
    for ch in [Channel::Cache, Channel::FpTiming] {
        let want = expect.transmit.contains(&ch);
        let got = analysis.transmits_via(ch) > 0;
        if want != got {
            out.push(format!(
                "expected transmit[{ch:?}]={want}, analysis says {got}"
            ));
        }
    }
    let got_training = !analysis.trainings.is_empty();
    if expect.training != got_training {
        out.push(format!(
            "expected training={}, analysis says {got_training}",
            expect.training
        ));
    }
    let got_dead = !analysis.dead.is_empty();
    if expect.dead_access != got_dead {
        out.push(format!(
            "expected dead_access={}, analysis says {got_dead}",
            expect.dead_access
        ));
    }
    out
}

/// Analyzes one target and checks its pinned expectation. Targets
/// carrying lowering provenance go through the binary-scanner
/// configuration ([`scan_program`]); the rest keep the litmus one.
#[must_use]
pub fn analyze_target(t: &Target) -> TargetReport {
    let analysis = match &t.prov {
        Some(prov) => scan_program(&t.program, prov).analysis,
        None => analyze(&t.program),
    };
    let mismatches = t.expect.as_ref().map_or_else(Vec::new, |e| check_expect(&analysis, e));
    TargetReport { name: t.name.clone(), analysis, mismatches }
}

/// Analyzes every target through `pool`, preserving target order in
/// the output regardless of job count — the merged result is
/// byte-identical for any `--jobs` (asserted by
/// `tests/parallel.rs`).
#[must_use]
pub fn analyze_all(targets: &[Target], pool: &JobPool) -> Vec<TargetReport> {
    pool.run(targets, |_, t| analyze_target(t))
}

/// Findings across all reports under one variant, report order.
#[must_use]
pub fn findings_under(reports: &[TargetReport], variant: Variant) -> Vec<Finding> {
    reports.iter().flat_map(|r| findings_for(&r.analysis, variant)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_targets_cover_corpus_suite_and_rv32() {
        let ts = default_targets();
        assert_eq!(
            ts.len(),
            sdo_workloads::CORPUS.len()
                + sdo_workloads::suite().len()
                + sdo_rv32::corpus::CORPUS.len()
        );
        assert_eq!(ts[0].name, "spectre_v1");
        assert!(ts.iter().any(|t| t.name == "rv32_gadget"));
        // Every translated RV32 target carries a pinned verdict — the
        // decoder/lowering path is under the same expectation gate as
        // the hand-written corpus.
        assert!(ts.iter().filter(|t| t.name.starts_with("rv32_")).all(|t| t.expect.is_some()));
        assert!(ts.iter().all(|t| !t.program.instructions().is_empty()));
    }

    #[test]
    fn corpus_expectations_hold() {
        for t in default_targets() {
            let report = analyze_target(&t);
            assert!(
                report.mismatches.is_empty(),
                "{}: {:?}",
                report.name,
                report.mismatches
            );
        }
    }
}
