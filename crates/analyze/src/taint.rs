//! Fixpoint abstract interpretation of the STT taint lattice.
//!
//! The abstract state tracks, per integer register, per FP register
//! and for one coarse memory cell, a [`Taint`] value: the set of
//! *pending branch blocks* the value's root accesses are speculative
//! under, plus the set of root access pcs (for reporting). The lattice
//! order is pointwise set inclusion; joins are unions; the state space
//! is finite, so the worklist iteration terminates at the least
//! fixpoint.
//!
//! Dynamics being abstracted (STT, paper §III):
//!
//! * a load executed while some conditional branch is unresolved is an
//!   *access instruction*: its output is tainted. Statically, "some
//!   branch unresolved" is "the pending set at the load's program
//!   point is non-empty" — a conditional branch is pending from its
//!   block until its immediate post-dominator, the static stand-in for
//!   the dynamic visibility point;
//! * taint propagates through every value-producing instruction
//!   (`AluOp`/`FpuOp` dataflow, loads, moves); stores taint the
//!   abstract memory cell, loads join it back in;
//! * when a branch resolves (control reaches its immediate
//!   post-dominator on every path), it is removed from every pending
//!   set; a value whose pending-branch set empties is untainted.
//!
//! Known unsoundness gaps, by design (documented in DESIGN.md §11):
//! the post-dominator approximation assumes a branch is resolved by
//! its reconvergence point (dynamically it may still be in flight);
//! indirect jumps are not treated as speculation sources; memory is
//! one cell, so aliasing is maximally coarse (an over-taint, but
//! store-to-load paths through *disjoint* addresses are still merged).

use crate::cfg::{BlockId, Cfg};
use crate::memory::{fold_alu, AbsMem, MemModel, Val};
use sdo_isa::{Instruction, Program, Reg, NUM_FREGS, NUM_REGS};
use sdo_workloads::Channel;
use std::collections::{BTreeMap, BTreeSet};

/// Load offsets at or above this are reads of the `jalr` translation
/// table the RV32 frontend materializes ([`sdo_rv32::TABLE_BASE`]):
/// a lowering artifact, not a program memory access.
const TABLE_OFFSET: i64 = sdo_rv32::TABLE_BASE as i64;

/// Abstract taint of one value: which pending branches its root
/// accesses are speculative under, and which access pcs produced it.
/// Empty `branches` means untainted (and `sources` is kept empty too).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Taint {
    /// Blocks whose terminating conditional branch the value is
    /// speculative under.
    pub branches: BTreeSet<BlockId>,
    /// Root access-instruction pcs the taint flows from.
    pub sources: BTreeSet<u64>,
}

impl Taint {
    /// Whether the value is tainted at all.
    #[must_use]
    pub fn is_tainted(&self) -> bool {
        !self.branches.is_empty()
    }

    pub(crate) fn join(&mut self, other: &Taint) {
        self.branches.extend(other.branches.iter().copied());
        self.sources.extend(other.sources.iter().copied());
    }

    /// Removes a resolved branch; an emptied value is fully untainted.
    pub(crate) fn resolve(&mut self, b: BlockId) {
        self.branches.remove(&b);
        if self.branches.is_empty() {
            self.sources.clear();
        }
    }
}

/// The abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    /// Conditional-branch blocks not yet resolved on some path here.
    pub pending: BTreeSet<BlockId>,
    regs: Vec<Taint>,
    fregs: Vec<Taint>,
    mem: AbsMem,
    /// Abstract register values, for address classification. Tracked
    /// only under [`MemModel::Regions`]; stays all-bottom under
    /// `OneCell` so the old lattice's fixpoint is bit-identical.
    vals: Vec<Val>,
}

impl AbsState {
    fn bottom(model: MemModel) -> AbsState {
        let mut vals = vec![if model == MemModel::Regions { Val::Top } else { Val::Bot }; NUM_REGS];
        if model == MemModel::Regions {
            // x0 is hardwired zero; x2 is the RV32 stack pointer — its
            // entry value anchors the sp-relative region.
            vals[0] = Val::Cst(0);
            vals[2] = Val::SpRel(0);
        }
        AbsState {
            pending: BTreeSet::new(),
            regs: vec![Taint::default(); NUM_REGS],
            fregs: vec![Taint::default(); NUM_FREGS],
            mem: AbsMem::bottom(model),
            vals,
        }
    }

    fn join(&mut self, other: &AbsState) -> bool {
        let before = self.clone();
        self.pending.extend(other.pending.iter().copied());
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            a.join(b);
        }
        for (a, b) in self.fregs.iter_mut().zip(&other.fregs) {
            a.join(b);
        }
        self.mem.join(&other.mem);
        for (a, &b) in self.vals.iter_mut().zip(&other.vals) {
            *a = a.join(b);
        }
        *self != before
    }

    /// Resolves every pending branch whose immediate post-dominator is
    /// `block` — the static visibility point.
    fn resolve_at(&mut self, block: BlockId, cfg: &Cfg) {
        let resolved: Vec<BlockId> =
            self.pending.iter().copied().filter(|&p| cfg.ipdom(p) == Some(block)).collect();
        for p in resolved {
            self.pending.remove(&p);
            for t in self.regs.iter_mut().chain(self.fregs.iter_mut()) {
                t.resolve(p);
            }
            self.mem.resolve(p);
        }
    }

    fn reg(&self, r: Reg) -> &Taint {
        &self.regs[r.index()]
    }

    /// Abstract value of `r` (`x0` is always exactly zero).
    fn val(&self, r: Reg) -> Val {
        if r.is_zero() {
            Val::Cst(0)
        } else {
            self.vals[r.index()]
        }
    }

    fn set_val(&mut self, r: Reg, v: Val) {
        if !r.is_zero() {
            self.vals[r.index()] = v;
        }
    }
}

/// A statically detected transmitter: an instruction whose operand the
/// analysis proves *may* be tainted when it executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransmitSite {
    /// Instruction index.
    pub pc: u64,
    /// The covert channel the instruction transmits through.
    pub channel: Channel,
    /// Disassembly of the instruction.
    pub inst: String,
    /// Root access pcs whose taint reaches the operand.
    pub sources: Vec<u64>,
    /// Terminator pcs of the branches the taint is speculative under.
    pub branches: Vec<u64>,
}

/// A statically detected tainted-training site: a conditional branch
/// or indirect jump steered by a possibly tainted value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainingSite {
    /// Instruction index.
    pub pc: u64,
    /// Disassembly of the instruction.
    pub inst: String,
    /// Root access pcs whose taint reaches the operands.
    pub sources: Vec<u64>,
    /// Terminator pcs of the branches the taint is speculative under.
    pub branches: Vec<u64>,
}

/// A speculative access whose taint never reaches any transmitter,
/// branch or store — the taint dies in a register (`spectre_v1_dead`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadAccess {
    /// Instruction index of the access.
    pub pc: u64,
    /// Disassembly of the instruction.
    pub inst: String,
    /// Terminator pcs of the branches the access is speculative under.
    pub branches: Vec<u64>,
}

/// Everything the taint fixpoint derives from one program. Pure
/// function of the instruction stream (the data image plays no role),
/// so analyzing the same program twice is identical — and the two
/// secret-swapped builds of a litmus case analyze identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Program name.
    pub program: String,
    /// Instruction count.
    pub insts: usize,
    /// Basic-block count.
    pub blocks: usize,
    /// CFG edge count (including edges to the virtual exit).
    pub edges: usize,
    /// Conditional-branch count.
    pub cond_branches: usize,
    /// Block transfer evaluations until the fixpoint stabilized.
    pub fixpoint_visits: usize,
    /// Accesses executed under a non-empty pending set (taint roots).
    pub speculative_accesses: usize,
    /// Transmitters with possibly tainted operands, in pc order.
    pub transmits: Vec<TransmitSite>,
    /// Control transfers steered by possibly tainted values, pc order.
    pub trainings: Vec<TrainingSite>,
    /// Speculative accesses whose taint reaches nothing, pc order.
    pub dead: Vec<DeadAccess>,
}

impl Analysis {
    /// Whether no transmitter (on any channel) was found.
    #[must_use]
    pub fn transmit_free(&self) -> bool {
        self.transmits.is_empty()
    }

    /// Transmit sites on one channel.
    #[must_use]
    pub fn transmits_via(&self, ch: Channel) -> usize {
        self.transmits.iter().filter(|t| t.channel == ch).count()
    }
}

/// What the reporting pass accumulates at each suspicious pc.
#[derive(Default)]
struct Sink {
    transmits: BTreeMap<u64, (Channel, Taint)>,
    trainings: BTreeMap<u64, Taint>,
    /// Speculative access roots: pc -> pending set seen there.
    roots: BTreeMap<u64, BTreeSet<BlockId>>,
    /// Access pcs whose taint reached a transmitter/branch/store.
    used: BTreeSet<u64>,
}

impl Sink {
    fn transmit(&mut self, pc: u64, channel: Channel, t: &Taint) {
        self.used.extend(t.sources.iter().copied());
        let entry = self.transmits.entry(pc).or_insert_with(|| (channel, Taint::default()));
        entry.1.join(t);
    }

    fn training(&mut self, pc: u64, t: &Taint) {
        self.used.extend(t.sources.iter().copied());
        self.trainings.entry(pc).or_default().join(t);
    }

    fn escape(&mut self, t: &Taint) {
        self.used.extend(t.sources.iter().copied());
    }
}

/// Runs the taint fixpoint over `program` and classifies every
/// instruction, under PR 5's one-cell memory lattice and the
/// intraprocedural CFG — the litmus-checker configuration.
#[must_use]
pub fn analyze(program: &Program) -> Analysis {
    analyze_with(program, &Cfg::build(program), MemModel::OneCell)
}

/// Runs the taint fixpoint over `program` with an explicit CFG (the
/// binary scanner passes the interprocedural one built over the `jalr`
/// translation table) and memory model.
#[must_use]
pub fn analyze_with(program: &Program, cfg: &Cfg, model: MemModel) -> Analysis {
    let insts = program.instructions();
    let cond_branches = insts.iter().filter(|i| i.is_cond_branch()).count();

    let nb = cfg.blocks().len();
    let mut inputs: Vec<Option<AbsState>> = vec![None; nb];
    let mut visits = 0usize;

    if nb > 0 {
        inputs[cfg.block_of(0)] = Some(AbsState::bottom(model));
        let mut worklist: BTreeSet<BlockId> = BTreeSet::new();
        worklist.insert(cfg.block_of(0));
        while let Some(&b) = worklist.iter().next() {
            worklist.remove(&b);
            visits += 1;
            let Some(input) = inputs[b].clone() else { continue };
            let out = transfer_block(cfg, insts, b, input, None);
            for &s in &cfg.blocks()[b].succs {
                if s == cfg.exit() {
                    continue;
                }
                let changed = match &mut inputs[s] {
                    Some(existing) => existing.join(&out),
                    slot @ None => {
                        *slot = Some(out.clone());
                        true
                    }
                };
                if changed {
                    worklist.insert(s);
                }
            }
        }
    }

    // Reporting pass over the stable per-block input states, in block
    // order: deterministic by construction.
    let mut sink = Sink::default();
    for (b, input) in inputs.iter().enumerate() {
        if let Some(input) = input.clone() {
            transfer_block(cfg, insts, b, input, Some(&mut sink));
        }
    }

    let branch_pcs = |blocks: &BTreeSet<BlockId>| -> Vec<u64> {
        blocks.iter().map(|&bb| cfg.blocks()[bb].terminator_pc()).collect()
    };
    let transmits = sink
        .transmits
        .iter()
        .map(|(&pc, (channel, t))| TransmitSite {
            pc,
            channel: *channel,
            inst: insts[pc as usize].to_string(),
            sources: t.sources.iter().copied().collect(),
            branches: branch_pcs(&t.branches),
        })
        .collect();
    let trainings = sink
        .trainings
        .iter()
        .map(|(&pc, t)| TrainingSite {
            pc,
            inst: insts[pc as usize].to_string(),
            sources: t.sources.iter().copied().collect(),
            branches: branch_pcs(&t.branches),
        })
        .collect();
    let dead = sink
        .roots
        .iter()
        .filter(|(pc, _)| !sink.used.contains(pc))
        .map(|(&pc, pending)| DeadAccess {
            pc,
            inst: insts[pc as usize].to_string(),
            branches: branch_pcs(pending),
        })
        .collect();

    Analysis {
        program: program.name().to_string(),
        insts: insts.len(),
        blocks: nb,
        edges: cfg.edge_count(),
        cond_branches,
        fixpoint_visits: visits,
        speculative_accesses: sink.roots.len(),
        transmits,
        trainings,
        dead,
    }
}

/// Applies block `b`'s instructions to `state` (after resolving
/// branches whose visibility point is `b`'s entry), optionally
/// reporting suspicious sites into `sink`. Returns the out-state
/// propagated to every successor.
fn transfer_block(
    cfg: &Cfg,
    insts: &[Instruction],
    b: BlockId,
    mut state: AbsState,
    mut sink: Option<&mut Sink>,
) -> AbsState {
    state.resolve_at(b, cfg);
    let block = &cfg.blocks()[b];
    for pc in block.start..block.end {
        let inst = &insts[pc as usize];
        transfer_inst(inst, pc, b, &mut state, sink.as_deref_mut());
    }
    state
}

fn transfer_inst(
    inst: &Instruction,
    pc: u64,
    block: BlockId,
    s: &mut AbsState,
    sink: Option<&mut Sink>,
) {
    // Join of the integer source taints (operand taint for most ops).
    let mut src_taint = Taint::default();
    for r in inst.int_srcs().into_iter().flatten() {
        src_taint.join(s.reg(r));
    }

    let track_vals = s.mem.model() == MemModel::Regions;
    match *inst {
        Instruction::Alu { op, dst, lhs, rhs } => {
            if track_vals {
                let v = fold_alu(op, s.val(lhs), s.val(rhs));
                s.set_val(dst, v);
            }
            set_reg(s, dst, src_taint);
        }
        Instruction::AluImm { op, dst, src, imm } => {
            if track_vals {
                let v = fold_alu(op, s.val(src), Val::Cst(imm));
                s.set_val(dst, v);
            }
            set_reg(s, dst, src_taint);
        }
        Instruction::Li { dst, imm } => {
            if track_vals {
                s.set_val(dst, Val::Cst(imm));
            }
            set_reg(s, dst, Taint::default());
        }
        Instruction::Load { dst, base, offset, .. } => {
            let t = load_result(s, base, offset, pc, block, Channel::Cache, sink);
            if track_vals {
                s.set_val(dst, Val::Top);
            }
            set_reg(s, dst, t);
        }
        Instruction::FLoad { dst, base, offset, .. } => {
            let t = load_result(s, base, offset, pc, block, Channel::Cache, sink);
            s.fregs[dst.index()] = t;
        }
        Instruction::Store { src, base, offset, .. } => {
            let data = s.reg(src).clone();
            store_effect(s, base, offset, &data, pc, sink);
        }
        Instruction::FStore { src, base, offset, .. } => {
            let data = s.fregs[src.index()].clone();
            store_effect(s, base, offset, &data, pc, sink);
        }
        Instruction::Branch { .. } => {
            if let Some(sink) = sink {
                if src_taint.is_tainted() {
                    sink.training(pc, &src_taint);
                }
            }
            // The branch itself becomes pending for both successors;
            // it resolves at its immediate post-dominator.
            s.pending.insert(block);
        }
        Instruction::Jal { dst, .. } => {
            if !dst.is_zero() {
                if track_vals {
                    s.set_val(dst, Val::Top);
                }
                set_reg(s, dst, Taint::default());
            }
        }
        Instruction::Jalr { dst, base, .. } => {
            // An indirect jump steered by a tainted target trains the
            // BTB with secret-dependent state.
            if let Some(sink) = sink {
                let t = s.reg(base).clone();
                if t.is_tainted() {
                    sink.training(pc, &t);
                }
            }
            if !dst.is_zero() {
                if track_vals {
                    s.set_val(dst, Val::Top);
                }
                set_reg(s, dst, Taint::default());
            }
        }
        Instruction::Fpu { op, dst, lhs, rhs } => {
            let mut t = s.fregs[lhs.index()].clone();
            if !matches!(op, sdo_isa::FpuOp::Sqrt) {
                t.join(&s.fregs[rhs.index()].clone());
            }
            if let Some(sink) = sink {
                if op.is_transmit() && t.is_tainted() {
                    sink.transmit(pc, Channel::FpTiming, &t);
                }
            }
            s.fregs[dst.index()] = t;
        }
        Instruction::FMvToInt { dst, src } => {
            let t = s.fregs[src.index()].clone();
            if track_vals {
                s.set_val(dst, Val::Top);
            }
            set_reg(s, dst, t);
        }
        Instruction::FMvFromInt { dst, src } => {
            s.fregs[dst.index()] = s.reg(src).clone();
        }
        Instruction::Nop | Instruction::Halt => {}
    }
}

fn set_reg(s: &mut AbsState, r: Reg, t: Taint) {
    if !r.is_zero() {
        s.regs[r.index()] = t;
    }
}

/// Taint of a load's result, with transmitter/root reporting: a load
/// with a tainted address transmits through the cache; a load under a
/// non-empty pending set is a new taint root. Loads of the `jalr`
/// translation table (offset at or above [`TABLE_OFFSET`]) read a
/// static lowering artifact: their result carries only the address
/// operand's taint and they are never roots.
fn load_result(
    s: &AbsState,
    base: Reg,
    offset: i64,
    pc: u64,
    _block: BlockId,
    channel: Channel,
    sink: Option<&mut Sink>,
) -> Taint {
    let base_t = s.reg(base).clone();
    let table = offset >= TABLE_OFFSET;
    let mut t = base_t.clone();
    if !table {
        t.join(&s.mem.load(s.val(base).offset(offset)));
    }
    let speculative = !table && !s.pending.is_empty();
    if speculative {
        t.branches.extend(s.pending.iter().copied());
        t.sources.insert(pc);
    }
    if let Some(sink) = sink {
        if base_t.is_tainted() {
            // Even a table load with a tainted index is a real cache
            // transmitter: the accessed table line depends on the data.
            sink.transmit(pc, channel, &base_t);
            // The access itself reached an observable: whatever happens
            // to its *result*, it is not dead protection work.
            sink.used.insert(pc);
        }
        if speculative {
            sink.roots.insert(pc, s.pending.clone());
        }
    }
    t
}

/// Abstract store: a tainted address transmits through the cache; the
/// region the effective address falls in joins the stored data's
/// taint; either way the involved access roots are "used", not dead.
fn store_effect(
    s: &mut AbsState,
    base: Reg,
    offset: i64,
    data: &Taint,
    pc: u64,
    sink: Option<&mut Sink>,
) {
    let addr_t = s.reg(base).clone();
    if let Some(sink) = sink {
        if addr_t.is_tainted() {
            sink.transmit(pc, Channel::Cache, &addr_t);
        }
        if data.is_tainted() {
            sink.escape(data);
        }
    }
    let addr = s.val(base).offset(offset);
    s.mem.store(addr, data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_isa::{Assembler, FReg, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// Mispredict window: slow bound, branch, speculative load feeding
    /// a second (transmitting) load.
    fn spectre_shape(transmit: bool) -> sdo_isa::Program {
        let mut asm = Assembler::new();
        let skip = asm.label();
        asm.li(r(1), 0x4000);
        asm.divu(r(8), r(6), r(7));
        asm.blt(r(3), r(8), skip);
        asm.j(skip); // never: keep shape simple
        asm.bind(skip);
        asm.halt();
        let _ = transmit;
        asm.finish().unwrap()
    }

    #[test]
    fn load_under_branch_is_tainted_and_transmits_through_dependent_load() {
        let mut asm = Assembler::new();
        let out = asm.label();
        asm.li(r(1), 0x4000);
        asm.blt(r(3), r(8), out);
        asm.ldb(r(4), r(1), 0); // speculative access
        asm.slli(r(5), r(4), 6);
        asm.ld(Reg::ZERO, r(5), 0); // tainted address: cache transmit
        asm.bind(out);
        asm.halt();
        let a = analyze(&asm.finish().unwrap());
        assert_eq!(a.transmits.len(), 1);
        assert_eq!(a.transmits[0].channel, Channel::Cache);
        assert_eq!(a.transmits[0].pc, 4);
        assert_eq!(a.transmits[0].sources, vec![2]);
        assert!(a.dead.is_empty());
        // Both loads execute under the unresolved branch: the access at
        // pc 2 and the transmitting probe load itself.
        assert_eq!(a.speculative_accesses, 2);
    }

    #[test]
    fn dead_speculative_access_is_flagged() {
        let mut asm = Assembler::new();
        let out = asm.label();
        asm.li(r(1), 0x4000);
        asm.blt(r(3), r(8), out);
        asm.ldb(r(4), r(1), 0); // speculative, then dead
        asm.bind(out);
        asm.halt();
        let a = analyze(&asm.finish().unwrap());
        assert!(a.transmits.is_empty());
        assert_eq!(a.dead.len(), 1);
        assert_eq!(a.dead[0].pc, 2);
        assert_eq!(a.dead[0].branches, vec![1]);
    }

    #[test]
    fn taint_clears_at_the_postdominator() {
        // The load after the join is not speculative under the branch
        // and its result feeds a load address without a finding.
        let mut asm = Assembler::new();
        let join = asm.label();
        asm.li(r(1), 0x4000);
        asm.blt(r(3), r(8), join);
        asm.bind(join);
        asm.ld(r(4), r(1), 0); // at the visibility point: clean
        asm.ld(r(5), r(4), 0); // address from a clean value
        asm.halt();
        let a = analyze(&asm.finish().unwrap());
        assert!(a.transmits.is_empty(), "{:?}", a.transmits);
        assert_eq!(a.speculative_accesses, 0);
    }

    #[test]
    fn fp_transmit_with_tainted_operand_is_flagged() {
        let f = FReg::new;
        let mut asm = Assembler::new();
        let out = asm.label();
        asm.li(r(1), 0x4000);
        asm.blt(r(3), r(8), out);
        asm.ldb(r(4), r(1), 0);
        asm.fmv_from_int(f(3), r(4));
        asm.fmul(f(4), f(3), f(1)); // tainted FP transmit
        asm.fadd(f(5), f(3), f(1)); // non-transmit FP op: no finding
        asm.bind(out);
        asm.halt();
        let a = analyze(&asm.finish().unwrap());
        assert_eq!(a.transmits.len(), 1);
        assert_eq!(a.transmits[0].channel, Channel::FpTiming);
        assert_eq!(a.transmits[0].pc, 4);
    }

    #[test]
    fn branch_on_tainted_value_is_training() {
        let mut asm = Assembler::new();
        let out = asm.label();
        let out2 = asm.label();
        asm.li(r(1), 0x4000);
        asm.blt(r(3), r(8), out);
        asm.ldb(r(4), r(1), 0);
        asm.bne(r(4), Reg::ZERO, out2); // steered by tainted value
        asm.bind(out);
        asm.bind(out2);
        asm.halt();
        let a = analyze(&asm.finish().unwrap());
        assert_eq!(a.trainings.len(), 1);
        assert_eq!(a.trainings[0].pc, 3);
        assert!(a.dead.is_empty(), "taint reaching a branch is used, not dead");
    }

    #[test]
    fn store_data_taint_flows_through_memory() {
        let mut asm = Assembler::new();
        let out = asm.label();
        asm.li(r(1), 0x4000);
        asm.li(r(2), 0x5000);
        asm.blt(r(3), r(8), out);
        asm.ldb(r(4), r(1), 0); // tainted
        asm.st(r(4), r(2), 0); // escapes to memory (clean address)
        asm.ld(r(5), r(2), 0); // rereads tainted cell
        asm.ld(Reg::ZERO, r(5), 0); // transmit via reloaded taint
        asm.bind(out);
        asm.halt();
        let a = analyze(&asm.finish().unwrap());
        assert!(a.transmits.iter().any(|t| t.pc == 6 && t.channel == Channel::Cache));
        assert!(a.dead.is_empty());
    }

    #[test]
    fn straightline_loads_are_clean() {
        let mut asm = Assembler::new();
        asm.li(r(1), 0x4000);
        asm.ld(r(2), r(1), 0);
        asm.ld(r(3), r(2), 0); // dependent load, but never speculative
        asm.halt();
        let a = analyze(&asm.finish().unwrap());
        assert!(a.transmit_free());
        assert!(a.trainings.is_empty());
        assert!(a.dead.is_empty());
        assert_eq!(a.speculative_accesses, 0);
    }

    #[test]
    fn analysis_is_deterministic() {
        let p = spectre_shape(true);
        assert_eq!(analyze(&p), analyze(&p));
    }
}
