//! Call-graph recovery over lowered RV32 programs.
//!
//! The RV32 frontend lowers `jalr` through a translation table in data
//! memory, so a lowered binary's indirect control flow is opaque to
//! the plain [`crate::cfg`] heuristic (every `Jalr` edges to every
//! return point). This module rebuilds the *function structure* from
//! the lowering [`Provenance`] side table and resolves each `Jalr` to
//! a precise successor set:
//!
//! * **entries** — the image entry µop plus every direct-call target
//!   (`jal ra, f`);
//! * **membership** — a BFS from each entry that steps *over* call
//!   sites (call → its return point, the context-insensitive callee
//!   summary boundary) and stops at return `jalr`s, giving the set of
//!   µops owned by each function;
//! * **return resolution** — a return `jalr` inside function `f` edges
//!   to the return points of every call site whose callee set includes
//!   `f`. Direct calls name their callee; indirect calls (`jalr`
//!   through the table with a link write) conservatively call every
//!   known entry. A return with no matching caller edges to the
//!   virtual exit;
//! * **indirect calls** edge to every known function entry.
//!
//! The result plugs into [`crate::cfg::Cfg::build_with_jalr_targets`]:
//! the taint fixpoint then flows *through*
//! callees and back to all callers' return points — a
//! context-insensitive interprocedural analysis in which every callee
//! is summarized by its threaded CFG body. Computed `jalr`s that are
//! neither calls nor returns stay out of the map and keep the
//! conservative return-point fallback.

use sdo_isa::{Instruction, Program};
use sdo_rv32::Provenance;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Sentinel successor meaning "the virtual exit": any target at or
/// past the program length maps to the CFG exit node, and `u64::MAX`
/// is never a real µop index.
pub const EXIT_TARGET: u64 = u64::MAX;

/// One recovered function: its entry µop and the µops reachable from
/// it without leaving the function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Entry µop index.
    pub entry: u64,
    /// RV32 byte address of the entry, when the provenance covers it.
    pub entry_pc: Option<u32>,
    /// µop indices owned by the function (callee bodies excluded).
    pub members: BTreeSet<u64>,
    /// Return `jalr` µops inside the function, ascending.
    pub returns: Vec<u64>,
}

/// The recovered call graph plus the resolved `Jalr` successor map the
/// interprocedural CFG is built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    /// Recovered functions, ascending by entry µop. The image entry is
    /// always present (possibly overlapping other functions).
    pub functions: Vec<Function>,
    /// `Jalr` µop pc → resolved successor µop indices (values at or
    /// past the program length mean the virtual exit). Feed to
    /// [`crate::cfg::Cfg::build_with_jalr_targets`].
    pub jalr_succs: BTreeMap<u64, Vec<u64>>,
    /// Call edges: caller entry µop → callee entry µops (indirect
    /// calls fan out to every known entry).
    pub calls: BTreeMap<u64, BTreeSet<u64>>,
}

impl CallGraph {
    /// The function owning µop `pc`, if any (entry of the first owner
    /// in entry order).
    #[must_use]
    pub fn function_of(&self, pc: u64) -> Option<u64> {
        self.functions.iter().find(|f| f.members.contains(&pc)).map(|f| f.entry)
    }
}

/// Recovers the call graph of a lowered RV32 program from its
/// translation provenance.
#[must_use]
pub fn build(program: &Program, prov: &Provenance) -> CallGraph {
    let insts = program.instructions();
    let n = insts.len() as u64;

    let call_by_uop: BTreeMap<u64, &sdo_rv32::CallSite> =
        prov.calls.iter().map(|c| (c.uop, c)).collect();
    let return_set: BTreeSet<u64> = prov.returns.iter().copied().collect();

    // Function entries: the image entry plus every direct-call target.
    let mut entries: BTreeSet<u64> = BTreeSet::new();
    if prov.entry < n {
        entries.insert(prov.entry);
    }
    for c in &prov.calls {
        if let Some(t) = c.target {
            if t < n {
                entries.insert(t);
            }
        }
    }
    let entry_list: Vec<u64> = entries.iter().copied().collect();

    // Conservative fallback target set for computed jalrs during
    // membership discovery: every entry and every call return point.
    let computed_fallback: Vec<u64> = {
        let mut s: BTreeSet<u64> = entries.clone();
        s.extend(prov.calls.iter().map(|c| c.return_to).filter(|&t| t < n));
        s.into_iter().collect()
    };

    // Intra-function successors of one µop: call sites step to their
    // return point (the callee is summarized away), returns stop.
    let intra_succs = |pc: u64| -> Vec<u64> {
        if let Some(c) = call_by_uop.get(&pc) {
            return if c.return_to < n { vec![c.return_to] } else { Vec::new() };
        }
        if return_set.contains(&pc) {
            return Vec::new();
        }
        let succs = match insts[usize::try_from(pc).expect("µop index fits usize")] {
            Instruction::Halt => Vec::new(),
            Instruction::Branch { target, .. } => vec![pc + 1, target],
            Instruction::Jal { target, .. } => vec![target],
            Instruction::Jalr { .. } => computed_fallback.clone(),
            _ => vec![pc + 1],
        };
        succs.into_iter().filter(|&t| t < n).collect()
    };

    let mut functions: Vec<Function> = Vec::with_capacity(entry_list.len());
    for &entry in &entry_list {
        let mut members: BTreeSet<u64> = BTreeSet::new();
        let mut queue: VecDeque<u64> = VecDeque::new();
        members.insert(entry);
        queue.push_back(entry);
        while let Some(pc) = queue.pop_front() {
            for t in intra_succs(pc) {
                if members.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        let returns: Vec<u64> =
            prov.returns.iter().copied().filter(|r| members.contains(r)).collect();
        functions.push(Function { entry, entry_pc: prov.rv32_pc(entry), members, returns });
    }

    // Callee sets per call site; indirect calls fan out to every entry.
    let callees = |c: &sdo_rv32::CallSite| -> Vec<u64> {
        match c.target {
            Some(t) if t < n => vec![t],
            Some(_) => Vec::new(),
            None => entry_list.clone(),
        }
    };

    let mut calls: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for c in &prov.calls {
        let caller = functions
            .iter()
            .find(|f| f.members.contains(&c.uop))
            .map_or(EXIT_TARGET, |f| f.entry);
        calls.entry(caller).or_default().extend(callees(c));
    }

    // Return points flowing back into each function: the return_to of
    // every call site that may call it.
    let mut ret_points: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for c in &prov.calls {
        for callee in callees(c) {
            if c.return_to < n {
                ret_points.entry(callee).or_default().insert(c.return_to);
            }
        }
    }

    let mut jalr_succs: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &r in &prov.returns {
        let mut succ: BTreeSet<u64> = BTreeSet::new();
        for f in &functions {
            if f.members.contains(&r) {
                if let Some(pts) = ret_points.get(&f.entry) {
                    succ.extend(pts.iter().copied());
                }
            }
        }
        if succ.is_empty() {
            // A return nobody calls (or the entry function returning):
            // control leaves the program.
            succ.insert(EXIT_TARGET);
        }
        jalr_succs.insert(r, succ.into_iter().collect());
    }
    for c in &prov.calls {
        if c.target.is_none() && !entry_list.is_empty() {
            jalr_succs.insert(c.uop, entry_list.clone());
        }
    }

    CallGraph { functions, jalr_succs, calls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_rv32::{enc, load_flat, translate_with_provenance};

    const BASE: u32 = 0x1000;

    /// _start: jal ra, f; halt(ebreak)   f: ret
    fn call_return_image() -> sdo_rv32::Rv32Image {
        let text = [
            enc::jal(1, 8),      // 0x1000: call f at 0x1008
            enc::ebreak(),       // 0x1004
            enc::jalr(0, 1, 0),  // 0x1008: f: ret
        ];
        let bytes: Vec<u8> = text.iter().flat_map(|w| w.to_le_bytes()).collect();
        load_flat(&bytes, BASE).expect("flat image loads")
    }

    #[test]
    fn direct_call_and_return_resolve_to_each_other() {
        let image = call_return_image();
        let (program, prov) = translate_with_provenance(&image, "cg").expect("translates");
        let cg = build(&program, &prov);

        // Two functions: _start (the entry) and f.
        assert_eq!(cg.functions.len(), 2);
        let f_entry = prov.calls[0].target.expect("direct call");
        assert_eq!(cg.functions[1].entry, f_entry);
        assert_eq!(cg.functions[1].entry_pc, Some(BASE + 8));

        // f's return jalr edges exactly to the call's return point.
        let ret = prov.returns[0];
        assert_eq!(cg.jalr_succs.get(&ret), Some(&vec![prov.calls[0].return_to]));

        // _start's body does not swallow f's.
        assert!(!cg.functions[0].members.contains(&ret));
        assert_eq!(cg.calls.get(&cg.functions[0].entry).map(|s| s.contains(&f_entry)), Some(true));
    }

    #[test]
    fn uncalled_return_edges_to_exit() {
        // Just "ret": a return with no caller leaves the program.
        let text = [enc::jalr(0, 1, 0)];
        let bytes: Vec<u8> = text.iter().flat_map(|w| w.to_le_bytes()).collect();
        let image = load_flat(&bytes, BASE).expect("flat image loads");
        let (program, prov) = translate_with_provenance(&image, "cg").expect("translates");
        let cg = build(&program, &prov);
        assert_eq!(cg.jalr_succs.get(&prov.returns[0]), Some(&vec![EXIT_TARGET]));
    }
}
