//! `analyze` — static STT taint analysis from the command line.
//!
//! With no positional arguments the default target set (the litmus
//! corpus plus every workload kernel) is analyzed; `.s` files given on
//! the command line are parsed with [`sdo_isa::parse_asm`] and analyzed
//! instead. Per-variant findings go to stdout as a text table or (with
//! `--csv`) as the typed findings CSV; `--report <dir>` additionally
//! writes them as JSONL. `--differential <N>` cross-checks the
//! analyzer's "clean" verdicts against the dynamic secret-swap checker
//! over `N` fuzzed litmus specs.
//!
//! Exit status is 1 when the static view contradicts itself or the
//! dynamic ground truth: a pinned corpus expectation mismatch, a gating
//! finding on a channel the policy says the variant closes, or a
//! static↔dynamic differential disagreement.

use sdo_analyze::corpus::{analyze_all, default_targets, findings_under, Target, TargetReport};
use sdo_analyze::differential;
use sdo_analyze::findings::{closed_channel_findings, findings_csv};
use sdo_analyze::Finding;
use sdo_harness::cli::{parse_variant, BinSpec, CommonArgs, CsvSupport};
use sdo_harness::table::TextTable;
use sdo_harness::{SimConfig, Variant};
use sdo_uarch::MetricsSnapshot;
use sdo_verify::Checker;
use sdo_workloads::Channel;

const SPEC: BinSpec = BinSpec {
    name: "analyze",
    about: "static STT taint analysis: CFG + taint-lattice fixpoint per program, \
            per-variant transmitter classification, and an optional static\u{2194}dynamic \
            soundness differential",
    usage_args: "[file.s ...] [options]",
    jobs: true,
    csv: CsvSupport::FigureOnly,
    metrics: true,
    seed: true,
    no_skip: false,
    // Static analysis and checker differentials run no cacheable
    // simulations (the dynamic side carries the observability probe).
    client: false,
    extra_options: &[
        ("--variant <name>", "classify under one variant (repeatable; default: all)"),
        ("--report <dir>", "write findings (and counterexamples) as JSONL under <dir>"),
        ("--differential <N>", "cross-check N fuzzed specs against the dynamic checker"),
    ],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    let mut variants: Vec<Variant> = Vec::new();
    let mut report_dir: Option<String> = None;
    let mut differential_count: Option<usize> = None;
    let mut files: Vec<String> = Vec::new();

    let mut it = args.rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map_or_else(|| SPEC.usage_error(&format!("{flag} requires a value")), String::clone)
        };
        match arg.as_str() {
            "--variant" => {
                let v = value("--variant");
                variants.push(parse_variant(&v).unwrap_or_else(|e| SPEC.usage_error(&e)));
            }
            "--report" => report_dir = Some(value("--report")),
            "--differential" => {
                let v = value("--differential");
                differential_count =
                    Some(v.parse().unwrap_or_else(|_| {
                        SPEC.usage_error(&format!("--differential expects a count, got '{v}'"))
                    }));
            }
            other => {
                if let Some(v) = other.strip_prefix("--variant=") {
                    variants.push(parse_variant(v).unwrap_or_else(|e| SPEC.usage_error(&e)));
                } else if let Some(v) = other.strip_prefix("--report=") {
                    report_dir = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--differential=") {
                    differential_count = Some(v.parse().unwrap_or_else(|_| {
                        SPEC.usage_error(&format!("--differential expects a count, got '{v}'"))
                    }));
                } else if other.starts_with('-') {
                    SPEC.usage_error(&format!("unknown option '{other}'"));
                } else {
                    files.push(other.to_string());
                }
            }
        }
    }
    if variants.is_empty() {
        variants = Variant::ALL.to_vec();
    }

    let targets = if files.is_empty() { default_targets() } else { load_files(&files) };
    let start = std::time::Instant::now();
    let reports = analyze_all(&targets, &args.pool);
    let elapsed = start.elapsed();

    let findings: Vec<Finding> =
        variants.iter().flat_map(|&v| findings_under(&reports, v)).collect();
    let contradictions = closed_channel_findings(&findings);
    let mismatches: usize = reports.iter().map(|r| r.mismatches.len()).sum();

    if args.csv.is_some() {
        print!("{}", findings_csv(&findings));
    } else {
        print!("{}", summary_table(&reports));
        eprintln!(
            "analyzed {} program(s) in {:.1} ms ({} jobs); {} finding(s) across {} variant(s)",
            reports.len(),
            elapsed.as_secs_f64() * 1e3,
            args.pool.jobs(),
            findings.len(),
            variants.len(),
        );
    }
    for r in &reports {
        for m in &r.mismatches {
            eprintln!("{}: expectation mismatch: {m}", r.name);
        }
    }
    for f in &contradictions {
        eprintln!(
            "{}: pc {}: {} on a closed channel under {}",
            f.program,
            f.pc,
            f.kind,
            f.variant.slug()
        );
    }

    let diff = differential_count.map(|count| {
        let checker = Checker::with_config(args.sim_config(SimConfig::table_i()));
        let result = differential::run(&checker, args.seed_or_default(), count);
        eprintln!(
            "differential: {} spec(s), {} clean claim(s) confirmed, {} skipped, \
             {} completeness hit(s), {} disagreement(s), {} verdict flip(s)",
            result.specs,
            result.confirmed_clean,
            result.skipped,
            result.completeness_hits,
            result.disagreements.len(),
            result.verdict_flips,
        );
        result
    });

    if let Some(dir) = &report_dir {
        if let Err(e) = write_report(dir, &findings, diff.as_ref()) {
            SPEC.runtime_error(&format!("cannot write report under {dir}: {e}"));
        }
    }
    args.write_metrics(&SPEC, &metrics(&reports, &findings, diff.as_ref()));

    let disagreements = diff.as_ref().map_or(0, |d| d.disagreements.len());
    if mismatches > 0 || !contradictions.is_empty() || disagreements > 0 {
        std::process::exit(1);
    }
}

/// Parses each `.s` file into an unannotated [`Target`], printing the
/// position-rich [`sdo_isa::ParseError`] and exiting 1 on failure.
fn load_files(files: &[String]) -> Vec<Target> {
    files
        .iter()
        .map(|path| {
            let source = std::fs::read_to_string(path)
                .unwrap_or_else(|e| SPEC.runtime_error(&format!("cannot read {path}: {e}")));
            let program = sdo_isa::parse_asm(&source)
                .unwrap_or_else(|e| SPEC.runtime_error(&format!("{path}: {e}")));
            let name = if program.name().is_empty() {
                path.rsplit('/').next().unwrap_or(path).trim_end_matches(".s").to_string()
            } else {
                program.name().to_string()
            };
            Target { name, program, expect: None }
        })
        .collect()
}

fn summary_table(reports: &[TargetReport]) -> String {
    let mut t = TextTable::new(
        ["program", "insts", "blocks", "roots", "cache", "fp", "training", "dead", "expect"]
            .map(String::from)
            .to_vec(),
    );
    for r in reports {
        let a = &r.analysis;
        t.row(vec![
            r.name.clone(),
            a.insts.to_string(),
            a.blocks.to_string(),
            a.speculative_accesses.to_string(),
            a.transmits_via(Channel::Cache).to_string(),
            a.transmits_via(Channel::FpTiming).to_string(),
            a.trainings.len().to_string(),
            a.dead.len().to_string(),
            if r.mismatches.is_empty() { "ok".into() } else { "MISMATCH".into() },
        ]);
    }
    t.render()
}

fn write_report(
    dir: &str,
    findings: &[Finding],
    diff: Option<&differential::DifferentialResult>,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let lines: String = findings.iter().map(|f| f.to_jsonl() + "\n").collect();
    std::fs::write(format!("{dir}/findings.jsonl"), lines)?;
    if let Some(d) = diff {
        for cex in &d.disagreements {
            std::fs::write(format!("{dir}/{}", cex.file_name()), cex.to_jsonl() + "\n")?;
        }
    }
    Ok(())
}

fn metrics(
    reports: &[TargetReport],
    findings: &[Finding],
    diff: Option<&differential::DifferentialResult>,
) -> MetricsSnapshot {
    let mut m = MetricsSnapshot::new();
    m.add("analyze.programs", reports.len() as u64);
    for r in reports {
        let a = &r.analysis;
        m.add("analyze.insts", a.insts as u64);
        m.add("analyze.blocks", a.blocks as u64);
        m.add("analyze.edges", a.edges as u64);
        m.add("analyze.fixpoint_visits", a.fixpoint_visits as u64);
        m.add("analyze.speculative_accesses", a.speculative_accesses as u64);
        m.add("analyze.expect_mismatches", r.mismatches.len() as u64);
    }
    for f in findings {
        m.add(&format!("findings.{}", f.kind), 1);
    }
    if let Some(d) = diff {
        m.add("differential.specs", d.specs as u64);
        m.add("differential.confirmed_clean", d.confirmed_clean as u64);
        m.add("differential.skipped", d.skipped as u64);
        m.add("differential.completeness_hits", d.completeness_hits as u64);
        m.add("differential.disagreements", d.disagreements.len() as u64);
        m.add("differential.verdict_flips", d.verdict_flips as u64);
    }
    m
}
