//! `analyze` — static STT taint analysis from the command line.
//!
//! With no positional arguments the default target set (the litmus
//! corpus plus every workload kernel) is analyzed; `.s` files given on
//! the command line are parsed with [`sdo_isa::parse_asm`] and analyzed
//! instead. Per-variant findings go to stdout as a text table or (with
//! `--csv`) as the typed findings CSV; `--report <dir>` additionally
//! writes them as JSONL. `--differential <N>` cross-checks the
//! analyzer's "clean" verdicts against the dynamic secret-swap checker
//! over `N` fuzzed litmus specs.
//!
//! `--scan` switches to the binary-scanner mode: positional arguments
//! are RV32 images (flat binaries at the corpus text base, or static
//! ELF32 — sniffed by magic), defaulting to the in-tree corpus. Each
//! image is lowered with provenance, scanned interprocedurally
//! ([`sdo_analyze::scan_program`]), and every gadget chain is reported
//! with RV32 addresses, projected per variant through the shared
//! suppression table. Corpus entries with an annotated secret are
//! replayed under the dynamic secret-swap checker: each reported
//! gadget is classified CONFIRMED or OVER-APPROX, and a statically
//! clean (entry, variant) that diverges dynamically is an *unsound*
//! disagreement. `--bench-out <path>` updates the `scan` section of a
//! `BENCH_suite.json` with the measured insts/s.
//!
//! Exit status is 1 when the static view contradicts itself or the
//! dynamic ground truth: a pinned corpus expectation mismatch, a gating
//! finding on a channel the policy says the variant closes, or a
//! static↔dynamic differential disagreement (fuzzed-spec or gadget
//! replay).

use sdo_analyze::corpus::{analyze_all, default_targets, findings_under, Target, TargetReport};
use sdo_analyze::differential;
use sdo_analyze::findings::{closed_channel_findings, findings_csv};
use sdo_analyze::scan::{gadgets_csv, scan_program, Gadget, ScanResult};
use sdo_analyze::Finding;
use sdo_harness::cli::{parse_variant, BinSpec, CommonArgs, CsvSupport};
use sdo_harness::export::{with_scan_section, ScanBench};
use sdo_harness::table::TextTable;
use sdo_harness::{SimConfig, Variant};
use sdo_isa::Program;
use sdo_rv32::{load_elf32, load_flat, translate_with_provenance, Provenance};
use sdo_uarch::{AttackModel, MetricsSnapshot};
use sdo_verify::replay::{classify_gadget, replay_divergence};
use sdo_verify::Checker;
use sdo_workloads::Channel;

const SPEC: BinSpec = BinSpec {
    name: "analyze",
    about: "static STT taint analysis: CFG + taint-lattice fixpoint per program, \
            per-variant transmitter classification, and an optional static\u{2194}dynamic \
            soundness differential",
    usage_args: "[file.s ...] [options]",
    jobs: true,
    csv: CsvSupport::FigureOnly,
    metrics: true,
    seed: true,
    no_skip: false,
    // Static analysis and checker differentials run no cacheable
    // simulations (the dynamic side carries the observability probe).
    client: false,
    extra_options: &[
        ("--variant <name>", "classify under one variant (repeatable; default: all)"),
        ("--report <dir>", "write findings (and counterexamples) as JSONL under <dir>"),
        ("--differential <N>", "cross-check N fuzzed specs against the dynamic checker"),
        (
            "--scan",
            "binary-scanner mode: positional args are RV32 images (flat or ELF32; \
             default: the in-tree corpus); reports gadget chains with RV32 addresses \
             and replays annotated gadgets dynamically",
        ),
        ("--bench-out <path>", "(scan mode) update the scan section of a BENCH_suite.json"),
    ],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    let mut variants: Vec<Variant> = Vec::new();
    let mut report_dir: Option<String> = None;
    let mut differential_count: Option<usize> = None;
    let mut files: Vec<String> = Vec::new();
    let mut scan_mode = false;
    let mut bench_out: Option<String> = None;

    let mut it = args.rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map_or_else(|| SPEC.usage_error(&format!("{flag} requires a value")), String::clone)
        };
        match arg.as_str() {
            "--variant" => {
                let v = value("--variant");
                variants.push(parse_variant(&v).unwrap_or_else(|e| SPEC.usage_error(&e)));
            }
            "--report" => report_dir = Some(value("--report")),
            "--scan" => scan_mode = true,
            "--bench-out" => bench_out = Some(value("--bench-out")),
            "--differential" => {
                let v = value("--differential");
                differential_count =
                    Some(v.parse().unwrap_or_else(|_| {
                        SPEC.usage_error(&format!("--differential expects a count, got '{v}'"))
                    }));
            }
            other => {
                if let Some(v) = other.strip_prefix("--variant=") {
                    variants.push(parse_variant(v).unwrap_or_else(|e| SPEC.usage_error(&e)));
                } else if let Some(v) = other.strip_prefix("--report=") {
                    report_dir = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--bench-out=") {
                    bench_out = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--differential=") {
                    differential_count = Some(v.parse().unwrap_or_else(|_| {
                        SPEC.usage_error(&format!("--differential expects a count, got '{v}'"))
                    }));
                } else if other.starts_with('-') {
                    SPEC.usage_error(&format!("unknown option '{other}'"));
                } else {
                    files.push(other.to_string());
                }
            }
        }
    }
    if variants.is_empty() {
        variants = Variant::ALL.to_vec();
    }

    if scan_mode {
        run_scan(&args, &variants, &files, report_dir.as_deref(), bench_out.as_deref());
        return;
    }
    if bench_out.is_some() {
        SPEC.usage_error("--bench-out requires --scan");
    }

    let targets = if files.is_empty() { default_targets() } else { load_files(&files) };
    let start = std::time::Instant::now();
    let reports = analyze_all(&targets, &args.pool);
    let elapsed = start.elapsed();

    let findings: Vec<Finding> =
        variants.iter().flat_map(|&v| findings_under(&reports, v)).collect();
    let contradictions = closed_channel_findings(&findings);
    let mismatches: usize = reports.iter().map(|r| r.mismatches.len()).sum();

    if args.csv.is_some() {
        print!("{}", findings_csv(&findings));
    } else {
        print!("{}", summary_table(&reports));
        eprintln!(
            "analyzed {} program(s) in {:.1} ms ({} jobs); {} finding(s) across {} variant(s)",
            reports.len(),
            elapsed.as_secs_f64() * 1e3,
            args.pool.jobs(),
            findings.len(),
            variants.len(),
        );
    }
    for r in &reports {
        for m in &r.mismatches {
            eprintln!("{}: expectation mismatch: {m}", r.name);
        }
    }
    for f in &contradictions {
        eprintln!(
            "{}: pc {}: {} on a closed channel under {}",
            f.program,
            f.pc,
            f.kind,
            f.variant.slug()
        );
    }

    let diff = differential_count.map(|count| {
        let checker = Checker::with_config(args.sim_config(SimConfig::table_i()));
        let result = differential::run(&checker, args.seed_or_default(), count);
        eprintln!(
            "differential: {} spec(s), {} clean claim(s) confirmed, {} skipped, \
             {} completeness hit(s), {} disagreement(s), {} verdict flip(s)",
            result.specs,
            result.confirmed_clean,
            result.skipped,
            result.completeness_hits,
            result.disagreements.len(),
            result.verdict_flips,
        );
        result
    });

    if let Some(dir) = &report_dir {
        if let Err(e) = write_report(dir, &findings, diff.as_ref()) {
            SPEC.runtime_error(&format!("cannot write report under {dir}: {e}"));
        }
    }
    args.write_metrics(&SPEC, &metrics(&reports, &findings, diff.as_ref()));

    let disagreements = diff.as_ref().map_or(0, |d| d.disagreements.len());
    if mismatches > 0 || !contradictions.is_empty() || disagreements > 0 {
        std::process::exit(1);
    }
}

/// One binary to scan: a lowered program plus its provenance.
struct ScanTarget {
    name: String,
    program: Program,
    prov: Provenance,
}

/// Loads the scan target set: the given image files (ELF32 by magic,
/// flat binaries at the corpus text base otherwise) or, with none, the
/// whole in-tree RV32 corpus.
fn load_scan_targets(files: &[String]) -> Vec<ScanTarget> {
    if files.is_empty() {
        return sdo_rv32::corpus::CORPUS
            .iter()
            .map(|e| {
                let (program, prov) = translate_with_provenance(&e.image(), e.name)
                    .expect("corpus entries are pinned translatable");
                ScanTarget { name: e.name.to_string(), program, prov }
            })
            .collect();
    }
    files
        .iter()
        .map(|path| {
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| SPEC.runtime_error(&format!("cannot read {path}: {e}")));
            let image = if bytes.starts_with(b"\x7fELF") {
                load_elf32(&bytes)
            } else {
                load_flat(&bytes, sdo_rv32::corpus::TEXT_BASE)
            }
            .unwrap_or_else(|e| SPEC.runtime_error(&format!("{path}: {e}")));
            let name =
                path.rsplit('/').next().unwrap_or(path).trim_end_matches(".bin").to_string();
            let (program, prov) = translate_with_provenance(&image, &name)
                .unwrap_or_else(|e| SPEC.runtime_error(&format!("{path}: {e}")));
            ScanTarget { name, program, prov }
        })
        .collect()
}

/// The binary-scanner mode: scan every target, report gadget chains
/// per variant, replay annotated corpus gadgets dynamically, and exit
/// 1 on any unsound (statically clean, dynamically divergent)
/// disagreement.
fn run_scan(
    args: &CommonArgs,
    variants: &[Variant],
    files: &[String],
    report_dir: Option<&str>,
    bench_out: Option<&str>,
) {
    let targets = load_scan_targets(files);
    let start = std::time::Instant::now();
    let scans: Vec<ScanResult> =
        args.pool.run(&targets, |_, t| scan_program(&t.program, &t.prov));
    let elapsed = start.elapsed();

    let gadgets: Vec<Gadget> = scans
        .iter()
        .flat_map(|s| variants.iter().flat_map(|&v| s.gadgets_for(v)))
        .collect();
    let total_insts: usize = scans.iter().map(|s| s.analysis.insts).sum();
    let total_chains: usize = scans.iter().map(ScanResult::chain_count).sum();

    if args.csv.is_some() {
        print!("{}", gadgets_csv(&gadgets));
    } else {
        print!("{}", scan_table(&targets, &scans));
        eprintln!(
            "scanned {} binarie(s), {} insts in {:.1} ms ({} jobs): {} chain(s), \
             {} projected gadget(s) across {} variant(s)",
            scans.len(),
            total_insts,
            elapsed.as_secs_f64() * 1e3,
            args.pool.jobs(),
            total_chains,
            gadgets.len(),
            variants.len(),
        );
    }

    // Static↔dynamic gadget differential over the annotated corpus
    // cases present in the target set. The secretless kernels cannot
    // be replayed (nothing to swap) — their zero-chain claim is
    // covered by the pinned expectations in litmus mode instead.
    let cases = sdo_workloads::rv32_litmus_cases();
    let mut confirmed = 0usize;
    let mut overapprox = 0usize;
    let mut unsound: Vec<String> = Vec::new();
    let checker = Checker::with_config(args.sim_config(SimConfig::table_i()));
    for (t, scan) in targets.iter().zip(&scans) {
        let Some(case) = cases.iter().find(|c| c.name == t.name) else { continue };
        for &v in variants {
            let statically_flagged = !scan.gadgets_for(v).is_empty();
            if statically_flagged {
                match classify_gadget(&checker, case, v, AttackModel::Spectre) {
                    Ok(r) => {
                        eprintln!(
                            "scan-differential: {} under {}: {}",
                            t.name,
                            v.slug(),
                            r.verdict.wire_name()
                        );
                        match r.verdict {
                            sdo_verify::GadgetVerdict::Confirmed => confirmed += 1,
                            sdo_verify::GadgetVerdict::OverApprox => overapprox += 1,
                        }
                    }
                    Err(e) => eprintln!(
                        "scan-differential: {} under {}: replay failed: {e}",
                        t.name,
                        v.slug()
                    ),
                }
            } else {
                match replay_divergence(&checker, case, v, AttackModel::Spectre) {
                    Ok(true) => unsound.push(format!(
                        "{} under {}: statically clean but secret-swap divergent",
                        t.name,
                        v.slug()
                    )),
                    Ok(false) => {}
                    Err(e) => eprintln!(
                        "scan-differential: {} under {}: replay failed: {e}",
                        t.name,
                        v.slug()
                    ),
                }
            }
        }
    }
    eprintln!(
        "scan-differential: {confirmed} CONFIRMED, {overapprox} OVER-APPROX, {} unsound \
         disagreement(s)",
        unsound.len()
    );
    for u in &unsound {
        eprintln!("scan-differential: UNSOUND: {u}");
    }

    if let Some(dir) = report_dir {
        if let Err(e) = write_scan_report(dir, &gadgets) {
            SPEC.runtime_error(&format!("cannot write report under {dir}: {e}"));
        }
    }
    if let Some(path) = bench_out {
        let bench = ScanBench {
            programs: scans.len() as u64,
            insts: total_insts as u64,
            chains: total_chains as u64,
            wall: elapsed,
        };
        let existing = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
        if let Err(e) = std::fs::write(path, with_scan_section(&existing, &bench)) {
            SPEC.runtime_error(&format!("cannot write {path}: {e}"));
        }
        eprintln!(
            "scan bench: {} insts in {:.1} ms = {:.0} insts/s -> {path}",
            bench.insts,
            bench.wall.as_secs_f64() * 1e3,
            bench.insts_per_sec(),
        );
    }

    args.write_metrics(&SPEC, &scan_metrics(&scans, &gadgets, confirmed, overapprox, &unsound));
    if !unsound.is_empty() {
        std::process::exit(1);
    }
}

fn scan_table(targets: &[ScanTarget], scans: &[ScanResult]) -> String {
    let mut t = TextTable::new(
        ["program", "insts", "blocks", "functions", "calls", "chains", "cache", "fp"]
            .map(String::from)
            .to_vec(),
    );
    for (target, s) in targets.iter().zip(scans) {
        t.row(vec![
            target.name.clone(),
            s.analysis.insts.to_string(),
            s.analysis.blocks.to_string(),
            s.functions.to_string(),
            s.call_sites.to_string(),
            s.chain_count().to_string(),
            s.analysis.transmits_via(Channel::Cache).to_string(),
            s.analysis.transmits_via(Channel::FpTiming).to_string(),
        ]);
    }
    t.render()
}

fn write_scan_report(dir: &str, gadgets: &[Gadget]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let lines: String = gadgets.iter().map(|g| g.to_jsonl() + "\n").collect();
    std::fs::write(format!("{dir}/gadgets.jsonl"), lines)?;
    std::fs::write(format!("{dir}/gadgets.csv"), gadgets_csv(gadgets))?;
    Ok(())
}

fn scan_metrics(
    scans: &[ScanResult],
    gadgets: &[Gadget],
    confirmed: usize,
    overapprox: usize,
    unsound: &[String],
) -> MetricsSnapshot {
    let mut m = MetricsSnapshot::new();
    m.add("scan.programs", scans.len() as u64);
    for s in scans {
        m.add("scan.insts", s.analysis.insts as u64);
        m.add("scan.functions", s.functions as u64);
        m.add("scan.call_sites", s.call_sites as u64);
        m.add("scan.chains", s.chain_count() as u64);
    }
    m.add("scan.gadgets", gadgets.len() as u64);
    m.add("scan.confirmed", confirmed as u64);
    m.add("scan.overapprox", overapprox as u64);
    m.add("scan.unsound", unsound.len() as u64);
    m
}

/// Parses each `.s` file into an unannotated [`Target`], printing the
/// position-rich [`sdo_isa::ParseError`] and exiting 1 on failure.
fn load_files(files: &[String]) -> Vec<Target> {
    files
        .iter()
        .map(|path| {
            let source = std::fs::read_to_string(path)
                .unwrap_or_else(|e| SPEC.runtime_error(&format!("cannot read {path}: {e}")));
            let program = sdo_isa::parse_asm(&source)
                .unwrap_or_else(|e| SPEC.runtime_error(&format!("{path}: {e}")));
            let name = if program.name().is_empty() {
                path.rsplit('/').next().unwrap_or(path).trim_end_matches(".s").to_string()
            } else {
                program.name().to_string()
            };
            Target { name, program, expect: None, prov: None }
        })
        .collect()
}

fn summary_table(reports: &[TargetReport]) -> String {
    let mut t = TextTable::new(
        ["program", "insts", "blocks", "roots", "cache", "fp", "training", "dead", "expect"]
            .map(String::from)
            .to_vec(),
    );
    for r in reports {
        let a = &r.analysis;
        t.row(vec![
            r.name.clone(),
            a.insts.to_string(),
            a.blocks.to_string(),
            a.speculative_accesses.to_string(),
            a.transmits_via(Channel::Cache).to_string(),
            a.transmits_via(Channel::FpTiming).to_string(),
            a.trainings.len().to_string(),
            a.dead.len().to_string(),
            if r.mismatches.is_empty() { "ok".into() } else { "MISMATCH".into() },
        ]);
    }
    t.render()
}

fn write_report(
    dir: &str,
    findings: &[Finding],
    diff: Option<&differential::DifferentialResult>,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let lines: String = findings.iter().map(|f| f.to_jsonl() + "\n").collect();
    std::fs::write(format!("{dir}/findings.jsonl"), lines)?;
    if let Some(d) = diff {
        for cex in &d.disagreements {
            std::fs::write(format!("{dir}/{}", cex.file_name()), cex.to_jsonl() + "\n")?;
        }
    }
    Ok(())
}

fn metrics(
    reports: &[TargetReport],
    findings: &[Finding],
    diff: Option<&differential::DifferentialResult>,
) -> MetricsSnapshot {
    let mut m = MetricsSnapshot::new();
    m.add("analyze.programs", reports.len() as u64);
    for r in reports {
        let a = &r.analysis;
        m.add("analyze.insts", a.insts as u64);
        m.add("analyze.blocks", a.blocks as u64);
        m.add("analyze.edges", a.edges as u64);
        m.add("analyze.fixpoint_visits", a.fixpoint_visits as u64);
        m.add("analyze.speculative_accesses", a.speculative_accesses as u64);
        m.add("analyze.expect_mismatches", r.mismatches.len() as u64);
    }
    for f in findings {
        m.add(&format!("findings.{}", f.kind), 1);
    }
    if let Some(d) = diff {
        m.add("differential.specs", d.specs as u64);
        m.add("differential.confirmed_clean", d.confirmed_clean as u64);
        m.add("differential.skipped", d.skipped as u64);
        m.add("differential.completeness_hits", d.completeness_hits as u64);
        m.add("differential.disagreements", d.disagreements.len() as u64);
        m.add("differential.verdict_flips", d.verdict_flips as u64);
    }
    m
}
