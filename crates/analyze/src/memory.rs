//! Region-partitioned abstract memory for the binary scanner.
//!
//! PR 5's taint fixpoint modelled memory as **one cell**: every store
//! joined into it, every load joined it back out. Sound, but on a
//! compiled program — where every function spills `ra` to the stack —
//! one tainted store taints every subsequent load and the scanner
//! drowns in false positives. This module refines the abstraction into
//! four disjoint regions, selected by a small abstract-value domain
//! tracked per register:
//!
//! * **stack cells** — addresses of the shape `sp₀ + k` where `sp₀` is
//!   the (symbolic) stack pointer at program entry. Each distinct
//!   offset `k` is its own cell, so a spilled `ra` reload does not pick
//!   up taint stored through an unrelated slot;
//! * **global cells** — exactly-known constant addresses (the result
//!   word, `li`-materialized buffers). Each constant address is its own
//!   cell, bounded by [`CELL_CAP`]; past the cap the map *saturates*
//!   and constant-address traffic degrades to the unknown summary;
//! * **the unknown summary** — one coarse cell for every access whose
//!   address the value domain cannot pin (computed array indexing,
//!   pointer chasing). This is the old one-cell abstraction, scoped to
//!   only the traffic that needs it;
//! * **the `jalr` translation table** — loads whose immediate offset is
//!   at or above [`sdo_rv32::TABLE_BASE`] read the static µop-index
//!   table materialized by lowering. They are a translation artifact,
//!   not a program memory access: their result carries only the
//!   address operand's taint and they are never speculative-access
//!   roots.
//!
//! **Refinement invariant** (property-tested over fuzzed litmus
//! programs, ≥25 seeds): every region receives a subset of the stores
//! the one cell receives, and every load joins a subset of the regions,
//! so the refined taint at every program point is ⊆ the one-cell taint.
//! The scanner can therefore only *remove* false positives relative to
//! PR 5, never miss something the old lattice caught.
//!
//! **Known gaps** (documented in DESIGN.md §15): weak updates only (a
//! clean store does not untaint a cell); an unknown-address store does
//! not invalidate named cells (no-alias assumption between unpinned
//! pointers and pinned slots — an *under*-taint relative to the
//! concrete machine, inherited by design from the refinement direction
//! and cross-checked by the dynamic differential); `sp`-relative
//! arithmetic is folded through `add`/`sub` only, and 32-bit `addw`
//! wrap-around of stack addresses is assumed not to occur.

use crate::taint::Taint;
use sdo_isa::AluOp;
use std::collections::BTreeMap;

/// Named-constant-cell budget: past this many distinct constant
/// addresses the map saturates and further constant traffic joins the
/// unknown summary (and constant loads start reading it back).
pub const CELL_CAP: usize = 256;

/// Abstract value of one integer register — just enough arithmetic to
/// classify effective addresses into regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Val {
    /// Unreached (lattice bottom).
    #[default]
    Bot,
    /// Exactly this constant, folded with [`AluOp::eval`] — bit-exact
    /// with the interpreter.
    Cst(i64),
    /// Entry stack pointer plus this byte offset.
    SpRel(i64),
    /// Anything (lattice top).
    Top,
}

impl Val {
    /// Least upper bound.
    #[must_use]
    pub fn join(self, other: Val) -> Val {
        match (self, other) {
            (Val::Bot, v) | (v, Val::Bot) => v,
            (a, b) if a == b => a,
            _ => Val::Top,
        }
    }

    /// The value shifted by a byte offset (effective-address helper).
    #[must_use]
    pub fn offset(self, off: i64) -> Val {
        match self {
            Val::Cst(c) => Val::Cst(c.wrapping_add(off)),
            Val::SpRel(k) => Val::SpRel(k.wrapping_add(off)),
            Val::Bot => Val::Bot,
            Val::Top => Val::Top,
        }
    }
}

/// Folds one ALU operation over abstract values. Constants fold
/// bit-exactly through [`AluOp::eval`]; `sp`-relative values survive
/// only `add`/`sub` against a constant (the shapes `addi sp, sp, -16`
/// and friends lower to); everything else is [`Val::Top`].
#[must_use]
pub fn fold_alu(op: AluOp, lhs: Val, rhs: Val) -> Val {
    match (lhs, rhs) {
        (Val::Bot, _) | (_, Val::Bot) => Val::Bot,
        (Val::Cst(a), Val::Cst(b)) => {
            let r = op.eval(a as u64, b as u64);
            Val::Cst(r as i64)
        }
        // `AddW` truncates to 32 bits; stack addresses are assumed to
        // stay in 32-bit range (the frontend's sext32 invariant), so
        // the fold treats it as exact for sp-relative values.
        (Val::SpRel(k), Val::Cst(c)) if matches!(op, AluOp::Add | AluOp::AddW) => {
            Val::SpRel(k.wrapping_add(c))
        }
        (Val::Cst(c), Val::SpRel(k)) if matches!(op, AluOp::Add | AluOp::AddW) => {
            Val::SpRel(k.wrapping_add(c))
        }
        (Val::SpRel(k), Val::Cst(c)) if matches!(op, AluOp::Sub | AluOp::SubW) => {
            Val::SpRel(k.wrapping_sub(c))
        }
        _ => Val::Top,
    }
}

/// Which memory abstraction the taint fixpoint runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemModel {
    /// PR 5's single coarse cell (the litmus checker's lattice, kept
    /// callable so the refinement property is machine-checkable).
    #[default]
    OneCell,
    /// The region-partitioned abstraction of this module.
    Regions,
}

/// The abstract memory of one [`crate::taint::AbsState`], under either
/// model. All maps hold only tainted entries (clean joins are no-ops
/// and resolved entries are dropped), so structural equality is
/// canonical and the fixpoint's change detection stays exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsMem {
    model: MemModel,
    /// The single cell (OneCell model only).
    one: Taint,
    /// `sp₀ + k` → taint of that stack slot.
    stack: BTreeMap<i64, Taint>,
    /// Constant address → taint of that global cell.
    cells: BTreeMap<u64, Taint>,
    /// Summary for all unpinned addresses.
    unknown: Taint,
    /// Whether `cells` hit [`CELL_CAP`]: constant traffic has merged
    /// into `unknown`, so constant loads must read it back.
    saturated: bool,
}

impl AbsMem {
    /// The model this memory runs under.
    #[must_use]
    pub fn model(&self) -> MemModel {
        self.model
    }

    /// The empty memory under `model`.
    #[must_use]
    pub fn bottom(model: MemModel) -> AbsMem {
        AbsMem {
            model,
            one: Taint::default(),
            stack: BTreeMap::new(),
            cells: BTreeMap::new(),
            unknown: Taint::default(),
            saturated: false,
        }
    }

    /// Pointwise join (both states must share a model).
    pub fn join(&mut self, other: &AbsMem) {
        debug_assert_eq!(self.model, other.model);
        self.one.join(&other.one);
        for (k, t) in &other.stack {
            if t.is_tainted() {
                self.stack.entry(*k).or_default().join(t);
            }
        }
        for (a, t) in &other.cells {
            if t.is_tainted() {
                self.cells.entry(*a).or_default().join(t);
            }
        }
        self.unknown.join(&other.unknown);
        self.saturated |= other.saturated;
        self.enforce_cap();
    }

    /// Removes a resolved branch from every region, dropping entries
    /// that become clean (canonical form).
    pub fn resolve(&mut self, b: crate::cfg::BlockId) {
        self.one.resolve(b);
        self.unknown.resolve(b);
        for t in self.stack.values_mut() {
            t.resolve(b);
        }
        for t in self.cells.values_mut() {
            t.resolve(b);
        }
        self.stack.retain(|_, t| t.is_tainted());
        self.cells.retain(|_, t| t.is_tainted());
    }

    /// Abstract store of `data` at `addr`.
    pub fn store(&mut self, addr: Val, data: &Taint) {
        if !data.is_tainted() {
            return; // weak updates: joining clean is a no-op.
        }
        match self.model {
            MemModel::OneCell => self.one.join(data),
            MemModel::Regions => {
                match addr {
                    Val::SpRel(k) => self.stack.entry(k).or_default().join(data),
                    Val::Cst(c) => {
                        let a = c as u64;
                        if self.cells.contains_key(&a)
                            || (!self.saturated && self.cells.len() < CELL_CAP)
                        {
                            self.cells.entry(a).or_default().join(data);
                        } else {
                            self.saturated = true;
                            self.unknown.join(data);
                        }
                    }
                    Val::Bot | Val::Top => self.unknown.join(data),
                }
                self.enforce_cap();
            }
        }
    }

    /// Taint an abstract load at `addr` picks up from memory (the
    /// address operand's own taint is the caller's concern).
    #[must_use]
    pub fn load(&self, addr: Val) -> Taint {
        match self.model {
            MemModel::OneCell => self.one.clone(),
            MemModel::Regions => match addr {
                Val::SpRel(k) => self.stack.get(&k).cloned().unwrap_or_default(),
                Val::Cst(c) => {
                    let mut t = self.cells.get(&(c as u64)).cloned().unwrap_or_default();
                    if self.saturated {
                        // Past the cap this address may have merged
                        // into the summary: read it back.
                        t.join(&self.unknown);
                    }
                    t
                }
                Val::Bot | Val::Top => {
                    // An unpinned address may alias anything: the
                    // summary plus every named cell. Still ⊆ the one
                    // cell, which holds the join of *all* stores.
                    let mut t = self.unknown.clone();
                    for cell in self.stack.values().chain(self.cells.values()) {
                        t.join(cell);
                    }
                    t
                }
            },
        }
    }

    fn enforce_cap(&mut self) {
        // Joins can push `cells` past the cap (union of two maps at the
        // cap); fold the overflow into the summary rather than growing
        // without bound.
        while self.cells.len() > CELL_CAP {
            if let Some((_, t)) = self.cells.pop_last() {
                self.unknown.join(&t);
                self.saturated = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::Taint;

    fn tainted(src: u64, branch: usize) -> Taint {
        let mut t = Taint::default();
        t.branches.insert(branch);
        t.sources.insert(src);
        t
    }

    #[test]
    fn val_join_and_offset() {
        assert_eq!(Val::Bot.join(Val::Cst(3)), Val::Cst(3));
        assert_eq!(Val::Cst(3).join(Val::Cst(3)), Val::Cst(3));
        assert_eq!(Val::Cst(3).join(Val::Cst(4)), Val::Top);
        assert_eq!(Val::SpRel(8).join(Val::SpRel(8)), Val::SpRel(8));
        assert_eq!(Val::SpRel(8).offset(-4), Val::SpRel(4));
        assert_eq!(Val::Cst(0x2000).offset(16), Val::Cst(0x2010));
    }

    #[test]
    fn fold_matches_interpreter_on_constants() {
        // Bit-exact with AluOp::eval, including the 32-bit W ops.
        let cases = [
            (AluOp::Add, 5i64, -3i64),
            (AluOp::AddW, i64::from(i32::MAX), 1),
            (AluOp::Sll, 1, 6),
            (AluOp::DivW, 7, 0),
        ];
        for (op, a, b) in cases {
            let folded = fold_alu(op, Val::Cst(a), Val::Cst(b));
            assert_eq!(folded, Val::Cst(op.eval(a as u64, b as u64) as i64), "{op:?}");
        }
    }

    #[test]
    fn sp_relative_survives_add_sub_only() {
        assert_eq!(fold_alu(AluOp::AddW, Val::SpRel(0), Val::Cst(-16)), Val::SpRel(-16));
        assert_eq!(fold_alu(AluOp::Add, Val::Cst(8), Val::SpRel(-16)), Val::SpRel(-8));
        assert_eq!(fold_alu(AluOp::Sub, Val::SpRel(0), Val::Cst(16)), Val::SpRel(-16));
        assert_eq!(fold_alu(AluOp::And, Val::SpRel(0), Val::Cst(-1)), Val::Top);
        assert_eq!(fold_alu(AluOp::Sub, Val::Cst(16), Val::SpRel(0)), Val::Top);
    }

    #[test]
    fn disjoint_stack_slots_do_not_alias() {
        let mut m = AbsMem::bottom(MemModel::Regions);
        m.store(Val::SpRel(-16), &tainted(1, 0));
        assert!(m.load(Val::SpRel(-16)).is_tainted());
        assert!(!m.load(Val::SpRel(-8)).is_tainted());
        assert!(!m.load(Val::Cst(0x2000)).is_tainted());
        // An unpinned load sees everything.
        assert!(m.load(Val::Top).is_tainted());
    }

    #[test]
    fn one_cell_merges_everything() {
        let mut m = AbsMem::bottom(MemModel::OneCell);
        m.store(Val::SpRel(-16), &tainted(1, 0));
        assert!(m.load(Val::Cst(0x9999)).is_tainted());
    }

    #[test]
    fn saturation_keeps_constant_loads_sound() {
        let mut m = AbsMem::bottom(MemModel::Regions);
        for i in 0..CELL_CAP {
            m.store(Val::Cst(8 * i as i64), &tainted(i as u64, 0));
        }
        // The cap is hit: this store merges into the summary...
        m.store(Val::Cst(0x77_7777), &tainted(999, 0));
        // ...and a load of that very address must still see it.
        assert!(m.load(Val::Cst(0x77_7777)).sources.contains(&999));
    }

    #[test]
    fn resolve_drops_clean_entries_canonically() {
        let mut a = AbsMem::bottom(MemModel::Regions);
        a.store(Val::SpRel(-8), &tainted(1, 3));
        let mut b = a.clone();
        b.resolve(3);
        assert_eq!(b, AbsMem::bottom(MemModel::Regions));
    }
}
