//! Drives a leakage-verification campaign from the command line.
//!
//! Runs the litmus corpus and a seeded fuzz batch through the
//! secret-swap differential checker and the invariant oracle, minimizes
//! every finding, and (with `--report <dir>`) writes each one as a
//! round-trippable JSONL counterexample. Exits 1 if any check failed —
//! including the positive controls: a campaign in which the unsafe
//! baseline stops leaking is as broken as one in which a protection
//! starts.
//!
//! The campaign is deterministic: the same `--seed` produces the same
//! report byte for byte, at any `--jobs` count.
//!
//! With `--server <sock>` the whole campaign is submitted as one
//! protocol request to a running `sdo-serve` daemon, which executes it
//! on its warm pool and streams the rendered verdict back.

use sdo_harness::cli::{parse_variant, BinSpec, CommonArgs, CsvSupport};
use sdo_harness::proto::{Reply, Request};
use sdo_harness::SimConfig;
use sdo_verify::{CampaignConfig, Checker};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

const SPEC: BinSpec = BinSpec {
    name: "verify",
    about: "Leakage verification: secret-swap differential checks, invariant oracle, fuzzed litmus programs.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: false,
    seed: true,
    no_skip: true,
    client: true,
    extra_options: &[
        ("--quick", "CI-sized campaign: fewer variants, Spectre only, two fuzz specs"),
        ("--fuzz <N>", "number of fuzz specs (first is the leak anchor; 0 disables fuzzing)"),
        ("--variant <name>", "restrict to one variant (repeatable)"),
        ("--report <dir>", "write counterexamples as JSONL files into <dir>"),
    ],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    let mut cfg = CampaignConfig::full(args.seed_or_default());
    let mut report_dir: Option<String> = None;
    let mut variants = Vec::new();

    let mut it = args.rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().map_or_else(|| SPEC.usage_error(&format!("{flag} requires a value")), String::clone)
        };
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--fuzz" => cfg.fuzz_count = Some(parse_fuzz(&value("--fuzz"))),
            "--variant" => variants.push(
                parse_variant(&value("--variant")).unwrap_or_else(|e| SPEC.usage_error(&e)),
            ),
            "--report" => report_dir = Some(value("--report")),
            other => {
                if let Some(v) = other.strip_prefix("--fuzz=") {
                    cfg.fuzz_count = Some(parse_fuzz(v));
                } else if let Some(v) = other.strip_prefix("--variant=") {
                    variants
                        .push(parse_variant(v).unwrap_or_else(|e| SPEC.usage_error(&e)));
                } else if let Some(v) = other.strip_prefix("--report=") {
                    report_dir = Some(v.to_string());
                } else {
                    SPEC.usage_error(&format!("unexpected argument '{other}'"));
                }
            }
        }
    }
    if !variants.is_empty() {
        cfg.variants = Some(variants);
    }

    // Campaign runs carry in-process observability and are never cached,
    // so the store flags are rejected rather than silently ignored.
    if args.store.is_some() || args.no_cache {
        SPEC.usage_error("--store/--no-cache have no effect here: campaign runs are never cached");
    }
    if let Some(sock) = &args.server {
        if report_dir.is_some() || cfg.variants.is_some() {
            SPEC.usage_error("--report and --variant require a local campaign, not --server");
        }
        let reply = submit_campaign(sock, &cfg);
        let Reply::Campaign { passed, checks, render, .. } = reply else {
            SPEC.runtime_error(&format!("unexpected reply to a campaign request: {reply:?}"));
        };
        print!("{render}");
        eprintln!("campaign: {checks} checks via {sock}");
        std::process::exit(i32::from(!passed));
    }

    let checker = Checker::with_config(args.sim_config(SimConfig::table_i()));
    let result = cfg
        .run(&checker, &args.pool)
        .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()));
    print!("{}", result.render());

    if let Some(dir) = report_dir {
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| SPEC.runtime_error(&format!("cannot create {dir}: {e}")));
        for cex in &result.counterexamples {
            let path = format!("{dir}/{}", cex.file_name());
            std::fs::write(&path, cex.to_jsonl())
                .unwrap_or_else(|e| SPEC.runtime_error(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {path}");
        }
    }

    if !result.passed() {
        std::process::exit(1);
    }
}

fn parse_fuzz(v: &str) -> usize {
    v.parse()
        .unwrap_or_else(|_| SPEC.usage_error(&format!("--fuzz expects an unsigned integer, got '{v}'")))
}

/// Submits the campaign as one protocol request over the daemon's Unix
/// socket and returns its terminal reply. Resubmits on `Busy` (the
/// daemon's bounded-queue back-pressure).
fn submit_campaign(sock: &str, cfg: &CampaignConfig) -> Reply {
    let stream = UnixStream::connect(sock)
        .unwrap_or_else(|e| SPEC.runtime_error(&format!("cannot connect to {sock}: {e}")));
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .unwrap_or_else(|e| SPEC.runtime_error(&format!("socket clone: {e}"))),
    );
    let mut stream = stream;
    let msg = Request::Campaign {
        id: 0,
        seed: cfg.seed,
        quick: cfg.quick,
        fuzz: cfg.fuzz_total() as u64,
    };
    loop {
        stream
            .write_all(format!("{}\n\n", msg.render()).as_bytes())
            .unwrap_or_else(|e| SPEC.runtime_error(&format!("write to {sock}: {e}")));
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .unwrap_or_else(|e| SPEC.runtime_error(&format!("read from {sock}: {e}")));
        if n == 0 {
            SPEC.runtime_error(&format!("daemon at {sock} closed the connection"));
        }
        match Reply::parse(line.trim_end()) {
            Ok(Reply::Busy { .. }) => continue,
            Ok(Reply::Error { message, .. }) => SPEC.runtime_error(&message),
            Ok(reply) => return reply,
            Err(e) => SPEC.runtime_error(&format!("bad reply line: {e}")),
        }
    }
}
