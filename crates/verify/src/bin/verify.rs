//! Drives a leakage-verification campaign from the command line.
//!
//! Runs the litmus corpus and a seeded fuzz batch through the
//! secret-swap differential checker and the invariant oracle, minimizes
//! every finding, and (with `--report <dir>`) writes each one as a
//! round-trippable JSONL counterexample. Exits 1 if any check failed —
//! including the positive controls: a campaign in which the unsafe
//! baseline stops leaking is as broken as one in which a protection
//! starts.
//!
//! The campaign is deterministic: the same `--seed` produces the same
//! report byte for byte, at any `--jobs` count.

use sdo_harness::cli::{parse_variant, BinSpec, CommonArgs, CsvSupport};
use sdo_harness::SimConfig;
use sdo_verify::{CampaignConfig, Checker};

const SPEC: BinSpec = BinSpec {
    name: "verify",
    about: "Leakage verification: secret-swap differential checks, invariant oracle, fuzzed litmus programs.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: false,
    seed: true,
    no_skip: true,
    extra_options: &[
        ("--quick", "CI-sized campaign: fewer variants, Spectre only, two fuzz specs"),
        ("--fuzz <N>", "number of fuzz specs (first is the leak anchor; 0 disables fuzzing)"),
        ("--variant <name>", "restrict to one variant (repeatable)"),
        ("--report <dir>", "write counterexamples as JSONL files into <dir>"),
    ],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    let mut cfg = CampaignConfig::full(args.seed_or_default());
    let mut report_dir: Option<String> = None;
    let mut variants = Vec::new();

    let mut it = args.rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().map_or_else(|| SPEC.usage_error(&format!("{flag} requires a value")), String::clone)
        };
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--fuzz" => cfg.fuzz_count = Some(parse_fuzz(&value("--fuzz"))),
            "--variant" => variants.push(
                parse_variant(&value("--variant")).unwrap_or_else(|e| SPEC.usage_error(&e)),
            ),
            "--report" => report_dir = Some(value("--report")),
            other => {
                if let Some(v) = other.strip_prefix("--fuzz=") {
                    cfg.fuzz_count = Some(parse_fuzz(v));
                } else if let Some(v) = other.strip_prefix("--variant=") {
                    variants
                        .push(parse_variant(v).unwrap_or_else(|e| SPEC.usage_error(&e)));
                } else if let Some(v) = other.strip_prefix("--report=") {
                    report_dir = Some(v.to_string());
                } else {
                    SPEC.usage_error(&format!("unexpected argument '{other}'"));
                }
            }
        }
    }
    if !variants.is_empty() {
        cfg.variants = Some(variants);
    }

    let checker = Checker::with_config(args.sim_config(SimConfig::table_i()));
    let result = cfg
        .run(&checker, &args.pool)
        .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()));
    print!("{}", result.render());

    if let Some(dir) = report_dir {
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| SPEC.runtime_error(&format!("cannot create {dir}: {e}")));
        for cex in &result.counterexamples {
            let path = format!("{dir}/{}", cex.file_name());
            std::fs::write(&path, cex.to_jsonl())
                .unwrap_or_else(|e| SPEC.runtime_error(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {path}");
        }
    }

    if !result.passed() {
        std::process::exit(1);
    }
}

fn parse_fuzz(v: &str) -> usize {
    v.parse()
        .unwrap_or_else(|_| SPEC.usage_error(&format!("--fuzz expects an unsigned integer, got '{v}'")))
}
