//! Dynamic invariant oracle over the pipeline event stream.
//!
//! The secret-swap checker proves *observable* equality; this oracle
//! proves the *mechanism* behaved: it scans the full (unprojected)
//! [`Event`] stream of a run and flags any event that contradicts the
//! paper's safety argument, independently of whether a leak was
//! actually measurable. Each [`Invariant`] maps to a Section VII proof
//! obligation:
//!
//! * [`Invariant::TaintedLoad`] — under any protection, a tainted load
//!   must never issue as a normal (cache-filling) demand load; it is
//!   either delayed (STT) or issued obliviously (SDO). Claim 1's
//!   premise that unsafe loads never reach the cache as transmitters.
//! * [`Invariant::TaintedFpTransmit`] — under a variant that closes the
//!   FP-timing channel, a tainted FP transmit micro-op must never issue
//!   with operand-dependent latency (Section I-A / Table II).
//! * [`Invariant::TaintedTraining`] — predictors (location, branch,
//!   BTB) must never train on tainted state (Equation 2: predictions
//!   are functions of non-speculative data).
//! * [`Invariant::TouchBeyondPrediction`] — an Obl-Ld must never
//!   receive a response from a level deeper than its predicted slice
//!   (Definition 2: resource usage is fixed by the prediction, which is
//!   a function of the PC only).
//! * [`Invariant::PreSafeAction`] — validations, exposures, SDO
//!   squashes and predictor training for an oblivious load are legal
//!   only at or after its untaint point (Figure 2, lines 11–16); any
//!   such event before the load's `OblSafe` marker is a violation.
//!
//! The oracle is a post-hoc scan, not a pipeline hook: it consumes the
//! same bounded trace the observability layer already records, so it
//! can never perturb timing.

use crate::policy;
use sdo_harness::Variant;
use sdo_obs::{Event, EventKind, MemOp, SquashCause};
use sdo_workloads::Channel;
use std::collections::HashMap;

/// A Section VII proof obligation the oracle checks dynamically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// A tainted operand reached a non-oblivious load's issue port.
    TaintedLoad,
    /// A tainted FP transmit issued with operand-dependent timing.
    TaintedFpTransmit,
    /// A predictor trained on tainted state.
    TaintedTraining,
    /// An Obl-Ld touched a cache level beyond its predicted slice.
    TouchBeyondPrediction,
    /// A validation/exposure/SDO-squash/training fired before the
    /// load's untaint point.
    PreSafeAction,
}

impl Invariant {
    /// Stable name used in counterexample reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Invariant::TaintedLoad => "tainted_load",
            Invariant::TaintedFpTransmit => "tainted_fp_transmit",
            Invariant::TaintedTraining => "tainted_training",
            Invariant::TouchBeyondPrediction => "touch_beyond_prediction",
            Invariant::PreSafeAction => "pre_safe_action",
        }
    }

    /// Parses a name produced by [`Invariant::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Invariant> {
        Some(match s {
            "tainted_load" => Invariant::TaintedLoad,
            "tainted_fp_transmit" => Invariant::TaintedFpTransmit,
            "tainted_training" => Invariant::TaintedTraining,
            "touch_beyond_prediction" => Invariant::TouchBeyondPrediction,
            "pre_safe_action" => Invariant::PreSafeAction,
            _ => return None,
        })
    }
}

/// One oracle finding: the invariant broken, where in the event stream,
/// and a one-line explanation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The obligation that failed.
    pub invariant: Invariant,
    /// Index of the offending event in the full trace.
    pub index: usize,
    /// The offending event itself.
    pub event: Event,
    /// Human-readable explanation.
    pub detail: String,
}

/// Per-Obl-Ld bookkeeping while scanning.
struct OblState {
    predicted: u8,
    safe: bool,
}

/// Scans a run's full event stream for invariant violations under
/// `variant`'s protection contract. Returns every violation in stream
/// order (empty = the mechanism behaved).
#[must_use]
pub fn check(variant: Variant, events: &[Event]) -> Vec<Violation> {
    let loads_protected = policy::protects_loads(variant);
    let fp_protected = policy::closes(variant, Channel::FpTiming);
    let mut obl: HashMap<u64, OblState> = HashMap::new();
    let mut out = Vec::new();
    let mut flag = |inv: Invariant, index: usize, event: Event, detail: String| {
        out.push(Violation { invariant: inv, index, event, detail });
    };
    for (i, &ev) in events.iter().enumerate() {
        // Pre-safe ordering: any sensitive action tagged with an
        // oblivious load's seq must trace at or after its OblSafe.
        let pre_safe = obl.get(&ev.seq).is_some_and(|st| !st.safe);
        match ev.kind {
            EventKind::OblProbe { level } => {
                obl.insert(ev.seq, OblState { predicted: level, safe: false });
            }
            EventKind::OblSafe => {
                if let Some(st) = obl.get_mut(&ev.seq) {
                    st.safe = true;
                }
            }
            EventKind::OblTouch { level } => {
                if let Some(st) = obl.get(&ev.seq) {
                    if level > st.predicted {
                        flag(
                            Invariant::TouchBeyondPrediction,
                            i,
                            ev,
                            format!(
                                "Obl-Ld seq {} predicted level {} but touched level {level}",
                                ev.seq, st.predicted
                            ),
                        );
                    }
                }
            }
            EventKind::MemAccess { op: MemOp::Load, tainted: true, line } if loads_protected => {
                flag(
                    Invariant::TaintedLoad,
                    i,
                    ev,
                    format!("tainted demand load of line {line} issued at cycle {}", ev.cycle),
                );
            }
            EventKind::MemAccess { op: MemOp::Validate | MemOp::Expose, .. }
            | EventKind::Validate { .. }
            | EventKind::Expose
            | EventKind::Squash { cause: SquashCause::OblFail | SquashCause::Validation }
                if pre_safe =>
            {
                flag(
                    Invariant::PreSafeAction,
                    i,
                    ev,
                    format!(
                        "{} for Obl-Ld seq {} before its Safe event",
                        ev.kind.name(),
                        ev.seq
                    ),
                );
            }
            EventKind::FpTransmit { tainted: true, oblivious: false } if fp_protected => {
                flag(
                    Invariant::TaintedFpTransmit,
                    i,
                    ev,
                    format!("tainted FP transmit issued non-obliviously at cycle {}", ev.cycle),
                );
            }
            EventKind::PredictorUpdate { tainted } => {
                if pre_safe {
                    flag(
                        Invariant::PreSafeAction,
                        i,
                        ev,
                        format!("predictor trained for Obl-Ld seq {} before its Safe event", ev.seq),
                    );
                }
                if tainted && loads_protected {
                    flag(
                        Invariant::TaintedTraining,
                        i,
                        ev,
                        format!("predictor trained on tainted state at cycle {}", ev.cycle),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, seq: u64, kind: EventKind) -> Event {
        Event { cycle, seq, pc: 4 * seq, kind }
    }

    #[test]
    fn clean_sdo_trace_passes() {
        let events = [
            ev(1, 0, EventKind::Dispatch),
            ev(2, 0, EventKind::OblProbe { level: 2 }),
            ev(5, 0, EventKind::OblTouch { level: 1 }),
            ev(9, 0, EventKind::OblTouch { level: 2 }),
            ev(12, 0, EventKind::OblSafe),
            ev(13, 0, EventKind::Validate { matched: true }),
            ev(13, 0, EventKind::PredictorUpdate { tainted: false }),
            ev(20, 0, EventKind::Commit),
        ];
        assert!(check(Variant::Hybrid, &events).is_empty());
    }

    #[test]
    fn tainted_load_flags_only_under_protection() {
        let events = [ev(3, 1, EventKind::MemAccess { line: 7, op: MemOp::Load, tainted: true })];
        let v = check(Variant::SttLd, &events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::TaintedLoad);
        assert!(check(Variant::Unsafe, &events).is_empty(), "Unsafe has no contract");
    }

    #[test]
    fn tainted_fp_transmit_respects_channel_policy() {
        let events = [ev(3, 1, EventKind::FpTransmit { tainted: true, oblivious: false })];
        assert!(check(Variant::SttLd, &events).is_empty(), "STT{{ld}} leaves FP open");
        let v = check(Variant::SttLdFp, &events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::TaintedFpTransmit);
        // The oblivious variant of the same op is fine everywhere.
        let obl = [ev(3, 1, EventKind::FpTransmit { tainted: true, oblivious: true })];
        assert!(check(Variant::Hybrid, &obl).is_empty());
    }

    #[test]
    fn touch_beyond_prediction_is_flagged() {
        let events = [
            ev(2, 0, EventKind::OblProbe { level: 1 }),
            ev(5, 0, EventKind::OblTouch { level: 2 }),
        ];
        let v = check(Variant::StaticL1, &events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::TouchBeyondPrediction);
    }

    #[test]
    fn pre_safe_actions_are_flagged_and_post_safe_are_not() {
        let pre = [
            ev(2, 0, EventKind::OblProbe { level: 2 }),
            ev(5, 0, EventKind::Validate { matched: true }),
        ];
        let v = check(Variant::Hybrid, &pre);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::PreSafeAction);

        let post = [
            ev(2, 0, EventKind::OblProbe { level: 2 }),
            ev(6, 0, EventKind::OblSafe),
            ev(7, 0, EventKind::Squash { cause: SquashCause::OblFail }),
        ];
        assert!(check(Variant::Hybrid, &post).is_empty());
    }

    #[test]
    fn tainted_training_is_flagged() {
        let events = [ev(9, 3, EventKind::PredictorUpdate { tainted: true })];
        let v = check(Variant::Hybrid, &events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::TaintedTraining);
    }

    #[test]
    fn invariant_names_round_trip() {
        for inv in [
            Invariant::TaintedLoad,
            Invariant::TaintedFpTransmit,
            Invariant::TaintedTraining,
            Invariant::TouchBeyondPrediction,
            Invariant::PreSafeAction,
        ] {
            assert_eq!(Invariant::parse(inv.name()), Some(inv));
        }
        assert_eq!(Invariant::parse("nope"), None);
    }
}
