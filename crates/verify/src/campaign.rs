//! Verification campaigns: plan → fan out → judge → minimize.
//!
//! A campaign is the deterministic composition of the other layers: it
//! plans a canonical list of secret-swap checks (the fixed litmus
//! corpus plus seeded fuzz specs, crossed with variants and attack
//! models per the [`policy`]), fans the checks across a
//! [`JobPool`] — results merge in plan order, so the output is
//! byte-identical at any `--jobs` — and then, serially, minimizes every
//! fuzz-spec finding with the greedy [`minimize`] loop before
//! materializing it as a [`Counterexample`].
//!
//! Two kinds of counterexamples come out:
//!
//! * **failures** (`unexpected_divergence`, `missing_divergence`,
//!   `oracle_violation:*`) — the protections or the checker are broken;
//!   the campaign fails.
//! * **demonstrations** (`baseline_leak`) — a positive control leaking
//!   exactly where ground truth says it must (e.g. the unsafe baseline
//!   on a Spectre gadget), kept as an artifact because a campaign whose
//!   positive controls stopped leaking has gone blind.

use crate::checker::{Checker, SwapOutcome};
use crate::fuzz::{minimize, LitmusSpec};
use crate::policy;
use crate::report::Counterexample;
use sdo_harness::{JobPool, SimError, Variant};
use sdo_rng::SdoRng;
use sdo_uarch::AttackModel;
use sdo_workloads::{Channel, CORPUS};

/// What a campaign runs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: fuzz-spec seeds derive from it deterministically.
    pub seed: u64,
    /// Quick mode: a CI-sized subset of variants, Spectre only, two
    /// fuzz specs. Full mode crosses everything in Table II.
    pub quick: bool,
    /// Overrides the number of fuzz specs (the first is always the
    /// guaranteed-leak anchor; `Some(0)` disables the fuzz phase).
    pub fuzz_count: Option<usize>,
    /// Restricts checking to these variants (`None` = mode default).
    pub variants: Option<Vec<Variant>>,
}

impl CampaignConfig {
    /// The CI-sized campaign for `--quick`.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        CampaignConfig { seed, quick: true, fuzz_count: None, variants: None }
    }

    /// The full campaign (default).
    #[must_use]
    pub fn full(seed: u64) -> Self {
        CampaignConfig { seed, quick: false, fuzz_count: None, variants: None }
    }

    /// Variants the corpus phase crosses with, after the `--variant`
    /// restriction.
    fn corpus_variants(&self) -> Vec<Variant> {
        let base: &[Variant] = if self.quick {
            &[Variant::Unsafe, Variant::SttLd, Variant::SttLdFp, Variant::Hybrid]
        } else {
            &Variant::ALL
        };
        self.restrict(base)
    }

    /// Variants the fuzz phase crosses with. `Unsafe` stays in the
    /// quick set: the anchor's unsafe-baseline leak (and its minimized
    /// counterexample) is the campaign's positive control.
    fn fuzz_variants(&self) -> Vec<Variant> {
        let base: &[Variant] = if self.quick {
            &[Variant::Unsafe, Variant::SttLdFp, Variant::Hybrid]
        } else {
            &Variant::ALL
        };
        self.restrict(base)
    }

    fn restrict(&self, base: &[Variant]) -> Vec<Variant> {
        base.iter()
            .copied()
            .filter(|v| self.variants.as_ref().is_none_or(|keep| keep.contains(v)))
            .collect()
    }

    fn attacks(&self) -> &'static [AttackModel] {
        if self.quick {
            &[AttackModel::Spectre]
        } else {
            &AttackModel::ALL
        }
    }

    /// The effective fuzz-spec count: the override, or the mode default
    /// (2 quick, 8 full). Public so a remote submission (`verify
    /// --server`) can resolve the default on the client and ship a plain
    /// count over the wire.
    #[must_use]
    pub fn fuzz_total(&self) -> usize {
        self.fuzz_count.unwrap_or(if self.quick { 2 } else { 8 })
    }

    /// Generates the campaign's fuzz specs: the guaranteed-leak anchor
    /// first, then seeds drawn from the master seed. Pure function of
    /// `(seed, fuzz_count)`.
    #[must_use]
    pub fn fuzz_specs(&self) -> Vec<LitmusSpec> {
        let n = self.fuzz_total();
        let mut rng = SdoRng::seed_from_u64(self.seed);
        (0..n)
            .map(|i| {
                let s = rng.next_u64();
                if i == 0 {
                    LitmusSpec::anchor(s)
                } else {
                    LitmusSpec::generate(s)
                }
            })
            .collect()
    }

    /// Runs the campaign.
    ///
    /// # Errors
    ///
    /// Returns the canonically-first [`SimError`] if any check's run
    /// exceeds the cycle budget.
    pub fn run(&self, checker: &Checker, pool: &JobPool) -> Result<CampaignResult, SimError> {
        let specs = self.fuzz_specs();
        let plan = self.plan(&specs);

        let outcomes = pool.try_run(&plan, |_, check| {
            let outcome = match check.source {
                Source::Corpus(i) => checker.check_case(&CORPUS[i], check.variant, check.attack)?,
                Source::Fuzz(i) => {
                    let spec = &specs[i];
                    checker.swap_check(
                        &spec.name(),
                        check.leaks_via,
                        |s| spec.build(s),
                        check.variant,
                        check.attack,
                    )?
                }
            };
            Ok::<SwapOutcome, SimError>(outcome)
        })?;

        // Judge + minimize serially over the merged (plan-ordered)
        // results, so counterexamples are jobs-independent.
        let mut counterexamples = Vec::new();
        for (check, outcome) in plan.iter().zip(&outcomes) {
            let spec = match check.source {
                Source::Fuzz(i) => Some(&specs[i]),
                Source::Corpus(_) => None,
            };
            if !outcome.passed() {
                counterexamples.push(self.materialize(checker, check, outcome, spec, false)?);
            } else if outcome.expected_divergence && outcome.divergence.is_some() {
                // A passing positive control: keep the leak it
                // demonstrated as a (minimized) artifact.
                counterexamples.push(self.materialize(checker, check, outcome, spec, true)?);
            }
        }

        Ok(CampaignResult { config: self.clone(), outcomes, counterexamples })
    }

    /// Turns one finding into a counterexample, minimizing the fuzz
    /// spec first (failures shrink while still failing; demonstrations
    /// shrink while still leaking).
    fn materialize(
        &self,
        checker: &Checker,
        check: &Check,
        outcome: &SwapOutcome,
        spec: Option<&LitmusSpec>,
        demo: bool,
    ) -> Result<Counterexample, SimError> {
        let Some(spec) = spec else {
            return Ok(Counterexample::from_outcome(outcome, self.seed, Vec::new()));
        };
        let still_interesting = |s: &LitmusSpec| {
            let Some(lv) = plan_leaks_via(s, check.variant) else { return false };
            match checker.swap_check(&s.name(), lv, |b| s.build(b), check.variant, check.attack) {
                Ok(o) if demo => o.passed() && o.divergence.is_some(),
                Ok(o) => !o.passed(),
                Err(_) => false,
            }
        };
        let min = minimize(spec, still_interesting);
        // Re-check the minimized spec to report its (still failing /
        // still leaking) outcome rather than the noisy original's.
        let lv = plan_leaks_via(&min, check.variant).unwrap_or(check.leaks_via);
        let o = checker.swap_check(&min.name(), lv, |b| min.build(b), check.variant, check.attack)?;
        Ok(Counterexample::from_outcome(&o, min.seed, min.gadget_names()))
    }

    /// The canonical check list: corpus phase in `CORPUS` order, then
    /// the fuzz phase in spec order, each crossed with variants (outer)
    /// and attack models (inner). `Unsafe` ignores the attack model, so
    /// it is checked under Spectre only — same convention as the
    /// pentest harness.
    fn plan(&self, specs: &[LitmusSpec]) -> Vec<Check> {
        let mut plan = Vec::new();
        for (i, _) in CORPUS.iter().enumerate() {
            for &variant in &self.corpus_variants() {
                for &attack in self.attacks() {
                    if variant == Variant::Unsafe && attack != AttackModel::Spectre {
                        continue;
                    }
                    // Skip unverdictable pairings (open channel without
                    // guaranteed divergence, e.g. Perfect × spectre_v1).
                    if policy::expectation(variant, CORPUS[i].leaks_via).is_none() {
                        continue;
                    }
                    plan.push(Check {
                        source: Source::Corpus(i),
                        variant,
                        attack,
                        leaks_via: CORPUS[i].leaks_via,
                    });
                }
            }
        }
        for (i, spec) in specs.iter().enumerate() {
            for &variant in &self.fuzz_variants() {
                for &attack in self.attacks() {
                    if variant == Variant::Unsafe && attack != AttackModel::Spectre {
                        continue;
                    }
                    let Some(leaks_via) = plan_leaks_via(spec, variant) else { continue };
                    plan.push(Check { source: Source::Fuzz(i), variant, attack, leaks_via });
                }
            }
        }
        plan
    }
}

/// What the secret-swap checker should treat as this spec's leak
/// channel under `variant` — or `None` to skip the pairing entirely:
///
/// * a variant that closes **every** channel the spec's gadgets can use
///   is checked with the spec's own ground truth (expectation:
///   indistinguishable);
/// * the unsafe baseline is checked only on specs with a guaranteed
///   cache leak (expectation: divergence) — the FP gadget's timing
///   signal is best-effort, so it can't serve as a positive control;
/// * anything else (`STT{ld}` on a spec with an FP gadget, `Perfect` on
///   one with a cache gadget) is skipped: the channel is open but
///   divergence isn't guaranteed, so neither verdict would be sound.
fn plan_leaks_via(spec: &LitmusSpec, variant: Variant) -> Option<Option<Channel>> {
    if spec.channels().iter().all(|&ch| policy::closes(variant, ch)) {
        Some(spec.leaks_via())
    } else if variant == Variant::Unsafe && spec.guaranteed_leak() {
        Some(Some(Channel::Cache))
    } else {
        None
    }
}

/// Where a planned check's program comes from.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// Index into [`CORPUS`].
    Corpus(usize),
    /// Index into the campaign's fuzz specs.
    Fuzz(usize),
}

/// One planned secret-swap check.
#[derive(Debug, Clone, Copy)]
struct Check {
    source: Source,
    variant: Variant,
    attack: AttackModel,
    leaks_via: Option<Channel>,
}

/// Everything a finished campaign produced.
#[derive(Debug)]
pub struct CampaignResult {
    /// The configuration that ran.
    pub config: CampaignConfig,
    /// Every check's outcome, in canonical plan order.
    pub outcomes: Vec<SwapOutcome>,
    /// Materialized findings: failures plus baseline-leak
    /// demonstrations, in plan order.
    pub counterexamples: Vec<Counterexample>,
}

impl CampaignResult {
    /// Number of checks whose verdict was wrong or whose oracle flagged
    /// a violation.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.counterexamples.iter().filter(|c| c.kind.is_failure()).count()
    }

    /// Whether the campaign passed: no failures, and — when any
    /// positive control was planned at all — at least one of them
    /// actually demonstrated its leak (a campaign that never sees any
    /// divergence anywhere can't be trusted to). A run restricted to
    /// protected variants only (`--variant hybrid`) plans no positive
    /// controls and is judged on failures alone.
    #[must_use]
    pub fn passed(&self) -> bool {
        if self.failures() != 0 {
            return false;
        }
        let controls_planned = self.outcomes.iter().any(|o| o.expected_divergence);
        !controls_planned || self.counterexamples.iter().any(|c| !c.kind.is_failure())
    }

    /// Human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mode = if self.config.quick { "quick" } else { "full" };
        let mut out = format!(
            "sdo-verify campaign: seed {} ({mode}, {} checks)\n",
            self.config.seed,
            self.outcomes.len()
        );
        for o in &self.outcomes {
            let mark = if o.passed() { "pass" } else { "FAIL" };
            out.push_str(&format!("  [{mark}] {}\n", o.describe()));
        }
        let demos = self.counterexamples.len() - self.failures();
        out.push_str(&format!(
            "{} checks, {} failure(s), {} baseline-leak demonstration(s): {}\n",
            self.outcomes.len(),
            self.failures(),
            demos,
            if self.passed() { "PASS" } else { "FAIL" },
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::Gadget;

    #[test]
    fn fuzz_specs_are_deterministic_and_anchored() {
        let cfg = CampaignConfig::quick(42);
        let a = cfg.fuzz_specs();
        let b = cfg.fuzz_specs();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a[0].guaranteed_leak(), "first spec is the anchor");
        assert_ne!(CampaignConfig::quick(43).fuzz_specs(), a);
    }

    #[test]
    fn fuzz_count_override_and_disable() {
        let mut cfg = CampaignConfig::full(1);
        assert_eq!(cfg.fuzz_specs().len(), 8);
        cfg.fuzz_count = Some(3);
        assert_eq!(cfg.fuzz_specs().len(), 3);
        cfg.fuzz_count = Some(0);
        assert!(cfg.fuzz_specs().is_empty());
    }

    #[test]
    fn variant_restriction_intersects_mode_defaults() {
        let mut cfg = CampaignConfig::quick(1);
        cfg.variants = Some(vec![Variant::Hybrid, Variant::Perfect]);
        // Perfect is not in the quick set: intersection keeps Hybrid only.
        assert_eq!(cfg.corpus_variants(), vec![Variant::Hybrid]);
        assert_eq!(cfg.fuzz_variants(), vec![Variant::Hybrid]);
    }

    #[test]
    fn plan_skips_unsound_pairings_and_duplicate_unsafe() {
        let cfg = CampaignConfig::full(1);
        let specs =
            vec![LitmusSpec { seed: 5, gadgets: vec![Gadget::SpectreFp] }];
        let plan = cfg.plan(&specs);
        for c in &plan {
            // Unsafe runs under Spectre only.
            assert!(!(c.variant == Variant::Unsafe && c.attack == AttackModel::Futuristic));
            if let Source::Fuzz(_) = c.source {
                // The FP-only spec has no guaranteed leak: Unsafe and
                // STT{ld} pairings are unsound and must be skipped.
                assert!(policy::closes(c.variant, Channel::FpTiming), "{:?}", c.variant);
            }
        }
        // Perfect × spectre_v1 (cache channel, index 0) is
        // unverdictable: open but not guaranteed to diverge.
        assert!(!plan.iter().any(|c| matches!(c.source, Source::Corpus(0))
            && c.variant == Variant::Perfect));
        // Corpus phase: 3 cases × (7 variants × 2 attacks + Unsafe × 1),
        // plus spectre_v1 with Perfect's two pairings skipped.
        let corpus_checks = plan
            .iter()
            .filter(|c| matches!(c.source, Source::Corpus(_)))
            .count();
        assert_eq!(corpus_checks, 3 * (7 * 2 + 1) + (6 * 2 + 1));
    }

    #[test]
    fn plan_gives_unsafe_a_positive_control_on_guaranteed_leaks() {
        let cfg = CampaignConfig::quick(1);
        let specs = cfg.fuzz_specs();
        let plan = cfg.plan(&specs);
        let anchor_unsafe = plan.iter().find(|c| {
            matches!(c.source, Source::Fuzz(0)) && c.variant == Variant::Unsafe
        });
        let c = anchor_unsafe.expect("anchor × Unsafe is planned");
        assert_eq!(c.leaks_via, Some(Channel::Cache));
    }
}
