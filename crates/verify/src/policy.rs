//! The leakage policy: which Table II variant closes which covert
//! channel.
//!
//! This is ground truth distilled from the paper, kept in one place so
//! the secret-swap checker, the fuzz campaign and the `pentest` binary
//! all judge outcomes against the same table instead of each hard-coding
//! its own copy:
//!
//! | channel | open under | closed by |
//! |---|---|---|
//! | cache state | `Unsafe`, `Perfect` | STT (both) and every realizable STT+SDO variant |
//! | FP timing | `Unsafe`, `STT{ld}` | `STT{ld+fp}` and every STT+SDO variant |
//!
//! The cache channel is the paper's Section VIII-A penetration test;
//! the FP-timing channel is its Section I-A motivation for treating FP
//! micro-ops as transmitters (which `STT{ld}` deliberately does not).
//!
//! `Perfect` is the odd row out, and the fuzz campaign is what forced
//! the honest classification: its oracle predictor returns the level
//! the data *actually resides in*, which is a function of cache state
//! and therefore — unlike every realizable predictor, which is a
//! function of the PC only (Equation 2) — of the secret. `Perfect`
//! still blocks byte recovery through probe-array residency (Obl-Lds
//! don't fill the cache, so the Section VIII-A receiver reads
//! nothing), but under the strict secret-swap notion its observables
//! can depend on the secret through the predicted probe depth. The
//! paper offers it as a performance upper bound, not a design point.
//!
//! "Open" does not mean "guaranteed to show": a channel can be open
//! while no particular program is guaranteed to produce a measurable
//! divergence through it (FP occupancy under scheduling slack,
//! `Perfect`'s residency-dependent probe depth). [`expectation`]
//! therefore returns three values, and the campaign skips the
//! unverdictable pairings rather than guessing.

use sdo_harness::Variant;
use sdo_workloads::Channel;

/// Whether `variant` closes `channel` under the strict secret-swap
/// notion: every attacker observable is independent of a secret
/// transmitted through that channel.
///
/// This is THE suppression table: `sdo-analyze` projects its static
/// findings per variant through this same function, so the static and
/// dynamic layers can never disagree about policy by construction.
/// Every `(channel, variant)` pairing is listed explicitly — adding a
/// Table II variant is a compile error here, not a silent default.
#[must_use]
pub fn closes(variant: Variant, channel: Channel) -> bool {
    match (channel, variant) {
        // The baseline closes nothing.
        (Channel::Cache | Channel::FpTiming, Variant::Unsafe) => false,
        // Perfect's oracle prediction depends on actual residency,
        // which depends on the secret: not data-oblivious.
        (Channel::Cache, Variant::Perfect) => false,
        (Channel::FpTiming, Variant::Perfect) => true,
        // STT{ld} taints only load results into the cache channel's
        // transmitters; FP latency is deliberately out of scope.
        (Channel::Cache, Variant::SttLd) => true,
        (Channel::FpTiming, Variant::SttLd) => false,
        (Channel::Cache | Channel::FpTiming, Variant::SttLdFp) => true,
        // Every realizable STT+SDO variant closes both channels.
        (
            Channel::Cache | Channel::FpTiming,
            Variant::StaticL1 | Variant::StaticL2 | Variant::StaticL3 | Variant::Hybrid,
        ) => true,
    }
}

/// Whether a program leaking via `channel` is *guaranteed* to produce a
/// measurable observable divergence under `variant` — the positive
/// controls. Stronger than `!closes`: `Perfect` leaves the cache
/// channel open but only diverges when the swapped secrets happen to
/// select lines of different residency. Exhaustive over the same
/// `(channel, variant)` grid as [`closes`].
#[must_use]
pub fn guaranteed_divergence(variant: Variant, channel: Channel) -> bool {
    match (channel, variant) {
        (Channel::Cache | Channel::FpTiming, Variant::Unsafe) => true,
        (Channel::FpTiming, Variant::SttLd) => true,
        (Channel::Cache, Variant::SttLd) => false,
        (Channel::Cache | Channel::FpTiming, Variant::SttLdFp) => false,
        (Channel::Cache | Channel::FpTiming, Variant::Perfect) => false,
        (
            Channel::Cache | Channel::FpTiming,
            Variant::StaticL1 | Variant::StaticL2 | Variant::StaticL3 | Variant::Hybrid,
        ) => false,
    }
}

/// What the secret-swap checker should expect for a program that leaks
/// via `leaks_via` (or not at all, for `None`) when run under
/// `variant`: `Some(false)` — observables must be indistinguishable;
/// `Some(true)` — they must diverge (positive control); `None` — the
/// channel is open but divergence is not guaranteed, so neither verdict
/// would be sound and the pairing should be skipped.
#[must_use]
pub fn expectation(variant: Variant, leaks_via: Option<Channel>) -> Option<bool> {
    match leaks_via {
        None => Some(false),
        Some(ch) if closes(variant, ch) => Some(false),
        Some(ch) if guaranteed_divergence(variant, ch) => Some(true),
        Some(_) => None,
    }
}

/// Whether the dynamic invariant oracle's load-side invariants apply:
/// any protection (STT or STT+SDO) must never issue a tainted demand
/// load or train a predictor from tainted state. Exhaustive for the
/// same reason as [`closes`]: a new variant must pick a row here.
#[must_use]
pub fn protects_loads(variant: Variant) -> bool {
    match variant {
        Variant::Unsafe => false,
        Variant::SttLd
        | Variant::SttLdFp
        | Variant::StaticL1
        | Variant::StaticL2
        | Variant::StaticL3
        | Variant::Hybrid
        | Variant::Perfect => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_closes_nothing_and_is_the_cache_positive_control() {
        assert!(!closes(Variant::Unsafe, Channel::Cache));
        assert!(!closes(Variant::Unsafe, Channel::FpTiming));
        assert!(!protects_loads(Variant::Unsafe));
        assert_eq!(expectation(Variant::Unsafe, Some(Channel::Cache)), Some(true));
        assert_eq!(expectation(Variant::Unsafe, Some(Channel::FpTiming)), Some(true));
    }

    #[test]
    fn stt_ld_leaves_fp_open_with_guaranteed_divergence() {
        assert!(closes(Variant::SttLd, Channel::Cache));
        assert!(!closes(Variant::SttLd, Channel::FpTiming));
        assert_eq!(expectation(Variant::SttLd, Some(Channel::FpTiming)), Some(true));
        assert_eq!(expectation(Variant::SttLd, Some(Channel::Cache)), Some(false));
    }

    #[test]
    fn realizable_sdo_variants_close_both_channels() {
        for v in [Variant::StaticL1, Variant::StaticL2, Variant::StaticL3, Variant::Hybrid] {
            assert!(closes(v, Channel::Cache), "{v}");
            assert!(closes(v, Channel::FpTiming), "{v}");
            assert_eq!(expectation(v, Some(Channel::Cache)), Some(false));
            assert_eq!(expectation(v, Some(Channel::FpTiming)), Some(false));
        }
        assert!(closes(Variant::SttLdFp, Channel::FpTiming));
    }

    #[test]
    fn perfect_is_open_on_cache_but_unverdictable() {
        // The oracle predictor's output depends on residency, hence on
        // the secret: not indistinguishable — but not guaranteed to
        // diverge on any particular program either.
        assert!(!closes(Variant::Perfect, Channel::Cache));
        assert!(!guaranteed_divergence(Variant::Perfect, Channel::Cache));
        assert_eq!(expectation(Variant::Perfect, Some(Channel::Cache)), None);
        // FP obliviousness is orthogonal to location prediction.
        assert!(closes(Variant::Perfect, Channel::FpTiming));
        // It still protects loads mechanically (no tainted demand issue).
        assert!(protects_loads(Variant::Perfect));
    }

    #[test]
    fn nonleaking_programs_always_expect_indistinguishable() {
        for v in Variant::ALL {
            assert_eq!(expectation(v, None), Some(false), "{v}");
        }
    }

    #[test]
    fn guaranteed_divergence_implies_open_channel() {
        // The two tables are exhaustive matches over the same grid;
        // check their one cross-table invariant on every cell.
        for v in Variant::ALL {
            for ch in [Channel::Cache, Channel::FpTiming] {
                if guaranteed_divergence(v, ch) {
                    assert!(!closes(v, ch), "{v} guarantees divergence on a closed channel");
                }
            }
        }
    }
}
