//! Automated leakage verification for the SDO reproduction.
//!
//! The simulator's security argument (Section VII of the paper) is a
//! claim about *mechanism*; this crate checks it empirically, three
//! layers deep:
//!
//! * [`checker`] — **secret-swap differential testing**: run the same
//!   program twice with different planted secrets and require the
//!   attacker-observable traces (cycle counts, cache counters, the
//!   per-cycle commit/cache-touch event sequence from `sdo-obs`) to be
//!   byte-identical under every protection that closes the program's
//!   channel — and to *diverge* on the unsafe baseline for Spectre
//!   litmus programs, the positive control proving the harness can see
//!   leaks at all.
//! * [`oracle`] — a **dynamic invariant oracle** over the full event
//!   stream: tainted loads at a non-oblivious issue port, tainted
//!   predictor training, oblivious probes touching beyond their
//!   predicted slice, and validate/expose/squash ordering violations
//!   are flagged mechanically even when no divergence was measurable.
//! * [`fuzz`] — a **seeded litmus generator**: gadget-composed
//!   mini-ISA programs (mispredict windows, secret-dependent loads and
//!   FP chains, contention noise) drive the checker beyond the fixed
//!   corpus, and a greedy minimizer shrinks every finding to its
//!   essential gadgets.
//!
//! [`campaign`] composes the layers deterministically (same seed ⇒
//! same report, at any `--jobs`), [`policy`] is the single copy of the
//! "which variant closes which channel" ground truth, and [`report`]
//! materializes findings as round-trippable JSONL counterexamples.
//! The `verify` binary drives a campaign from the command line; the
//! `pentest` binary reruns the paper's Section VIII-A attack suite and
//! judges it against the same policy.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod checker;
pub mod fuzz;
pub mod oracle;
pub mod policy;
pub mod replay;
pub mod report;

pub use campaign::{CampaignConfig, CampaignResult};
pub use checker::{Capture, Checker, SwapOutcome, SECRET_PAIR};
pub use fuzz::{minimize, minimize_with_invariant, Gadget, LitmusSpec};
pub use oracle::{Invariant, Violation};
pub use replay::{classify_gadget, replay_divergence, GadgetReplay, GadgetVerdict};
pub use report::{CexKind, Counterexample};
