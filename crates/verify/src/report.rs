//! Structured counterexample reports, as round-trippable JSONL.
//!
//! When a check fails — or when the unsafe baseline demonstrates the
//! leak the protections exist to stop — the campaign materializes a
//! [`Counterexample`]: what was checked, what went wrong, how to
//! reproduce it (seed + gadget recipe), and a window of pipeline events
//! around the point of interest. The wire format is JSONL in the same
//! hand-rolled dialect as [`sdo_obs`]'s event traces (the workspace has
//! no serde): one header object on the first line, then one
//! [`Event`] object per window event. Serialization is
//! deterministic and [`Counterexample::parse_jsonl`] round-trips
//! byte-identically, so reports can be diffed across reruns.

use crate::checker::SwapOutcome;
use crate::oracle::Invariant;
use sdo_harness::cli::{parse_attack, parse_variant};
use sdo_harness::Variant;
use sdo_obs::{Event, EventTrace};
use sdo_uarch::AttackModel;

/// What kind of finding a counterexample records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CexKind {
    /// A protected variant's observables depended on the secret.
    UnexpectedDivergence,
    /// A positive control failed: the unsafe baseline did *not* leak
    /// where ground truth says it must (the checker has gone blind).
    MissingDivergence,
    /// The invariant oracle flagged a mechanical violation.
    OracleViolation(Invariant),
    /// Demonstration (not a failure): the unsafe baseline leaking on a
    /// (minimized) litmus program — the attack the protections block.
    BaselineLeak,
}

impl CexKind {
    /// Stable wire name.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            CexKind::UnexpectedDivergence => "unexpected_divergence".into(),
            CexKind::MissingDivergence => "missing_divergence".into(),
            CexKind::OracleViolation(inv) => format!("oracle_violation:{}", inv.name()),
            CexKind::BaselineLeak => "baseline_leak".into(),
        }
    }

    /// Parses a name produced by [`CexKind::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<CexKind> {
        if let Some(inv) = s.strip_prefix("oracle_violation:") {
            return Invariant::parse(inv).map(CexKind::OracleViolation);
        }
        Some(match s {
            "unexpected_divergence" => CexKind::UnexpectedDivergence,
            "missing_divergence" => CexKind::MissingDivergence,
            "baseline_leak" => CexKind::BaselineLeak,
            _ => return None,
        })
    }

    /// Whether this kind represents a verification failure (as opposed
    /// to the baseline-leak demonstration artifact).
    #[must_use]
    pub fn is_failure(self) -> bool {
        !matches!(self, CexKind::BaselineLeak)
    }
}

/// One materialized finding, reproducible from its header alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Litmus case or fuzz spec name.
    pub case: String,
    /// Variant under which the finding occurred.
    pub variant: Variant,
    /// Attack model in force.
    pub attack: AttackModel,
    /// What kind of finding.
    pub kind: CexKind,
    /// Campaign seed (reproduces fuzz specs bit-for-bit).
    pub seed: u64,
    /// Gadget recipe for fuzzed programs (empty for corpus cases),
    /// after minimization.
    pub gadgets: Vec<String>,
    /// One-line explanation (divergence or violation description).
    pub detail: String,
    /// Pipeline events around the point of interest.
    pub window: Vec<Event>,
}

impl Counterexample {
    /// Builds a counterexample from a failed (or, for
    /// [`CexKind::BaselineLeak`], a demonstrative) swap outcome.
    #[must_use]
    pub fn from_outcome(o: &SwapOutcome, seed: u64, gadgets: Vec<String>) -> Counterexample {
        // Priority: a wrong divergence verdict outranks an oracle
        // finding; the baseline-leak demonstration is the no-failure
        // residual.
        let (kind, detail) = match (&o.divergence, o.expected_divergence, o.violations.first()) {
            (Some(d), false, _) => (CexKind::UnexpectedDivergence, d.describe()),
            (None, true, _) => (
                CexKind::MissingDivergence,
                "expected the secret swap to diverge, observables were identical".to_string(),
            ),
            (_, _, Some(v)) => (CexKind::OracleViolation(v.invariant), v.detail.clone()),
            (Some(d), true, None) => (CexKind::BaselineLeak, d.describe()),
            (None, false, None) => (CexKind::BaselineLeak, "no finding".to_string()),
        };
        Counterexample {
            case: o.case.clone(),
            variant: o.variant,
            attack: o.attack,
            kind,
            seed,
            gadgets,
            detail,
            window: o.window.clone(),
        }
    }

    /// A stable file name for this counterexample.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{}_{}_{}.jsonl", self.case, self.variant.slug(), match self.attack {
            AttackModel::Spectre => "spectre",
            AttackModel::Futuristic => "futuristic",
        })
    }

    /// Serializes as JSONL: one header line, then one line per window
    /// event. Deterministic: equal counterexamples serialize
    /// byte-identically.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"counterexample\",\"case\":\"{}\",\"variant\":\"{}\",\
             \"attack\":\"{}\",\"kind\":\"{}\",\"seed\":{},\"gadgets\":\"{}\",\
             \"detail\":\"{}\"}}\n",
            self.case,
            self.variant.slug(),
            match self.attack {
                AttackModel::Spectre => "spectre",
                AttackModel::Futuristic => "futuristic",
            },
            self.kind.name(),
            self.seed,
            self.gadgets.join("+"),
            json_escape(&self.detail),
        );
        for ev in &self.window {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses text produced by [`Counterexample::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field or event
    /// line.
    pub fn parse_jsonl(text: &str) -> Result<Counterexample, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| "empty report".to_string())?;
        let case = simple_str_field(header, "case")?.to_string();
        let variant = parse_variant(simple_str_field(header, "variant")?)?;
        let attack = parse_attack(simple_str_field(header, "attack")?)?;
        let kind_s = simple_str_field(header, "kind")?;
        let kind =
            CexKind::parse(kind_s).ok_or_else(|| format!("unknown kind {kind_s:?}"))?;
        let seed = simple_str_like_int(header, "seed")?;
        let gadgets_s = simple_str_field(header, "gadgets")?;
        let gadgets = if gadgets_s.is_empty() {
            Vec::new()
        } else {
            gadgets_s.split('+').map(str::to_string).collect()
        };
        // `detail` is the final field and the only one that may contain
        // escapes: take everything between its opening quote and the
        // header's closing `"}`.
        let detail_raw = header
            .split_once("\"detail\":\"")
            .and_then(|(_, rest)| rest.strip_suffix("\"}"))
            .ok_or_else(|| "missing or malformed detail field".to_string())?;
        let detail = json_unescape(detail_raw);
        let window_text: String = lines.map(|l| format!("{l}\n")).collect();
        let window = EventTrace::parse_jsonl(&window_text)?.events().to_vec();
        Ok(Counterexample { case, variant, attack, kind, seed, gadgets, detail, window })
    }
}

/// Escapes backslashes and double quotes for embedding in a JSON
/// string (the only characters our detail strings can contain that
/// need escaping — they are built from event JSON and plain prose).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_unescape(s: &str) -> String {
    s.replace("\\\"", "\"").replace("\\\\", "\\")
}

/// Extracts an escape-free `"key":"value"` string field from a header
/// line (usable for every field except `detail`).
fn simple_str_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":\"");
    let start =
        line.find(&pat).ok_or_else(|| format!("missing field {key:?}"))? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"').ok_or_else(|| format!("unterminated field {key:?}"))?;
    Ok(&rest[..end])
}

fn simple_str_like_int(line: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\":");
    let start =
        line.find(&pat).ok_or_else(|| format!("missing field {key:?}"))? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated field {key:?}"))?;
    rest[..end]
        .trim()
        .parse()
        .map_err(|e| format!("bad integer for {key:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_obs::{EventKind, MemOp};

    fn sample() -> Counterexample {
        Counterexample {
            case: "spectre_v1".into(),
            variant: Variant::Unsafe,
            attack: AttackModel::Spectre,
            kind: CexKind::BaselineLeak,
            seed: 7,
            gadgets: vec!["alu_noise(3)".into(), "spectre_cache".into()],
            detail: "visible event 12 differs: {\"cycle\":9} vs {\"cycle\":11}".into(),
            window: vec![
                Event { cycle: 9, seq: 4, pc: 16, kind: EventKind::Commit },
                Event {
                    cycle: 10,
                    seq: 5,
                    pc: 20,
                    kind: EventKind::MemAccess { line: 0x4_0042, op: MemOp::Load, tainted: false },
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let cex = sample();
        let text = cex.to_jsonl();
        let back = Counterexample::parse_jsonl(&text).unwrap();
        assert_eq!(back, cex);
        assert_eq!(back.to_jsonl(), text, "re-serialization must be byte-identical");
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_jsonl(), sample().to_jsonl());
    }

    #[test]
    fn detail_escaping_survives_quotes_and_backslashes() {
        let mut cex = sample();
        cex.detail = "quote \" backslash \\ done".into();
        let back = Counterexample::parse_jsonl(&cex.to_jsonl()).unwrap();
        assert_eq!(back.detail, cex.detail);
    }

    #[test]
    fn empty_gadgets_round_trip_empty() {
        let mut cex = sample();
        cex.gadgets = Vec::new();
        cex.window = Vec::new();
        let back = Counterexample::parse_jsonl(&cex.to_jsonl()).unwrap();
        assert!(back.gadgets.is_empty());
        assert!(back.window.is_empty());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            CexKind::UnexpectedDivergence,
            CexKind::MissingDivergence,
            CexKind::OracleViolation(Invariant::TaintedLoad),
            CexKind::OracleViolation(Invariant::PreSafeAction),
            CexKind::BaselineLeak,
        ] {
            assert_eq!(CexKind::parse(&kind.name()), Some(kind));
        }
        assert!(CexKind::parse("nope").is_none());
        assert!(CexKind::parse("oracle_violation:nope").is_none());
    }

    #[test]
    fn failure_classification() {
        assert!(CexKind::UnexpectedDivergence.is_failure());
        assert!(CexKind::MissingDivergence.is_failure());
        assert!(CexKind::OracleViolation(Invariant::TaintedLoad).is_failure());
        assert!(!CexKind::BaselineLeak.is_failure());
    }

    #[test]
    fn file_names_are_fs_safe() {
        let n = sample().file_name();
        assert_eq!(n, "spectre_v1_unsafe_spectre.jsonl");
        assert!(!n.contains([' ', '{', '}', '/']));
    }
}
