//! Dynamic replay of statically reported gadgets: the static half of
//! the scanner differential.
//!
//! `sdo-analyze`'s binary scanner is a *may* analysis — a reported
//! gadget is a candidate, not a proof. This module replays a scanned
//! case under the secret-swap checker and classifies the static claim:
//!
//! * [`GadgetVerdict::Confirmed`] — the secret-swapped runs diverge
//!   observably under the variant: the static gadget is a real,
//!   dynamically witnessed leak;
//! * [`GadgetVerdict::OverApprox`] — no observable divergence: the
//!   static finding over-approximates (dead path, masked value,
//!   mechanism side effect), which is allowed for a may analysis.
//!
//! The *unsound* direction — statically clean but dynamically
//! divergent — is not a verdict but a differential failure; the scan
//! driver checks it with [`replay_divergence`] and reports any hit as
//! a disagreement, exactly like the fuzzed litmus differential of
//! `sdo-analyze` has since PR 5.

use crate::checker::{Checker, SwapOutcome};
use sdo_harness::{SimError, Variant};
use sdo_uarch::AttackModel;
use sdo_workloads::litmus::LitmusCase;

/// Outcome of replaying one statically reported gadget dynamically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GadgetVerdict {
    /// Secret-swap divergence observed: the gadget is real.
    Confirmed,
    /// No divergence: the static finding is an over-approximation.
    OverApprox,
}

impl GadgetVerdict {
    /// Stable wire name (`CONFIRMED` / `OVER-APPROX`), as printed in
    /// scan reports and grepped by CI.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            GadgetVerdict::Confirmed => "CONFIRMED",
            GadgetVerdict::OverApprox => "OVER-APPROX",
        }
    }
}

/// One classified replay: the case/variant pair, the verdict, and the
/// full swap outcome for window extraction.
#[derive(Debug)]
pub struct GadgetReplay {
    /// Case name.
    pub case: String,
    /// Variant the gadget was reported (and replayed) under.
    pub variant: Variant,
    /// CONFIRMED / OVER-APPROX.
    pub verdict: GadgetVerdict,
    /// The underlying secret-swap outcome.
    pub outcome: SwapOutcome,
}

/// Replays `case` under secret swap and classifies the static gadget
/// claim for `variant`.
///
/// # Errors
///
/// Returns [`SimError::Hang`] if either swapped run exceeds the cycle
/// budget.
pub fn classify_gadget(
    checker: &Checker,
    case: &LitmusCase,
    variant: Variant,
    attack: AttackModel,
) -> Result<GadgetReplay, SimError> {
    let outcome = checker.check_case(case, variant, attack)?;
    let verdict = if outcome.divergence.is_some() {
        GadgetVerdict::Confirmed
    } else {
        GadgetVerdict::OverApprox
    };
    Ok(GadgetReplay { case: case.name.to_string(), variant, verdict, outcome })
}

/// Whether the secret-swapped runs of `case` diverge under `variant` —
/// the probe for the unsound direction (statically clean, dynamically
/// leaking).
///
/// # Errors
///
/// Returns [`SimError::Hang`] if either swapped run exceeds the cycle
/// budget.
pub fn replay_divergence(
    checker: &Checker,
    case: &LitmusCase,
    variant: Variant,
    attack: AttackModel,
) -> Result<bool, SimError> {
    Ok(checker.check_case(case, variant, attack)?.divergence.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_gadget_is_confirmed_where_the_policy_keeps_the_channel_open() {
        let checker = Checker::new();
        let cases = sdo_workloads::rv32_litmus_cases();
        let case = cases.iter().find(|c| c.name == "rv32_gadget").expect("gadget case");

        let r = classify_gadget(&checker, case, Variant::Unsafe, AttackModel::Spectre)
            .expect("replay completes");
        assert_eq!(r.verdict, GadgetVerdict::Confirmed);
        assert_eq!(r.verdict.wire_name(), "CONFIRMED");

        // Perfect keeps the cache channel open in the static table
        // because its oracle prediction is itself residency-dependent —
        // and the replay confirms that choice dynamically: the
        // secret-swapped runs diverge.
        let r = classify_gadget(&checker, case, Variant::Perfect, AttackModel::Spectre)
            .expect("replay completes");
        assert_eq!(r.verdict, GadgetVerdict::Confirmed);
        assert_eq!(r.verdict.wire_name(), "CONFIRMED");
    }

    #[test]
    fn closed_variants_show_no_divergence() {
        let checker = Checker::new();
        let cases = sdo_workloads::rv32_litmus_cases();
        let case = cases.iter().find(|c| c.name == "rv32_gadget").expect("gadget case");
        for v in [Variant::SttLd, Variant::StaticL1, Variant::Hybrid] {
            assert!(
                !replay_divergence(&checker, case, v, AttackModel::Spectre).expect("completes"),
                "{v:?} must close the compiled gadget"
            );
        }
    }
}
