//! Seeded litmus-program fuzzer: randomized gadget compositions for the
//! secret-swap checker, plus a greedy counterexample minimizer.
//!
//! A fuzzed program is a [`LitmusSpec`]: an ordered list of [`Gadget`]s
//! assembled into one mini-ISA program with a secret byte planted out
//! of bounds. Gadgets come in two families:
//!
//! * **noise** — ALU chains, public-array loads, FP arithmetic,
//!   divide-chain contention. These perturb pipeline and cache state
//!   but are secret-independent; any divergence they cause is a bug in
//!   the simulator or the observable model.
//! * **leaking** — branch-mispredict windows that speculatively read
//!   the secret and transmit it through the cache
//!   ([`Gadget::SpectreCache`], a guaranteed leak on the unsafe
//!   baseline) or through secret-dependent FP latency
//!   ([`Gadget::SpectreFp`], a best-effort leak: FP-occupancy
//!   divergence depends on surrounding schedule pressure, so the
//!   campaign only asserts its *absence* under protection).
//!
//! Generation is a pure function of the seed ([`LitmusSpec::generate`]
//! via `sdo-rng`), so a counterexample's `(seed, gadgets)` header
//! reproduces the exact program. [`minimize`] shrinks a failing spec by
//! greedily deleting gadgets while the caller's failure predicate keeps
//! holding — the returned spec still fails, by construction.

use sdo_isa::{Assembler, FReg, Program, Reg};
use sdo_rng::SdoRng;
use sdo_workloads::Channel;

/// Base address of the bounds-checked array; the secret byte sits at
/// `A_BASE + SECRET_OFFSET` (out of bounds, as in the Spectre corpus).
const A_BASE: u64 = 0x4000;
/// Out-of-bounds offset of the planted secret.
const SECRET_OFFSET: i64 = 200;
/// FP constants used by FP gadgets.
const FP_BASE: u64 = 0x5800;
/// Public byte array the memory-noise gadget walks.
const NOISE_BASE: u64 = 0x6000;
/// First probe array; each cache-leak gadget instance gets its own,
/// spaced far enough apart that their 256 lines never alias.
const PROBE_BASE: u64 = 0x100_0000;
/// Address spacing between per-instance probe arrays.
const PROBE_STRIDE: u64 = 0x2_0000;

/// One building block of a fuzzed litmus program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gadget {
    /// Secret-independent ALU chain (`ops` add/shift/mask rounds).
    AluNoise {
        /// Number of add/shift/mask rounds.
        ops: u8,
    },
    /// Loads over a public array: `count` loads `stride` bytes apart.
    MemNoise {
        /// Byte stride between consecutive loads.
        stride: u8,
        /// Number of loads.
        count: u8,
    },
    /// Secret-independent FP multiply chain (`ops` links).
    FpNoise {
        /// Chain length.
        ops: u8,
    },
    /// A dependent integer divide chain (`divs` links) hogging the
    /// divider — schedule contention for whatever follows.
    Contention {
        /// Chain length.
        divs: u8,
    },
    /// Branch-mispredict window transmitting the secret through the
    /// cache (a self-contained Spectre V1 train+attack block).
    SpectreCache,
    /// Branch-mispredict window feeding the secret into an FP multiply
    /// chain (secret-dependent subnormal latency).
    SpectreFp,
}

impl Gadget {
    /// Stable name used in counterexample reports (`gadgets` header
    /// field); encodes the parameters, so the recipe alone rebuilds the
    /// program.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            Gadget::AluNoise { ops } => format!("alu_noise({ops})"),
            Gadget::MemNoise { stride, count } => format!("mem_noise({stride}x{count})"),
            Gadget::FpNoise { ops } => format!("fp_noise({ops})"),
            Gadget::Contention { divs } => format!("contention({divs})"),
            Gadget::SpectreCache => "spectre_cache".into(),
            Gadget::SpectreFp => "spectre_fp".into(),
        }
    }

    /// The channel this gadget can leak through, if any.
    #[must_use]
    pub fn leaks_via(self) -> Option<Channel> {
        match self {
            Gadget::SpectreCache => Some(Channel::Cache),
            Gadget::SpectreFp => Some(Channel::FpTiming),
            _ => None,
        }
    }
}

/// A fuzzed litmus program: seed plus gadget recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusSpec {
    /// Seed this spec was generated from (reproducibility header).
    pub seed: u64,
    /// Ordered gadget list.
    pub gadgets: Vec<Gadget>,
}

impl LitmusSpec {
    /// Generates a random spec (2–5 gadgets) as a pure function of
    /// `seed`.
    #[must_use]
    pub fn generate(seed: u64) -> LitmusSpec {
        let mut rng = SdoRng::seed_from_u64(seed);
        let n = 2 + rng.bounded(4) as usize;
        let gadgets = (0..n)
            .map(|_| match rng.bounded(6) {
                0 => Gadget::AluNoise { ops: 2 + rng.bounded(10) as u8 },
                1 => Gadget::MemNoise {
                    stride: [8u8, 64, 192][rng.bounded(3) as usize],
                    count: 4 + rng.bounded(8) as u8,
                },
                2 => Gadget::FpNoise { ops: 2 + rng.bounded(6) as u8 },
                3 => Gadget::Contention { divs: 2 + rng.bounded(8) as u8 },
                4 => Gadget::SpectreCache,
                _ => Gadget::SpectreFp,
            })
            .collect();
        LitmusSpec { seed, gadgets }
    }

    /// The deterministic positive-control spec for a campaign seed: a
    /// cache-leak gadget buried in noise. Guaranteed to diverge on the
    /// unsafe baseline, so every campaign exercises the checker's
    /// ability to see leaks *and* the minimizer's ability to strip the
    /// noise back off.
    #[must_use]
    pub fn anchor(seed: u64) -> LitmusSpec {
        LitmusSpec {
            seed,
            gadgets: vec![
                Gadget::AluNoise { ops: 4 },
                Gadget::SpectreCache,
                Gadget::MemNoise { stride: 64, count: 8 },
                Gadget::Contention { divs: 4 },
            ],
        }
    }

    /// Display name (used as the counterexample `case` field).
    #[must_use]
    pub fn name(&self) -> String {
        format!("fuzz_{:016x}", self.seed)
    }

    /// The gadget recipe as report strings.
    #[must_use]
    pub fn gadget_names(&self) -> Vec<String> {
        self.gadgets.iter().map(|g| g.name()).collect()
    }

    /// Every channel some gadget of this spec can leak through
    /// (deduplicated, [`Channel::Cache`] first).
    #[must_use]
    pub fn channels(&self) -> Vec<Channel> {
        let mut out = Vec::new();
        for ch in [Channel::Cache, Channel::FpTiming] {
            if self.gadgets.iter().any(|g| g.leaks_via() == Some(ch)) {
                out.push(ch);
            }
        }
        out
    }

    /// The channel this spec leaks through on an unprotected core, if
    /// any — the cache channel wins when both kinds of gadget are
    /// present (it is the guaranteed one).
    #[must_use]
    pub fn leaks_via(&self) -> Option<Channel> {
        self.channels().first().copied()
    }

    /// Whether the unsafe baseline is *guaranteed* to diverge on this
    /// spec (it contains a cache-transmitting window; the FP window's
    /// timing signal is best-effort, see the module docs).
    #[must_use]
    pub fn guaranteed_leak(&self) -> bool {
        self.gadgets.contains(&Gadget::SpectreCache)
    }

    /// Assembles the spec into a program with `secret` planted at
    /// `A_BASE + SECRET_OFFSET`.
    ///
    /// # Panics
    ///
    /// Panics if assembly fails, which would be a generator bug — every
    /// gadget emits well-formed code.
    #[must_use]
    pub fn build(&self, secret: u8) -> Program {
        let mut asm = Assembler::named("fuzz");
        // Shared data image: bounds-checked array, the out-of-bounds
        // secret, FP constants, and the public noise array.
        for k in 0..10 {
            asm.data_mut().set_byte(A_BASE + k, 0);
        }
        asm.data_mut().set_byte(A_BASE + SECRET_OFFSET as u64, secret);
        asm.data_mut().set_f64(FP_BASE, 3.5);
        asm.data_mut().set_f64(FP_BASE + 8, 1.25);
        for k in 0..0x900u64 {
            asm.data_mut().set_byte(NOISE_BASE + k, (k * 7 % 13) as u8);
        }
        let mut leak_instances = 0u64;
        for &g in &self.gadgets {
            emit(&mut asm, g, &mut leak_instances);
        }
        asm.halt();
        asm.finish().expect("fuzz spec assembles")
    }
}

/// Emits one gadget's code. `leak_instances` counts emitted
/// mispredict-window gadgets so each gets a disjoint probe array.
fn emit(asm: &mut Assembler, g: Gadget, leak_instances: &mut u64) {
    let r = Reg::new;
    let f = FReg::new;
    match g {
        Gadget::AluNoise { ops } => {
            let x = r(5);
            asm.li(x, 0x55);
            for _ in 0..ops {
                asm.addi(x, x, 3);
                asm.slli(x, x, 1);
                asm.andi(x, x, 0xff);
            }
        }
        Gadget::MemNoise { stride, count } => {
            let (ptr, n, v) = (r(6), r(7), r(5));
            asm.li(ptr, NOISE_BASE as i64);
            asm.li(n, i64::from(count));
            let top = asm.here();
            asm.ldb(v, ptr, 0);
            asm.addi(ptr, ptr, i64::from(stride));
            asm.addi(n, n, -1);
            asm.bne(n, Reg::ZERO, top);
        }
        Gadget::FpNoise { ops } => {
            let base = r(9);
            asm.li(base, FP_BASE as i64);
            asm.fld(f(1), base, 0);
            asm.fld(f(2), base, 8);
            asm.fmul(f(3), f(1), f(2));
            for _ in 1..ops {
                asm.fmul(f(3), f(3), f(2));
            }
        }
        Gadget::Contention { divs } => {
            let (x, d) = (r(5), r(6));
            asm.li(x, 1_000_000_007);
            asm.li(d, 3);
            for _ in 0..divs {
                asm.divu(x, x, d);
            }
        }
        Gadget::SpectreCache | Gadget::SpectreFp => {
            emit_mispredict_window(asm, g == Gadget::SpectreFp, *leak_instances);
            *leak_instances += 1;
        }
    }
}

/// Emits a self-contained Spectre train+attack block: a victim
/// "function" with a slow divide-chain bound check, a training loop
/// with in-bounds indices, then the out-of-bounds attack call. The
/// speculative window either transmits through the cache (probe-array
/// load indexed by the secret) or through FP latency (secret bits fed
/// into a subnormal multiply chain).
fn emit_mispredict_window(asm: &mut Assembler, fp_transmit: bool, instance: u64) {
    let r = Reg::new;
    let f = FReg::new;
    let (abase, pbase, idx, val, off) = (r(1), r(2), r(3), r(4), r(5));
    let (big, div, bound) = (r(6), r(7), r(8));
    let (train_i, ra) = (r(10), r(31));

    asm.li(abase, A_BASE as i64);
    asm.li(pbase, (PROBE_BASE + instance * PROBE_STRIDE) as i64);
    asm.li(big, 10_000_000_000_000);
    asm.li(div, 10);
    if fp_transmit {
        let fbase = r(9);
        asm.li(fbase, FP_BASE as i64);
        asm.fld(f(1), fbase, 0);
        asm.fld(f(2), fbase, 8);
    }

    let do_access = asm.label();
    let skip = asm.label();
    let victim = asm.label();
    let after = asm.label();

    asm.li(train_i, 64);
    let train_top = asm.here();
    asm.andi(idx, train_i, 0x7);
    asm.jal(ra, victim);
    asm.addi(train_i, train_i, -1);
    asm.bne(train_i, Reg::ZERO, train_top);
    asm.li(idx, SECRET_OFFSET);
    asm.jal(ra, victim);
    asm.j(after);

    asm.bind(victim);
    // bound = 10 after twelve dependent divides: a window long enough
    // to fetch and transmit the secret before the check resolves.
    asm.divu(bound, big, div);
    for _ in 0..11 {
        asm.divu(bound, bound, div);
    }
    asm.blt(idx, bound, do_access);
    asm.j(skip);
    asm.bind(do_access);
    asm.add(val, abase, idx);
    asm.ldb(val, val, 0); // reads the secret when out of bounds
    if fp_transmit {
        // Non-zero secrets form subnormal bit patterns: the chain's
        // latency and FP-unit occupancy depend on the secret.
        asm.fmv_from_int(f(3), val);
        asm.fmul(f(10), f(3), f(1));
        for k in 11..=16 {
            asm.fmul(f(k), f(k - 1), f(1));
        }
    } else {
        asm.slli(off, val, 6);
        asm.add(off, off, pbase);
        asm.ld(Reg::ZERO, off, 0); // fills probe[secret]
    }
    asm.bind(skip);
    if fp_transmit {
        // Architectural FP work that competes for the units the doomed
        // chain may still occupy.
        asm.fdiv(f(5), f(1), f(2));
        asm.fdiv(f(6), f(2), f(1));
    }
    asm.jr(ra);
    asm.bind(after);
}

/// Greedily shrinks a failing spec: repeatedly tries deleting one
/// gadget at a time, keeping each deletion for which `fails` still
/// holds, until no single deletion preserves the failure. The result
/// fails whenever the input does (deletions are only committed under a
/// passing `fails` check), and is 1-minimal: removing any single
/// remaining gadget makes the failure disappear.
pub fn minimize(spec: &LitmusSpec, mut fails: impl FnMut(&LitmusSpec) -> bool) -> LitmusSpec {
    minimize_with_invariant(spec, &mut fails, |_| true).0
}

/// [`minimize`] with an extra side condition: a deletion is committed
/// only if the candidate still `fails` **and** still satisfies
/// `invariant`. Deleting a gadget rebuilds the program from scratch,
/// which can change its CFG arbitrarily — so any property derived from
/// the *original* program (like a static taint verdict) must be
/// re-established on every candidate, not assumed to survive
/// shrinking. The second return value counts the single deletions of
/// the *result* for which `fails` still held but `invariant` flipped —
/// shrinks that would have silently invalidated the caller's stored
/// classification (counted in the final, fixpoint pass only, so the
/// number is a property of the minimized spec rather than of the
/// search path). Callers minimizing against a static verdict treat a
/// non-zero count as a finding in its own right.
pub fn minimize_with_invariant(
    spec: &LitmusSpec,
    mut fails: impl FnMut(&LitmusSpec) -> bool,
    mut invariant: impl FnMut(&LitmusSpec) -> bool,
) -> (LitmusSpec, usize) {
    let mut cur = spec.clone();
    loop {
        let mut reduced = false;
        let mut flips = 0;
        let mut i = 0;
        while i < cur.gadgets.len() && cur.gadgets.len() > 1 {
            let mut cand = cur.clone();
            cand.gadgets.remove(i);
            if fails(&cand) {
                if invariant(&cand) {
                    cur = cand;
                    reduced = true;
                } else {
                    flips += 1;
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        if !reduced {
            return (cur, flips);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_isa::Interpreter;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = LitmusSpec::generate(1);
        assert_eq!(a, LitmusSpec::generate(1));
        assert!((2..=5).contains(&a.gadgets.len()));
        // Different seeds must eventually differ.
        assert!((0..20).any(|s| LitmusSpec::generate(s) != a));
    }

    #[test]
    fn generated_programs_halt_and_are_architecturally_secret_independent() {
        for seed in 0..8u64 {
            let spec = LitmusSpec::generate(seed);
            let run = |secret: u8| {
                let prog = spec.build(secret);
                let mut i = Interpreter::new(&prog);
                i.run(2_000_000).unwrap_or_else(|e| panic!("seed {seed} halts: {e:?}"));
                i.int_regs()
            };
            assert_eq!(run(0), run(42), "seed {seed}: committed state leaked the secret");
        }
    }

    #[test]
    fn anchor_contains_a_guaranteed_leak_in_noise() {
        let a = LitmusSpec::anchor(9);
        assert!(a.guaranteed_leak());
        assert!(a.gadgets.len() > 1, "the minimizer needs something to strip");
        assert_eq!(a.channels(), vec![Channel::Cache]);
    }

    #[test]
    fn minimizer_preserves_failure_and_is_one_minimal() {
        // Synthetic predicate: a spec "fails" iff it still contains the
        // cache-leak gadget (the shape of the real unsafe-baseline
        // check, without the simulator in the loop).
        let fails = |s: &LitmusSpec| s.gadgets.contains(&Gadget::SpectreCache);
        let spec = LitmusSpec::anchor(3);
        assert!(fails(&spec));
        let min = minimize(&spec, fails);
        assert!(fails(&min), "minimization must preserve the failure");
        assert_eq!(min.gadgets, vec![Gadget::SpectreCache], "noise gadgets stripped");
        // 1-minimality: removing the last gadget is never attempted, and
        // removing any gadget of the result un-fails it.
        for i in 0..min.gadgets.len() {
            let mut cand = min.clone();
            cand.gadgets.remove(i);
            assert!(!fails(&cand) || cand.gadgets.is_empty());
        }
    }

    #[test]
    fn minimizer_keeps_multiple_required_gadgets() {
        // Failure requires BOTH leak gadgets: the minimizer must keep
        // both while stripping everything else.
        let fails = |s: &LitmusSpec| {
            s.gadgets.contains(&Gadget::SpectreCache) && s.gadgets.contains(&Gadget::SpectreFp)
        };
        let spec = LitmusSpec {
            seed: 0,
            gadgets: vec![
                Gadget::AluNoise { ops: 2 },
                Gadget::SpectreCache,
                Gadget::FpNoise { ops: 2 },
                Gadget::SpectreFp,
                Gadget::Contention { divs: 2 },
            ],
        };
        let min = minimize(&spec, fails);
        assert_eq!(min.gadgets, vec![Gadget::SpectreCache, Gadget::SpectreFp]);
    }

    #[test]
    fn invariant_blocks_shrinks_and_counts_flips() {
        // Failure: contains the cache gadget. Invariant: the FP gadget
        // must also survive — a stand-in for "the static verdict is
        // unchanged". Deleting SpectreFp keeps the failure but flips
        // the invariant, so the minimizer must refuse that deletion
        // and count it.
        let fails = |s: &LitmusSpec| s.gadgets.contains(&Gadget::SpectreCache);
        let invariant = |s: &LitmusSpec| s.gadgets.contains(&Gadget::SpectreFp);
        let spec = LitmusSpec {
            seed: 0,
            gadgets: vec![
                Gadget::AluNoise { ops: 2 },
                Gadget::SpectreCache,
                Gadget::SpectreFp,
                Gadget::Contention { divs: 2 },
            ],
        };
        let (min, flips) = minimize_with_invariant(&spec, fails, invariant);
        assert_eq!(min.gadgets, vec![Gadget::SpectreCache, Gadget::SpectreFp]);
        assert!(fails(&min) && invariant(&min));
        assert_eq!(flips, 1, "exactly the SpectreFp deletion kept failing but flipped");
    }

    #[test]
    fn trivial_invariant_matches_plain_minimize() {
        let fails = |s: &LitmusSpec| s.gadgets.contains(&Gadget::SpectreCache);
        for seed in [1u64, 3, 9] {
            let spec = LitmusSpec::anchor(seed);
            let plain = minimize(&spec, fails);
            let (inv, flips) = minimize_with_invariant(&spec, fails, |_| true);
            assert_eq!(plain, inv, "seed {seed}");
            assert_eq!(flips, 0, "seed {seed}");
        }
    }

    #[test]
    fn gadget_names_encode_parameters() {
        assert_eq!(Gadget::AluNoise { ops: 3 }.name(), "alu_noise(3)");
        assert_eq!(Gadget::MemNoise { stride: 64, count: 8 }.name(), "mem_noise(64x8)");
        assert_eq!(Gadget::SpectreCache.name(), "spectre_cache");
        let spec = LitmusSpec::anchor(5);
        assert_eq!(spec.gadget_names().len(), spec.gadgets.len());
        assert!(spec.name().starts_with("fuzz_"));
    }
}
