//! Secret-swap differential checker (the AMuLeT-style harness core).
//!
//! A program parameterized by a secret byte is run twice — once per
//! value of [`SECRET_PAIR`] — under the same variant and attack model,
//! and the two runs' attacker observables ([`ObservableTrace`]: total
//! cycles, cache hit/miss counters, and the per-cycle commit /
//! cache-touch event sequence) are compared byte for byte:
//!
//! * a variant that **closes** the program's channel must produce
//!   indistinguishable observables (any [`Divergence`] is a leak);
//! * the **unsafe baseline** on a leaking program must diverge — the
//!   positive control that proves the checker can actually see leaks.
//!
//! Every run's full event stream is additionally fed to the
//! [invariant oracle](crate::oracle), so a run can fail mechanically
//! (e.g. a tainted load issued) even when no observable divergence was
//! measurable.

use crate::oracle::{self, Violation};
use crate::policy;
use sdo_harness::{RunRequest, SimConfig, SimError, Simulator, Variant};
use sdo_isa::Program;
use sdo_obs::{Divergence, Event, ObsConfig, ObservableTrace};
use sdo_uarch::AttackModel;
use sdo_workloads::{Channel, LitmusCase};

/// The two secret bytes every differential check swaps between. Chosen
/// to drive both channels: on the cache channel they select different
/// probe lines; on the FP channel `0` takes the fast (normal) multiply
/// path while `42` forms a subnormal bit pattern and takes the slow one.
pub const SECRET_PAIR: (u8, u8) = (0, 42);

/// Everything captured from one instrumented run.
#[derive(Debug, Clone)]
pub struct Capture {
    /// The attacker-visible projection.
    pub observable: ObservableTrace,
    /// The full event stream (oracle input; counterexample windows).
    pub events: Vec<Event>,
}

/// The verdict of one secret-swap check: a `(program, variant, attack)`
/// triple judged against the policy's expectation.
#[derive(Debug, Clone)]
pub struct SwapOutcome {
    /// Name of the program checked (litmus case or fuzz spec).
    pub case: String,
    /// Variant the two runs executed under.
    pub variant: Variant,
    /// Attack model in force.
    pub attack: AttackModel,
    /// Channel the program leaks through on an unprotected core.
    pub leaks_via: Option<Channel>,
    /// Whether the policy predicts an observable divergence.
    pub expected_divergence: bool,
    /// First observable difference between the two runs, if any.
    pub divergence: Option<Divergence>,
    /// Invariant-oracle findings across both runs.
    pub violations: Vec<Violation>,
    /// Events around the divergence point (for counterexample reports):
    /// from the run with the first secret.
    pub window: Vec<Event>,
}

impl SwapOutcome {
    /// Whether the check passed: the divergence matched the policy's
    /// expectation and the oracle found no violations.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.divergence.is_some() == self.expected_divergence && self.violations.is_empty()
    }

    /// One-line verdict for reports.
    #[must_use]
    pub fn describe(&self) -> String {
        let verdict = match (self.expected_divergence, &self.divergence) {
            (false, None) => "indistinguishable".to_string(),
            (true, Some(d)) => format!("leaks as expected ({})", d.describe()),
            (false, Some(d)) => format!("LEAK: {}", d.describe()),
            (true, None) => "NO LEAK where one was expected (checker blind?)".to_string(),
        };
        let oracle = if self.violations.is_empty() {
            String::new()
        } else {
            format!("; {} oracle violation(s), first: {}", self.violations.len(),
                self.violations[0].detail)
        };
        format!("{} / {} / {}: {verdict}{oracle}", self.case, self.variant, self.attack)
    }
}

/// The instrumented simulator the verification layers share.
#[derive(Debug, Clone)]
pub struct Checker {
    sim: Simulator,
}

/// Event-trace capacity per run. Litmus programs commit a few thousand
/// instructions; a generous bound keeps `dropped == 0`, which the
/// observable comparison requires for soundness.
const TRACE_CAPACITY: usize = 1 << 20;

impl Checker {
    /// A checker on the paper's Table I machine.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(SimConfig::table_i())
    }

    /// A checker on a caller-chosen machine (tests use `tiny`). The
    /// observability probe is forced on: the checker needs the event
    /// trace regardless of what `cfg` asked for.
    #[must_use]
    pub fn with_config(cfg: SimConfig) -> Self {
        Checker { sim: Simulator::new(cfg.with_obs(ObsConfig::full(TRACE_CAPACITY))) }
    }

    /// Runs one program once and captures observables + full events.
    ///
    /// The run goes through [`Simulator::run`] directly rather than a
    /// `Runner`: obs-carrying results hold an in-process probe and are
    /// deliberately never cached or served.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hang`] if the program exceeds the cycle
    /// budget.
    pub fn capture(
        &self,
        program: &Program,
        variant: Variant,
        attack: AttackModel,
    ) -> Result<Capture, SimError> {
        let r = self
            .sim
            .run(&RunRequest::program(program).variant(variant).attack(attack))?
            .into_result();
        let obs = r.obs.as_ref().expect("checker always enables the probe");
        let trace = obs.trace().expect("checker always enables the event trace");
        let counters = vec![
            ("mem.l1_hits", r.mem.l1_hits),
            ("mem.l1_misses", r.mem.l1_misses),
            ("mem.l2_hits", r.mem.l2_hits),
            ("mem.l2_misses", r.mem.l2_misses),
            ("mem.l3_hits", r.mem.l3_hits),
            ("mem.l3_misses", r.mem.l3_misses),
        ];
        Ok(Capture {
            observable: ObservableTrace::project(r.cycles, counters, trace),
            events: trace.events().to_vec(),
        })
    }

    /// Secret-swap check of an arbitrary program builder: runs
    /// `build(SECRET_PAIR.0)` and `build(SECRET_PAIR.1)` under
    /// `(variant, attack)`, diffs observables, and runs the oracle over
    /// both event streams.
    ///
    /// The expectation comes from [`policy::expectation`]; for a
    /// pairing the policy calls unverdictable (open channel, no
    /// guaranteed divergence — e.g. `Perfect` on a cache-leaking
    /// program) this defaults to the strict reading (any divergence
    /// fails). The campaign skips those pairings instead of calling in.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hang`] if either run exceeds the cycle
    /// budget.
    pub fn swap_check(
        &self,
        case: &str,
        leaks_via: Option<Channel>,
        build: impl Fn(u8) -> Program,
        variant: Variant,
        attack: AttackModel,
    ) -> Result<SwapOutcome, SimError> {
        let a = self.capture(&build(SECRET_PAIR.0), variant, attack)?;
        let b = self.capture(&build(SECRET_PAIR.1), variant, attack)?;
        let divergence = a.observable.divergence(&b.observable);
        let mut violations = oracle::check(variant, &a.events);
        violations.extend(oracle::check(variant, &b.events));
        let window = window_around(&a.events, &divergence, &violations);
        Ok(SwapOutcome {
            case: case.to_string(),
            variant,
            attack,
            leaks_via,
            expected_divergence: policy::expectation(variant, leaks_via).unwrap_or(false),
            divergence,
            violations,
            window,
        })
    }

    /// [`Checker::swap_check`] for a corpus [`LitmusCase`], taking the
    /// expectation from the case's ground truth.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hang`] if either run exceeds the cycle
    /// budget.
    pub fn check_case(
        &self,
        case: &LitmusCase,
        variant: Variant,
        attack: AttackModel,
    ) -> Result<SwapOutcome, SimError> {
        self.swap_check(case.name, case.leaks_via, case.build, variant, attack)
    }
}

impl Default for Checker {
    fn default() -> Self {
        Self::new()
    }
}

/// How many events of context a counterexample window keeps on each
/// side of the point of interest.
const WINDOW_RADIUS: usize = 8;

/// Cuts a context window out of the event stream around the first point
/// of interest: the divergence's event index if it names one, else the
/// first oracle violation, else the stream tail (for cycle/counter
/// divergences, the leak shows at the end).
fn window_around(
    events: &[Event],
    divergence: &Option<Divergence>,
    violations: &[Violation],
) -> Vec<Event> {
    let center = match divergence {
        Some(Divergence::Event { index, .. }) => {
            // Map the observable-stream index back to the full stream:
            // count visible events until we reach it.
            let mut seen = 0usize;
            events
                .iter()
                .position(|e| {
                    if sdo_obs::is_observable(e.kind) {
                        seen += 1;
                        seen > *index
                    } else {
                        false
                    }
                })
                .unwrap_or(events.len().saturating_sub(1))
        }
        _ => match violations.first() {
            Some(v) => v.index,
            None => events.len().saturating_sub(1),
        },
    };
    let start = center.saturating_sub(WINDOW_RADIUS);
    let end = (center + WINDOW_RADIUS + 1).min(events.len());
    events[start..end].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_obs::EventKind;

    fn ev(cycle: u64, kind: EventKind) -> Event {
        Event { cycle, seq: cycle, pc: 0, kind }
    }

    #[test]
    fn window_centers_on_divergent_visible_event() {
        // 20 alternating hidden/visible events; divergence at visible
        // index 5 (the 6th commit).
        let events: Vec<Event> = (0..20)
            .map(|i| {
                ev(i, if i % 2 == 0 { EventKind::Dispatch } else { EventKind::Commit })
            })
            .collect();
        let d = Some(Divergence::Event {
            index: 5,
            a: events[11],
            b: events[11],
        });
        let w = window_around(&events, &d, &[]);
        // Center is full-stream index 11 (the 6th visible event).
        assert!(w.contains(&events[11]));
        assert!(w.len() <= 2 * WINDOW_RADIUS + 1);
    }

    #[test]
    fn window_falls_back_to_tail_for_cycle_divergence() {
        let events: Vec<Event> = (0..30).map(|i| ev(i, EventKind::Commit)).collect();
        let w = window_around(&events, &Some(Divergence::Cycles { a: 1, b: 2 }), &[]);
        assert_eq!(w.last(), events.last());
    }

    #[test]
    fn empty_stream_gives_empty_window() {
        assert!(window_around(&[], &None, &[]).is_empty());
    }
}
