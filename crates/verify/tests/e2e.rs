//! End-to-end tests of the verification subsystem against the real
//! simulator: the checker sees the Spectre leak and its absence, and a
//! small campaign is deterministic, jobs-independent, and minimizes its
//! positive control.

use sdo_harness::{JobPool, Variant};
use sdo_uarch::AttackModel;
use sdo_verify::{CampaignConfig, Checker};
use sdo_workloads::litmus_case;

#[test]
fn checker_sees_the_spectre_leak_and_its_absence() {
    let checker = Checker::new();
    let case = litmus_case("spectre_v1").unwrap();

    let unsafe_o = checker.check_case(case, Variant::Unsafe, AttackModel::Spectre).unwrap();
    assert!(unsafe_o.expected_divergence);
    assert!(unsafe_o.divergence.is_some(), "the positive control must leak");
    assert!(unsafe_o.passed(), "{}", unsafe_o.describe());

    let hybrid_o = checker.check_case(case, Variant::Hybrid, AttackModel::Spectre).unwrap();
    assert!(!hybrid_o.expected_divergence);
    assert!(hybrid_o.divergence.is_none(), "STT+SDO must be secret-swap indistinguishable");
    assert!(hybrid_o.violations.is_empty(), "oracle must be clean: {}", hybrid_o.describe());
    assert!(hybrid_o.passed());
}

#[test]
fn campaign_is_deterministic_jobs_independent_and_minimizing() {
    let mut cfg = CampaignConfig::quick(3);
    cfg.fuzz_count = Some(1); // anchor only: keeps debug-mode runtime down
    cfg.variants = Some(vec![Variant::Unsafe, Variant::Hybrid]);
    let checker = Checker::new();

    let serial = cfg.run(&checker, &JobPool::serial()).unwrap();
    let parallel = cfg.run(&checker, &JobPool::new(4)).unwrap();

    assert!(serial.passed(), "{}", serial.render());
    assert_eq!(serial.render(), parallel.render(), "render must be jobs-independent");
    let a: Vec<String> = serial.counterexamples.iter().map(|c| c.to_jsonl()).collect();
    let b: Vec<String> = parallel.counterexamples.iter().map(|c| c.to_jsonl()).collect();
    assert_eq!(a, b, "counterexamples must be byte-identical at any --jobs");

    // The anchor's unsafe-baseline demonstration must exist and be
    // minimized down to the one gadget that carries the leak.
    let demo = serial
        .counterexamples
        .iter()
        .find(|c| !c.kind.is_failure() && !c.gadgets.is_empty())
        .expect("the anchor demonstrates the baseline leak");
    assert_eq!(demo.gadgets, vec!["spectre_cache".to_string()], "minimizer strips the noise");
    assert_eq!(demo.variant, Variant::Unsafe);
}
