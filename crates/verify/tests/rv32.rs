//! Secret-swap checking of the RV32 corpus gadget: a *compiled*
//! Spectre-v1 victim (translated from real RV32 machine code) must
//! leak through the cache on the unprotected core and be secret-swap
//! indistinguishable under every variant whose policy closes the cache
//! channel.

use sdo_harness::Variant;
use sdo_uarch::AttackModel;
use sdo_verify::Checker;
use sdo_workloads::rv32_litmus_cases;

#[test]
fn rv32_gadget_leaks_on_unsafe_and_is_closed_where_policy_says_so() {
    let checker = Checker::new();
    let cases = rv32_litmus_cases();
    let case = cases.iter().find(|c| c.name == "rv32_gadget").expect("gadget case");

    let unsafe_o = checker.check_case(case, Variant::Unsafe, AttackModel::Spectre).unwrap();
    assert!(unsafe_o.expected_divergence, "policy: cache is open under Unsafe");
    assert!(unsafe_o.divergence.is_some(), "the compiled gadget must actually leak");
    assert!(unsafe_o.passed(), "{}", unsafe_o.describe());

    for variant in [Variant::SttLd, Variant::Hybrid] {
        let o = checker.check_case(case, variant, AttackModel::Spectre).unwrap();
        assert!(!o.expected_divergence, "{variant:?}: policy closes the cache channel");
        assert!(o.divergence.is_none(), "{variant:?}: secret must be indistinguishable");
        assert!(o.violations.is_empty(), "{variant:?}: oracle clean: {}", o.describe());
        assert!(o.passed(), "{variant:?}: {}", o.describe());
    }
}
