//! Property-based tests for the memory substrate — including the central
//! security property of the data-oblivious lookup (Definition 2).

use proptest::prelude::*;
use sdo_mem::{
    CacheArray, CacheLevel, CacheParams, MemConfig, MemorySystem, Mesi, MshrFile,
};

fn small_cache() -> CacheArray {
    let params = CacheParams { size_bytes: 1024, ways: 2, latency: 2, banks: 2, mshrs: 4 };
    CacheArray::new(&params, 2)
}

proptest! {
    /// Residency never exceeds capacity, whatever the insertion sequence.
    #[test]
    fn cache_never_overfills(lines in prop::collection::vec(0u64..4096, 1..200)) {
        let mut c = small_cache();
        for l in lines {
            let _ = c.insert(l * 64, Mesi::Exclusive);
            prop_assert!(c.resident_lines() <= 16, "1 KiB / 64 B = 16 lines max");
        }
    }

    /// Probe and touch agree on presence (they differ only in LRU effect).
    #[test]
    fn probe_and_touch_agree(lines in prop::collection::vec(0u64..512, 1..100)) {
        let mut c = small_cache();
        for (i, l) in lines.iter().enumerate() {
            if i % 3 == 0 {
                let _ = c.insert(l * 64, Mesi::Shared);
            }
            let probed = c.probe(l * 64);
            let touched = c.touch(l * 64);
            prop_assert_eq!(probed, touched);
        }
    }

    /// Inserting a line makes exactly that line present; invalidating
    /// removes exactly it.
    #[test]
    fn insert_invalidate_roundtrip(line in 0u64..100_000, other in 0u64..100_000) {
        prop_assume!(line / 64 != other / 64);
        let mut c = small_cache();
        c.insert(line, Mesi::Modified);
        prop_assert!(c.contains(line));
        prop_assert_eq!(c.invalidate(line), Mesi::Modified);
        prop_assert!(!c.contains(line));
        prop_assert_eq!(c.invalidate(other), Mesi::Invalid);
    }

    /// MSHR occupancy is bounded and frees over time.
    #[test]
    fn mshr_occupancy_bounded(reqs in prop::collection::vec((0u64..64, 1u64..100), 1..60)) {
        let mut m = MshrFile::new(4);
        let mut now = 0;
        for (line, dur) in reqs {
            now += 1;
            let _ = m.alloc_or_merge(line * 64, now, now + dur);
            prop_assert!(m.in_use(now) <= 4);
        }
        prop_assert_eq!(m.in_use(now + 100), 0, "all entries expire");
    }

    /// **Definition 2 (data obliviousness):** for any prior access
    /// history and any two probe addresses, an oblivious lookup to the
    /// same predicted level produces identical per-level response times
    /// and identical completion — timing is a function of the prediction
    /// and public occupancy only, never of the address.
    #[test]
    fn obl_lookup_timing_is_address_independent(
        warm in prop::collection::vec(0u64..256, 0..20),
        addr_a in 0u64..1_000_000,
        addr_b in 0u64..1_000_000,
        depth in 1u8..=3,
        start in 0u64..10_000,
    ) {
        let level = CacheLevel::from_depth_clamped(depth);
        let mut m = MemorySystem::new(MemConfig::tiny(), 1);
        let mut t = 0;
        for w in warm {
            let r = m.load(0, w * 64, t);
            t = r.complete_at;
        }
        let t0 = t.max(start);
        let mut m2 = m.clone();
        let a = m.obl_lookup(0, addr_a, level, t0);
        let b = m2.obl_lookup(0, addr_b, level, t0);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.complete_at, b.complete_at);
                prop_assert_eq!(a.responses.len(), b.responses.len());
                for (ra, rb) in a.responses.iter().zip(&b.responses) {
                    prop_assert_eq!(ra.at, rb.at, "per-level response times must match");
                    prop_assert_eq!(ra.level, rb.level);
                }
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (a, b) => prop_assert!(false, "reject decision differed: {a:?} vs {b:?}"),
        }
    }

    /// Oblivious lookups never change residency (no fills, no evictions,
    /// no LRU movement visible through subsequent evictions).
    #[test]
    fn obl_lookup_never_changes_residency(
        warm in prop::collection::vec(0u64..64, 1..15),
        probe in 0u64..100_000,
        depth in 1u8..=3,
    ) {
        let mut m = MemorySystem::new(MemConfig::tiny(), 1);
        let mut t = 0;
        for w in &warm {
            let r = m.load(0, w * 64, t);
            t = r.complete_at;
        }
        let before: Vec<CacheLevel> =
            warm.iter().map(|w| m.residency(0, w * 64)).collect();
        let probe_before = m.residency(0, probe);
        let _ = m.obl_lookup(0, probe, CacheLevel::from_depth_clamped(depth), t + 1000);
        let after: Vec<CacheLevel> =
            warm.iter().map(|w| m.residency(0, w * 64)).collect();
        prop_assert_eq!(before, after, "warm set must be untouched");
        prop_assert_eq!(m.residency(0, probe), probe_before, "probed line must not fill");
    }

    /// Functional correctness (Definition 1): when a lookup reports
    /// success, its value equals architectural memory.
    #[test]
    fn obl_lookup_success_returns_true_value(
        addr in 0u64..100_000,
        value in any::<u64>(),
    ) {
        let mut m = MemorySystem::new(MemConfig::tiny(), 1);
        m.backing_mut().write_word(addr, value);
        let r = m.load(0, addr, 0); // make it resident
        let look = m.obl_lookup(0, addr, CacheLevel::L3, r.complete_at + 10).unwrap();
        if look.success() {
            prop_assert_eq!(look.value, Some(m.peek_word(addr)));
        }
    }

    /// Loads always return architectural values regardless of hierarchy
    /// state (values live in the backing store; caches are timing-only).
    #[test]
    fn loads_always_return_backing_values(
        ops in prop::collection::vec((0u64..128, any::<u64>(), prop::bool::ANY), 1..60)
    ) {
        let mut m = MemorySystem::new(MemConfig::tiny(), 1);
        let mut shadow = std::collections::HashMap::new();
        let mut t = 0;
        for (slot, value, is_store) in ops {
            let addr = slot * 8;
            if is_store {
                m.store(0, addr, value, 8, t);
                // Overlapping 8-byte stores at word granularity.
                shadow.insert(slot, value);
                t += 1;
            } else {
                let r = m.load(0, addr, t);
                if slot % 8 == 0 {
                    // Aligned words don't overlap with neighbours at
                    // word-slot granularity times 8 — compare exactly.
                    if let Some(v) = shadow.get(&slot) {
                        if !shadow.contains_key(&(slot + 1)) && (slot == 0 || !shadow.contains_key(&(slot - 1))) {
                            prop_assert_eq!(r.value, *v);
                        }
                    }
                }
                t = r.complete_at;
            }
        }
    }
}
