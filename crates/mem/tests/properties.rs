//! Randomized property tests for the memory substrate — including the
//! central security property of the data-oblivious lookup (Definition 2).
//!
//! Cases are driven by the deterministic [`SdoRng`] stream, so every run
//! explores the same access histories and failures reproduce exactly.

use sdo_mem::{CacheArray, CacheLevel, CacheParams, MemConfig, MemorySystem, Mesi, MshrFile};
use sdo_rng::SdoRng;

fn small_cache() -> CacheArray {
    let params = CacheParams { size_bytes: 1024, ways: 2, latency: 2, banks: 2, mshrs: 4 };
    CacheArray::new(&params, 2)
}

/// Residency never exceeds capacity, whatever the insertion sequence.
#[test]
fn cache_never_overfills() {
    let mut rng = SdoRng::seed_from_u64(0x3e3_0000);
    for _ in 0..64 {
        let mut c = small_cache();
        for _ in 0..rng.gen_range(1usize..200) {
            let l = rng.gen_range(0u64..4096);
            let _ = c.insert(l * 64, Mesi::Exclusive);
            assert!(c.resident_lines() <= 16, "1 KiB / 64 B = 16 lines max");
        }
    }
}

/// Probe and touch agree on presence (they differ only in LRU effect).
#[test]
fn probe_and_touch_agree() {
    let mut rng = SdoRng::seed_from_u64(0x3e3_0001);
    for _ in 0..64 {
        let mut c = small_cache();
        for i in 0..rng.gen_range(1usize..100) {
            let l = rng.gen_range(0u64..512);
            if i % 3 == 0 {
                let _ = c.insert(l * 64, Mesi::Shared);
            }
            let probed = c.probe(l * 64);
            let touched = c.touch(l * 64);
            assert_eq!(probed, touched);
        }
    }
}

/// Inserting a line makes exactly that line present; invalidating removes
/// exactly it.
#[test]
fn insert_invalidate_roundtrip() {
    let mut rng = SdoRng::seed_from_u64(0x3e3_0002);
    let mut checked = 0;
    while checked < 256 {
        let line = rng.gen_range(0u64..100_000);
        let other = rng.gen_range(0u64..100_000);
        if line / 64 == other / 64 {
            continue;
        }
        checked += 1;
        let mut c = small_cache();
        c.insert(line, Mesi::Modified);
        assert!(c.contains(line));
        assert_eq!(c.invalidate(line), Mesi::Modified);
        assert!(!c.contains(line));
        assert_eq!(c.invalidate(other), Mesi::Invalid);
    }
}

/// MSHR occupancy is bounded and frees over time.
#[test]
fn mshr_occupancy_bounded() {
    let mut rng = SdoRng::seed_from_u64(0x3e3_0003);
    for _ in 0..128 {
        let mut m = MshrFile::new(4);
        let mut now = 0;
        for _ in 0..rng.gen_range(1usize..60) {
            let line = rng.gen_range(0u64..64);
            let dur = rng.gen_range(1u64..100);
            now += 1;
            let _ = m.alloc_or_merge(line * 64, now, now + dur);
            assert!(m.in_use(now) <= 4);
        }
        assert_eq!(m.in_use(now + 100), 0, "all entries expire");
    }
}

/// **Definition 2 (data obliviousness):** for any prior access history and
/// any two probe addresses, an oblivious lookup to the same predicted
/// level produces identical per-level response times and identical
/// completion — timing is a function of the prediction and public
/// occupancy only, never of the address.
#[test]
fn obl_lookup_timing_is_address_independent() {
    let mut rng = SdoRng::seed_from_u64(0x3e3_0004);
    for _ in 0..96 {
        let warm_len = rng.gen_range(0usize..20);
        let warm: Vec<u64> = (0..warm_len).map(|_| rng.gen_range(0u64..256)).collect();
        let addr_a = rng.gen_range(0u64..1_000_000);
        let addr_b = rng.gen_range(0u64..1_000_000);
        let depth = rng.gen_range(1u8..=3);
        let start = rng.gen_range(0u64..10_000);

        let level = CacheLevel::from_depth_clamped(depth);
        let mut m = MemorySystem::new(MemConfig::tiny(), 1);
        let mut t = 0;
        for w in warm {
            let r = m.load(0, w * 64, t);
            t = r.complete_at;
        }
        let t0 = t.max(start);
        let mut m2 = m.clone();
        let a = m.obl_lookup(0, addr_a, level, t0);
        let b = m2.obl_lookup(0, addr_b, level, t0);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.complete_at, b.complete_at);
                assert_eq!(a.responses.len(), b.responses.len());
                for (ra, rb) in a.responses.iter().zip(b.responses.iter()) {
                    assert_eq!(ra.at, rb.at, "per-level response times must match");
                    assert_eq!(ra.level, rb.level);
                }
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            (a, b) => panic!("reject decision differed: {a:?} vs {b:?}"),
        }
    }
}

/// Oblivious lookups never change residency (no fills, no evictions, no
/// LRU movement visible through subsequent evictions).
#[test]
fn obl_lookup_never_changes_residency() {
    let mut rng = SdoRng::seed_from_u64(0x3e3_0005);
    for _ in 0..96 {
        let warm_len = rng.gen_range(1usize..15);
        let warm: Vec<u64> = (0..warm_len).map(|_| rng.gen_range(0u64..64)).collect();
        let probe = rng.gen_range(0u64..100_000);
        let depth = rng.gen_range(1u8..=3);

        let mut m = MemorySystem::new(MemConfig::tiny(), 1);
        let mut t = 0;
        for w in &warm {
            let r = m.load(0, w * 64, t);
            t = r.complete_at;
        }
        let before: Vec<CacheLevel> = warm.iter().map(|w| m.residency(0, w * 64)).collect();
        let probe_before = m.residency(0, probe);
        let _ = m.obl_lookup(0, probe, CacheLevel::from_depth_clamped(depth), t + 1000);
        let after: Vec<CacheLevel> = warm.iter().map(|w| m.residency(0, w * 64)).collect();
        assert_eq!(before, after, "warm set must be untouched");
        assert_eq!(m.residency(0, probe), probe_before, "probed line must not fill");
    }
}

/// Functional correctness (Definition 1): when a lookup reports success,
/// its value equals architectural memory.
#[test]
fn obl_lookup_success_returns_true_value() {
    let mut rng = SdoRng::seed_from_u64(0x3e3_0006);
    for _ in 0..256 {
        let addr = rng.gen_range(0u64..100_000);
        let value = rng.gen::<u64>();
        let mut m = MemorySystem::new(MemConfig::tiny(), 1);
        m.backing_mut().write_word(addr, value);
        let r = m.load(0, addr, 0); // make it resident
        let look = m.obl_lookup(0, addr, CacheLevel::L3, r.complete_at + 10).unwrap();
        if look.success() {
            assert_eq!(look.value, Some(m.peek_word(addr)));
        }
    }
}

/// Loads always return architectural values regardless of hierarchy state
/// (values live in the backing store; caches are timing-only).
#[test]
fn loads_always_return_backing_values() {
    let mut rng = SdoRng::seed_from_u64(0x3e3_0007);
    for _ in 0..96 {
        let mut m = MemorySystem::new(MemConfig::tiny(), 1);
        let mut shadow = std::collections::HashMap::new();
        let mut t = 0;
        for _ in 0..rng.gen_range(1usize..60) {
            let slot = rng.gen_range(0u64..128);
            let value = rng.gen::<u64>();
            let is_store = rng.gen::<bool>();
            let addr = slot * 8;
            if is_store {
                m.store(0, addr, value, 8, t);
                // Overlapping 8-byte stores at word granularity.
                shadow.insert(slot, value);
                t += 1;
            } else {
                let r = m.load(0, addr, t);
                if slot.is_multiple_of(8) {
                    // Aligned words don't overlap with neighbours at
                    // word-slot granularity times 8 — compare exactly.
                    if let Some(v) = shadow.get(&slot) {
                        if !shadow.contains_key(&(slot + 1))
                            && (slot == 0 || !shadow.contains_key(&(slot - 1)))
                        {
                            assert_eq!(r.value, *v);
                        }
                    }
                }
                t = r.complete_at;
            }
        }
    }
}
