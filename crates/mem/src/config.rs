//! Memory-hierarchy configuration (Table I of the paper).

use std::fmt;

/// A simulation cycle count.
pub type Cycle = u64;

/// A byte address in the simulated physical address space.
pub type Addr = u64;

/// A level of the on-chip cache hierarchy.
///
/// The location predictor of Section V-D predicts one of these (or
/// [`CacheLevel::Dram`], which under the paper's recommended design reverts
/// to STT-style delay rather than a DO variant — Section VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheLevel {
    /// Private level-1 data cache.
    L1,
    /// Private level-2 cache.
    L2,
    /// Shared, sliced last-level cache.
    L3,
    /// Off-chip memory (no DO variant; prediction ⇒ delay).
    Dram,
}

impl CacheLevel {
    /// All levels, closest to the core first.
    pub const ALL: [CacheLevel; 4] = [CacheLevel::L1, CacheLevel::L2, CacheLevel::L3, CacheLevel::Dram];

    /// The on-chip cache levels only (valid Obl-Ld lookup depths).
    pub const CACHES: [CacheLevel; 3] = [CacheLevel::L1, CacheLevel::L2, CacheLevel::L3];

    /// 1-based depth (L1 = 1 … Dram = 4); matches the paper's
    /// "predict level *j*" indexing.
    #[must_use]
    pub fn depth(self) -> u8 {
        match self {
            CacheLevel::L1 => 1,
            CacheLevel::L2 => 2,
            CacheLevel::L3 => 3,
            CacheLevel::Dram => 4,
        }
    }

    /// Builds a level from a 1-based depth, clamping into range.
    #[must_use]
    pub fn from_depth_clamped(depth: u8) -> Self {
        match depth {
            0 | 1 => CacheLevel::L1,
            2 => CacheLevel::L2,
            3 => CacheLevel::L3,
            _ => CacheLevel::Dram,
        }
    }

    /// The next level further from the core, if any.
    #[must_use]
    pub fn next(self) -> Option<CacheLevel> {
        match self {
            CacheLevel::L1 => Some(CacheLevel::L2),
            CacheLevel::L2 => Some(CacheLevel::L3),
            CacheLevel::L3 => Some(CacheLevel::Dram),
            CacheLevel::Dram => None,
        }
    }

    /// Whether this level is an on-chip cache (has a DO variant).
    #[must_use]
    pub fn is_cache(self) -> bool {
        self != CacheLevel::Dram
    }
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheLevel::L1 => "L1",
            CacheLevel::L2 => "L2",
            CacheLevel::L3 => "L3",
            CacheLevel::Dram => "DRAM",
        };
        f.write_str(s)
    }
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in cycles (tag + data).
    pub latency: Cycle,
    /// Number of data-array banks.
    pub banks: u32,
    /// MSHR entries available for misses at this level.
    pub mshrs: u32,
}

impl CacheParams {
    /// Number of sets implied by size/ways/line.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not an exact power-of-two set count.
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        let sets = self.size_bytes / (u64::from(self.ways) * crate::LINE_BYTES);
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        sets
    }
}

/// DRAM timing parameters (open-page policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramParams {
    /// Number of independently-timed DRAM banks.
    pub banks: u32,
    /// Bytes per row (row-buffer reach).
    pub row_bytes: u64,
    /// Latency when the access hits the open row.
    pub row_hit_latency: Cycle,
    /// Latency when the row must be opened (precharge + activate + CAS).
    pub row_miss_latency: Cycle,
}

/// L1 TLB parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbParams {
    /// Number of fully-associative entries.
    pub entries: u32,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// L1 TLB hit latency (usually folded into the cache access).
    pub hit_latency: Cycle,
    /// Full page-walk latency charged on a (safe) TLB miss.
    pub walk_latency: Cycle,
}

/// Full memory-hierarchy configuration.
///
/// [`MemConfig::table_i`] reproduces Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Private L1 instruction cache (Table I: 32 KB, 4-way, 2-cycle).
    pub l1i: CacheParams,
    /// Private L1 data cache.
    pub l1: CacheParams,
    /// Private L2 cache.
    pub l2: CacheParams,
    /// Shared L3; `size_bytes` is the *total* across slices.
    pub l3: CacheParams,
    /// DRAM timing.
    pub dram: DramParams,
    /// L1 TLB.
    pub tlb: TlbParams,
    /// Mesh columns (Table I: 4×2 mesh).
    pub mesh_cols: u32,
    /// Mesh rows.
    pub mesh_rows: u32,
    /// Per-hop link latency in cycles.
    pub hop_latency: Cycle,
    /// Cycles an access occupies its cache bank (serialization delay).
    pub bank_occupancy: Cycle,
}

impl MemConfig {
    /// The configuration of Table I:
    /// 32 KB 8-way 2-cycle L1D, 256 KB 8-way 12-cycle L2, 2 MB 8-way
    /// 40-cycle L3, 16 MSHRs, 4×2 mesh with 1-cycle hops, and ~100-cycle
    /// DRAM (50 ns at 2 GHz) beyond the L3.
    #[must_use]
    pub fn table_i() -> Self {
        MemConfig {
            l1i: CacheParams { size_bytes: 32 * 1024, ways: 4, latency: 2, banks: 4, mshrs: 8 },
            l1: CacheParams { size_bytes: 32 * 1024, ways: 8, latency: 2, banks: 8, mshrs: 16 },
            l2: CacheParams { size_bytes: 256 * 1024, ways: 8, latency: 12, banks: 8, mshrs: 16 },
            l3: CacheParams {
                size_bytes: 2 * 1024 * 1024,
                ways: 8,
                latency: 40,
                banks: 8,
                mshrs: 16,
            },
            dram: DramParams {
                banks: 8,
                row_bytes: 8 * 1024,
                row_hit_latency: 80,
                row_miss_latency: 120,
            },
            // Effective TLB reach (L1 + L2 TLB combined — only the L1 miss
            // path is modeled, so the entry count reflects total reach).
            tlb: TlbParams { entries: 512, page_bytes: 4096, hit_latency: 1, walk_latency: 60 },
            mesh_cols: 4,
            mesh_rows: 2,
            hop_latency: 1,
            bank_occupancy: 2,
        }
    }

    /// A tiny configuration for unit tests: small caches so evictions and
    /// misses are easy to provoke, short latencies so tests stay readable.
    #[must_use]
    pub fn tiny() -> Self {
        MemConfig {
            l1i: CacheParams { size_bytes: 512, ways: 2, latency: 2, banks: 2, mshrs: 4 },
            l1: CacheParams { size_bytes: 512, ways: 2, latency: 2, banks: 2, mshrs: 4 },
            l2: CacheParams { size_bytes: 2048, ways: 2, latency: 10, banks: 2, mshrs: 4 },
            l3: CacheParams { size_bytes: 8192, ways: 4, latency: 30, banks: 2, mshrs: 4 },
            dram: DramParams {
                banks: 2,
                row_bytes: 1024,
                row_hit_latency: 60,
                row_miss_latency: 100,
            },
            tlb: TlbParams { entries: 4, page_bytes: 4096, hit_latency: 1, walk_latency: 50 },
            mesh_cols: 2,
            mesh_rows: 1,
            hop_latency: 1,
            bank_occupancy: 2,
        }
    }

    /// Cache parameters for an on-chip level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is [`CacheLevel::Dram`].
    #[must_use]
    pub fn cache(&self, level: CacheLevel) -> &CacheParams {
        match level {
            CacheLevel::L1 => &self.l1,
            CacheLevel::L2 => &self.l2,
            CacheLevel::L3 => &self.l3,
            CacheLevel::Dram => panic!("DRAM has no cache parameters"),
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::table_i()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_matches_paper_sizes() {
        let c = MemConfig::table_i();
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l3.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l1.latency, 2);
        assert_eq!(c.l2.latency, 12);
        assert_eq!(c.l3.latency, 40);
        assert_eq!(c.l1.mshrs, 16);
        assert_eq!(c.mesh_cols * c.mesh_rows, 8);
    }

    #[test]
    fn set_counts_are_powers_of_two() {
        let c = MemConfig::table_i();
        assert_eq!(c.l1.num_sets(), 64);
        assert_eq!(c.l2.num_sets(), 512);
        assert_eq!(c.l3.num_sets(), 4096);
        let t = MemConfig::tiny();
        assert_eq!(t.l1.num_sets(), 4);
    }

    #[test]
    fn level_depth_ordering_and_next() {
        assert!(CacheLevel::L1 < CacheLevel::L2);
        assert!(CacheLevel::L3 < CacheLevel::Dram);
        assert_eq!(CacheLevel::L1.depth(), 1);
        assert_eq!(CacheLevel::Dram.depth(), 4);
        assert_eq!(CacheLevel::L2.next(), Some(CacheLevel::L3));
        assert_eq!(CacheLevel::Dram.next(), None);
    }

    #[test]
    fn level_from_depth_clamps() {
        assert_eq!(CacheLevel::from_depth_clamped(0), CacheLevel::L1);
        assert_eq!(CacheLevel::from_depth_clamped(1), CacheLevel::L1);
        assert_eq!(CacheLevel::from_depth_clamped(3), CacheLevel::L3);
        assert_eq!(CacheLevel::from_depth_clamped(9), CacheLevel::Dram);
    }

    #[test]
    fn level_display_and_is_cache() {
        assert_eq!(CacheLevel::L3.to_string(), "L3");
        assert_eq!(CacheLevel::Dram.to_string(), "DRAM");
        assert!(CacheLevel::L1.is_cache());
        assert!(!CacheLevel::Dram.is_cache());
        assert_eq!(CacheLevel::CACHES.len(), 3);
    }

    #[test]
    fn cache_accessor_panics_for_dram() {
        let c = MemConfig::tiny();
        assert_eq!(c.cache(CacheLevel::L2).latency, 10);
        let r = std::panic::catch_unwind(|| c.cache(CacheLevel::Dram).latency);
        assert!(r.is_err());
    }
}
