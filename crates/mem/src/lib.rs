//! # sdo-mem — memory subsystem substrate for the SDO simulator
//!
//! A timing + functional model of the memory hierarchy described in
//! Section VI-B of the SDO paper (ISCA 2020):
//!
//! * per-core private, banked, set-associative **L1D and L2** caches with
//!   LRU replacement and per-bank busy tracking,
//! * a **shared, sliced, inclusive L3** (one slice per core, address-hash
//!   slice selection) kept coherent with a directory-based MESI protocol,
//! * **MSHR files** bounding outstanding misses at each level,
//! * a **mesh interconnect** hop-latency model between cores and L3 slices,
//! * **DRAM** with per-bank open-row (row-buffer) timing,
//! * an **L1 TLB** with probe (no-fill) and access (fill) paths,
//! * a sparse **backing store** holding architectural memory contents.
//!
//! On top of the ordinary access path the system implements the paper's
//! **data-oblivious lookup** ([`MemorySystem::obl_lookup`]): a tag probe of
//! cache levels L1..=N that makes *no address-dependent state change* —
//! no fills, no LRU updates, full-bank occupancy instead of one bank,
//! address-independent (first-free) MSHR allocation, and an all-slice
//! broadcast for the L3 — plus the *validation* and *exposure* accesses of
//! InvisiSpec that SDO reuses (Section V-C1).
//!
//! ## Design note: timing vs. function
//!
//! Caches model *timing and occupancy* only; every committed byte lives in
//! the [`BackingStore`]. A load's value is read from the backing store when
//! the access is performed, and validation re-reads and compares — exactly
//! the value-based consistency check the paper adopts from InvisiSpec.
//!
//! ## Example
//!
//! ```rust
//! use sdo_mem::{MemConfig, MemorySystem, ServedBy};
//!
//! let mut mem = MemorySystem::new(MemConfig::table_i(), 1);
//! mem.backing_mut().write_word(0x1000, 42);
//!
//! // Cold access: served by DRAM; the line is filled on the way back.
//! let first = mem.load(0, 0x1000, 0);
//! assert_eq!(first.value, 42);
//! assert_eq!(first.served_by, ServedBy::Dram);
//!
//! // Hot access: now an L1 hit.
//! let second = mem.load(0, 0x1000, first.complete_at);
//! assert_eq!(second.served_by, ServedBy::L1);
//! assert!(second.latency() < first.latency());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backing;
mod hash;
mod cache;
mod config;
mod dram;
mod interconnect;
mod mshr;
mod stats;
mod system;
mod tlb;

pub use backing::BackingStore;
pub use cache::{CacheArray, EvictedLine, Mesi};
pub use config::{Addr, CacheLevel, CacheParams, Cycle, DramParams, MemConfig, TlbParams};
pub use dram::Dram;
pub use interconnect::Mesh;
pub use mshr::MshrFile;
pub use stats::MemStats;
pub use system::{
    AccessResult, MemorySystem, OblLookup, OblReject, OblResponse, OblResponses, ServedBy, StoreResult,
};
pub use tlb::Tlb;

/// Number of bytes in a cache line (fixed at 64 throughout, per Table I).
pub const LINE_BYTES: u64 = 64;

/// The cache-line address (line-aligned) containing `addr`.
#[must_use]
pub fn line_of(addr: Addr) -> Addr {
    addr & !(LINE_BYTES - 1)
}

/// Whether two byte addresses fall in the same cache line.
#[must_use]
pub fn same_line(a: Addr, b: Addr) -> bool {
    line_of(a) == line_of(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_masks_low_bits() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(0x12345), 0x12340);
    }

    #[test]
    fn same_line_detects_boundaries() {
        assert!(same_line(0, 63));
        assert!(!same_line(63, 64));
    }
}
