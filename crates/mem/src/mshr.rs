//! Miss status holding registers (MSHRs).

use crate::config::{Addr, Cycle};
use crate::line_of;

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: Addr,
    free_at: Cycle,
    /// Obl-Ld entries are private: they never merge with other requests
    /// (Section VI-B, "every Obl-Ld must allocate an MSHR; it cannot share
    /// an MSHR with any other request").
    private: bool,
    /// Depth of the level that serves the miss (for merged requesters to
    /// learn where their data came from). 0 when unknown.
    fill_depth: u8,
}

/// A bounded file of miss status holding registers for one cache.
///
/// Normal misses to the same line *merge* into an existing entry; the
/// data-oblivious allocation path ([`MshrFile::alloc_private`]) instead
/// takes the first free entry regardless of address, so occupancy is a
/// function of public information only.
///
/// # Examples
///
/// ```rust
/// use sdo_mem::MshrFile;
/// let mut m = MshrFile::new(2);
/// assert!(m.alloc_or_merge(0x40, 0, 100).is_some());
/// // Same line merges — still one entry used.
/// assert!(m.alloc_or_merge(0x40, 1, 90).is_some());
/// assert_eq!(m.in_use(1), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    /// Entry `i` is meaningful only when bit `i` of `occupied` is set.
    entries: Vec<Entry>,
    /// Occupancy bitmask — one bit per register. Lets every scan skip
    /// straight to live entries (or the first free one) instead of
    /// walking the whole file.
    occupied: u64,
    /// High-water mark of simultaneously live registers, maintained at
    /// allocation time (observability: how close the file came to the
    /// full stall / Obl-Ld reject condition).
    peak: usize,
}

/// Iterates the indices of the set bits of `mask`, ascending.
fn set_bits(mask: u64) -> impl Iterator<Item = usize> {
    std::iter::successors(
        (mask != 0).then_some(mask),
        |m| {
            let rest = m & (m - 1);
            (rest != 0).then_some(rest)
        },
    )
    .map(|m| m.trailing_zeros() as usize)
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` exceeds 64 (the occupancy mask width; real
    /// MSHR files are far smaller).
    #[must_use]
    pub fn new(capacity: u32) -> Self {
        assert!(capacity <= 64, "MSHR file capacity limited to 64 registers");
        MshrFile {
            entries: vec![
                Entry { line: 0, free_at: 0, private: false, fill_depth: 0 };
                capacity as usize
            ],
            occupied: 0,
            peak: 0,
        }
    }

    /// Total number of registers.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    fn full_mask(&self) -> u64 {
        match self.entries.len() {
            64 => u64::MAX,
            n => (1u64 << n) - 1,
        }
    }

    /// Registers still occupied at cycle `now`.
    #[must_use]
    pub fn in_use(&self, now: Cycle) -> usize {
        set_bits(self.occupied).filter(|&i| self.entries[i].free_at > now).count()
    }

    fn reap(&mut self, now: Cycle) {
        for i in set_bits(self.occupied) {
            if self.entries[i].free_at <= now {
                self.occupied &= !(1 << i);
            }
        }
    }

    fn first_free(&self) -> Option<usize> {
        let free = !self.occupied & self.full_mask();
        (free != 0).then(|| free.trailing_zeros() as usize)
    }

    fn fill(&mut self, i: usize, entry: Entry) {
        self.entries[i] = entry;
        self.occupied |= 1 << i;
        // Every alloc path reaps expired entries before filling, so the
        // popcount is the live register count.
        self.peak = self.peak.max(self.occupied.count_ones() as usize);
    }

    /// High-water mark of simultaneously occupied registers over the
    /// file's lifetime.
    #[must_use]
    pub fn peak_in_use(&self) -> usize {
        self.peak
    }

    /// Allocates an entry for a normal miss on `addr`'s line, or merges
    /// with an outstanding miss to the same line. Returns the cycle the
    /// (possibly pre-existing) miss completes, or `None` if the file is
    /// full.
    ///
    /// On a merge, the returned completion is the *existing* miss's
    /// completion (the merged request rides along).
    pub fn alloc_or_merge(&mut self, addr: Addr, now: Cycle, complete_at: Cycle) -> Option<Cycle> {
        if let Some((done, _)) = self.outstanding(addr, now) {
            return Some(done);
        }
        self.reap(now);
        let line = line_of(addr);
        let i = self.first_free()?;
        self.fill(i, Entry { line, free_at: complete_at, private: false, fill_depth: 0 });
        Some(complete_at)
    }

    /// If a non-private miss to `addr`'s line is outstanding at `now`,
    /// returns its `(completion, fill_depth)` so the new request can merge.
    #[must_use]
    pub fn outstanding(&self, addr: Addr, now: Cycle) -> Option<(Cycle, u8)> {
        let line = line_of(addr);
        set_bits(self.occupied)
            .map(|i| &self.entries[i])
            .find(|e| !e.private && e.line == line && e.free_at > now)
            .map(|e| (e.free_at, e.fill_depth))
    }

    /// Earliest cycle `>= arrive` at which a register is available.
    #[must_use]
    pub fn earliest_slot(&self, arrive: Cycle) -> Cycle {
        if self.occupied != self.full_mask()
            || set_bits(self.occupied).any(|i| self.entries[i].free_at <= arrive)
        {
            return arrive;
        }
        set_bits(self.occupied)
            .map(|i| self.entries[i].free_at)
            .min()
            .unwrap_or(arrive)
            .max(arrive)
    }

    /// Allocates unconditionally at `now` (the caller must have waited
    /// until [`MshrFile::earliest_slot`]); records which level will fill.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if no register is actually free at `now`.
    pub fn force_alloc(&mut self, addr: Addr, now: Cycle, free_at: Cycle, fill_depth: u8) {
        self.reap(now);
        let slot = self.first_free();
        debug_assert!(slot.is_some(), "force_alloc without a free MSHR");
        if let Some(i) = slot {
            self.fill(i, Entry { line: line_of(addr), free_at, private: false, fill_depth });
        }
    }

    /// Allocates a private entry for a data-oblivious lookup, choosing the
    /// first free register (address-independent). Returns `false` if the
    /// file is full, in which case the Obl-Ld must retry — a stall that
    /// reveals only occupancy, which is public.
    pub fn alloc_private(&mut self, addr: Addr, now: Cycle, free_at: Cycle) -> bool {
        self.reap(now);
        match self.first_free() {
            Some(i) => {
                self.fill(i, Entry { line: line_of(addr), free_at, private: true, fill_depth: 0 });
                true
            }
            None => false,
        }
    }

    /// Earliest cycle strictly after `now` at which an occupied register
    /// completes (frees its slot / fills its line). `None` when nothing
    /// is outstanding — the file cannot generate a future event.
    #[must_use]
    pub fn next_completion(&self, now: Cycle) -> Option<Cycle> {
        set_bits(self.occupied)
            .map(|i| self.entries[i].free_at)
            .filter(|&at| at > now)
            .min()
    }

    /// Whether at least one register is free at `now`.
    #[must_use]
    pub fn has_free(&self, now: Cycle) -> bool {
        self.occupied != self.full_mask()
            || set_bits(self.occupied).any(|i| self.entries[i].free_at <= now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_completion_tracks_earliest_in_flight_entry() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.next_completion(0), None, "empty file has no future event");
        m.alloc_or_merge(0x00, 0, 50);
        m.alloc_or_merge(0x40, 0, 30);
        m.alloc_or_merge(0x80, 0, 90);
        assert_eq!(m.next_completion(0), Some(30));
        // Strictly-after semantics: an entry completing *at* `now` is no
        // longer a future event.
        assert_eq!(m.next_completion(30), Some(50));
        assert_eq!(m.next_completion(89), Some(90));
        assert_eq!(m.next_completion(90), None);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.alloc_or_merge(0x00, 0, 50), Some(50));
        assert_eq!(m.alloc_or_merge(0x40, 0, 60), Some(60));
        assert_eq!(m.alloc_or_merge(0x80, 0, 70), None, "file full");
        assert_eq!(m.in_use(0), 2);
        assert!(!m.has_free(0));
    }

    #[test]
    fn same_line_merges_and_returns_existing_completion() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.alloc_or_merge(0x100, 0, 80), Some(80));
        // A second miss to the same line merges even though the file is full.
        assert_eq!(m.alloc_or_merge(0x108, 5, 120), Some(80));
        assert_eq!(m.in_use(5), 1);
    }

    #[test]
    fn entries_expire() {
        let mut m = MshrFile::new(1);
        m.alloc_or_merge(0x00, 0, 10).unwrap();
        assert!(!m.has_free(5));
        assert!(m.has_free(10));
        assert_eq!(m.alloc_or_merge(0x40, 10, 30), Some(30));
    }

    #[test]
    fn private_entries_never_merge() {
        let mut m = MshrFile::new(2);
        assert!(m.alloc_private(0x200, 0, 100));
        // A normal miss to the same line must NOT merge with the private
        // (Obl-Ld) entry; it takes its own slot.
        assert_eq!(m.alloc_or_merge(0x200, 0, 90), Some(90));
        assert_eq!(m.in_use(0), 2);
        // And a further private alloc fails: file is full.
        assert!(!m.alloc_private(0x300, 0, 100));
    }

    #[test]
    fn private_alloc_is_first_free_slot() {
        let mut m = MshrFile::new(3);
        m.alloc_or_merge(0x00, 0, 100).unwrap();
        assert!(m.alloc_private(0xff40, 0, 50));
        assert_eq!(m.in_use(0), 2);
        // After the private entry expires its slot is reusable.
        assert!(m.alloc_private(0x40, 60, 90));
        assert_eq!(m.in_use(60), 2);
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(MshrFile::new(16).capacity(), 16);
    }

    #[test]
    fn peak_tracks_high_water_not_current() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.peak_in_use(), 0);
        m.alloc_or_merge(0x00, 0, 10).unwrap();
        m.alloc_or_merge(0x40, 0, 10).unwrap();
        m.alloc_or_merge(0x80, 0, 10).unwrap();
        assert_eq!(m.peak_in_use(), 3);
        // After the entries expire, occupancy drops but the peak holds.
        m.alloc_or_merge(0xc0, 20, 30).unwrap();
        assert_eq!(m.in_use(20), 1);
        assert_eq!(m.peak_in_use(), 3);
    }

    #[test]
    fn outstanding_and_earliest_slot() {
        let mut m = MshrFile::new(1);
        m.alloc_or_merge(0x80, 0, 40).unwrap();
        assert_eq!(m.outstanding(0xa0, 10), Some((40, 0)));
        assert_eq!(m.outstanding(0x140, 10), None);
        assert_eq!(m.earliest_slot(10), 40, "full file frees at 40");
        assert_eq!(m.earliest_slot(41), 41);
    }

    #[test]
    fn force_alloc_records_fill_depth() {
        let mut m = MshrFile::new(2);
        m.force_alloc(0x40, 0, 99, 3);
        assert_eq!(m.outstanding(0x40, 1), Some((99, 3)));
    }
}
