//! Memory-system statistics counters.

use std::fmt;

use sdo_obs::MetricsSnapshot;

/// Counters accumulated by the memory system; read by the experiment
/// harness when attributing overhead (Figure 7) and by tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Instruction fetches served by the L1I.
    pub icache_hits: u64,
    /// Instruction fetches that missed the L1I.
    pub icache_misses: u64,
    /// Normal (non-oblivious) loads served by the L1.
    pub l1_hits: u64,
    /// Normal loads that missed the L1.
    pub l1_misses: u64,
    /// Normal loads served by the L2.
    pub l2_hits: u64,
    /// Normal loads that missed the L2.
    pub l2_misses: u64,
    /// Normal loads served by the L3.
    pub l3_hits: u64,
    /// Normal loads that missed the L3 (went to DRAM).
    pub l3_misses: u64,
    /// Loads served by a remote core's dirty copy.
    pub remote_hits: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses.
    pub dram_row_misses: u64,
    /// Data-oblivious lookups issued.
    pub obl_lookups: u64,
    /// Per-level hit outcomes of oblivious lookups (L1, L2, L3).
    pub obl_level_hits: [u64; 3],
    /// Oblivious lookups that missed all probed levels.
    pub obl_all_miss: u64,
    /// Oblivious lookups rejected because an MSHR file was full.
    pub obl_mshr_rejects: u64,
    /// Validation accesses performed (InvisiSpec-style).
    pub validations: u64,
    /// Validations whose value mismatched (consistency squash trigger).
    pub validation_mismatches: u64,
    /// Exposure accesses performed.
    pub exposures: u64,
    /// Committed stores.
    pub stores: u64,
    /// Invalidation messages delivered to cores.
    pub invalidations_sent: u64,
    /// L1 TLB hits on the normal path.
    pub tlb_hits: u64,
    /// L1 TLB misses (page walks) on the normal path.
    pub tlb_misses: u64,
    /// Data-oblivious TLB probes that hit.
    pub tlb_probe_hits: u64,
    /// Data-oblivious TLB probes that missed (Obl-Ld proceeds with ⊥).
    pub tlb_probe_misses: u64,
}

impl MemStats {
    /// Total normal loads observed.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.l1_hits + self.l1_misses
    }

    /// L1 hit rate over normal loads, in `0.0..=1.0` (0 if no loads).
    #[must_use]
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.loads();
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &MemStats) {
        let MemStats {
            icache_hits,
            icache_misses,
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            l3_hits,
            l3_misses,
            remote_hits,
            dram_row_hits,
            dram_row_misses,
            obl_lookups,
            obl_level_hits,
            obl_all_miss,
            obl_mshr_rejects,
            validations,
            validation_mismatches,
            exposures,
            stores,
            invalidations_sent,
            tlb_hits,
            tlb_misses,
            tlb_probe_hits,
            tlb_probe_misses,
        } = other;
        self.icache_hits += icache_hits;
        self.icache_misses += icache_misses;
        self.l1_hits += l1_hits;
        self.l1_misses += l1_misses;
        self.l2_hits += l2_hits;
        self.l2_misses += l2_misses;
        self.l3_hits += l3_hits;
        self.l3_misses += l3_misses;
        self.remote_hits += remote_hits;
        self.dram_row_hits += dram_row_hits;
        self.dram_row_misses += dram_row_misses;
        self.obl_lookups += obl_lookups;
        for (a, b) in self.obl_level_hits.iter_mut().zip(obl_level_hits) {
            *a += b;
        }
        self.obl_all_miss += obl_all_miss;
        self.obl_mshr_rejects += obl_mshr_rejects;
        self.validations += validations;
        self.validation_mismatches += validation_mismatches;
        self.exposures += exposures;
        self.stores += stores;
        self.invalidations_sent += invalidations_sent;
        self.tlb_hits += tlb_hits;
        self.tlb_misses += tlb_misses;
        self.tlb_probe_hits += tlb_probe_hits;
        self.tlb_probe_misses += tlb_probe_misses;
    }

    /// Registers every counter under `prefix` in `m` (hierarchical
    /// paths, e.g. `mem.l1.hits`). Destructures `self` so adding a
    /// field without exporting it is a compile error — the registry
    /// cannot drift from the struct.
    pub fn export_metrics(&self, m: &mut MetricsSnapshot, prefix: &str) {
        let MemStats {
            icache_hits,
            icache_misses,
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            l3_hits,
            l3_misses,
            remote_hits,
            dram_row_hits,
            dram_row_misses,
            obl_lookups,
            obl_level_hits,
            obl_all_miss,
            obl_mshr_rejects,
            validations,
            validation_mismatches,
            exposures,
            stores,
            invalidations_sent,
            tlb_hits,
            tlb_misses,
            tlb_probe_hits,
            tlb_probe_misses,
        } = *self;
        let add = |m: &mut MetricsSnapshot, name: &str, v: u64| {
            m.add(&format!("{prefix}.{name}"), v);
        };
        add(m, "icache.hits", icache_hits);
        add(m, "icache.misses", icache_misses);
        add(m, "l1.hits", l1_hits);
        add(m, "l1.misses", l1_misses);
        add(m, "l2.hits", l2_hits);
        add(m, "l2.misses", l2_misses);
        add(m, "l3.hits", l3_hits);
        add(m, "l3.misses", l3_misses);
        add(m, "remote_hits", remote_hits);
        add(m, "dram.row_hits", dram_row_hits);
        add(m, "dram.row_misses", dram_row_misses);
        add(m, "obl.lookups", obl_lookups);
        add(m, "obl.l1_hits", obl_level_hits[0]);
        add(m, "obl.l2_hits", obl_level_hits[1]);
        add(m, "obl.l3_hits", obl_level_hits[2]);
        add(m, "obl.all_miss", obl_all_miss);
        add(m, "obl.mshr_rejects", obl_mshr_rejects);
        add(m, "validations", validations);
        add(m, "validation_mismatches", validation_mismatches);
        add(m, "exposures", exposures);
        add(m, "stores", stores);
        add(m, "invalidations_sent", invalidations_sent);
        add(m, "tlb.hits", tlb_hits);
        add(m, "tlb.misses", tlb_misses);
        add(m, "tlb.probe_hits", tlb_probe_hits);
        add(m, "tlb.probe_misses", tlb_probe_misses);
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "loads: {} (L1 {:.1}% | L2 {} | L3 {} | DRAM {})",
            self.loads(),
            100.0 * self.l1_hit_rate(),
            self.l2_hits,
            self.l3_hits,
            self.l3_misses
        )?;
        writeln!(
            f,
            "obl: {} lookups (hits L1/L2/L3 {}/{}/{}, all-miss {}, rejects {})",
            self.obl_lookups,
            self.obl_level_hits[0],
            self.obl_level_hits[1],
            self.obl_level_hits[2],
            self.obl_all_miss,
            self.obl_mshr_rejects
        )?;
        write!(
            f,
            "validate/expose: {}/{} (mismatch {}), stores {}, invals {}",
            self.validations,
            self.exposures,
            self.validation_mismatches,
            self.stores,
            self.invalidations_sent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        let s = MemStats::default();
        assert_eq!(s.l1_hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computes() {
        let s = MemStats { l1_hits: 3, l1_misses: 1, ..Default::default() };
        assert_eq!(s.loads(), 4);
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = MemStats { l1_hits: 1, obl_level_hits: [1, 2, 3], ..Default::default() };
        let b = MemStats { l1_hits: 2, obl_level_hits: [10, 20, 30], validations: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.l1_hits, 3);
        assert_eq!(a.obl_level_hits, [11, 22, 33]);
        assert_eq!(a.validations, 5);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!MemStats::default().to_string().is_empty());
    }

    #[test]
    fn export_covers_every_field() {
        let s = MemStats { l1_hits: 7, obl_level_hits: [1, 2, 3], ..Default::default() };
        let mut m = MetricsSnapshot::new();
        s.export_metrics(&mut m, "mem");
        // 24 scalar fields + obl_level_hits expanded to 3 paths.
        assert_eq!(m.len(), 26);
        assert_eq!(m.counter("mem.l1.hits"), Some(7));
        assert_eq!(m.counter("mem.obl.l3_hits"), Some(3));
        // Exporting twice accumulates, matching merge() semantics.
        s.export_metrics(&mut m, "mem");
        assert_eq!(m.counter("mem.l1.hits"), Some(14));
    }
}
