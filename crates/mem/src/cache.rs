//! Banked, set-associative cache arrays with MESI line states.

use crate::config::{Addr, CacheParams, Cycle};
use crate::{line_of, LINE_BYTES};

/// MESI coherence state of a cached line.
///
/// `Invalid` is represented by absence from the array; it exists as a
/// variant so protocol code can name the result of a downgrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mesi {
    /// Dirty and exclusively owned.
    Modified,
    /// Clean and exclusively owned.
    Exclusive,
    /// Clean, possibly shared with other caches.
    Shared,
    /// Not present.
    Invalid,
}

impl Mesi {
    /// Whether the state permits satisfying a store without a coherence
    /// transaction.
    #[must_use]
    pub fn is_writable(self) -> bool {
        matches!(self, Mesi::Modified | Mesi::Exclusive)
    }

    /// Whether the state holds a valid copy of the data.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self != Mesi::Invalid
    }
}

/// A line evicted by [`CacheArray::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line address of the victim.
    pub line: Addr,
    /// Whether the victim was dirty (Modified) and must be written back.
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    tag: u64,
    state: Mesi,
    last_use: u64,
}

/// One set-associative, banked cache structure (tag + data array).
///
/// The array models *presence, replacement and bank timing*; data values
/// live in the [`BackingStore`](crate::BackingStore). Two probe flavors
/// support the paper's two access kinds:
///
/// * [`CacheArray::touch`] — a normal lookup that updates LRU state,
/// * [`CacheArray::probe`] — a **data-oblivious** lookup that leaves all
///   replacement state untouched (Obl-Ld, Section V-B: "a lookup makes no
///   address-dependent state changes to the cache").
///
/// # Examples
///
/// ```rust
/// use sdo_mem::{CacheArray, CacheParams, Mesi};
/// let params = CacheParams { size_bytes: 512, ways: 2, latency: 2, banks: 2, mshrs: 4 };
/// let mut c = CacheArray::new(&params, 2);
/// assert_eq!(c.probe(0), Mesi::Invalid);
/// c.insert(0, Mesi::Exclusive);
/// assert_eq!(c.probe(0), Mesi::Exclusive);
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    /// All ways of all sets in one flat allocation: set `i` owns
    /// `slots[i * ways .. (i + 1) * ways]`. `Mesi::Invalid` marks an
    /// empty way, so scans need no per-set length bookkeeping and the
    /// whole structure is a single contiguous block.
    slots: Vec<Slot>,
    ways: usize,
    num_sets: u64,
    bank_busy: Vec<Cycle>,
    bank_occupancy: Cycle,
    use_tick: u64,
}

impl CacheArray {
    /// Builds an empty array with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count
    /// (see [`CacheParams::num_sets`]).
    #[must_use]
    pub fn new(params: &CacheParams, bank_occupancy: Cycle) -> Self {
        let num_sets = params.num_sets();
        let ways = params.ways as usize;
        CacheArray {
            slots: vec![
                Slot { tag: 0, state: Mesi::Invalid, last_use: 0 };
                num_sets as usize * ways
            ],
            ways,
            num_sets,
            bank_busy: vec![0; params.banks as usize],
            bank_occupancy,
            use_tick: 0,
        }
    }

    fn set_range(&self, line: Addr) -> std::ops::Range<usize> {
        let idx = ((line / LINE_BYTES) % self.num_sets) as usize * self.ways;
        idx..idx + self.ways
    }

    /// Probes for a line **without** updating replacement state
    /// (data-oblivious tag check). Returns the line's MESI state.
    #[must_use]
    pub fn probe(&self, addr: Addr) -> Mesi {
        let line = line_of(addr);
        self.slots[self.set_range(line)]
            .iter()
            .find(|s| s.state.is_valid() && s.tag == line)
            .map_or(Mesi::Invalid, |s| s.state)
    }

    /// Looks up a line, updating LRU state on a hit.
    #[must_use]
    pub fn touch(&mut self, addr: Addr) -> Mesi {
        let line = line_of(addr);
        let range = self.set_range(line);
        self.use_tick += 1;
        let tick = self.use_tick;
        match self.slots[range].iter_mut().find(|s| s.state.is_valid() && s.tag == line) {
            Some(slot) => {
                slot.last_use = tick;
                slot.state
            }
            None => Mesi::Invalid,
        }
    }

    /// Upgrades/downgrades the state of a present line. Returns `false` if
    /// the line is not present (caller must insert instead).
    pub fn set_state(&mut self, addr: Addr, state: Mesi) -> bool {
        let line = line_of(addr);
        if state == Mesi::Invalid {
            return self.invalidate(addr).is_valid();
        }
        let range = self.set_range(line);
        match self.slots[range].iter_mut().find(|s| s.state.is_valid() && s.tag == line) {
            Some(slot) => {
                slot.state = state;
                true
            }
            None => false,
        }
    }

    /// Inserts a line in `state`, evicting the LRU victim if the set is
    /// full. If the line is already present its state is updated in place
    /// and no eviction occurs.
    pub fn insert(&mut self, addr: Addr, state: Mesi) -> Option<EvictedLine> {
        assert!(state.is_valid(), "cannot insert a line in Invalid state");
        let line = line_of(addr);
        let range = self.set_range(line);
        self.use_tick += 1;
        let tick = self.use_tick;
        let set = &mut self.slots[range];

        // One pass finds the matching way, a free way, and the LRU victim.
        let mut free: Option<usize> = None;
        let mut victim = 0usize;
        let mut victim_use = u64::MAX;
        for (i, s) in set.iter_mut().enumerate() {
            if !s.state.is_valid() {
                if free.is_none() {
                    free = Some(i);
                }
            } else if s.tag == line {
                s.state = state;
                s.last_use = tick;
                return None;
            } else if s.last_use < victim_use {
                victim_use = s.last_use;
                victim = i;
            }
        }

        if let Some(i) = free {
            set[i] = Slot { tag: line, state, last_use: tick };
            return None;
        }

        let old = set[victim];
        set[victim] = Slot { tag: line, state, last_use: tick };
        Some(EvictedLine { line: old.tag, dirty: old.state == Mesi::Modified })
    }

    /// Removes a line; returns its previous state.
    pub fn invalidate(&mut self, addr: Addr) -> Mesi {
        let line = line_of(addr);
        let range = self.set_range(line);
        match self.slots[range].iter_mut().find(|s| s.state.is_valid() && s.tag == line) {
            Some(slot) => std::mem::replace(&mut slot.state, Mesi::Invalid),
            None => Mesi::Invalid,
        }
    }

    /// Whether the line is present in any valid state.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        self.probe(addr).is_valid()
    }

    /// Number of valid lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.slots.iter().filter(|s| s.state.is_valid()).count()
    }

    /// Total line slots (sets × ways) — the denominator for a residency
    /// ratio over [`CacheArray::resident_lines`].
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.slots.len()
    }

    /// All resident line addresses (unordered); for tests and debugging.
    pub fn lines(&self) -> impl Iterator<Item = (Addr, Mesi)> + '_ {
        self.slots.iter().filter(|s| s.state.is_valid()).map(|s| (s.tag, s.state))
    }

    /// Bank index serving `addr`.
    #[must_use]
    pub fn bank_of(&self, addr: Addr) -> usize {
        ((line_of(addr) / LINE_BYTES) % self.bank_busy.len() as u64) as usize
    }

    /// Reserves the single bank serving `addr` for a normal access arriving
    /// at `arrive`; returns the cycle the access actually starts (after any
    /// bank conflict).
    pub fn reserve_bank(&mut self, addr: Addr, arrive: Cycle) -> Cycle {
        let bank = self.bank_of(addr);
        let start = arrive.max(self.bank_busy[bank]);
        self.bank_busy[bank] = start + self.bank_occupancy;
        start
    }

    /// Reserves **all** banks for a data-oblivious lookup arriving at
    /// `arrive` (Section VI-B: "an Obl-Ld accesses all cache banks ... all
    /// succeeding requests are blocked until the Obl-Ld completes").
    /// Returns the start cycle, which is a function only of *public* state
    /// (prior occupancy), never of the Obl-Ld's address.
    pub fn reserve_all_banks(&mut self, arrive: Cycle) -> Cycle {
        let busiest = self.bank_busy.iter().copied().max().unwrap_or(0);
        let start = arrive.max(busiest);
        for b in &mut self.bank_busy {
            *b = start + self.bank_occupancy;
        }
        start
    }

    /// The earliest cycle at which the bank serving `addr` is free (for
    /// inspection in tests).
    #[must_use]
    pub fn bank_free_at(&self, addr: Addr) -> Cycle {
        self.bank_busy[self.bank_of(addr)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 512 B, 2-way, 64 B lines => 4 sets.
        let params = CacheParams { size_bytes: 512, ways: 2, latency: 2, banks: 2, mshrs: 4 };
        CacheArray::new(&params, 2)
    }

    /// Line address that maps to set `s` with distinct tag `t`.
    fn line(s: u64, t: u64) -> Addr {
        (t * 4 + s) * LINE_BYTES
    }

    #[test]
    fn insert_then_probe_hits() {
        let mut c = tiny();
        c.insert(line(1, 0), Mesi::Shared);
        assert_eq!(c.probe(line(1, 0)), Mesi::Shared);
        assert_eq!(c.probe(line(1, 1)), Mesi::Invalid);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn probe_matches_any_offset_within_line() {
        let mut c = tiny();
        c.insert(line(0, 0), Mesi::Exclusive);
        assert!(c.contains(line(0, 0) + 63));
        assert!(!c.contains(line(0, 0) + 64));
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut c = tiny();
        c.insert(line(2, 0), Mesi::Exclusive);
        c.insert(line(2, 1), Mesi::Exclusive);
        // Touch the first so the second becomes LRU.
        assert_eq!(c.touch(line(2, 0)), Mesi::Exclusive);
        let evicted = c.insert(line(2, 2), Mesi::Exclusive).unwrap();
        assert_eq!(evicted.line, line(2, 1));
        assert!(!evicted.dirty);
        assert!(c.contains(line(2, 0)));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.insert(line(3, 0), Mesi::Modified);
        c.insert(line(3, 1), Mesi::Exclusive);
        let ev = c.insert(line(3, 2), Mesi::Shared).unwrap();
        assert_eq!(ev.line, line(3, 0));
        assert!(ev.dirty);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.insert(line(0, 0), Mesi::Exclusive);
        c.insert(line(0, 1), Mesi::Exclusive);
        // An oblivious probe of way 0 must NOT protect it from eviction.
        assert_eq!(c.probe(line(0, 0)), Mesi::Exclusive);
        let ev = c.insert(line(0, 2), Mesi::Exclusive).unwrap();
        assert_eq!(ev.line, line(0, 0), "probe must not refresh LRU");
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(line(1, 0), Mesi::Shared);
        assert!(c.insert(line(1, 0), Mesi::Modified).is_none());
        assert_eq!(c.probe(line(1, 0)), Mesi::Modified);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = tiny();
        c.insert(line(1, 0), Mesi::Exclusive);
        assert!(c.set_state(line(1, 0), Mesi::Shared));
        assert_eq!(c.probe(line(1, 0)), Mesi::Shared);
        assert!(!c.set_state(line(1, 9), Mesi::Shared));
        assert_eq!(c.invalidate(line(1, 0)), Mesi::Shared);
        assert_eq!(c.invalidate(line(1, 0)), Mesi::Invalid);
    }

    #[test]
    #[should_panic(expected = "Invalid state")]
    fn insert_invalid_panics() {
        let mut c = tiny();
        c.insert(0, Mesi::Invalid);
    }

    #[test]
    fn bank_conflict_serializes() {
        let mut c = tiny();
        let a = line(0, 0); // bank 0
        let b = line(2, 0); // 2 banks: line index 2 -> bank 0 as well
        assert_eq!(c.bank_of(a), c.bank_of(b));
        let s1 = c.reserve_bank(a, 10);
        let s2 = c.reserve_bank(b, 10);
        assert_eq!(s1, 10);
        assert_eq!(s2, 12, "second access waits out the occupancy");
    }

    #[test]
    fn different_banks_run_in_parallel() {
        let mut c = tiny();
        let a = line(0, 0); // even line index -> bank 0
        let b = line(1, 0); // odd line index -> bank 1
        assert_ne!(c.bank_of(a), c.bank_of(b));
        assert_eq!(c.reserve_bank(a, 5), 5);
        assert_eq!(c.reserve_bank(b, 5), 5);
    }

    #[test]
    fn oblivious_reservation_blocks_every_bank() {
        let mut c = tiny();
        let start = c.reserve_all_banks(7);
        assert_eq!(start, 7);
        // Any subsequent access, to any bank, waits.
        assert_eq!(c.reserve_bank(line(0, 0), 7), 9);
        assert_eq!(c.reserve_bank(line(1, 0), 7), 9);
    }

    #[test]
    fn oblivious_reservation_waits_for_busiest_bank() {
        let mut c = tiny();
        c.reserve_bank(line(1, 0), 20); // bank 1 busy till 22
        let start = c.reserve_all_banks(0);
        assert_eq!(start, 22, "start is address-independent: max over banks");
    }

    #[test]
    fn mesi_predicates() {
        assert!(Mesi::Modified.is_writable());
        assert!(Mesi::Exclusive.is_writable());
        assert!(!Mesi::Shared.is_writable());
        assert!(!Mesi::Invalid.is_valid());
    }

    #[test]
    fn lines_iterator_reports_all() {
        let mut c = tiny();
        c.insert(line(0, 0), Mesi::Shared);
        c.insert(line(1, 0), Mesi::Modified);
        let mut got: Vec<_> = c.lines().collect();
        got.sort_by_key(|(a, _)| *a);
        assert_eq!(got, vec![(line(0, 0), Mesi::Shared), (line(1, 0), Mesi::Modified)]);
    }
}
