//! Sparse backing store: the architectural contents of memory.

use crate::config::Addr;
use crate::hash::AddrMap;
use sdo_isa::DataImage;

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// Sparse, paged byte store holding the simulated machine's memory
/// contents.
///
/// Caches in this crate are a pure timing model; this store is the single
/// source of truth for values. Unwritten memory reads as zero.
///
/// # Examples
///
/// ```rust
/// use sdo_mem::BackingStore;
/// let mut m = BackingStore::new();
/// m.write_word(0x100, 0xfeed);
/// assert_eq!(m.read_word(0x100), 0xfeed);
/// assert_eq!(m.read_byte(0x100), 0xed);
/// assert_eq!(m.read_word(0x9999), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BackingStore {
    pages: AddrMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl BackingStore {
    /// Creates an empty (all-zero) store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store seeded from a program's initial data image.
    #[must_use]
    pub fn from_image(image: &DataImage) -> Self {
        let mut store = Self::new();
        store.load_image(image);
        store
    }

    /// Copies a data image into the store (overwrites overlapping bytes).
    pub fn load_image(&mut self, image: &DataImage) {
        for (addr, byte) in image.iter() {
            self.write_byte(addr, byte);
        }
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_byte(&self, addr: Addr) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_BYTES - 1)],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page on demand.
    pub fn write_byte(&mut self, addr: Addr, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
        page[(addr as usize) & (PAGE_BYTES - 1)] = value;
    }

    /// Reads `n` bytes (`n <= 8`) little-endian into a word.
    #[must_use]
    pub fn read_bytes(&self, addr: Addr, n: u64) -> u64 {
        debug_assert!(n <= 8);
        let mut v = 0u64;
        for i in 0..n {
            v |= u64::from(self.read_byte(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }

    /// Writes the low `n` bytes (`n <= 8`) of `value` little-endian.
    pub fn write_bytes(&mut self, addr: Addr, value: u64, n: u64) {
        debug_assert!(n <= 8);
        for i in 0..n {
            self.write_byte(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads a 64-bit little-endian word.
    #[must_use]
    pub fn read_word(&self, addr: Addr) -> u64 {
        self.read_bytes(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        self.write_bytes(addr, value, 8);
    }

    /// Number of 4 KiB pages currently materialized.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let m = BackingStore::new();
        assert_eq!(m.read_word(12345), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn word_roundtrip_cross_page() {
        let mut m = BackingStore::new();
        // Straddles the page boundary at 4096.
        m.write_word(4092, 0x1122_3344_5566_7788);
        assert_eq!(m.read_word(4092), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn partial_width_writes() {
        let mut m = BackingStore::new();
        m.write_word(0, u64::MAX);
        m.write_bytes(0, 0, 1);
        assert_eq!(m.read_word(0), 0xffff_ffff_ffff_ff00);
        assert_eq!(m.read_bytes(0, 1), 0);
        assert_eq!(m.read_bytes(1, 1), 0xff);
    }

    #[test]
    fn from_image_seeds_contents() {
        let mut img = DataImage::new();
        img.set_word(0x2000, 7);
        img.set_byte(0x2008, 9);
        let m = BackingStore::from_image(&img);
        assert_eq!(m.read_word(0x2000), 7);
        assert_eq!(m.read_byte(0x2008), 9);
    }
}
