//! The complete memory system: private L1/L2 per core, sliced shared L3
//! with a MESI directory, DRAM, TLBs, and the data-oblivious access paths.

use crate::backing::BackingStore;
use crate::cache::{CacheArray, EvictedLine, Mesi};
use crate::config::{Addr, CacheLevel, Cycle, MemConfig};
use crate::dram::Dram;
use crate::interconnect::Mesh;
use crate::line_of;
use crate::mshr::MshrFile;
use crate::stats::MemStats;
use crate::tlb::Tlb;
use sdo_isa::DataImage;

/// Which structure ultimately served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared L3 hit.
    L3,
    /// Dirty copy fetched from another core's private cache (via the L3
    /// directory). Counts as L3-resident for location-prediction purposes.
    Remote,
    /// Off-chip DRAM.
    Dram,
}

impl ServedBy {
    /// The cache level this outcome corresponds to for the location
    /// predictor (Section V-D): remote dirty hits resolve at the L3
    /// directory, so they count as L3.
    #[must_use]
    pub fn level(self) -> CacheLevel {
        match self {
            ServedBy::L1 => CacheLevel::L1,
            ServedBy::L2 => CacheLevel::L2,
            ServedBy::L3 | ServedBy::Remote => CacheLevel::L3,
            ServedBy::Dram => CacheLevel::Dram,
        }
    }

    fn depth(self) -> u8 {
        self.level().depth()
    }

    fn from_depth(depth: u8) -> Self {
        match depth {
            0 | 1 => ServedBy::L1,
            2 => ServedBy::L2,
            3 => ServedBy::L3,
            _ => ServedBy::Dram,
        }
    }
}

/// Completed (normal, non-oblivious) load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// The 64-bit little-endian word at the accessed address.
    pub value: u64,
    /// Cycle the access was issued.
    pub issued_at: Cycle,
    /// Cycle the data is available to the core.
    pub complete_at: Cycle,
    /// Which structure served the access.
    pub served_by: ServedBy,
}

impl AccessResult {
    /// End-to-end latency in cycles.
    #[must_use]
    pub fn latency(&self) -> Cycle {
        self.complete_at - self.issued_at
    }
}

/// Completed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreResult {
    /// Cycle the store is globally performed (ownership acquired).
    pub complete_at: Cycle,
}

/// Per-level response of a data-oblivious lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OblResponse {
    /// The level this response came from.
    pub level: CacheLevel,
    /// Whether the tag check hit (always `false` when the L1 TLB probe
    /// missed — the lookup proceeds with ⊥ translation, Section V-B).
    pub hit: bool,
    /// Cycle the response reaches the core's wait buffer.
    pub at: Cycle,
}

/// The per-level responses of one lookup, stored inline (at most one per
/// cache level, so a fixed array beats a heap allocation on the hot
/// path). Derefs to a slice — iterate and index it like a `Vec`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OblResponses {
    buf: [OblResponse; 3],
    len: u8,
}

impl OblResponses {
    const EMPTY: OblResponse = OblResponse { level: CacheLevel::L1, hit: false, at: 0 };

    fn new() -> Self {
        OblResponses { buf: [Self::EMPTY; 3], len: 0 }
    }

    fn push(&mut self, r: OblResponse) {
        self.buf[self.len as usize] = r;
        self.len += 1;
    }
}

impl std::ops::Deref for OblResponses {
    type Target = [OblResponse];
    fn deref(&self) -> &[OblResponse] {
        &self.buf[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a OblResponses {
    type Item = &'a OblResponse;
    type IntoIter = std::slice::Iter<'a, OblResponse>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Outcome of a data-oblivious load lookup (the memory-side half of an
/// Obl-Ld operation).
///
/// Responses are ordered L1 first; per the paper's footnote 2, levels
/// respond in order, so the wait buffer may forward `success_i` as soon as
/// responses `1..=i` have arrived.
#[derive(Debug, Clone, PartialEq)]
pub struct OblLookup {
    /// One response per probed level, L1 outward.
    pub responses: OblResponses,
    /// Whether the L1 TLB probe hit.
    pub tlb_hit: bool,
    /// The loaded word, present iff some level hit (and the TLB probe
    /// hit). This is `presult` of the first successful DO variant.
    pub value: Option<u64>,
    /// Closest level that hit, if any.
    pub first_hit: Option<CacheLevel>,
    /// Cycle the final response arrives (lookup fully complete).
    pub complete_at: Cycle,
}

impl OblLookup {
    /// Whether the lookup returned `success` (some probed level had the
    /// line and translation succeeded).
    #[must_use]
    pub fn success(&self) -> bool {
        self.first_hit.is_some()
    }
}

/// Why an Obl-Ld could not issue this cycle (retry later). All variants
/// are functions of public state only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OblReject {
    /// No free MSHR at some traversed level.
    MshrFull,
}

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Bitmask of cores holding the line in their private caches.
    sharers: u64,
    /// Core holding the line in M/E (potentially dirty) state, if any.
    owner: Option<usize>,
}

impl DirEntry {
    /// Bitmask of sharers other than `core`.
    fn others_mask(&self, core: usize) -> u64 {
        self.sharers & !(1 << core)
    }
}

/// Iterates the core indices set in `mask`, ascending.
fn cores_in(mask: u64) -> impl Iterator<Item = usize> {
    std::iter::successors(
        (mask != 0).then_some(mask),
        |m| {
            let rest = m & (m - 1);
            (rest != 0).then_some(rest)
        },
    )
    .map(|m| m.trailing_zeros() as usize)
}

/// The full memory hierarchy shared by all simulated cores.
///
/// See the [crate docs](crate) for the modeling approach. The core-facing
/// API:
///
/// * [`MemorySystem::load`] / [`MemorySystem::store`] — normal accesses,
/// * [`MemorySystem::obl_lookup`] — data-oblivious multi-level tag probe,
/// * [`MemorySystem::validate`] / [`MemorySystem::expose`] — the
///   InvisiSpec-style consistency mechanisms SDO reuses,
/// * [`MemorySystem::take_invalidations`] — coherence invalidations
///   delivered to a core (drives consistency squashes),
/// * [`MemorySystem::residency`] — oracle for the Perfect predictor.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemConfig,
    n_cores: usize,
    l1i: Vec<CacheArray>,
    l1: Vec<CacheArray>,
    l2: Vec<CacheArray>,
    l1_mshr: Vec<MshrFile>,
    l2_mshr: Vec<MshrFile>,
    l3: Vec<CacheArray>,
    l3_mshr: Vec<MshrFile>,
    dir: crate::hash::AddrMap<Addr, DirEntry>,
    tlb: Vec<Tlb>,
    dram: Dram,
    mesh: Mesh,
    backing: BackingStore,
    inval_queues: Vec<Vec<Addr>>,
    stats: MemStats,
}

impl MemorySystem {
    /// Builds a hierarchy for `n_cores` cores.
    ///
    /// The L3 is split into one slice per mesh tile; `cfg.l3.size_bytes` is
    /// the total capacity across slices.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or exceeds the mesh tile count (each core
    /// needs a tile), or if cache geometry is invalid.
    #[must_use]
    pub fn new(cfg: MemConfig, n_cores: usize) -> Self {
        let mesh = Mesh::new(cfg.mesh_cols, cfg.mesh_rows, cfg.hop_latency);
        let tiles = mesh.tiles();
        assert!(n_cores > 0, "need at least one core");
        assert!(n_cores <= tiles, "mesh has {tiles} tiles; cannot place {n_cores} cores");
        assert!(n_cores <= 64, "directory sharer mask is 64 bits wide");
        let slice_params = crate::config::CacheParams {
            size_bytes: cfg.l3.size_bytes / tiles as u64,
            ..cfg.l3
        };
        MemorySystem {
            cfg,
            n_cores,
            l1i: (0..n_cores).map(|_| CacheArray::new(&cfg.l1i, cfg.bank_occupancy)).collect(),
            l1: (0..n_cores).map(|_| CacheArray::new(&cfg.l1, cfg.bank_occupancy)).collect(),
            l2: (0..n_cores).map(|_| CacheArray::new(&cfg.l2, cfg.bank_occupancy)).collect(),
            l1_mshr: (0..n_cores).map(|_| MshrFile::new(cfg.l1.mshrs)).collect(),
            l2_mshr: (0..n_cores).map(|_| MshrFile::new(cfg.l2.mshrs)).collect(),
            l3: (0..tiles).map(|_| CacheArray::new(&slice_params, cfg.bank_occupancy)).collect(),
            l3_mshr: (0..tiles).map(|_| MshrFile::new(cfg.l3.mshrs)).collect(),
            dir: crate::hash::AddrMap::default(),
            tlb: (0..n_cores).map(|_| Tlb::new(&cfg.tlb)).collect(),
            dram: Dram::new(&cfg.dram),
            mesh,
            backing: BackingStore::new(),
            inval_queues: vec![Vec::new(); n_cores],
            stats: MemStats::default(),
        }
    }

    /// Number of cores attached.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.n_cores
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Immutable access to the backing store (functional memory contents).
    #[must_use]
    pub fn backing(&self) -> &BackingStore {
        &self.backing
    }

    /// Mutable access to the backing store (test/workload setup).
    pub fn backing_mut(&mut self) -> &mut BackingStore {
        &mut self.backing
    }

    /// Loads a program's initial data image into memory.
    pub fn load_image(&mut self, image: &DataImage) {
        self.backing.load_image(image);
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets statistics (e.g., after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// L1 MSHR registers of `core` occupied at cycle `now` — the fill
    /// level the core's observability probe samples each cycle. Cheap:
    /// a popcount-style scan over the occupancy bitmask.
    #[must_use]
    pub fn mshr_in_use(&self, core: usize, now: Cycle) -> usize {
        self.l1_mshr[core].in_use(now)
    }

    /// High-water mark of `core`'s L1 MSHR file over the run.
    #[must_use]
    pub fn mshr_peak(&self, core: usize) -> usize {
        self.l1_mshr[core].peak_in_use()
    }

    /// Earliest cycle strictly after `now` at which the memory system's
    /// timing state changes on its own: an in-flight miss completes in any
    /// MSHR file (L1/L2 per core, L3 per tile) or a busy DRAM bank frees.
    /// `None` when nothing is in flight — the hierarchy cannot generate a
    /// future event. The mesh is a stateless latency calculator and the
    /// cache bank reservations only advance when accessed, so neither
    /// contributes events of its own. This is the memory half of the
    /// core's quiescence event horizon.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.l1_mshr
            .iter()
            .chain(&self.l2_mshr)
            .chain(&self.l3_mshr)
            .filter_map(|m| m.next_completion(now))
            .chain(self.dram.next_bank_release(now))
            .min()
    }

    /// Bulk-records `n` additional Obl-Ld MSHR-full rejects. The core's
    /// quiescence fast-forward uses this: a bounced Obl-Ld retries (and is
    /// re-rejected) every stalled cycle, so skipping `n` quiescent cycles
    /// must account the same `n` rejects a stepped loop would have.
    pub fn record_obl_mshr_rejects(&mut self, n: u64) {
        self.stats.obl_mshr_rejects += n;
    }

    /// Drains the coherence invalidations delivered to `core` since the
    /// last call. The core checks these against its load queue to detect
    /// possible memory-consistency violations (Section V-C1).
    pub fn take_invalidations(&mut self, core: usize) -> Vec<Addr> {
        std::mem::take(&mut self.inval_queues[core])
    }

    /// Oracle: which level would currently serve `addr` for `core`
    /// (ignoring timing). Used by the *Perfect* location predictor and by
    /// predictor-update logic.
    #[must_use]
    pub fn residency(&self, core: usize, addr: Addr) -> CacheLevel {
        if self.l1[core].probe(addr).is_valid() {
            CacheLevel::L1
        } else if self.l2[core].probe(addr).is_valid() {
            CacheLevel::L2
        } else if self.l3[self.mesh.slice_of(addr)].probe(addr).is_valid() {
            CacheLevel::L3
        } else {
            CacheLevel::Dram
        }
    }

    /// Functional word read (no timing, no state change).
    #[must_use]
    pub fn peek_word(&self, addr: Addr) -> u64 {
        self.backing.read_word(addr)
    }

    /// Invalidates a line everywhere (all private caches, the L3 slice and
    /// the directory), notifying cores that held it — a `clflush`-style
    /// primitive used by the covert-channel receiver in the penetration
    /// test.
    pub fn flush_line(&mut self, addr: Addr) {
        let line = line_of(addr);
        if let Some(entry) = self.dir.remove(&line) {
            for c in 0..self.n_cores {
                if entry.sharers & (1 << c) != 0 {
                    self.l1[c].invalidate(line);
                    self.l2[c].invalidate(line);
                    self.inval_queues[c].push(line);
                    self.stats.invalidations_sent += 1;
                }
            }
        }
        self.l3[self.mesh.slice_of(line)].invalidate(line);
    }

    /// Pre-warms a byte range into the hierarchy at the given level for
    /// `core` — the reproduction's stand-in for SimPoint warm-starts
    /// (DESIGN.md §5): the paper's checkpoints begin with caches warmed by
    /// the preceding execution, which a freshly-constructed simulator
    /// lacks.
    ///
    /// `L1`/`L2` install private copies (and the inclusive L3 copy);
    /// `L3` installs into the home slices only. No timing is charged.
    ///
    /// # Panics
    ///
    /// Panics if `level` is [`CacheLevel::Dram`] (nothing to warm).
    pub fn prewarm(&mut self, core: usize, start: Addr, bytes: u64, level: CacheLevel) {
        assert!(level.is_cache(), "cannot prewarm DRAM");
        // Warm the TLB over the range too (page granularity).
        let page = self.cfg.tlb.page_bytes;
        let mut p = start / page * page;
        while p < start + bytes {
            let _ = self.tlb[core].access(p);
            p += page;
        }
        let first = line_of(start);
        let last = line_of(start + bytes.saturating_sub(1));
        let mut line = first;
        loop {
            let slice = self.mesh.slice_of(line);
            if let Some(ev) = self.l3[slice].insert(line, Mesi::Exclusive) {
                self.handle_l3_eviction(ev);
            }
            if level <= CacheLevel::L2 {
                if let Some(ev) = self.l2[core].insert(line, Mesi::Shared) {
                    self.handle_l2_eviction(core, ev);
                }
                let e = self.dir.entry(line).or_default();
                e.sharers |= 1 << core;
            }
            if level == CacheLevel::L1 {
                if let Some(ev) = self.l1[core].insert(line, Mesi::Shared) {
                    if ev.dirty {
                        self.l2[core].set_state(ev.line, Mesi::Modified);
                    }
                }
            }
            if line >= last {
                break;
            }
            line += crate::LINE_BYTES;
        }
    }

    /// Instruction-fetch timing for the line containing byte address
    /// `addr` (callers translate instruction indices into the dedicated
    /// text address space, e.g. `sdo_uarch` uses `ITEXT_BASE + pc * 8`).
    ///
    /// L1I hits cost nothing beyond the pipelined frontend; misses walk
    /// the shared L2/L3/DRAM path (read-only, shared-state fills) and
    /// return the cycle the line arrives.
    pub fn ifetch(&mut self, core: usize, addr: Addr, now: Cycle) -> Cycle {
        let line = line_of(addr);
        if self.l1i[core].touch(line).is_valid() {
            self.stats.icache_hits += 1;
            return now;
        }
        self.stats.icache_misses += 1;
        let arrive2 = now + self.cfg.l1i.latency;
        let complete = if self.l2[core].touch(line).is_valid() {
            arrive2 + self.cfg.l2.latency
        } else {
            let arrive3 = arrive2 + self.cfg.l2.latency;
            let (done, _served) = self.l3_access(core, line, arrive3, false);
            // Instructions also live in the unified L2.
            if let Some(ev) = self.l2[core].insert(line, Mesi::Shared) {
                self.handle_l2_eviction(core, ev);
            }
            done
        };
        if let Some(ev) = self.l1i[core].insert(line, Mesi::Shared) {
            // Clean instruction lines need no writeback.
            let _ = ev;
        }
        complete
    }

    // ------------------------------------------------------------------
    // Normal access path
    // ------------------------------------------------------------------

    /// TLB translation charge in extra cycles (0 on a hit).
    fn tlb_charge(&mut self, core: usize, addr: Addr) -> Cycle {
        let lat = self.tlb[core].access(addr);
        if lat <= self.cfg.tlb.hit_latency {
            self.stats.tlb_hits += 1;
            0
        } else {
            self.stats.tlb_misses += 1;
            lat
        }
    }

    /// Performs a normal load of the 64-bit word at `addr` for `core`.
    ///
    /// Fills caches along the way, participates in coherence, and models
    /// bank, MSHR, mesh and DRAM timing. Never rejects: structural hazards
    /// appear as added latency.
    pub fn load(&mut self, core: usize, addr: Addr, now: Cycle) -> AccessResult {
        self.access_inner(core, addr, now, AccessKind::Load)
    }

    /// Validation access (InvisiSpec): a normal load whose value the
    /// caller compares against the earlier Obl-Ld result. Fills the L1 so
    /// future invalidations are observed.
    pub fn validate(&mut self, core: usize, addr: Addr, expected: u64, now: Cycle) -> (AccessResult, bool) {
        self.stats.validations += 1;
        let res = self.access_inner(core, addr, now, AccessKind::Validate);
        let matches = res.value == expected;
        if !matches {
            self.stats.validation_mismatches += 1;
        }
        (res, matches)
    }

    /// Exposure access (InvisiSpec): brings the line into the L1
    /// asynchronously, without anything waiting on the result.
    pub fn expose(&mut self, core: usize, addr: Addr, now: Cycle) {
        self.stats.exposures += 1;
        let _ = self.access_inner(core, addr, now, AccessKind::Expose);
    }

    fn access_inner(&mut self, core: usize, addr: Addr, now: Cycle, kind: AccessKind) -> AccessResult {
        let line = line_of(addr);
        let value = self.backing.read_word(addr);
        let t0 = now + self.tlb_charge(core, addr);

        // A fill for this line may still be in flight (the arrays are
        // updated eagerly, but the data has not arrived): merge with it.
        if let Some((done, depth)) = self.l1_mshr[core].outstanding(line, t0) {
            return AccessResult {
                value,
                issued_at: now,
                complete_at: done,
                served_by: ServedBy::from_depth(depth),
            };
        }

        // L1
        let s1 = self.l1[core].reserve_bank(addr, t0);
        if self.l1[core].touch(addr).is_valid() {
            self.stats.l1_hits += 1;
            return AccessResult {
                value,
                issued_at: now,
                complete_at: s1 + self.cfg.l1.latency,
                served_by: ServedBy::L1,
            };
        }
        self.stats.l1_misses += 1;
        let arrive2 = s1 + self.cfg.l1.latency;
        let admit2 = self.l1_mshr[core].earliest_slot(arrive2);

        // L2
        let s2 = self.l2[core].reserve_bank(addr, admit2);
        let (complete, served) = if self.l2[core].touch(addr).is_valid() {
            self.stats.l2_hits += 1;
            (s2 + self.cfg.l2.latency, ServedBy::L2)
        } else {
            self.stats.l2_misses += 1;
            let arrive3 = s2 + self.cfg.l2.latency;
            if let Some((done, depth)) = self.l2_mshr[core].outstanding(line, arrive3) {
                (done, ServedBy::from_depth(depth))
            } else {
                let admit3 = self.l2_mshr[core].earliest_slot(arrive3);
                let (done, served) = self.l3_access(core, addr, admit3, kind == AccessKind::Rfo);
                self.l2_mshr[core].force_alloc(line, admit3, done, served.depth());
                (done, served)
            }
        };
        self.l1_mshr[core].force_alloc(line, admit2, complete, served.depth());

        // Fill the private caches with the granted state.
        let granted = self.granted_state(core, line, kind);
        self.fill_private(core, line, granted);

        AccessResult { value, issued_at: now, complete_at: complete, served_by: served }
    }

    /// The MESI state to install in the requesting core's private caches,
    /// derived from the directory after the access updated it.
    fn granted_state(&self, core: usize, line: Addr, kind: AccessKind) -> Mesi {
        if kind == AccessKind::Rfo {
            return Mesi::Modified;
        }
        match self.dir.get(&line) {
            Some(e) if e.owner == Some(core) => Mesi::Exclusive,
            _ => Mesi::Shared,
        }
    }

    /// Shared-L3 + directory access. Returns `(complete_at, served_by)`
    /// and updates directory/sharer state. `rfo` requests exclusive
    /// ownership (store miss).
    fn l3_access(&mut self, core: usize, addr: Addr, arrive: Cycle, rfo: bool) -> (Cycle, ServedBy) {
        let line = line_of(addr);
        let slice = self.mesh.slice_of(addr);
        let go = self.mesh.latency(core, slice);
        let s3 = self.l3[slice].reserve_bank(addr, arrive + go);
        let l3_lat = self.cfg.l3.latency;

        if self.l3[slice].touch(addr).is_valid() {
            self.stats.l3_hits += 1;
            let entry = self.dir.entry(line).or_default();
            let owner = entry.owner;
            let others = entry.others_mask(core);

            if rfo {
                // Invalidate every other copy, grant M.
                for o in cores_in(others) {
                    self.invalidate_private(o, line);
                }
                let e = self.dir.entry(line).or_default();
                e.sharers = 1 << core;
                e.owner = Some(core);
                let penalty = if others == 0 { 0 } else { go };
                return (s3 + l3_lat + go + penalty, ServedBy::L3);
            }

            match owner {
                Some(o) if o != core => {
                    // Potentially dirty in o's private cache: fetch/downgrade.
                    self.stats.remote_hits += 1;
                    self.l1[o].set_state(line, Mesi::Shared);
                    self.l2[o].set_state(line, Mesi::Shared);
                    self.l3[slice].set_state(line, Mesi::Modified); // writeback to L3
                    let e = self.dir.entry(line).or_default();
                    e.owner = None;
                    e.sharers |= 1 << core;
                    let detour = 2 * self.mesh.latency(slice, o) + self.cfg.l1.latency;
                    (s3 + l3_lat + detour + go, ServedBy::Remote)
                }
                _ => {
                    let e = self.dir.entry(line).or_default();
                    let alone = e.sharers & !(1 << core) == 0;
                    e.sharers |= 1 << core;
                    e.owner = if alone { Some(core) } else { None };
                    (s3 + l3_lat + go, ServedBy::L3)
                }
            }
        } else {
            self.stats.l3_misses += 1;
            let arrive_dram = if let Some((done, _)) = self.l3_mshr[slice].outstanding(line, s3 + l3_lat) {
                // Merge at the L3 MSHR: ride the outstanding DRAM fetch.
                let complete = done + go;
                self.fill_l3_and_grant(core, line, slice, rfo);
                return (complete, ServedBy::Dram);
            } else {
                self.l3_mshr[slice].earliest_slot(s3 + l3_lat)
            };
            let (dram_done, row_hit) = self.dram.access(addr, arrive_dram);
            if row_hit {
                self.stats.dram_row_hits += 1;
            } else {
                self.stats.dram_row_misses += 1;
            }
            self.l3_mshr[slice].force_alloc(line, arrive_dram, dram_done, CacheLevel::Dram.depth());
            self.fill_l3_and_grant(core, line, slice, rfo);
            (dram_done + go, ServedBy::Dram)
        }
    }

    fn fill_l3_and_grant(&mut self, core: usize, line: Addr, slice: usize, rfo: bool) {
        if let Some(ev) = self.l3[slice].insert(line, Mesi::Exclusive) {
            self.handle_l3_eviction(ev);
        }
        let e = self.dir.entry(line).or_default();
        e.sharers = 1 << core;
        e.owner = Some(core);
        let _ = rfo; // M vs E distinction is applied by granted_state()
    }

    fn invalidate_private(&mut self, core: usize, line: Addr) {
        let a = self.l1[core].invalidate(line);
        let b = self.l2[core].invalidate(line);
        if a.is_valid() || b.is_valid() {
            self.inval_queues[core].push(line);
            self.stats.invalidations_sent += 1;
        }
        if let Some(e) = self.dir.get_mut(&line) {
            e.sharers &= !(1 << core);
            if e.owner == Some(core) {
                e.owner = None;
            }
        }
    }

    fn handle_l3_eviction(&mut self, ev: EvictedLine) {
        // Inclusive LLC: every private copy dies with the L3 line.
        if let Some(entry) = self.dir.remove(&ev.line) {
            for c in 0..self.n_cores {
                if entry.sharers & (1 << c) != 0 {
                    self.l1[c].invalidate(ev.line);
                    self.l2[c].invalidate(ev.line);
                    self.inval_queues[c].push(ev.line);
                    self.stats.invalidations_sent += 1;
                }
            }
        }
        // Dirty victim: functional contents already live in backing store.
    }

    fn handle_l2_eviction(&mut self, core: usize, ev: EvictedLine) {
        // L2 inclusive of L1: drop the L1 copy too.
        let l1_state = self.l1[core].invalidate(ev.line);
        let dirty = ev.dirty || l1_state == Mesi::Modified;
        if dirty {
            // Write back into the home slice.
            let slice = self.mesh.slice_of(ev.line);
            if !self.l3[slice].set_state(ev.line, Mesi::Modified) {
                if let Some(victim) = self.l3[slice].insert(ev.line, Mesi::Modified) {
                    self.handle_l3_eviction(victim);
                }
            }
        }
        if let Some(e) = self.dir.get_mut(&ev.line) {
            e.sharers &= !(1 << core);
            if e.owner == Some(core) {
                e.owner = None;
            }
        }
    }

    fn fill_private(&mut self, core: usize, line: Addr, state: Mesi) {
        if let Some(ev) = self.l2[core].insert(line, state) {
            self.handle_l2_eviction(core, ev);
        }
        if let Some(ev) = self.l1[core].insert(line, state) {
            // L1 victim falls back to the L2 (present there by inclusion).
            if ev.dirty && !self.l2[core].set_state(ev.line, Mesi::Modified) {
                if let Some(victim) = self.l2[core].insert(ev.line, Mesi::Modified) {
                    self.handle_l2_eviction(core, victim);
                }
            }
        }
    }

    /// Commits a store of the low `width_bytes` of `value` at `addr`.
    ///
    /// Acquires ownership (invalidating remote sharers — these
    /// invalidations surface via [`MemorySystem::take_invalidations`]) and
    /// updates the backing store.
    pub fn store(&mut self, core: usize, addr: Addr, value: u64, width_bytes: u64, now: Cycle) -> StoreResult {
        self.stats.stores += 1;
        let line = line_of(addr);
        self.backing.write_bytes(addr, value, width_bytes);
        let t0 = now + self.tlb_charge(core, addr);
        let s1 = self.l1[core].reserve_bank(addr, t0);
        let l1_state = self.l1[core].touch(addr);

        let complete = if l1_state.is_writable() {
            self.l1[core].set_state(line, Mesi::Modified);
            self.l2[core].set_state(line, Mesi::Modified);
            s1 + self.cfg.l1.latency
        } else if l1_state == Mesi::Shared {
            // Upgrade: invalidate other sharers through the home slice.
            let slice = self.mesh.slice_of(addr);
            let go = self.mesh.latency(core, slice);
            let others = self.dir.get(&line).map_or(0, |e| e.others_mask(core));
            for o in cores_in(others) {
                self.invalidate_private(o, line);
            }
            let e = self.dir.entry(line).or_default();
            e.sharers = 1 << core;
            e.owner = Some(core);
            self.l1[core].set_state(line, Mesi::Modified);
            self.l2[core].set_state(line, Mesi::Modified);
            s1 + self.cfg.l1.latency + 2 * go
        } else {
            // Miss: read-for-ownership through the hierarchy.
            let res = self.access_inner(core, addr, now, AccessKind::Rfo);
            self.l1[core].set_state(line, Mesi::Modified);
            self.l2[core].set_state(line, Mesi::Modified);
            res.complete_at
        };
        StoreResult { complete_at: complete }
    }

    // ------------------------------------------------------------------
    // Data-oblivious path (Obl-Ld memory side)
    // ------------------------------------------------------------------

    /// Performs the memory-side of an Obl-Ld: a data-oblivious tag probe of
    /// every level from the L1 through `max_level` (Section V-B).
    ///
    /// Guarantees (Definition 2): the *set* of resources used — which
    /// levels, full-bank reservations, first-free MSHR slots, all-slice L3
    /// broadcast — depends only on the prediction (`max_level`) and prior
    /// public occupancy, never on `addr`. No cache or TLB state changes.
    ///
    /// # Errors
    ///
    /// Returns [`OblReject::MshrFull`] when a traversed level has no free
    /// MSHR; the caller retries next cycle (an address-independent stall).
    ///
    /// # Panics
    ///
    /// Panics if `max_level` is [`CacheLevel::Dram`]: there is no DRAM DO
    /// variant — the predictor must fall back to delayed execution
    /// (Section VI-B).
    pub fn obl_lookup(
        &mut self,
        core: usize,
        addr: Addr,
        max_level: CacheLevel,
        now: Cycle,
    ) -> Result<OblLookup, OblReject> {
        assert!(max_level.is_cache(), "no DO variant for DRAM (Section VI-B)");

        // MSHR availability is checked before anything else: the check and
        // its outcome are functions of occupancy only.
        let need_l1_mshr = max_level >= CacheLevel::L2;
        let need_l2_mshr = max_level >= CacheLevel::L3;
        if (need_l1_mshr && !self.l1_mshr[core].has_free(now))
            || (need_l2_mshr && !self.l2_mshr[core].has_free(now))
        {
            self.stats.obl_mshr_rejects += 1;
            return Err(OblReject::MshrFull);
        }

        self.stats.obl_lookups += 1;
        let tlb_hit = self.tlb[core].probe(addr);
        if tlb_hit {
            self.stats.tlb_probe_hits += 1;
        } else {
            self.stats.tlb_probe_misses += 1;
        }

        let mut responses = OblResponses::new();
        let t0 = now + self.cfg.tlb.hit_latency;

        // L1: block all banks, tag-check only.
        let s1 = self.l1[core].reserve_all_banks(t0);
        let r1 = s1 + self.cfg.l1.latency;
        let hit1 = tlb_hit && self.l1[core].probe(addr).is_valid();
        responses.push(OblResponse { level: CacheLevel::L1, hit: hit1, at: r1 });
        let mut last = r1;

        if max_level >= CacheLevel::L2 {
            let s2 = self.l2[core].reserve_all_banks(last);
            let r2 = s2 + self.cfg.l2.latency;
            let hit2 = tlb_hit && self.l2[core].probe(addr).is_valid();
            responses.push(OblResponse { level: CacheLevel::L2, hit: hit2, at: r2 });
            last = r2;
        }

        if max_level >= CacheLevel::L3 {
            // Broadcast to every slice; completion when all respond
            // (Section VI-B, "LLC slice access").
            let arrive = last + self.mesh.worst_case_latency(core);
            let mut start = arrive;
            let n_slices = self.l3.len();
            for s in 0..n_slices {
                start = start.max(self.l3[s].reserve_all_banks(arrive));
            }
            let r3 = start + self.cfg.l3.latency + self.mesh.worst_case_latency(core);
            let home = self.mesh.slice_of(addr);
            let hit3 = tlb_hit && self.l3[home].probe(addr).is_valid();
            responses.push(OblResponse { level: CacheLevel::L3, hit: hit3, at: r3 });
            last = r3;
        }

        // Private, first-free MSHR occupancy for the lookup's lifetime.
        if need_l1_mshr {
            let ok = self.l1_mshr[core].alloc_private(addr, now, last);
            debug_assert!(ok, "availability checked above");
        }
        if need_l2_mshr {
            let ok = self.l2_mshr[core].alloc_private(addr, now, last);
            debug_assert!(ok, "availability checked above");
        }

        let first_hit = responses.iter().find(|r| r.hit).map(|r| r.level);
        match first_hit {
            Some(l) => self.stats.obl_level_hits[(l.depth() - 1) as usize] += 1,
            None => self.stats.obl_all_miss += 1,
        }
        let value = first_hit.map(|_| self.backing.read_word(addr));

        Ok(OblLookup { responses, tlb_hit, value, first_hit, complete_at: last })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    Load,
    Validate,
    Expose,
    Rfo,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(MemConfig::tiny(), cores)
    }

    #[test]
    fn cold_load_comes_from_dram_then_l1() {
        let mut m = sys(1);
        m.backing_mut().write_word(0x1000, 99);
        let a = m.load(0, 0x1000, 0);
        assert_eq!(a.value, 99);
        assert_eq!(a.served_by, ServedBy::Dram);
        let b = m.load(0, 0x1000, a.complete_at);
        assert_eq!(b.served_by, ServedBy::L1);
        assert!(b.latency() < a.latency());
        assert_eq!(m.stats().l1_hits, 1);
        assert_eq!(m.stats().l3_misses, 1);
    }

    #[test]
    fn latency_ordering_l1_l2_l3_dram() {
        // Construct residency at each level and compare latencies.
        let mut m = sys(1);
        let addr = 0x4000;
        let cold = m.load(0, addr, 0); // DRAM
        let t = cold.complete_at;
        let l1 = m.load(0, addr, t); // L1
        // Evict from L1 only: fill conflicting lines mapping to same set.
        // tiny L1: 4 sets, 2 ways; same set = +4*64 strides.
        let mut t2 = l1.complete_at;
        for i in 1..=2 {
            let r = m.load(0, addr + i * 4 * 64, t2);
            t2 = r.complete_at;
        }
        let l2 = m.load(0, addr, t2);
        assert_eq!(l2.served_by, ServedBy::L2);
        assert!(l2.latency() > l1.latency());
        assert!(cold.latency() > l2.latency());
    }

    #[test]
    fn residency_oracle_tracks_fills() {
        let mut m = sys(1);
        assert_eq!(m.residency(0, 0x40), CacheLevel::Dram);
        let r = m.load(0, 0x40, 0);
        assert_eq!(m.residency(0, 0x40), CacheLevel::L1);
        let _ = r;
    }

    #[test]
    fn mshr_merge_returns_same_completion() {
        let mut m = sys(1);
        let a = m.load(0, 0x2000, 0);
        // Second load to the same line while the miss is outstanding.
        let b = m.load(0, 0x2008, 1);
        assert_eq!(b.complete_at, a.complete_at);
    }

    #[test]
    fn next_event_aggregates_mshrs_and_dram() {
        let mut m = sys(1);
        assert_eq!(m.next_event(0), None, "quiet memory system has no future event");
        let a = m.load(0, 0x2000, 0); // cold miss: MSHRs in flight, DRAM bank busy
        let ev = m.next_event(0).expect("in-flight miss generates events");
        assert!(ev > 0 && ev <= a.complete_at, "ev={ev} complete_at={}", a.complete_at);
        // Walking `now` forward never skips past the final completion...
        let mut now = 0;
        while let Some(next) = m.next_event(now) {
            assert!(next > now);
            now = next;
        }
        assert!(now >= a.complete_at, "horizon chain must reach the fill");
        // ...and once everything has completed, the event stream is dry.
        assert_eq!(m.next_event(a.complete_at + 1000), None);
    }

    #[test]
    fn record_obl_mshr_rejects_bulk_adds() {
        let mut m = sys(1);
        let before = m.stats().obl_mshr_rejects;
        m.record_obl_mshr_rejects(7);
        assert_eq!(m.stats().obl_mshr_rejects, before + 7);
    }

    #[test]
    fn store_then_load_roundtrips_value() {
        let mut m = sys(1);
        m.store(0, 0x3000, 0xabcd, 8, 0);
        let r = m.load(0, 0x3000, 100);
        assert_eq!(r.value, 0xabcd);
        // Byte store merges into the word.
        m.store(0, 0x3000, 0xff, 1, 200);
        assert_eq!(m.peek_word(0x3000), 0xabff);
    }

    #[test]
    fn two_sharers_then_store_invalidates() {
        let mut m = sys(2);
        m.backing_mut().write_word(0x5000, 1);
        let a = m.load(0, 0x5000, 0);
        let b = m.load(1, 0x5000, a.complete_at);
        assert!(m.take_invalidations(0).is_empty());
        // Core 1 stores: core 0's copy must be invalidated and notified.
        m.store(1, 0x5000, 2, 8, b.complete_at);
        let invals = m.take_invalidations(0);
        assert_eq!(invals, vec![line_of(0x5000)]);
        assert_eq!(m.residency(0, 0x5000), CacheLevel::L3);
        assert_eq!(m.peek_word(0x5000), 2);
    }

    #[test]
    fn remote_dirty_line_serves_with_downgrade() {
        let mut m = sys(2);
        m.store(0, 0x6000, 7, 8, 0); // core 0 owns M
        let r = m.load(1, 0x6000, 1000);
        assert_eq!(r.served_by, ServedBy::Remote);
        assert_eq!(r.value, 7);
        assert_eq!(m.stats().remote_hits, 1);
        // Both now share.
        let again0 = m.load(0, 0x6000, r.complete_at);
        assert_eq!(again0.served_by, ServedBy::L1);
    }

    #[test]
    fn obl_lookup_hits_at_resident_level_without_state_change() {
        let mut m = sys(1);
        m.backing_mut().write_word(0x7000, 5);
        let r = m.load(0, 0x7000, 0); // now in L1
        let _ = m.load(0, 0x7040, r.complete_at); // warm TLB page already
        let before = m.residency(0, 0x9000);
        assert_eq!(before, CacheLevel::Dram);

        let look = m.obl_lookup(0, 0x7000, CacheLevel::L3, 10_000).unwrap();
        assert!(look.success());
        assert_eq!(look.first_hit, Some(CacheLevel::L1));
        assert_eq!(look.value, Some(5));
        assert_eq!(look.responses.len(), 3);
        assert!(look.responses[0].hit);

        // A lookup for an absent line changes nothing.
        let miss = m.obl_lookup(0, 0x9000, CacheLevel::L3, 20_000).unwrap();
        assert!(!miss.success());
        assert_eq!(m.residency(0, 0x9000), CacheLevel::Dram, "no fill on obl lookup");
    }

    #[test]
    fn obl_lookup_timing_depends_on_depth_not_address() {
        let mut m = sys(1);
        // Warm two addresses at different levels.
        let r = m.load(0, 0x100, 0);
        let t = r.complete_at + 100;
        // Probe to L3 for both a hot and a cold address, at equal start
        // times in two cloned systems: latency must be identical.
        let mut m2 = m.clone();
        let a = m.obl_lookup(0, 0x100, CacheLevel::L3, t).unwrap();
        let b = m2.obl_lookup(0, 0xbeef00, CacheLevel::L3, t).unwrap();
        assert_eq!(
            a.complete_at, b.complete_at,
            "Definition 2: timing is a function of the prediction, not the address"
        );
        let at_a: Vec<Cycle> = a.responses.iter().map(|r| r.at).collect();
        let at_b: Vec<Cycle> = b.responses.iter().map(|r| r.at).collect();
        assert_eq!(at_a, at_b);
    }

    #[test]
    fn obl_lookup_l1_only_is_fast() {
        let mut m = sys(1);
        let r = m.load(0, 0x40, 0);
        let l1 = m.obl_lookup(0, 0x40, CacheLevel::L1, r.complete_at).unwrap();
        let l3 = m.obl_lookup(0, 0x40, CacheLevel::L3, r.complete_at + 1000).unwrap();
        assert!(l1.complete_at - r.complete_at < l3.complete_at - (r.complete_at + 1000));
        assert_eq!(l1.responses.len(), 1);
    }

    #[test]
    fn obl_lookup_tlb_miss_forces_fail() {
        let mut m = sys(1);
        m.backing_mut().write_word(0xA000, 1);
        let r = m.load(0, 0xA000, 0);
        // Evict the TLB entry for page 0xA by walking other pages (tiny TLB: 4 entries).
        let mut t = r.complete_at;
        for p in 1..=4u64 {
            let rr = m.load(0, 0xA000 + p * 4096, t);
            t = rr.complete_at;
        }
        // Line may still be cached, but the TLB probe misses => fail.
        let look = m.obl_lookup(0, 0xA000, CacheLevel::L3, t).unwrap();
        assert!(!look.tlb_hit);
        assert!(!look.success(), "⊥ translation: all responses report fail");
        assert_eq!(m.stats().tlb_probe_misses, 1);
    }

    #[test]
    fn obl_lookup_rejects_when_mshrs_full() {
        let mut m = sys(1);
        // tiny config: 4 MSHRs at L1. Fill them with outstanding misses to
        // distinct lines.
        for i in 0..4u64 {
            let _ = m.load(0, 0x10_000 + i * 64, 0);
        }
        let err = m.obl_lookup(0, 0x40, CacheLevel::L2, 1).unwrap_err();
        assert_eq!(err, OblReject::MshrFull);
        assert_eq!(m.stats().obl_mshr_rejects, 1);
        // An L1-only lookup needs no MSHR and succeeds.
        assert!(m.obl_lookup(0, 0x40, CacheLevel::L1, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "no DO variant for DRAM")]
    fn obl_lookup_to_dram_panics() {
        let mut m = sys(1);
        let _ = m.obl_lookup(0, 0, CacheLevel::Dram, 0);
    }

    #[test]
    fn obl_lookup_blocks_subsequent_accesses() {
        let mut m = sys(1);
        let warm = m.load(0, 0x40, 0);
        let t = warm.complete_at + 10;
        let _ = m.obl_lookup(0, 0x5555c0, CacheLevel::L1, t).unwrap();
        // A normal L1 access right behind the Obl-Ld waits for all banks.
        let after = m.load(0, 0x40, t);
        assert!(after.complete_at > t + m.config().l1.latency, "bank blocking delays the follower");
    }

    #[test]
    fn validation_detects_remote_modification() {
        let mut m = sys(2);
        m.backing_mut().write_word(0xB000, 10);
        let r0 = m.load(0, 0xB000, 0);
        let look = m.obl_lookup(0, 0xB000, CacheLevel::L1, r0.complete_at).unwrap();
        assert_eq!(look.value, Some(10));
        // Core 1 races a store to the same word.
        m.store(1, 0xB000, 11, 8, r0.complete_at + 1);
        let (_res, ok) = m.validate(0, 0xB000, look.value.unwrap(), r0.complete_at + 100);
        assert!(!ok, "validation must catch the changed value");
        assert_eq!(m.stats().validation_mismatches, 1);
    }

    #[test]
    fn validation_matches_when_quiet() {
        let mut m = sys(1);
        m.backing_mut().write_word(0xC000, 3);
        let look = m.obl_lookup(0, 0xC000, CacheLevel::L3, 0);
        // Cold line: lookup misses everywhere; validate performs the load.
        assert!(!look.unwrap().success());
        let (res, ok) = m.validate(0, 0xC000, 3, 100);
        assert!(ok);
        assert_eq!(res.value, 3);
        assert_eq!(m.residency(0, 0xC000), CacheLevel::L1, "validation fills L1");
    }

    #[test]
    fn expose_fills_without_result() {
        let mut m = sys(1);
        m.expose(0, 0xD000, 0);
        assert_eq!(m.stats().exposures, 1);
        assert_eq!(m.residency(0, 0xD000), CacheLevel::L1);
    }

    #[test]
    fn flush_line_clears_everywhere_and_notifies() {
        let mut m = sys(2);
        let a = m.load(0, 0xE000, 0);
        let _b = m.load(1, 0xE000, a.complete_at);
        m.flush_line(0xE000);
        assert_eq!(m.residency(0, 0xE000), CacheLevel::Dram);
        assert_eq!(m.residency(1, 0xE000), CacheLevel::Dram);
        assert_eq!(m.take_invalidations(0), vec![line_of(0xE000)]);
        assert_eq!(m.take_invalidations(1), vec![line_of(0xE000)]);
    }

    #[test]
    fn l3_eviction_back_invalidates_private_caches() {
        // Two cores: core 0 keeps one line hot in its private caches while
        // core 1 floods the same L3 set until core 0's line is the L3
        // victim — the inclusive L3 must back-invalidate core 0.
        let mut m = sys(2);
        // tiny L3 slice: 8192/2 slices = 4096 bytes/slice, 4 ways, 16 sets.
        let mesh = Mesh::new(2, 1, 1);
        let sets = 4096 / (4 * 64); // 16 sets per slice
        let mut same: Vec<u64> = Vec::new();
        let mut cand = 0u64;
        while same.len() < 6 {
            let line = cand * 64;
            if mesh.slice_of(line) == 0 && (line / 64).is_multiple_of(sets as u64) {
                same.push(line);
            }
            cand += 1;
        }
        let victim_line = same[0];
        let r = m.load(0, victim_line, 0);
        let mut t = r.complete_at;
        assert_eq!(m.residency(0, victim_line), CacheLevel::L1);
        for &a in &same[1..] {
            let r = m.load(1, a, t);
            t = r.complete_at;
        }
        let invals = m.take_invalidations(0);
        assert!(invals.contains(&victim_line), "inclusive L3 back-invalidates");
        assert_eq!(m.residency(0, victim_line), CacheLevel::Dram);
    }

    #[test]
    fn store_miss_acquires_ownership() {
        let mut m = sys(2);
        m.store(0, 0xF000, 1, 8, 0);
        // Core 1 store-misses the same line: RFO invalidates core 0.
        m.store(1, 0xF000, 2, 8, 1000);
        assert_eq!(m.take_invalidations(0), vec![line_of(0xF000)]);
        assert_eq!(m.peek_word(0xF000), 2);
    }

    #[test]
    fn tlb_walk_charged_once() {
        let mut m = sys(1);
        let a = m.load(0, 0x100000, 0);
        let b = m.load(0, 0x100040, a.complete_at);
        // Same page: b pays no walk.
        assert_eq!(m.stats().tlb_misses, 1);
        assert_eq!(m.stats().tlb_hits, 1);
        assert!(a.latency() > b.latency());
    }

    #[test]
    fn peek_and_image_loading() {
        let mut m = sys(1);
        let mut img = DataImage::new();
        img.set_word(0x20, 1234);
        m.load_image(&img);
        assert_eq!(m.peek_word(0x20), 1234);
    }

    #[test]
    #[should_panic(expected = "tiles")]
    fn too_many_cores_panics() {
        let _ = MemorySystem::new(MemConfig::tiny(), 3); // tiny mesh is 2x1
    }

    #[test]
    fn ifetch_misses_then_hits() {
        let mut m = sys(1);
        let text = 1 << 40;
        let t1 = m.ifetch(0, text, 0);
        assert!(t1 > 0, "cold instruction line takes time");
        assert_eq!(m.stats().icache_misses, 1);
        let t2 = m.ifetch(0, text + 32, t1);
        assert_eq!(t2, t1, "same line: L1I hit is free");
        assert_eq!(m.stats().icache_hits, 1);
        // A different line in the same region misses again.
        let t3 = m.ifetch(0, text + 64, t2);
        assert!(t3 > t2);
    }

    #[test]
    fn ifetch_does_not_pollute_the_data_l1() {
        let mut m = sys(1);
        let text = 1 << 40;
        let _ = m.ifetch(0, text, 0);
        assert_eq!(m.residency(0, text), CacheLevel::L2, "line fills L1I + L2, not L1D");
    }

    #[test]
    fn three_core_sharing_and_ownership_migration() {
        // Exercise the directory through a full ownership life cycle:
        // write(0) -> read(1) -> read(2) -> write(2) -> read(0).
        // tiny mesh has 2 tiles; widen it for 3 cores (4 tiles keeps
        // the per-slice set count a power of two).
        let mut cfg = MemConfig::tiny();
        cfg.mesh_cols = 4;
        let mut m = MemorySystem::new(cfg, 3);
        let a = 0x7000u64;
        m.store(0, a, 10, 8, 0); // core 0 owns M
        let r1 = m.load(1, a, 100); // downgrade to shared
        assert_eq!(r1.value, 10);
        assert_eq!(r1.served_by, ServedBy::Remote);
        let r2 = m.load(2, a, 300); // plain L3 share now
        assert_eq!(r2.value, 10);
        assert_eq!(r2.served_by, ServedBy::L3);
        m.store(2, a, 20, 8, 500); // core 2 takes ownership
        // Cores 0 and 1 must both have been invalidated and notified.
        assert_eq!(m.take_invalidations(0), vec![line_of(a)]);
        assert_eq!(m.take_invalidations(1), vec![line_of(a)]);
        assert!(m.take_invalidations(2).is_empty());
        let r0 = m.load(0, a, 900);
        assert_eq!(r0.value, 20);
        assert_eq!(r0.served_by, ServedBy::Remote, "dirty in core 2");
    }

    #[test]
    fn exclusive_reader_upgrades_silently() {
        // A sole reader holds E; its own store needs no invalidations.
        let mut m = sys(2);
        let a = 0x7100u64;
        let r = m.load(0, a, 0);
        let _ = r;
        let before = m.stats().invalidations_sent;
        m.store(0, a, 5, 8, 200);
        assert_eq!(m.stats().invalidations_sent, before, "E -> M upgrade is silent");
        assert!(m.take_invalidations(1).is_empty());
    }

    #[test]
    fn writeback_on_private_eviction_keeps_l3_dirty_copy() {
        // Fill core 0's tiny L1+L2 set until its dirty line is evicted to
        // the L3; a second core must then see the data via the L3, not
        // a remote fetch.
        let mut m = sys(2);
        let mesh = Mesh::new(2, 1, 1);
        // Dirty line in core 0.
        let victim = (0..)
            .map(|i| i * 64u64)
            .find(|&a| mesh.slice_of(a) == 0)
            .unwrap();
        m.store(0, victim, 99, 8, 0);
        // Flood core 0's private caches with conflicting clean lines:
        // same L2 set as the victim (stride = L2 sets × line), but hashed
        // to the *other* L3 slice so the victim's inclusive L3 copy
        // survives.
        let l2_sets = 2048 / (2 * 64);
        let mut t = 100;
        let mut placed = 0;
        let mut cand = 1u64;
        while placed < 4 {
            let a = victim + cand * l2_sets as u64 * 64;
            cand += 1;
            if mesh.slice_of(a) == mesh.slice_of(victim) {
                continue;
            }
            let r = m.load(0, a, t);
            t = r.complete_at;
            placed += 1;
        }
        assert_eq!(m.residency(0, victim), CacheLevel::L3, "dirty line written back to L3");
        let r = m.load(1, victim, t + 100);
        assert_eq!(r.value, 99);
        assert_eq!(r.served_by, ServedBy::L3, "served from the L3 writeback copy");
    }

    #[test]
    fn prewarm_installs_requested_levels() {
        let mut m = sys(1);
        m.prewarm(0, 0x8000, 256, CacheLevel::L3);
        assert_eq!(m.residency(0, 0x8000), CacheLevel::L3);
        assert_eq!(m.residency(0, 0x80C0), CacheLevel::L3);
        m.prewarm(0, 0x9000, 128, CacheLevel::L1);
        assert_eq!(m.residency(0, 0x9000), CacheLevel::L1);
        m.prewarm(0, 0xA000, 128, CacheLevel::L2);
        assert_eq!(m.residency(0, 0xA000), CacheLevel::L2);
        // TLB pages are warmed too: an obl probe of a prewarmed page
        // translates.
        let look = m.obl_lookup(0, 0x8000, CacheLevel::L3, 1000).unwrap();
        assert!(look.tlb_hit);
        assert!(look.success());
    }

    #[test]
    fn reset_stats_clears() {
        let mut m = sys(1);
        let _ = m.load(0, 0, 0);
        assert!(m.stats().loads() > 0);
        m.reset_stats();
        assert_eq!(m.stats().loads(), 0);
    }
}
