//! Mesh interconnect hop-latency model (Table I: 4×2 mesh, 1 cycle/hop).

use crate::config::{Addr, Cycle};
use crate::LINE_BYTES;

/// A `cols × rows` mesh of tiles. Each core and its co-located L3 slice
/// occupy one tile; the latency between a core and a slice is the Manhattan
/// hop distance times the per-hop link latency, each way.
///
/// # Examples
///
/// ```rust
/// use sdo_mem::Mesh;
/// let mesh = Mesh::new(4, 2, 1);
/// assert_eq!(mesh.tiles(), 8);
/// assert_eq!(mesh.hops(0, 0), 0);
/// assert_eq!(mesh.hops(0, 7), 4); // corner to corner on 4x2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    cols: u32,
    rows: u32,
    hop_latency: Cycle,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(cols: u32, rows: u32, hop_latency: Cycle) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        Mesh { cols, rows, hop_latency }
    }

    /// Number of tiles (== number of L3 slices).
    #[must_use]
    pub fn tiles(&self) -> usize {
        (self.cols * self.rows) as usize
    }

    fn coords(&self, tile: usize) -> (u32, u32) {
        let t = tile as u32 % (self.cols * self.rows);
        (t % self.cols, t / self.cols)
    }

    /// Manhattan hop distance between two tiles.
    #[must_use]
    pub fn hops(&self, from: usize, to: usize) -> u32 {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        fx.abs_diff(tx) + fy.abs_diff(ty)
    }

    /// One-way latency between two tiles.
    #[must_use]
    pub fn latency(&self, from: usize, to: usize) -> Cycle {
        Cycle::from(self.hops(from, to)) * self.hop_latency
    }

    /// One-way latency from `from` to the *farthest* tile — the broadcast
    /// arrival bound used by the all-slice Obl-Ld L3 lookup (Section VI-B:
    /// the L2–L3 MSHR "is de-allocated when all responses arrive").
    #[must_use]
    pub fn worst_case_latency(&self, from: usize) -> Cycle {
        (0..self.tiles()).map(|t| self.latency(from, t)).max().unwrap_or(0)
    }

    /// The home L3 slice of a line address (design-time hash; the paper's
    /// "hash function set at design time").
    #[must_use]
    pub fn slice_of(&self, addr: Addr) -> usize {
        let line = addr / LINE_BYTES;
        // Simple xor-fold hash so consecutive lines spread over slices.
        let h = line ^ (line >> 7) ^ (line >> 17);
        (h % self.tiles() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_distance_is_manhattan() {
        let m = Mesh::new(4, 2, 1);
        assert_eq!(m.hops(0, 3), 3);
        assert_eq!(m.hops(0, 4), 1);
        assert_eq!(m.hops(3, 4), 4);
        assert_eq!(m.hops(5, 5), 0);
    }

    #[test]
    fn latency_scales_with_hop_cost() {
        let m = Mesh::new(4, 2, 3);
        assert_eq!(m.latency(0, 7), 12);
    }

    #[test]
    fn worst_case_from_corner_and_center() {
        let m = Mesh::new(4, 2, 1);
        assert_eq!(m.worst_case_latency(0), 4);
        assert_eq!(m.worst_case_latency(1), 3);
    }

    #[test]
    fn slice_hash_in_range_and_spreads() {
        let m = Mesh::new(4, 2, 1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u64 {
            let s = m.slice_of(i * 64);
            assert!(s < m.tiles());
            seen.insert(s);
        }
        assert_eq!(seen.len(), m.tiles(), "all slices used by a line sweep");
    }

    #[test]
    fn slice_is_stable_within_a_line() {
        let m = Mesh::new(4, 2, 1);
        assert_eq!(m.slice_of(0x1000), m.slice_of(0x103f));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Mesh::new(0, 2, 1);
    }
}
