//! L1 TLB model with probe (no-fill) and access (fill) paths.

use crate::config::{Addr, Cycle, TlbParams};

#[derive(Debug, Clone, Copy)]
struct Entry {
    vpn: u64,
    last_use: u64,
}

/// A fully-associative L1 TLB with LRU replacement.
///
/// Translation is identity (physical == virtual) in this simulator; the
/// TLB exists purely as a *timing and leakage* model, because TLB hits and
/// misses can leak addresses (Section V-B, citing TLBleed). Two paths:
///
/// * [`Tlb::access`] — a normal translation: fills on miss, charges the
///   page-walk latency.
/// * [`Tlb::probe`] — the data-oblivious path used by Obl-Ld: checks for a
///   hit without fill or LRU update. On a miss, the Obl-Ld proceeds with ⊥
///   translation and will `fail` (the paper's simplified strategy: "we do
///   not consult the L2 TLB until the address becomes untainted").
///
/// # Examples
///
/// ```rust
/// use sdo_mem::{Tlb, TlbParams};
/// let params = TlbParams { entries: 2, page_bytes: 4096, hit_latency: 1, walk_latency: 50 };
/// let mut tlb = Tlb::new(&params);
/// assert!(!tlb.probe(0x1000));
/// let latency = tlb.access(0x1000);
/// assert_eq!(latency, 50);         // cold: page walk
/// assert_eq!(tlb.access(0x1fff), 1); // same page: hit
/// assert!(tlb.probe(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<Entry>,
    params: TlbParams,
    use_tick: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    #[must_use]
    pub fn new(params: &TlbParams) -> Self {
        assert!(params.page_bytes.is_power_of_two(), "page size must be a power of two");
        Tlb { entries: Vec::with_capacity(params.entries as usize), params: *params, use_tick: 0 }
    }

    fn vpn(&self, addr: Addr) -> u64 {
        addr / self.params.page_bytes
    }

    /// Data-oblivious probe: `true` iff the page is resident. No fill, no
    /// replacement update.
    #[must_use]
    pub fn probe(&self, addr: Addr) -> bool {
        let vpn = self.vpn(addr);
        self.entries.iter().any(|e| e.vpn == vpn)
    }

    /// Normal translation: returns the latency charged (hit latency, or the
    /// page-walk latency on a miss) and fills the entry.
    pub fn access(&mut self, addr: Addr) -> Cycle {
        let vpn = self.vpn(addr);
        self.use_tick += 1;
        let tick = self.use_tick;
        if let Some(e) = self.entries.iter_mut().find(|e| e.vpn == vpn) {
            e.last_use = tick;
            return self.params.hit_latency;
        }
        if self.entries.len() < self.params.entries as usize {
            self.entries.push(Entry { vpn, last_use: tick });
        } else {
            let lru = self
                .entries
                .iter_mut()
                .min_by_key(|e| e.last_use)
                .expect("tlb with capacity > 0");
            *lru = Entry { vpn, last_use: tick };
        }
        self.params.walk_latency
    }

    /// Number of resident entries.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: u32) -> Tlb {
        Tlb::new(&TlbParams { entries, page_bytes: 4096, hit_latency: 1, walk_latency: 50 })
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tlb(4);
        assert_eq!(t.access(0), 50);
        assert_eq!(t.access(4095), 1);
        assert_eq!(t.access(4096), 50, "next page is a separate entry");
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut t = tlb(2);
        assert!(!t.probe(0));
        assert_eq!(t.resident(), 0);
        t.access(0);
        assert!(t.probe(63));
        assert_eq!(t.resident(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tlb(2);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // touch page 0 so page 1 is LRU
        t.access(2 * 4096); // evicts page 1
        assert!(t.probe(0));
        assert!(!t.probe(4096));
        assert!(t.probe(2 * 4096));
    }

    #[test]
    fn probe_does_not_refresh_lru() {
        let mut t = tlb(2);
        t.access(0);
        t.access(4096);
        assert!(t.probe(0)); // oblivious: must not protect page 0
        t.access(2 * 4096); // evicts page 0 (the true LRU)
        assert!(!t.probe(0));
        assert!(t.probe(4096));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_page_panics() {
        let _ = Tlb::new(&TlbParams { entries: 1, page_bytes: 1000, hit_latency: 1, walk_latency: 2 });
    }
}
