//! DRAM timing model with per-bank open rows (row buffers).

use crate::config::{Addr, Cycle, DramParams};

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
}

/// Open-page DRAM: each bank keeps one row open; an access to the open row
/// is fast (CAS only), a different row pays precharge + activate + CAS.
///
/// This operand-dependent latency is precisely why the paper does *not*
/// build a DO variant for DRAM ("an Obl-Ld cannot directly fetch data from
/// the row buffer, which has shorter access latency", Section VI-B) — the
/// location predictor instead falls back to STT delay for DRAM-bound loads.
///
/// # Examples
///
/// ```rust
/// use sdo_mem::{Dram, DramParams};
/// let params = DramParams { banks: 2, row_bytes: 1024, row_hit_latency: 60, row_miss_latency: 100 };
/// let mut dram = Dram::new(&params);
/// let (done1, hit1) = dram.access(0x0, 0);
/// assert!(!hit1);                       // cold row
/// let (done2, hit2) = dram.access(0x40, done1);
/// assert!(hit2);                        // same row, now open
/// assert!(done2 - done1 < done1 - 0);   // row hit is faster
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    banks: Vec<Bank>,
    params: DramParams,
}

impl Dram {
    /// Creates a DRAM model with all rows closed.
    #[must_use]
    pub fn new(params: &DramParams) -> Self {
        Dram { banks: vec![Bank::default(); params.banks as usize], params: *params }
    }

    fn bank_of(&self, addr: Addr) -> usize {
        // Interleave banks at row granularity so streaming accesses rotate.
        ((addr / self.params.row_bytes) % self.banks.len() as u64) as usize
    }

    fn row_of(&self, addr: Addr) -> u64 {
        addr / self.params.row_bytes / self.banks.len() as u64
    }

    /// Performs a DRAM access arriving at `arrive`. Returns
    /// `(complete_at, row_hit)` and leaves the accessed row open.
    pub fn access(&mut self, addr: Addr, arrive: Cycle) -> (Cycle, bool) {
        let bank_idx = self.bank_of(addr);
        let row = self.row_of(addr);
        let bank = &mut self.banks[bank_idx];
        let start = arrive.max(bank.busy_until);
        let hit = bank.open_row == Some(row);
        let latency = if hit { self.params.row_hit_latency } else { self.params.row_miss_latency };
        bank.open_row = Some(row);
        bank.busy_until = start + latency;
        (start + latency, hit)
    }

    /// Number of modeled banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Number of banks currently holding a row open (observability: how
    /// much row-buffer locality the run left behind).
    #[must_use]
    pub fn open_rows(&self) -> usize {
        self.banks.iter().filter(|b| b.open_row.is_some()).count()
    }

    /// Earliest cycle strictly after `now` at which a busy bank frees.
    /// `None` when every bank is already idle at `now`.
    #[must_use]
    pub fn next_bank_release(&self, now: Cycle) -> Option<Cycle> {
        self.banks.iter().map(|b| b.busy_until).filter(|&at| at > now).min()
    }

    /// Latency the access *would* have (row hit or miss), without changing
    /// state; used by tests.
    #[must_use]
    pub fn peek_latency(&self, addr: Addr) -> Cycle {
        let bank = &self.banks[self.bank_of(addr)];
        if bank.open_row == Some(self.row_of(addr)) {
            self.params.row_hit_latency
        } else {
            self.params.row_miss_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(&DramParams { banks: 2, row_bytes: 1024, row_hit_latency: 60, row_miss_latency: 100 })
    }

    #[test]
    fn first_access_misses_row() {
        let mut d = dram();
        let (done, hit) = d.access(0, 0);
        assert!(!hit);
        assert_eq!(done, 100);
    }

    #[test]
    fn same_row_hits() {
        let mut d = dram();
        d.access(0, 0);
        let (done, hit) = d.access(512, 100);
        assert!(hit);
        assert_eq!(done, 160);
    }

    #[test]
    fn different_row_same_bank_misses_again() {
        let mut d = dram();
        d.access(0, 0); // bank 0, row 0
        let (_, hit) = d.access(2048, 100); // bank 0, row 1
        assert!(!hit);
    }

    #[test]
    fn banks_overlap_in_time() {
        let mut d = dram();
        let (a, _) = d.access(0, 0); // bank 0
        let (b, _) = d.access(1024, 0); // bank 1
        assert_eq!(a, b, "parallel banks complete together");
    }

    #[test]
    fn busy_bank_queues() {
        let mut d = dram();
        let (first, _) = d.access(0, 0);
        let (second, hit) = d.access(0, 0); // immediately again, same bank
        assert!(hit);
        assert_eq!(second, first + 60);
    }

    #[test]
    fn next_bank_release_reports_earliest_busy_bank() {
        let mut d = dram();
        assert_eq!(d.next_bank_release(0), None, "idle banks generate no event");
        let (a, _) = d.access(0, 0); // bank 0, busy until 100
        let (b, _) = d.access(1024, 50); // bank 1, busy until 150
        assert_eq!(d.next_bank_release(0), Some(a));
        // Strictly-after semantics at the release cycle itself.
        assert_eq!(d.next_bank_release(a), Some(b));
        assert_eq!(d.next_bank_release(b), None);
    }

    #[test]
    fn peek_latency_is_pure() {
        let mut d = dram();
        assert_eq!(d.peek_latency(0), 100);
        d.access(0, 0);
        assert_eq!(d.peek_latency(0), 60);
        assert_eq!(d.peek_latency(2048), 100);
    }

    #[test]
    fn open_rows_counts_touched_banks() {
        let mut d = dram();
        assert_eq!(d.banks(), 2);
        assert_eq!(d.open_rows(), 0);
        d.access(0, 0);
        assert_eq!(d.open_rows(), 1);
        d.access(1024, 0);
        assert_eq!(d.open_rows(), 2);
        d.access(2048, 200); // same bank, different row: still one open row
        assert_eq!(d.open_rows(), 2);
    }
}
