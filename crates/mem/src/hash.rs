//! Multiply-xor hashing for address-keyed maps.
//!
//! The directory and the backing store do at least one map lookup per
//! simulated memory access, and the keys are single `u64` line/page
//! numbers — SipHash's per-call setup dominates the probe itself there.
//! This is the standard Fx multiply-xor mix: one wrapping multiply per
//! word, plenty for non-adversarial address keys.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// One-shot multiply-xor hasher for integer keys.
#[derive(Debug, Default)]
pub struct AddrHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for AddrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// A `HashMap` using [`AddrHasher`] — for hot, address-keyed tables.
pub type AddrMap<K, V> = HashMap<K, V, BuildHasherDefault<AddrHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_map_behaves_like_a_map() {
        let mut m: AddrMap<u64, u32> = AddrMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(999 * 64)), Some(&999));
        assert_eq!(m.get(&1), None);
        m.remove(&0);
        assert_eq!(m.get(&0), None);
    }
}
