//! Instruction set definition.

use crate::reg::{FReg, Reg};
use std::fmt;

/// Width of a data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemWidth {
    /// A single byte (zero-extended on load).
    Byte,
    /// A 16-bit halfword (zero-extended on load).
    Half,
    /// A 32-bit word (zero-extended on load); the natural width of the
    /// RV32 frontend's `lw`/`sw`.
    Word4,
    /// A 64-bit word. Word accesses must be 8-byte aligned.
    #[default]
    Word,
}

impl MemWidth {
    /// The access size in bytes (1, 2, 4 or 8).
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word4 => 4,
            MemWidth::Word => 8,
        }
    }

    /// The load/store mnemonic suffix (`ld`/`ldb`/`ldh`/`ldw`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            MemWidth::Byte => "b",
            MemWidth::Half => "h",
            MemWidth::Word4 => "w",
            MemWidth::Word => "",
        }
    }
}

/// Comparison performed by a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken iff `lhs == rhs`.
    Eq,
    /// Taken iff `lhs != rhs`.
    Ne,
    /// Taken iff `lhs < rhs` as signed 64-bit integers.
    Lt,
    /// Taken iff `lhs >= rhs` as signed 64-bit integers.
    Ge,
    /// Taken iff `lhs < rhs` as unsigned 64-bit integers.
    LtU,
    /// Taken iff `lhs >= rhs` as unsigned 64-bit integers.
    GeU,
}

impl BranchCond {
    /// Evaluates the condition on two register values.
    ///
    /// ```rust
    /// use sdo_isa::BranchCond;
    /// assert!(BranchCond::Lt.eval(u64::MAX, 0)); // -1 < 0 signed
    /// assert!(!BranchCond::LtU.eval(u64::MAX, 0));
    /// ```
    #[must_use]
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            BranchCond::Eq => lhs == rhs,
            BranchCond::Ne => lhs != rhs,
            BranchCond::Lt => (lhs as i64) < (rhs as i64),
            BranchCond::Ge => (lhs as i64) >= (rhs as i64),
            BranchCond::LtU => lhs < rhs,
            BranchCond::GeU => lhs >= rhs,
        }
    }
}

/// Two-operand integer ALU operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `rhs & 63`.
    Sll,
    /// Logical shift right by `rhs & 63`.
    Srl,
    /// Arithmetic shift right by `rhs & 63`.
    Sra,
    /// Set-less-than, signed: `dst = (lhs < rhs) as u64`.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
    /// Wrapping 64-bit multiplication (low half).
    Mul,
    /// Unsigned division; division by zero yields `u64::MAX` (RISC-V rule).
    Divu,
    /// 32-bit wrapping addition, result sign-extended to 64 bits
    /// (RV64 `addw`; the RV32 frontend keeps every register value
    /// sign-extended from 32 bits, see DESIGN.md §14).
    AddW,
    /// 32-bit wrapping subtraction, result sign-extended.
    SubW,
    /// 32-bit logical shift left by `rhs & 31`, result sign-extended.
    SllW,
    /// 32-bit logical shift right by `rhs & 31`, result sign-extended.
    SrlW,
    /// 32-bit arithmetic shift right by `rhs & 31`, result sign-extended.
    SraW,
    /// 32-bit wrapping multiplication (low half), result sign-extended.
    MulW,
    /// 32-bit signed division with the RISC-V edge rules: division by
    /// zero yields `-1`; `i32::MIN / -1` yields `i32::MIN`.
    DivW,
    /// 32-bit unsigned division; division by zero yields `-1` (all
    /// ones); result sign-extended from 32 bits.
    DivuW,
    /// 32-bit signed remainder: remainder by zero yields the dividend;
    /// `i32::MIN % -1` yields `0`.
    RemW,
    /// 32-bit unsigned remainder; remainder by zero yields the dividend;
    /// result sign-extended from 32 bits.
    RemuW,
}

/// Sign-extends the low 32 bits of a value to 64 bits — the result
/// normalization every `*W` op applies (RV64 register convention).
fn sext32(x: u32) -> u64 {
    x as i32 as i64 as u64
}

impl AluOp {
    /// Evaluates the operation on two 64-bit values.
    #[must_use]
    pub fn eval(self, lhs: u64, rhs: u64) -> u64 {
        match self {
            AluOp::Add => lhs.wrapping_add(rhs),
            AluOp::Sub => lhs.wrapping_sub(rhs),
            AluOp::And => lhs & rhs,
            AluOp::Or => lhs | rhs,
            AluOp::Xor => lhs ^ rhs,
            AluOp::Sll => lhs << (rhs & 63),
            AluOp::Srl => lhs >> (rhs & 63),
            AluOp::Sra => ((lhs as i64) >> (rhs & 63)) as u64,
            AluOp::Slt => u64::from((lhs as i64) < (rhs as i64)),
            AluOp::Sltu => u64::from(lhs < rhs),
            AluOp::Mul => lhs.wrapping_mul(rhs),
            AluOp::Divu => lhs.checked_div(rhs).unwrap_or(u64::MAX),
            AluOp::AddW => sext32((lhs as u32).wrapping_add(rhs as u32)),
            AluOp::SubW => sext32((lhs as u32).wrapping_sub(rhs as u32)),
            AluOp::SllW => sext32((lhs as u32) << (rhs & 31)),
            AluOp::SrlW => sext32((lhs as u32) >> (rhs & 31)),
            AluOp::SraW => sext32(((lhs as i32) >> (rhs & 31)) as u32),
            AluOp::MulW => sext32((lhs as u32).wrapping_mul(rhs as u32)),
            AluOp::DivW => {
                // RISC-V: x / 0 = -1; i32::MIN / -1 = i32::MIN.
                let fallback = if rhs as i32 == 0 { -1 } else { i32::MIN };
                sext32((lhs as i32).checked_div(rhs as i32).unwrap_or(fallback) as u32)
            }
            AluOp::DivuW => sext32((lhs as u32).checked_div(rhs as u32).unwrap_or(u32::MAX)),
            AluOp::RemW => {
                // RISC-V: x % 0 = x; i32::MIN % -1 = 0.
                let fallback = if rhs as i32 == 0 { lhs as i32 } else { 0 };
                sext32((lhs as i32).checked_rem(rhs as i32).unwrap_or(fallback) as u32)
            }
            AluOp::RemuW => {
                sext32((lhs as u32).checked_rem(rhs as u32).unwrap_or(lhs as u32))
            }
        }
    }

    /// Whether the op uses the long-latency multiply unit.
    #[must_use]
    pub fn is_mul(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::MulW)
    }

    /// Whether the op uses the long-latency divide unit.
    #[must_use]
    pub fn is_div(self) -> bool {
        matches!(
            self,
            AluOp::Divu | AluOp::DivW | AluOp::DivuW | AluOp::RemW | AluOp::RemuW
        )
    }
}

/// Floating-point operation selector.
///
/// `Mul`, `Div` and `Sqrt` are the FP *transmit* micro-ops of the paper's
/// `STT{ld+fp}` configuration (Table II): their hardware latency depends on
/// whether an operand is subnormal, which forms a covert channel
/// (Section I-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// IEEE-754 binary64 addition.
    Add,
    /// IEEE-754 binary64 subtraction.
    Sub,
    /// IEEE-754 binary64 multiplication (transmit op).
    Mul,
    /// IEEE-754 binary64 division (transmit op).
    Div,
    /// IEEE-754 binary64 square root of `lhs`; `rhs` is ignored (transmit op).
    Sqrt,
}

impl FpuOp {
    /// Evaluates the operation on two binary64 values.
    #[must_use]
    pub fn eval(self, lhs: f64, rhs: f64) -> f64 {
        match self {
            FpuOp::Add => lhs + rhs,
            FpuOp::Sub => lhs - rhs,
            FpuOp::Mul => lhs * rhs,
            FpuOp::Div => lhs / rhs,
            FpuOp::Sqrt => lhs.sqrt(),
        }
    }

    /// Whether this FP op is a transmitter under `STT{ld+fp}`
    /// (operand-dependent latency: subnormal slow path).
    #[must_use]
    pub fn is_transmit(self) -> bool {
        matches!(self, FpuOp::Mul | FpuOp::Div | FpuOp::Sqrt)
    }
}

/// Coarse functional classification of an instruction.
///
/// The out-of-order core uses this to pick a functional unit and the STT
/// layer uses it to classify transmitters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU op.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// FP add/sub.
    FpAdd,
    /// FP multiply (transmit op in `STT{ld+fp}`).
    FpMul,
    /// FP divide (transmit op in `STT{ld+fp}`).
    FpDiv,
    /// FP square root (transmit op in `STT{ld+fp}`).
    FpSqrt,
    /// Data-memory load (integer or FP destination).
    Load,
    /// Data-memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional direct or indirect jump.
    Jump,
    /// No-op.
    Nop,
    /// Architectural halt.
    Halt,
}

/// A single architectural instruction.
///
/// Program counters are *instruction indices* (the pc steps by 1); branch
/// and jump targets are absolute instruction indices. Data memory is
/// byte-addressed and disjoint from instruction memory (Harvard-style),
/// which keeps the simulator's wrong-path execution well-defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Register-register integer ALU operation: `dst = op(lhs, rhs)`.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left-hand source.
        lhs: Reg,
        /// Right-hand source.
        rhs: Reg,
    },
    /// Register-immediate integer ALU operation: `dst = op(src, imm)`.
    AluImm {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Register source.
        src: Reg,
        /// Immediate operand (sign interpreted by the op).
        imm: i64,
    },
    /// Load immediate: `dst = imm`.
    Li {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Integer load: `dst = mem[src(base) + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
        /// Access width.
        width: MemWidth,
    },
    /// Integer store: `mem[src(base) + offset] = src`.
    Store {
        /// Data source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
        /// Access width.
        width: MemWidth,
    },
    /// FP load (always word width): `fdst = mem[base + offset]`.
    FLoad {
        /// Destination FP register.
        dst: FReg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
    },
    /// FP store (always word width): `mem[base + offset] = fsrc`.
    FStore {
        /// Data source FP register.
        src: FReg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
    },
    /// Conditional branch to absolute instruction index `target`.
    Branch {
        /// Comparison.
        cond: BranchCond,
        /// Left comparison source.
        lhs: Reg,
        /// Right comparison source.
        rhs: Reg,
        /// Absolute target (instruction index) when taken.
        target: u64,
    },
    /// Direct jump-and-link: `dst = pc + 1; pc = target`.
    Jal {
        /// Link register (use [`Reg::ZERO`] to discard).
        dst: Reg,
        /// Absolute target (instruction index).
        target: u64,
    },
    /// Indirect jump-and-link: `dst = pc + 1; pc = base + offset`.
    Jalr {
        /// Link register (use [`Reg::ZERO`] to discard).
        dst: Reg,
        /// Register holding the target instruction index.
        base: Reg,
        /// Signed offset added to the register value.
        offset: i64,
    },
    /// Two-operand FP operation: `dst = op(lhs, rhs)`; `Sqrt` ignores `rhs`.
    Fpu {
        /// Operation selector.
        op: FpuOp,
        /// Destination FP register.
        dst: FReg,
        /// Left-hand FP source.
        lhs: FReg,
        /// Right-hand FP source.
        rhs: FReg,
    },
    /// Move FP bits to an integer register: `dst = bits(src)`.
    FMvToInt {
        /// Destination integer register.
        dst: Reg,
        /// Source FP register.
        src: FReg,
    },
    /// Move integer bits to an FP register: `dst = bits(src)`.
    FMvFromInt {
        /// Destination FP register.
        dst: FReg,
        /// Source integer register.
        src: Reg,
    },
    /// No operation.
    Nop,
    /// Stops the program; the interpreter and simulator treat this as
    /// normal termination.
    Halt,
}

impl Instruction {
    /// The instruction's functional class.
    #[must_use]
    pub fn class(&self) -> OpClass {
        match self {
            Instruction::Alu { op, .. } | Instruction::AluImm { op, .. } => {
                if op.is_mul() {
                    OpClass::IntMul
                } else if op.is_div() {
                    OpClass::IntDiv
                } else {
                    OpClass::IntAlu
                }
            }
            Instruction::Li { .. } | Instruction::FMvToInt { .. } | Instruction::FMvFromInt { .. } => {
                OpClass::IntAlu
            }
            Instruction::Load { .. } | Instruction::FLoad { .. } => OpClass::Load,
            Instruction::Store { .. } | Instruction::FStore { .. } => OpClass::Store,
            Instruction::Branch { .. } => OpClass::Branch,
            Instruction::Jal { .. } | Instruction::Jalr { .. } => OpClass::Jump,
            Instruction::Fpu { op, .. } => match op {
                FpuOp::Add | FpuOp::Sub => OpClass::FpAdd,
                FpuOp::Mul => OpClass::FpMul,
                FpuOp::Div => OpClass::FpDiv,
                FpuOp::Sqrt => OpClass::FpSqrt,
            },
            Instruction::Nop => OpClass::Nop,
            Instruction::Halt => OpClass::Halt,
        }
    }

    /// Whether this is a data-memory load (an *access instruction* in STT
    /// terminology — its output gets tainted while speculative).
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Instruction::Load { .. } | Instruction::FLoad { .. })
    }

    /// Whether this is a data-memory store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Instruction::Store { .. } | Instruction::FStore { .. })
    }

    /// Whether this is a control-flow instruction (branch or jump).
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. } | Instruction::Jal { .. } | Instruction::Jalr { .. }
        )
    }

    /// Whether this is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instruction::Branch { .. })
    }

    /// Whether this is an *indirect* control transfer (target from a
    /// register).
    #[must_use]
    pub fn is_indirect(&self) -> bool {
        matches!(self, Instruction::Jalr { .. })
    }

    /// Whether this is one of the FP transmit micro-ops of `STT{ld+fp}`
    /// (`fmul`/`fdiv`/`fsqrt`).
    #[must_use]
    pub fn is_fp_transmit(&self) -> bool {
        matches!(self, Instruction::Fpu { op, .. } if op.is_transmit())
    }

    /// The integer destination register, if any (excluding `r0` writes,
    /// which are architectural no-ops).
    #[must_use]
    pub fn int_dst(&self) -> Option<Reg> {
        let dst = match *self {
            Instruction::Alu { dst, .. }
            | Instruction::AluImm { dst, .. }
            | Instruction::Li { dst, .. }
            | Instruction::Load { dst, .. }
            | Instruction::Jal { dst, .. }
            | Instruction::Jalr { dst, .. }
            | Instruction::FMvToInt { dst, .. } => dst,
            _ => return None,
        };
        (!dst.is_zero()).then_some(dst)
    }

    /// The FP destination register, if any.
    #[must_use]
    pub fn fp_dst(&self) -> Option<FReg> {
        match *self {
            Instruction::FLoad { dst, .. }
            | Instruction::Fpu { dst, .. }
            | Instruction::FMvFromInt { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Integer source registers, in operand order (at most 2).
    #[must_use]
    pub fn int_srcs(&self) -> [Option<Reg>; 2] {
        match *self {
            Instruction::Alu { lhs, rhs, .. } => [Some(lhs), Some(rhs)],
            Instruction::AluImm { src, .. } => [Some(src), None],
            Instruction::Load { base, .. }
            | Instruction::FLoad { base, .. }
            | Instruction::Jalr { base, .. } => [Some(base), None],
            Instruction::Store { src, base, .. } => [Some(src), Some(base)],
            Instruction::FStore { base, .. } => [Some(base), None],
            Instruction::Branch { lhs, rhs, .. } => [Some(lhs), Some(rhs)],
            Instruction::FMvFromInt { src, .. } => [Some(src), None],
            _ => [None, None],
        }
    }

    /// FP source registers, in operand order (at most 2).
    #[must_use]
    pub fn fp_srcs(&self) -> [Option<FReg>; 2] {
        match *self {
            Instruction::Fpu { op, lhs, rhs, .. } => {
                if matches!(op, FpuOp::Sqrt) {
                    [Some(lhs), None]
                } else {
                    [Some(lhs), Some(rhs)]
                }
            }
            Instruction::FStore { src, .. } => [Some(src), None],
            Instruction::FMvToInt { src, .. } => [Some(src), None],
            _ => [None, None],
        }
    }

    /// For loads/stores: the `(base, offset, width)` triple of the memory
    /// access, if this is a memory instruction.
    #[must_use]
    pub fn mem_operands(&self) -> Option<(Reg, i64, MemWidth)> {
        match *self {
            Instruction::Load { base, offset, width, .. }
            | Instruction::Store { base, offset, width, .. } => Some((base, offset, width)),
            Instruction::FLoad { base, offset, .. } | Instruction::FStore { base, offset, .. } => {
                Some((base, offset, MemWidth::Word))
            }
            _ => None,
        }
    }

    /// For direct control transfers, the static target.
    #[must_use]
    pub fn direct_target(&self) -> Option<u64> {
        match *self {
            Instruction::Branch { target, .. } | Instruction::Jal { target, .. } => Some(target),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Alu { op, dst, lhs, rhs } => {
                write!(f, "{} {dst}, {lhs}, {rhs}", format!("{op:?}").to_lowercase())
            }
            Instruction::AluImm { op, dst, src, imm } => {
                write!(f, "{}i {dst}, {src}, {imm}", format!("{op:?}").to_lowercase())
            }
            Instruction::Li { dst, imm } => write!(f, "li {dst}, {imm}"),
            Instruction::Load { dst, base, offset, width } => {
                write!(f, "ld{} {dst}, {offset}({base})", width.suffix())
            }
            Instruction::Store { src, base, offset, width } => {
                write!(f, "st{} {src}, {offset}({base})", width.suffix())
            }
            Instruction::FLoad { dst, base, offset } => write!(f, "fld {dst}, {offset}({base})"),
            Instruction::FStore { src, base, offset } => write!(f, "fst {src}, {offset}({base})"),
            Instruction::Branch { cond, lhs, rhs, target } => {
                write!(f, "b{} {lhs}, {rhs}, @{target}", format!("{cond:?}").to_lowercase())
            }
            Instruction::Jal { dst, target } => write!(f, "jal {dst}, @{target}"),
            Instruction::Jalr { dst, base, offset } => write!(f, "jalr {dst}, {offset}({base})"),
            Instruction::Fpu { op, dst, lhs, rhs } => {
                if matches!(op, FpuOp::Sqrt) {
                    write!(f, "fsqrt {dst}, {lhs}")
                } else {
                    write!(f, "f{} {dst}, {lhs}, {rhs}", format!("{op:?}").to_lowercase())
                }
            }
            Instruction::FMvToInt { dst, src } => write!(f, "fmv.x {dst}, {src}"),
            Instruction::FMvFromInt { dst, src } => write!(f, "fmv.f {dst}, {src}"),
            Instruction::Nop => write!(f, "nop"),
            Instruction::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }
    fn fr(i: u8) -> FReg {
        FReg::new(i)
    }

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(3, 4), 7);
        assert_eq!(AluOp::Sub.eval(3, 4), u64::MAX); // wraps
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.eval(1, 3), 8);
        assert_eq!(AluOp::Srl.eval(u64::MAX, 63), 1);
        assert_eq!(AluOp::Sra.eval(u64::MAX, 63), u64::MAX); // -1 >> 63 = -1
        assert_eq!(AluOp::Mul.eval(6, 7), 42);
    }

    #[test]
    fn alu_shift_amount_masked_to_6_bits() {
        assert_eq!(AluOp::Sll.eval(1, 64), 1);
        assert_eq!(AluOp::Srl.eval(2, 65), 1);
    }

    #[test]
    fn alu_div_by_zero_is_all_ones() {
        assert_eq!(AluOp::Divu.eval(5, 0), u64::MAX);
        assert_eq!(AluOp::Divu.eval(42, 6), 7);
    }

    #[test]
    fn alu_slt_signed_vs_unsigned() {
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1); // -1 < 0
        assert_eq!(AluOp::Sltu.eval(u64::MAX, 0), 0);
    }

    #[test]
    fn branch_cond_eval_all() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(BranchCond::Ne.eval(5, 6));
        assert!(BranchCond::Lt.eval(u64::MAX, 0));
        assert!(BranchCond::Ge.eval(0, u64::MAX));
        assert!(BranchCond::LtU.eval(0, u64::MAX));
        assert!(BranchCond::GeU.eval(u64::MAX, 0));
    }

    #[test]
    fn fpu_eval_and_transmit_classification() {
        assert_eq!(FpuOp::Add.eval(1.5, 2.5), 4.0);
        assert_eq!(FpuOp::Mul.eval(3.0, 4.0), 12.0);
        assert_eq!(FpuOp::Sqrt.eval(9.0, 0.0), 3.0);
        assert!(FpuOp::Mul.is_transmit());
        assert!(FpuOp::Div.is_transmit());
        assert!(FpuOp::Sqrt.is_transmit());
        assert!(!FpuOp::Add.is_transmit());
        assert!(!FpuOp::Sub.is_transmit());
    }

    #[test]
    fn class_of_each_form() {
        let ld = Instruction::Load { dst: r(1), base: r(2), offset: 0, width: MemWidth::Word };
        assert_eq!(ld.class(), OpClass::Load);
        assert!(ld.is_load());
        let st = Instruction::Store { src: r(1), base: r(2), offset: 8, width: MemWidth::Word };
        assert_eq!(st.class(), OpClass::Store);
        assert!(st.is_store());
        let br = Instruction::Branch { cond: BranchCond::Eq, lhs: r(1), rhs: r(2), target: 3 };
        assert_eq!(br.class(), OpClass::Branch);
        assert!(br.is_control() && br.is_cond_branch());
        let mul = Instruction::Alu { op: AluOp::Mul, dst: r(1), lhs: r(2), rhs: r(3) };
        assert_eq!(mul.class(), OpClass::IntMul);
        let fsqrt = Instruction::Fpu { op: FpuOp::Sqrt, dst: fr(0), lhs: fr(1), rhs: fr(2) };
        assert_eq!(fsqrt.class(), OpClass::FpSqrt);
        assert!(fsqrt.is_fp_transmit());
        assert_eq!(Instruction::Halt.class(), OpClass::Halt);
    }

    #[test]
    fn r0_destination_is_discarded() {
        let i = Instruction::Alu { op: AluOp::Add, dst: Reg::ZERO, lhs: r(1), rhs: r(2) };
        assert_eq!(i.int_dst(), None);
        let j = Instruction::Jal { dst: Reg::ZERO, target: 0 };
        assert_eq!(j.int_dst(), None);
    }

    #[test]
    fn sources_of_store_include_data_and_base() {
        let st = Instruction::Store { src: r(3), base: r(4), offset: 0, width: MemWidth::Word };
        assert_eq!(st.int_srcs(), [Some(r(3)), Some(r(4))]);
        let fst = Instruction::FStore { src: fr(5), base: r(6), offset: 0 };
        assert_eq!(fst.int_srcs(), [Some(r(6)), None]);
        assert_eq!(fst.fp_srcs(), [Some(fr(5)), None]);
    }

    #[test]
    fn sqrt_has_single_fp_source() {
        let i = Instruction::Fpu { op: FpuOp::Sqrt, dst: fr(1), lhs: fr(2), rhs: fr(3) };
        assert_eq!(i.fp_srcs(), [Some(fr(2)), None]);
        let m = Instruction::Fpu { op: FpuOp::Mul, dst: fr(1), lhs: fr(2), rhs: fr(3) };
        assert_eq!(m.fp_srcs(), [Some(fr(2)), Some(fr(3))]);
    }

    #[test]
    fn mem_operands_for_all_memory_forms() {
        let ld = Instruction::Load { dst: r(1), base: r(2), offset: -8, width: MemWidth::Byte };
        assert_eq!(ld.mem_operands(), Some((r(2), -8, MemWidth::Byte)));
        let fld = Instruction::FLoad { dst: fr(1), base: r(2), offset: 16 };
        assert_eq!(fld.mem_operands(), Some((r(2), 16, MemWidth::Word)));
        assert_eq!(Instruction::Nop.mem_operands(), None);
    }

    #[test]
    fn direct_target_only_for_direct_transfers() {
        let br = Instruction::Branch { cond: BranchCond::Ne, lhs: r(1), rhs: r(2), target: 7 };
        assert_eq!(br.direct_target(), Some(7));
        let jalr = Instruction::Jalr { dst: r(1), base: r(2), offset: 0 };
        assert_eq!(jalr.direct_target(), None);
        assert!(jalr.is_indirect());
    }

    #[test]
    fn display_is_nonempty_for_every_form() {
        let insts = [
            Instruction::Alu { op: AluOp::Add, dst: r(1), lhs: r(2), rhs: r(3) },
            Instruction::AluImm { op: AluOp::Add, dst: r(1), src: r(2), imm: -4 },
            Instruction::Li { dst: r(1), imm: 9 },
            Instruction::Load { dst: r(1), base: r(2), offset: 0, width: MemWidth::Word },
            Instruction::Store { src: r(1), base: r(2), offset: 0, width: MemWidth::Byte },
            Instruction::FLoad { dst: fr(1), base: r(2), offset: 0 },
            Instruction::FStore { src: fr(1), base: r(2), offset: 0 },
            Instruction::Branch { cond: BranchCond::Eq, lhs: r(1), rhs: r(2), target: 0 },
            Instruction::Jal { dst: r(1), target: 0 },
            Instruction::Jalr { dst: r(1), base: r(2), offset: 0 },
            Instruction::Fpu { op: FpuOp::Sqrt, dst: fr(1), lhs: fr(2), rhs: fr(3) },
            Instruction::FMvToInt { dst: r(1), src: fr(2) },
            Instruction::FMvFromInt { dst: fr(1), src: r(2) },
            Instruction::Nop,
            Instruction::Halt,
        ];
        for i in insts {
            assert!(!i.to_string().is_empty(), "{i:?}");
        }
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word4.bytes(), 4);
        assert_eq!(MemWidth::Word.bytes(), 8);
        assert_eq!(MemWidth::default(), MemWidth::Word);
        assert_eq!(MemWidth::Half.suffix(), "h");
        assert_eq!(MemWidth::Word4.suffix(), "w");
    }

    /// The `*W` ops keep every result sign-extended from 32 bits — the
    /// register invariant the RV32 frontend relies on (DESIGN.md §14).
    #[test]
    fn w_ops_sign_extend_results() {
        // 0x7fffffff + 1 overflows to i32::MIN, sign-extended.
        assert_eq!(AluOp::AddW.eval(0x7fff_ffff, 1), 0xffff_ffff_8000_0000);
        assert_eq!(AluOp::SubW.eval(0, 1), u64::MAX); // -1 as sext32
        assert_eq!(AluOp::SllW.eval(1, 31), 0xffff_ffff_8000_0000);
        // Srl/Sra mask the shift amount to 5 bits and operate on 32 bits.
        assert_eq!(AluOp::SrlW.eval(0xffff_ffff_8000_0000, 31), 1);
        assert_eq!(AluOp::SraW.eval(0xffff_ffff_8000_0000, 31), u64::MAX);
        assert_eq!(AluOp::SllW.eval(1, 32), 1); // shift masked &31
        assert_eq!(AluOp::MulW.eval(0x10000, 0x10000), 0); // low 32 bits only
        assert_eq!(AluOp::MulW.eval(0xffff_ffff_ffff_ffff, 1), u64::MAX);
    }

    /// RISC-V division edge rules: div by zero, overflow, rem by zero.
    #[test]
    fn w_division_edge_cases() {
        assert_eq!(AluOp::DivW.eval(7, 0), u64::MAX); // x/0 = -1
        let int_min = 0xffff_ffff_8000_0000u64; // i32::MIN sext
        assert_eq!(AluOp::DivW.eval(int_min, u64::MAX), int_min); // MIN/-1 = MIN
        assert_eq!(AluOp::DivW.eval(u64::MAX, 1), u64::MAX); // -1/1 = -1
        assert_eq!(AluOp::DivW.eval(42, 6), 7);
        assert_eq!(AluOp::DivuW.eval(7, 0), u64::MAX); // divu by 0 = all ones
        assert_eq!(AluOp::DivuW.eval(0xffff_ffff_ffff_fffe, 1), 0xffff_ffff_ffff_fffe);
        assert_eq!(AluOp::RemW.eval(7, 0), 7); // x%0 = x
        assert_eq!(AluOp::RemW.eval(int_min, u64::MAX), 0); // MIN%-1 = 0
        assert_eq!(AluOp::RemW.eval(u64::MAX, 2), u64::MAX); // -1 % 2 = -1
        assert_eq!(AluOp::RemuW.eval(9, 0), 9);
        assert_eq!(AluOp::RemuW.eval(0xffff_ffff_0000_0009, 4), 1);
    }

    /// Every `*W` result is a fixed point of sign-extension from 32 bits.
    #[test]
    fn w_ops_results_are_canonical_sext32() {
        let ops = [
            AluOp::AddW, AluOp::SubW, AluOp::SllW, AluOp::SrlW, AluOp::SraW,
            AluOp::MulW, AluOp::DivW, AluOp::DivuW, AluOp::RemW, AluOp::RemuW,
        ];
        let samples = [0u64, 1, 5, 31, 42, u64::MAX, 0x7fff_ffff, 0xffff_ffff_8000_0000];
        for op in ops {
            for &a in &samples {
                for &b in &samples {
                    let v = op.eval(a, b);
                    assert_eq!(v, v as i32 as i64 as u64, "{op:?}({a:#x}, {b:#x})");
                }
            }
        }
    }

    #[test]
    fn w_ops_unit_classification() {
        assert!(AluOp::MulW.is_mul() && !AluOp::MulW.is_div());
        for op in [AluOp::DivW, AluOp::DivuW, AluOp::RemW, AluOp::RemuW] {
            assert!(op.is_div() && !op.is_mul(), "{op:?}");
        }
        for op in [AluOp::AddW, AluOp::SubW, AluOp::SllW, AluOp::SrlW, AluOp::SraW] {
            assert!(!op.is_div() && !op.is_mul(), "{op:?}");
        }
    }
}
