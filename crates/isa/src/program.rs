//! Executable program images.

use crate::inst::Instruction;
use std::collections::BTreeMap;
use std::fmt;

/// A sparse initial data-memory image, byte-addressed.
///
/// Workload generators populate the image before simulation; the memory
/// model loads it into backing store at reset. Unwritten bytes read as 0.
///
/// # Examples
///
/// ```rust
/// use sdo_isa::DataImage;
/// let mut img = DataImage::new();
/// img.set_word(0x100, 0xdead_beef);
/// assert_eq!(img.word(0x100), 0xdead_beef);
/// assert_eq!(img.byte(0x100), 0xef); // little-endian
/// assert_eq!(img.word(0x200), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataImage {
    bytes: BTreeMap<u64, u8>,
}

impl DataImage {
    /// Creates an empty (all-zero) image.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes one byte.
    pub fn set_byte(&mut self, addr: u64, value: u8) {
        if value == 0 {
            self.bytes.remove(&addr);
        } else {
            self.bytes.insert(addr, value);
        }
    }

    /// Writes a 64-bit little-endian word at `addr`.
    pub fn set_word(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.set_byte(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Writes an IEEE-754 binary64 value (bit-exact) at `addr`.
    pub fn set_f64(&mut self, addr: u64, value: f64) {
        self.set_word(addr, value.to_bits());
    }

    /// Reads one byte (0 if never written).
    #[must_use]
    pub fn byte(&self, addr: u64) -> u8 {
        self.bytes.get(&addr).copied().unwrap_or(0)
    }

    /// Reads a 64-bit little-endian word at `addr`.
    #[must_use]
    pub fn word(&self, addr: u64) -> u64 {
        let mut le = [0u8; 8];
        for (i, b) in le.iter_mut().enumerate() {
            *b = self.byte(addr.wrapping_add(i as u64));
        }
        u64::from_le_bytes(le)
    }

    /// Iterates over all explicitly-written (non-zero) bytes in address
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        self.bytes.iter().map(|(&a, &b)| (a, b))
    }

    /// Number of explicitly-written bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image has no explicitly-written bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl Extend<(u64, u8)> for DataImage {
    fn extend<T: IntoIterator<Item = (u64, u8)>>(&mut self, iter: T) {
        for (a, b) in iter {
            self.set_byte(a, b);
        }
    }
}

impl FromIterator<(u64, u8)> for DataImage {
    fn from_iter<T: IntoIterator<Item = (u64, u8)>>(iter: T) -> Self {
        let mut img = DataImage::new();
        img.extend(iter);
        img
    }
}

/// An executable program: instruction memory plus initial data image.
///
/// Execution starts at instruction index 0 and ends when a
/// [`Instruction::Halt`] commits. Fetching past the end of the instruction
/// array yields `Halt` (so runaway wrong-path fetch is well-defined).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    name: String,
    insts: Vec<Instruction>,
    data: DataImage,
}

impl Program {
    /// Creates a program from parts.
    #[must_use]
    pub fn new(name: impl Into<String>, insts: Vec<Instruction>, data: DataImage) -> Self {
        Program { name: name.into(), insts, data }
    }

    /// The program's human-readable name (used in experiment tables).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the program.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Fetches the instruction at `pc`; out-of-range fetch returns `Halt`.
    ///
    /// Out-of-range program counters arise routinely on the wrong path of a
    /// mispredicted branch, so this is total rather than panicking.
    #[must_use]
    pub fn fetch(&self, pc: u64) -> Instruction {
        usize::try_from(pc)
            .ok()
            .and_then(|i| self.insts.get(i))
            .copied()
            .unwrap_or(Instruction::Halt)
    }

    /// The instruction memory.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The initial data-memory image.
    #[must_use]
    pub fn data(&self) -> &DataImage {
        &self.data
    }

    /// Mutable access to the initial data-memory image.
    pub fn data_mut(&mut self) -> &mut DataImage {
        &mut self.data
    }

    /// Renders a full disassembly listing.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{i:6}: {inst}");
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} insts, {} data bytes)", self.name, self.insts.len(), self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Instruction};
    use crate::reg::Reg;

    #[test]
    fn data_image_word_roundtrip() {
        let mut img = DataImage::new();
        img.set_word(64, 0x0123_4567_89ab_cdef);
        assert_eq!(img.word(64), 0x0123_4567_89ab_cdef);
        assert_eq!(img.byte(64), 0xef);
        assert_eq!(img.byte(71), 0x01);
    }

    #[test]
    fn data_image_f64_roundtrip() {
        let mut img = DataImage::new();
        img.set_f64(8, 3.75);
        assert_eq!(f64::from_bits(img.word(8)), 3.75);
    }

    #[test]
    fn data_image_unwritten_reads_zero() {
        let img = DataImage::new();
        assert_eq!(img.word(0), 0);
        assert!(img.is_empty());
    }

    #[test]
    fn data_image_zero_write_prunes_entry() {
        let mut img = DataImage::new();
        img.set_byte(5, 7);
        assert_eq!(img.len(), 1);
        img.set_byte(5, 0);
        assert!(img.is_empty());
    }

    #[test]
    fn data_image_overlapping_words() {
        let mut img = DataImage::new();
        img.set_word(0, u64::MAX);
        img.set_word(4, 0);
        assert_eq!(img.word(0), 0x0000_0000_ffff_ffff);
    }

    #[test]
    fn data_image_collect_and_iter() {
        let img: DataImage = [(1u64, 2u8), (3, 4)].into_iter().collect();
        let v: Vec<_> = img.iter().collect();
        assert_eq!(v, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn program_fetch_out_of_range_is_halt() {
        let p = Program::new(
            "t",
            vec![Instruction::Alu { op: AluOp::Add, dst: Reg::new(1), lhs: Reg::ZERO, rhs: Reg::ZERO }],
            DataImage::new(),
        );
        assert!(matches!(p.fetch(0), Instruction::Alu { .. }));
        assert_eq!(p.fetch(1), Instruction::Halt);
        assert_eq!(p.fetch(u64::MAX), Instruction::Halt);
    }

    #[test]
    fn program_display_and_disassembly() {
        let p = Program::new("demo", vec![Instruction::Nop, Instruction::Halt], DataImage::new());
        assert!(p.to_string().contains("demo"));
        let dis = p.disassemble();
        assert!(dis.contains("nop"));
        assert!(dis.contains("halt"));
    }
}
