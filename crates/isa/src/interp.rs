//! Functional reference interpreter (the simulator's golden model).

use crate::inst::Instruction;
use crate::program::Program;
use crate::reg::{FReg, Reg, NUM_FREGS, NUM_REGS};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Record of one architecturally-executed instruction, as observed by the
/// golden model. Used for differential testing against the out-of-order
/// core's commit stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutedInst {
    /// The pc the instruction executed at.
    pub pc: u64,
    /// The instruction.
    pub inst: Instruction,
    /// The next pc after this instruction.
    pub next_pc: u64,
    /// For memory instructions, the effective byte address.
    pub mem_addr: Option<u64>,
    /// For conditional branches, whether the branch was taken.
    pub taken: Option<bool>,
}

/// Result of a single interpreter step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// An instruction executed; execution continues.
    Executed(ExecutedInst),
    /// A `Halt` was reached (also returned for every step after halt).
    Halted,
}

/// Error from [`Interpreter::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpError {
    /// The program did not halt within the step budget.
    StepLimit {
        /// The budget that was exhausted.
        max_steps: u64,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit { max_steps } => {
                write!(f, "program did not halt within {max_steps} steps")
            }
        }
    }
}

impl Error for InterpError {}

/// A simple in-order functional interpreter for the mini-ISA.
///
/// The interpreter defines the ISA's architectural semantics: the
/// out-of-order core in `sdo-uarch` must produce exactly this committed
/// state for every program, under every protection configuration
/// (protections change *timing*, never *function*). Integration tests
/// enforce this differentially.
///
/// # Examples
///
/// ```rust
/// use sdo_isa::{Assembler, Reg, Interpreter};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut asm = Assembler::new();
/// asm.li(Reg::new(1), 7);
/// asm.muli(Reg::new(2), Reg::new(1), 6);
/// asm.halt();
/// let prog = asm.finish()?;
/// let mut interp = Interpreter::new(&prog);
/// interp.run(100)?;
/// assert_eq!(interp.reg(Reg::new(2)), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter<'p> {
    program: &'p Program,
    regs: [u64; NUM_REGS],
    fregs: [u64; NUM_FREGS],
    mem: BTreeMap<u64, u8>,
    pc: u64,
    halted: bool,
    executed: u64,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter at pc 0 with memory seeded from the program's
    /// data image.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        Interpreter {
            program,
            regs: [0; NUM_REGS],
            fregs: [0; NUM_FREGS],
            mem: program.data().iter().collect(),
            pc: 0,
            halted: false,
            executed: 0,
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether a `Halt` has been executed.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far (including the halt).
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Reads an integer register (r0 always reads 0).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Reads an FP register as its binary64 value.
    #[must_use]
    pub fn freg(&self, r: FReg) -> f64 {
        f64::from_bits(self.fregs[r.index()])
    }

    /// Reads an FP register's raw bits.
    #[must_use]
    pub fn freg_bits(&self, r: FReg) -> u64 {
        self.fregs[r.index()]
    }

    /// Writes an integer register (writes to r0 are discarded). Intended
    /// for test setup.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Reads one byte of data memory.
    #[must_use]
    pub fn mem_byte(&self, addr: u64) -> u8 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    /// Reads a 64-bit little-endian word of data memory.
    #[must_use]
    pub fn mem_word(&self, addr: u64) -> u64 {
        let mut le = [0u8; 8];
        for (i, b) in le.iter_mut().enumerate() {
            *b = self.mem_byte(addr.wrapping_add(i as u64));
        }
        u64::from_le_bytes(le)
    }

    fn write_mem(&mut self, addr: u64, value: u64, bytes: u64) {
        for i in 0..bytes {
            let b = (value >> (8 * i)) as u8;
            if b == 0 {
                self.mem.remove(&addr.wrapping_add(i));
            } else {
                self.mem.insert(addr.wrapping_add(i), b);
            }
        }
    }

    fn read_mem(&self, addr: u64, bytes: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..bytes {
            v |= u64::from(self.mem_byte(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }

    /// Executes one instruction.
    pub fn step(&mut self) -> StepOutcome {
        if self.halted {
            return StepOutcome::Halted;
        }
        let pc = self.pc;
        let inst = self.program.fetch(pc);
        let mut next_pc = pc.wrapping_add(1);
        let mut mem_addr = None;
        let mut taken = None;

        match inst {
            Instruction::Alu { op, dst, lhs, rhs } => {
                let v = op.eval(self.reg(lhs), self.reg(rhs));
                self.set_reg(dst, v);
            }
            Instruction::AluImm { op, dst, src, imm } => {
                let v = op.eval(self.reg(src), imm as u64);
                self.set_reg(dst, v);
            }
            Instruction::Li { dst, imm } => self.set_reg(dst, imm as u64),
            Instruction::Load { dst, base, offset, width } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                let v = self.read_mem(addr, width.bytes());
                self.set_reg(dst, v);
            }
            Instruction::Store { src, base, offset, width } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                let v = self.reg(src);
                self.write_mem(addr, v, width.bytes());
            }
            Instruction::FLoad { dst, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                self.fregs[dst.index()] = self.read_mem(addr, 8);
            }
            Instruction::FStore { src, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                mem_addr = Some(addr);
                let bits = self.fregs[src.index()];
                self.write_mem(addr, bits, 8);
            }
            Instruction::Branch { cond, lhs, rhs, target } => {
                let t = cond.eval(self.reg(lhs), self.reg(rhs));
                taken = Some(t);
                if t {
                    next_pc = target;
                }
            }
            Instruction::Jal { dst, target } => {
                self.set_reg(dst, pc.wrapping_add(1));
                next_pc = target;
            }
            Instruction::Jalr { dst, base, offset } => {
                let target = self.reg(base).wrapping_add(offset as u64);
                self.set_reg(dst, pc.wrapping_add(1));
                next_pc = target;
            }
            Instruction::Fpu { op, dst, lhs, rhs } => {
                let a = f64::from_bits(self.fregs[lhs.index()]);
                let b = f64::from_bits(self.fregs[rhs.index()]);
                self.fregs[dst.index()] = op.eval(a, b).to_bits();
            }
            Instruction::FMvToInt { dst, src } => {
                let bits = self.fregs[src.index()];
                self.set_reg(dst, bits);
            }
            Instruction::FMvFromInt { dst, src } => {
                self.fregs[dst.index()] = self.reg(src);
            }
            Instruction::Nop => {}
            Instruction::Halt => {
                self.halted = true;
                self.executed += 1;
                return StepOutcome::Halted;
            }
        }

        self.pc = next_pc;
        self.executed += 1;
        StepOutcome::Executed(ExecutedInst { pc, inst, next_pc, mem_addr, taken })
    }

    /// Runs until halt, up to `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::StepLimit`] if the program is still running
    /// after `max_steps` instructions.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, InterpError> {
        for _ in 0..max_steps {
            if let StepOutcome::Halted = self.step() {
                return Ok(self.executed);
            }
        }
        if self.halted {
            Ok(self.executed)
        } else {
            Err(InterpError::StepLimit { max_steps })
        }
    }

    /// Runs collecting the full commit trace, up to `max_steps`.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::StepLimit`] if the program is still running
    /// after `max_steps` instructions.
    pub fn run_trace(&mut self, max_steps: u64) -> Result<Vec<ExecutedInst>, InterpError> {
        let mut trace = Vec::new();
        for _ in 0..max_steps {
            match self.step() {
                StepOutcome::Executed(e) => trace.push(e),
                StepOutcome::Halted => return Ok(trace),
            }
        }
        if self.halted {
            Ok(trace)
        } else {
            Err(InterpError::StepLimit { max_steps })
        }
    }

    /// Snapshot of all integer registers (index 0 is r0 == 0).
    #[must_use]
    pub fn int_regs(&self) -> [u64; NUM_REGS] {
        self.regs
    }

    /// Snapshot of all FP register bit patterns.
    #[must_use]
    pub fn fp_regs(&self) -> [u64; NUM_FREGS] {
        self.fregs
    }

    /// All non-zero data-memory bytes, in address order.
    #[must_use]
    pub fn mem_snapshot(&self) -> Vec<(u64, u8)> {
        self.mem.iter().map(|(&a, &b)| (a, b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::reg::{FReg, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }
    fn fr(i: u8) -> FReg {
        FReg::new(i)
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 1..=10
        let mut asm = Assembler::new();
        let (n, acc) = (r(1), r(2));
        asm.li(n, 10);
        let top = asm.here();
        asm.add(acc, acc, n);
        asm.addi(n, n, -1);
        asm.bne(n, Reg::ZERO, top);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut it = Interpreter::new(&p);
        it.run(1000).unwrap();
        assert_eq!(it.reg(acc), 55);
    }

    #[test]
    fn memory_roundtrip_word_and_byte() {
        let mut asm = Assembler::new();
        asm.li(r(1), 0x1000);
        asm.li(r(2), 0x1234_5678_9abc_def0_u64 as i64);
        asm.st(r(2), r(1), 0);
        asm.ld(r(3), r(1), 0);
        asm.ldb(r(4), r(1), 0);
        asm.ldb(r(5), r(1), 7);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut it = Interpreter::new(&p);
        it.run(100).unwrap();
        assert_eq!(it.reg(r(3)), 0x1234_5678_9abc_def0);
        assert_eq!(it.reg(r(4)), 0xf0);
        assert_eq!(it.reg(r(5)), 0x12);
    }

    #[test]
    fn data_image_is_visible_to_loads() {
        let mut asm = Assembler::new();
        asm.data_mut().set_word(0x800, 4242);
        asm.li(r(1), 0x800);
        asm.ld(r(2), r(1), 0);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut it = Interpreter::new(&p);
        it.run(100).unwrap();
        assert_eq!(it.reg(r(2)), 4242);
    }

    #[test]
    fn fp_pipeline_computes() {
        let mut asm = Assembler::new();
        asm.data_mut().set_f64(0, 2.0);
        asm.data_mut().set_f64(8, 8.0);
        asm.fld(fr(1), Reg::ZERO, 0);
        asm.fld(fr(2), Reg::ZERO, 8);
        asm.fmul(fr(3), fr(1), fr(2)); // 16
        asm.fsqrt(fr(4), fr(3)); // 4
        asm.fdiv(fr(5), fr(4), fr(1)); // 2
        asm.fst(fr(5), Reg::ZERO, 16);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut it = Interpreter::new(&p);
        it.run(100).unwrap();
        assert_eq!(it.freg(fr(4)), 4.0);
        assert_eq!(f64::from_bits(it.mem_word(16)), 2.0);
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let mut asm = Assembler::new();
        let func = asm.label();
        let ra = r(31);
        asm.jal(ra, func); // 0
        asm.li(r(2), 99); // 1 (after return)
        asm.halt(); // 2
        asm.bind(func);
        asm.li(r(1), 7); // 3
        asm.jr(ra); // 4
        let p = asm.finish().unwrap();
        let mut it = Interpreter::new(&p);
        it.run(100).unwrap();
        assert_eq!(it.reg(r(1)), 7);
        assert_eq!(it.reg(r(2)), 99);
        assert_eq!(it.reg(ra), 1);
    }

    #[test]
    fn step_limit_reported() {
        let mut asm = Assembler::new();
        let top = asm.here();
        asm.j(top);
        let p = asm.finish().unwrap();
        let mut it = Interpreter::new(&p);
        assert_eq!(it.run(10), Err(InterpError::StepLimit { max_steps: 10 }));
        assert!(it.run(10).unwrap_err().to_string().contains("did not halt"));
    }

    #[test]
    fn halted_interpreter_stays_halted() {
        let mut asm = Assembler::new();
        asm.halt();
        let p = asm.finish().unwrap();
        let mut it = Interpreter::new(&p);
        assert_eq!(it.step(), StepOutcome::Halted);
        assert_eq!(it.step(), StepOutcome::Halted);
        assert!(it.is_halted());
        assert_eq!(it.executed(), 1);
    }

    #[test]
    fn r0_is_immutable() {
        let mut asm = Assembler::new();
        asm.li(Reg::ZERO, 123);
        asm.addi(Reg::ZERO, Reg::ZERO, 5);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut it = Interpreter::new(&p);
        it.run(10).unwrap();
        assert_eq!(it.reg(Reg::ZERO), 0);
    }

    #[test]
    fn trace_records_branch_direction_and_mem_addr() {
        let mut asm = Assembler::new();
        asm.li(r(1), 1);
        let skip = asm.label();
        asm.beq(r(1), Reg::ZERO, skip); // not taken
        asm.st(r(1), r(1), 7); // addr 8
        asm.bind(skip);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut it = Interpreter::new(&p);
        let trace = it.run_trace(100).unwrap();
        assert_eq!(trace[1].taken, Some(false));
        assert_eq!(trace[2].mem_addr, Some(8));
    }

    #[test]
    fn fmv_moves_bits_exactly() {
        let mut asm = Assembler::new();
        asm.li(r(1), f64::NAN.to_bits() as i64);
        asm.fmv_from_int(fr(1), r(1));
        asm.fmv_to_int(r(2), fr(1));
        asm.halt();
        let p = asm.finish().unwrap();
        let mut it = Interpreter::new(&p);
        it.run(10).unwrap();
        assert_eq!(it.reg(r(2)), f64::NAN.to_bits());
    }

    #[test]
    fn falling_off_the_end_halts() {
        let mut asm = Assembler::new();
        asm.nop();
        let p = asm.finish().unwrap();
        let mut it = Interpreter::new(&p);
        it.run(10).unwrap();
        assert!(it.is_halted());
    }
}
