//! Architectural register names.

use std::fmt;

/// Number of architectural integer registers.
pub const NUM_REGS: usize = 32;
/// Number of architectural floating-point registers.
pub const NUM_FREGS: usize = 32;

/// An architectural integer register, `r0`–`r31`.
///
/// `r0` is hardwired to zero: writes to it are discarded and reads always
/// return 0 (see [`Reg::ZERO`]). This mirrors RISC-style ISAs and gives
/// workload generators a free constant-zero source.
///
/// # Examples
///
/// ```rust
/// use sdo_isa::Reg;
/// let r5 = Reg::new(5);
/// assert_eq!(r5.index(), 5);
/// assert_eq!(format!("{r5}"), "r5");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register `r0`.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "integer register index {index} out of range (0..{NUM_REGS})"
        );
        Reg(index)
    }

    /// Creates a register name if `index` is in range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        ((index as usize) < NUM_REGS).then_some(Reg(index))
    }

    /// The register's index in `0..32`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register `r0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all integer registers, `r0` first.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

/// An architectural floating-point register, `f0`–`f31`.
///
/// FP registers carry IEEE-754 binary64 values, stored bit-exactly in 64-bit
/// physical registers by the simulator. Unlike [`Reg`], `f0` is a normal
/// register (not hardwired).
///
/// # Examples
///
/// ```rust
/// use sdo_isa::FReg;
/// let f3 = FReg::new(3);
/// assert_eq!(format!("{f3}"), "f3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Creates an FP register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_FREGS,
            "fp register index {index} out of range (0..{NUM_FREGS})"
        );
        FReg(index)
    }

    /// Creates an FP register name if `index` is in range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        ((index as usize) < NUM_FREGS).then_some(FReg(index))
    }

    /// The register's index in `0..32`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all FP registers, `f0` first.
    pub fn all() -> impl Iterator<Item = FReg> {
        (0..NUM_FREGS as u8).map(FReg)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<FReg> for usize {
    fn from(r: FReg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for i in 0..NUM_REGS as u8 {
            let r = Reg::new(i);
            assert_eq!(r.index(), i as usize);
            assert_eq!(Reg::try_new(i), Some(r));
        }
    }

    #[test]
    fn reg_zero_is_r0() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert_eq!(Reg::ZERO, Reg::new(0));
    }

    #[test]
    fn reg_out_of_range_is_none() {
        assert_eq!(Reg::try_new(32), None);
        assert_eq!(FReg::try_new(32), None);
        assert_eq!(Reg::try_new(255), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_panics_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_new_panics_out_of_range() {
        let _ = FReg::new(40);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::new(17).to_string(), "r17");
        assert_eq!(FReg::new(9).to_string(), "f9");
    }

    #[test]
    fn all_iterators_cover_every_register() {
        assert_eq!(Reg::all().count(), NUM_REGS);
        assert_eq!(FReg::all().count(), NUM_FREGS);
        assert_eq!(Reg::all().next(), Some(Reg::ZERO));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Reg::new(1) < Reg::new(2));
        assert!(FReg::new(30) > FReg::new(3));
    }
}
