//! Text assembly parser: the textual front end to [`Assembler`].
//!
//! Grammar (one item per line; `;` or `#` start comments):
//!
//! ```text
//! .name spectre_demo          ; program name
//! .word 0x1000 42 7 -3        ; 64-bit words at an address
//! .byte 0x2000 1 2 0xff       ; bytes at an address
//! .f64  0x3000 1.5 2.25       ; binary64 values at an address
//!
//! loop:                       ; label
//!     li   r1, 100
//!     add  r2, r1, r1
//!     ld   r3, 8(r1)          ; word load, offset(base)
//!     ldb  r4, 0(r1)          ; byte load
//!     st   r3, -8(r2)
//!     fld  f1, 0(r2)
//!     fmul f3, f1, f2
//!     beq  r1, r2, loop
//!     jal  r31, loop
//!     jalr r0, 0(r31)
//!     j    loop
//!     jr   r31
//!     halt
//! ```

use crate::asm::Assembler;
use crate::inst::MemWidth;
use crate::program::Program;
use crate::reg::{FReg, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error from [`parse_asm`], carrying the 1-based source position and
/// the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for whole-program errors such as
    /// unresolved labels).
    pub line: usize,
    /// 1-based column of [`ParseError::token`] in the source line, or 0
    /// when the error has no single offending token.
    pub column: usize,
    /// The offending token text, if the error blames one.
    pub token: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column > 0 {
            write!(f, "line {}:{}: {}", self.line, self.column, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}

impl ParseError {
    /// Fills in `column` by locating `token` in its source line.
    fn locate(mut self, source: &str) -> Self {
        if self.column == 0 && self.line > 0 && !self.token.is_empty() {
            if let Some(raw) = source.lines().nth(self.line - 1) {
                if let Some(at) = raw.find(self.token.as_str()) {
                    self.column = at + 1;
                }
            }
        }
        self
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, column: 0, token: String::new(), message: message.into() })
}

fn err_tok<T>(line: usize, token: &str, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, column: 0, token: token.to_string(), message: message.into() })
}

fn parse_int(line: usize, s: &str) -> Result<i64, ParseError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
            .or_else(|e| err_tok(line, s, format!("bad hex literal '{s}': {e}")))?
    } else {
        body.parse::<u64>()
            .or_else(|e| err_tok(line, s, format!("bad integer literal '{s}': {e}")))?
    };
    Ok(if neg { (value as i64).wrapping_neg() } else { value as i64 })
}

fn parse_reg(line: usize, s: &str) -> Result<Reg, ParseError> {
    let s = s.trim();
    let Some(num) = s.strip_prefix('r') else {
        return err_tok(line, s, format!("expected integer register (rN), got '{s}'"));
    };
    let idx: u8 =
        num.parse().or_else(|_| err_tok(line, s, format!("bad register '{s}'")))?;
    match Reg::try_new(idx) {
        Some(r) => Ok(r),
        None => err_tok(line, s, format!("register '{s}' out of range")),
    }
}

fn parse_freg(line: usize, s: &str) -> Result<FReg, ParseError> {
    let s = s.trim();
    let Some(num) = s.strip_prefix('f') else {
        return err_tok(line, s, format!("expected fp register (fN), got '{s}'"));
    };
    let idx: u8 =
        num.parse().or_else(|_| err_tok(line, s, format!("bad fp register '{s}'")))?;
    match FReg::try_new(idx) {
        Some(r) => Ok(r),
        None => err_tok(line, s, format!("register '{s}' out of range")),
    }
}

/// Parses `offset(base)`, e.g. `-8(r2)`.
fn parse_mem(line: usize, s: &str) -> Result<(i64, Reg), ParseError> {
    let s = s.trim();
    let Some(open) = s.find('(') else {
        return err_tok(line, s, format!("expected offset(base), got '{s}'"));
    };
    if !s.ends_with(')') {
        return err_tok(line, s, format!("missing ')' in '{s}'"));
    }
    let offset = if s[..open].trim().is_empty() { 0 } else { parse_int(line, &s[..open])? };
    let base = parse_reg(line, &s[open + 1..s.len() - 1])?;
    Ok((offset, base))
}

fn split_operands(s: &str) -> Vec<&str> {
    s.split(',').map(str::trim).filter(|p| !p.is_empty()).collect()
}

/// Parses a textual assembly listing into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for syntax errors,
/// unknown mnemonics, bad registers, or unresolved labels.
///
/// # Examples
///
/// ```rust
/// use sdo_isa::{parse_asm, Interpreter};
/// let prog = parse_asm(r"
///     .name demo
///     li   r1, 6
///     muli r2, r1, 7
///     halt
/// ")?;
/// let mut i = Interpreter::new(&prog);
/// i.run(100)?;
/// assert_eq!(i.reg(sdo_isa::Reg::new(2)), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_asm(source: &str) -> Result<Program, ParseError> {
    parse_inner(source).map_err(|e| e.locate(source))
}

fn parse_inner(source: &str) -> Result<Program, ParseError> {
    let mut asm = Assembler::new();
    let mut labels: HashMap<String, crate::asm::Label> = HashMap::new();

    // Absolute targets are written `@N` (as in disassembly listings);
    // they bind a dedicated label per address at the end.
    let mut absolute: HashMap<u64, crate::asm::Label> = HashMap::new();
    let mut label_of = |asm: &mut Assembler,
                        absolute: &mut HashMap<u64, crate::asm::Label>,
                        line: usize,
                        name: &str|
     -> Result<crate::asm::Label, ParseError> {
        if let Some(addr) = name.strip_prefix('@') {
            let target = parse_int(line, addr)? as u64;
            return Ok(*absolute.entry(target).or_insert_with(|| asm.label()));
        }
        Ok(*labels.entry(name.to_string()).or_insert_with(|| asm.label()))
    };

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = text.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let directive = parts.next().unwrap_or("");
            let args: Vec<&str> = parts.collect();
            match directive {
                "name" => {
                    let name = args.join(" ");
                    if name.is_empty() {
                        return err(line, ".name needs a value");
                    }
                    asm = {
                        // Rebuild with the name, keeping prior state is not
                        // possible through the public API at arbitrary
                        // points, so require .name before any code.
                        if asm.next_pc() != 0 || !asm.data_mut().is_empty() {
                            return err(line, ".name must appear before any code or data");
                        }
                        let mut named = Assembler::named(name);
                        std::mem::swap(&mut named, &mut asm);
                        asm
                    };
                }
                "word" | "byte" | "f64" => {
                    if args.len() < 2 {
                        return err(line, format!(".{directive} needs an address and values"));
                    }
                    let mut addr = parse_int(line, args[0])? as u64;
                    for v in &args[1..] {
                        let step = match directive {
                            "word" => {
                                asm.data_mut().set_word(addr, parse_int(line, v)? as u64);
                                8
                            }
                            "byte" => {
                                asm.data_mut().set_byte(addr, parse_int(line, v)? as u8);
                                1
                            }
                            _ => {
                                let x: f64 = v.parse().or_else(|e| {
                                    err_tok(line, v, format!("bad f64 '{v}': {e}"))
                                })?;
                                asm.data_mut().set_f64(addr, x);
                                8
                            }
                        };
                        addr = match addr.checked_add(step) {
                            Some(next) => next,
                            None => {
                                return err_tok(
                                    line,
                                    v,
                                    format!(".{directive} data overflows the address space"),
                                )
                            }
                        };
                    }
                }
                other => return err_tok(line, other, format!("unknown directive '.{other}'")),
            }
            continue;
        }

        // Labels (possibly followed by an instruction on the same line).
        let mut text = text;
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return err_tok(line, name, format!("bad label '{name}'"));
            }
            let label = label_of(&mut asm, &mut absolute, line, name)?;
            asm.bind(label);
            text = rest[1..].trim();
            if text.is_empty() {
                break;
            }
        }
        if text.is_empty() {
            continue;
        }

        // Instruction.
        let (mnemonic, operand_text) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops = split_operands(operand_text);

        macro_rules! want {
            ($n:expr) => {
                if ops.len() != $n {
                    return err_tok(
                        line,
                        mnemonic,
                        format!("'{mnemonic}' expects {} operand(s), got {}", $n, ops.len()),
                    );
                }
            };
        }

        match mnemonic {
            // Register-register ALU.
            "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu"
            | "mul" | "divu" | "addw" | "subw" | "sllw" | "srlw" | "sraw" | "mulw" | "divw"
            | "divuw" | "remw" | "remuw" => {
                want!(3);
                let d = parse_reg(line, ops[0])?;
                let a = parse_reg(line, ops[1])?;
                let b = parse_reg(line, ops[2])?;
                match mnemonic {
                    "add" => asm.add(d, a, b),
                    "sub" => asm.sub(d, a, b),
                    "and" => asm.and_(d, a, b),
                    "or" => asm.or_(d, a, b),
                    "xor" => asm.xor(d, a, b),
                    "sll" => asm.sll(d, a, b),
                    "srl" => asm.srl(d, a, b),
                    "sra" => asm.sra(d, a, b),
                    "slt" => asm.slt(d, a, b),
                    "sltu" => asm.sltu(d, a, b),
                    "mul" => asm.mul(d, a, b),
                    "divu" => asm.divu(d, a, b),
                    "addw" => asm.addw(d, a, b),
                    "subw" => asm.subw(d, a, b),
                    "sllw" => asm.sllw(d, a, b),
                    "srlw" => asm.srlw(d, a, b),
                    "sraw" => asm.sraw(d, a, b),
                    "mulw" => asm.mulw(d, a, b),
                    "divw" => asm.divw(d, a, b),
                    "divuw" => asm.divuw(d, a, b),
                    "remw" => asm.remw(d, a, b),
                    _ => asm.remuw(d, a, b),
                };
            }
            // Register-immediate ALU.
            "addi" | "andi" | "ori" | "xori" | "slli" | "srli" | "srai" | "muli" | "slti"
            | "addwi" | "sllwi" | "srlwi" | "srawi" => {
                want!(3);
                let d = parse_reg(line, ops[0])?;
                let a = parse_reg(line, ops[1])?;
                let imm = parse_int(line, ops[2])?;
                match mnemonic {
                    "addi" => asm.addi(d, a, imm),
                    "andi" => asm.andi(d, a, imm),
                    "ori" => asm.ori(d, a, imm),
                    "xori" => asm.xori(d, a, imm),
                    "slli" => asm.slli(d, a, imm),
                    "srli" => asm.srli(d, a, imm),
                    "srai" => asm.srai(d, a, imm),
                    "muli" => asm.muli(d, a, imm),
                    "addwi" => asm.addwi(d, a, imm),
                    "sllwi" => asm.sllwi(d, a, imm),
                    "srlwi" => asm.srlwi(d, a, imm),
                    "srawi" => asm.srawi(d, a, imm),
                    _ => asm.slti(d, a, imm),
                };
            }
            "li" => {
                want!(2);
                let d = parse_reg(line, ops[0])?;
                asm.li(d, parse_int(line, ops[1])?);
            }
            // Memory.
            "ld" | "ldb" | "ldh" | "ldw" | "st" | "stb" | "sth" | "stw" => {
                want!(2);
                let r0 = parse_reg(line, ops[0])?;
                let (offset, base) = parse_mem(line, ops[1])?;
                let width = match mnemonic {
                    "ldb" | "stb" => MemWidth::Byte,
                    "ldh" | "sth" => MemWidth::Half,
                    "ldw" | "stw" => MemWidth::Word4,
                    _ => MemWidth::Word,
                };
                if mnemonic.starts_with("ld") {
                    asm.emit(crate::inst::Instruction::Load { dst: r0, base, offset, width });
                } else {
                    asm.emit(crate::inst::Instruction::Store { src: r0, base, offset, width });
                }
            }
            "fld" | "fst" => {
                want!(2);
                let f = parse_freg(line, ops[0])?;
                let (offset, base) = parse_mem(line, ops[1])?;
                if mnemonic == "fld" {
                    asm.fld(f, base, offset);
                } else {
                    asm.fst(f, base, offset);
                }
            }
            // Branches.
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                want!(3);
                let a = parse_reg(line, ops[0])?;
                let b = parse_reg(line, ops[1])?;
                let target = label_of(&mut asm, &mut absolute, line, ops[2])?;
                match mnemonic {
                    "beq" => asm.beq(a, b, target),
                    "bne" => asm.bne(a, b, target),
                    "blt" => asm.blt(a, b, target),
                    "bge" => asm.bge(a, b, target),
                    "bltu" => asm.bltu(a, b, target),
                    _ => asm.bgeu(a, b, target),
                };
            }
            "jal" => {
                want!(2);
                let d = parse_reg(line, ops[0])?;
                let target = label_of(&mut asm, &mut absolute, line, ops[1])?;
                asm.jal(d, target);
            }
            "j" => {
                want!(1);
                let target = label_of(&mut asm, &mut absolute, line, ops[0])?;
                asm.j(target);
            }
            "jalr" => {
                want!(2);
                let d = parse_reg(line, ops[0])?;
                let (offset, base) = parse_mem(line, ops[1])?;
                asm.jalr(d, base, offset);
            }
            "jr" => {
                want!(1);
                let base = parse_reg(line, ops[0])?;
                asm.jr(base);
            }
            // FP.
            "fadd" | "fsub" | "fmul" | "fdiv" => {
                want!(3);
                let d = parse_freg(line, ops[0])?;
                let a = parse_freg(line, ops[1])?;
                let b = parse_freg(line, ops[2])?;
                match mnemonic {
                    "fadd" => asm.fadd(d, a, b),
                    "fsub" => asm.fsub(d, a, b),
                    "fmul" => asm.fmul(d, a, b),
                    _ => asm.fdiv(d, a, b),
                };
            }
            "fsqrt" => {
                want!(2);
                let d = parse_freg(line, ops[0])?;
                let a = parse_freg(line, ops[1])?;
                asm.fsqrt(d, a);
            }
            "fmv.x" => {
                want!(2);
                let d = parse_reg(line, ops[0])?;
                let s = parse_freg(line, ops[1])?;
                asm.fmv_to_int(d, s);
            }
            "fmv.f" => {
                want!(2);
                let d = parse_freg(line, ops[0])?;
                let s = parse_reg(line, ops[1])?;
                asm.fmv_from_int(d, s);
            }
            "nop" => {
                want!(0);
                asm.nop();
            }
            "halt" => {
                want!(0);
                asm.halt();
            }
            other => return err_tok(line, other, format!("unknown mnemonic '{other}'")),
        }
    }

    // Bind absolute `@N` targets to their literal addresses.
    for (&addr, &label) in &absolute {
        asm.bind_at(label, addr);
    }
    asm.finish().map_err(|e| ParseError {
        line: 0,
        column: 0,
        token: String::new(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;

    #[test]
    fn parses_arithmetic_program() {
        let prog = parse_asm(
            r"
            .name sum
            li r1, 10
            li r2, 0
            loop:
                add r2, r2, r1
                addi r1, r1, -1
                bne r1, r0, loop
            halt
        ",
        )
        .unwrap();
        assert_eq!(prog.name(), "sum");
        let mut it = Interpreter::new(&prog);
        it.run(1000).unwrap();
        assert_eq!(it.reg(Reg::new(2)), 55);
    }

    #[test]
    fn parses_memory_and_data_directives() {
        let prog = parse_asm(
            r"
            .word 0x100 42 -1
            .byte 0x200 0xab
            .f64  0x300 2.5
            li r1, 0x100
            ld r2, 0(r1)
            ld r3, 8(r1)
            li r4, 0x200
            ldb r5, 0(r4)
            li r6, 0x300
            fld f1, 0(r6)
            st r2, 16(r1)
            halt
        ",
        )
        .unwrap();
        let mut it = Interpreter::new(&prog);
        it.run(1000).unwrap();
        assert_eq!(it.reg(Reg::new(2)), 42);
        assert_eq!(it.reg(Reg::new(3)), u64::MAX);
        assert_eq!(it.reg(Reg::new(5)), 0xab);
        assert_eq!(it.freg(FReg::new(1)), 2.5);
        assert_eq!(it.mem_word(0x110), 42);
    }

    #[test]
    fn parses_calls_and_fp() {
        let prog = parse_asm(
            r"
            .f64 0x0 16.0
            li r1, 0
            fld f1, 0(r1)
            jal r31, func
            fst f2, 8(r1)
            halt
            func:
                fsqrt f2, f1
                fmul f2, f2, f1
                jr r31
        ",
        )
        .unwrap();
        let mut it = Interpreter::new(&prog);
        it.run(1000).unwrap();
        assert_eq!(f64::from_bits(it.mem_word(8)), 64.0);
    }

    #[test]
    fn label_and_code_on_same_line() {
        let prog = parse_asm("top: addi r1, r1, 1\nbne r1, r2, top\nhalt").unwrap();
        assert_eq!(prog.len(), 3);
        assert_eq!(prog.fetch(1).direct_target(), Some(0));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog = parse_asm(
            "; full line comment\n# hash comment\n\n  li r1, 1 ; trailing\nhalt # end",
        )
        .unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn forward_references_resolve() {
        let prog = parse_asm("j end\nnop\nend: halt").unwrap();
        assert_eq!(prog.fetch(0).direct_target(), Some(2));
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_asm("li r1, 1\nfrobnicate r2\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frobnicate"));

        let e = parse_asm("li r99, 1").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse_asm("add r1, r2").unwrap_err();
        assert!(e.message.contains("expects 3"));

        let e = parse_asm("ld r1, r2").unwrap_err();
        assert!(e.message.contains("offset(base)"));
    }

    #[test]
    fn error_reports_column_and_token() {
        let e = parse_asm("li r1, 1\nfrobnicate r2\nhalt").unwrap_err();
        assert_eq!((e.line, e.column), (2, 1));
        assert_eq!(e.token, "frobnicate");
        assert_eq!(e.to_string(), "line 2:1: unknown mnemonic 'frobnicate'");

        let e = parse_asm("    li r99, 1").unwrap_err();
        assert_eq!((e.line, e.column), (1, 8));
        assert_eq!(e.token, "r99");

        let e = parse_asm("add r1, r2, 5").unwrap_err();
        assert_eq!(e.column, 13);
        assert_eq!(e.token, "5");

        let e = parse_asm(".quux 1").unwrap_err();
        assert_eq!(e.column, 2);
        assert_eq!(e.token, "quux");

        // Whole-program errors carry no position and keep the short form.
        let e = parse_asm("j nowhere\nhalt").unwrap_err();
        assert_eq!(e.column, 0);
        assert!(e.to_string().starts_with("line 0: "));
    }

    #[test]
    fn data_directive_address_overflow_is_an_error() {
        // Regression: `addr += 8` used to overflow-panic in debug builds.
        let e = parse_asm(".word 0xffffffffffffffff 1 2\nhalt").unwrap_err();
        assert!(e.message.contains("overflows"), "{e}");
        let e = parse_asm(".byte 0xffffffffffffffff 1 2\nhalt").unwrap_err();
        assert!(e.message.contains("overflows"), "{e}");
    }

    #[test]
    fn truncated_input_never_panics() {
        // Every byte prefix of a valid listing must parse or fail
        // cleanly — truncation mid-token is the classic panic path.
        let source = "\
            .name trunc\n.word 0x100 42 -1\n.byte 0x200 0xab\n.f64 0x300 2.5\n\
            top: li r1, 0x100\nld r2, 8(r1)\nfld f1, 0(r1)\nfmul f2, f1, f1\n\
            beq r1, r0, top\njalr r31, 0(r2)\nhalt\n";
        assert!(source.is_ascii());
        for cut in 0..=source.len() {
            let _ = parse_asm(&source[..cut]);
        }
    }

    #[test]
    fn unresolved_label_is_error() {
        let e = parse_asm("j nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("never bound"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let prog = parse_asm("li r1, 0x10\naddi r2, r1, -0x8\nhalt").unwrap();
        let mut it = Interpreter::new(&prog);
        it.run(100).unwrap();
        assert_eq!(it.reg(Reg::new(2)), 8);
    }

    #[test]
    fn name_after_code_rejected() {
        let e = parse_asm("nop\n.name late").unwrap_err();
        assert!(e.message.contains("before any code"));
    }

    #[test]
    fn w_ops_and_new_widths_round_trip() {
        // 0x100..0x104 = 0xfffffffe little-endian.
        let source = r"
            .byte 0x100 0xfe 0xff 0xff 0xff
            li r1, 0x100
            ldw r2, 0(r1)
            ldh r3, 0(r1)
            addwi r4, r2, 0
            addw r5, r2, r2
            srawi r6, r4, 1
            remuw r7, r2, r3
            stw r4, 8(r1)
            sth r4, 16(r1)
            halt
        ";
        let prog = parse_asm(source).unwrap();
        let mut it = Interpreter::new(&prog);
        it.run(100).unwrap();
        assert_eq!(it.reg(Reg::new(2)), 0xffff_fffe); // ldw zero-extends
        assert_eq!(it.reg(Reg::new(3)), 0xfffe); // ldh zero-extends
        assert_eq!(it.reg(Reg::new(4)), 0xffff_ffff_ffff_fffe); // addwi sign-extends
        assert_eq!(it.reg(Reg::new(5)), 0xffff_ffff_ffff_fffc);
        assert_eq!(it.reg(Reg::new(6)), u64::MAX); // -2 >> 1 = -1
        assert_eq!(it.reg(Reg::new(7)), 2); // 0xfffffffe % 0xfffe
        assert_eq!(it.mem_word(0x108) & 0xffff_ffff, 0xffff_fffe); // stw low 32
        assert_eq!(it.mem_word(0x110) & 0xffff, 0xfffe); // sth low 16
        // Display → parse is the wire format; it must round-trip exactly.
        let reparsed = parse_asm(&prog.disassemble()).unwrap();
        assert_eq!(prog.instructions(), reparsed.instructions());
    }

    #[test]
    fn parse_matches_builder_semantics() {
        // The same program written both ways executes identically.
        let text = parse_asm(
            r"
            li r1, 7
            li r2, 3
            mul r3, r1, r2
            slli r4, r3, 2
            sub r5, r4, r1
            halt
        ",
        )
        .unwrap();
        let mut asm = Assembler::new();
        let r = Reg::new;
        asm.li(r(1), 7).li(r(2), 3).mul(r(3), r(1), r(2)).slli(r(4), r(3), 2).sub(
            r(5),
            r(4),
            r(1),
        );
        asm.halt();
        let built = asm.finish().unwrap();
        let mut a = Interpreter::new(&text);
        let mut b = Interpreter::new(&built);
        a.run(100).unwrap();
        b.run(100).unwrap();
        assert_eq!(a.int_regs(), b.int_regs());
    }
}
