//! A label-based program builder.

use crate::inst::{AluOp, BranchCond, FpuOp, Instruction, MemWidth};
use crate::program::{DataImage, Program};
use crate::reg::{FReg, Reg};
use std::error::Error;
use std::fmt;

/// A forward-referenceable code label, created by [`Assembler::label`] and
/// placed by [`Assembler::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Error produced by [`Assembler::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was used as a branch/jump target but never bound to a
    /// location.
    UnboundLabel {
        /// The offending label's internal id.
        label: usize,
        /// Index of the first instruction referencing it.
        used_at: usize,
    },
    /// A label was bound twice.
    Rebound {
        /// The offending label's internal id.
        label: usize,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label, used_at } => {
                write!(f, "label L{label} used at instruction {used_at} was never bound")
            }
            AsmError::Rebound { label } => write!(f, "label L{label} bound more than once"),
        }
    }
}

impl Error for AsmError {}

/// Builds a [`Program`] instruction-by-instruction with forward labels.
///
/// This is the API the workload generators and tests use to write mini-ISA
/// programs in Rust. All emit methods append one instruction and return the
/// assembler for chaining.
///
/// # Examples
///
/// A count-down loop:
///
/// ```rust
/// use sdo_isa::{Assembler, Reg};
///
/// # fn main() -> Result<(), sdo_isa::AsmError> {
/// let mut asm = Assembler::new();
/// let (n, acc) = (Reg::new(1), Reg::new(2));
/// asm.li(n, 10);
/// let top = asm.label();
/// asm.bind(top);
/// asm.add(acc, acc, n);
/// asm.addi(n, n, -1);
/// asm.bne(n, Reg::ZERO, top);
/// asm.halt();
/// let prog = asm.finish()?;
/// assert_eq!(prog.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    name: String,
    insts: Vec<Inst>,
    labels: Vec<Option<u64>>,
    data: DataImage,
}

/// An instruction under construction: targets may still be symbolic.
#[derive(Debug, Clone, Copy)]
enum Inst {
    Ready(Instruction),
    Branch { cond: BranchCond, lhs: Reg, rhs: Reg, target: Label },
    Jal { dst: Reg, target: Label },
}

impl Assembler {
    /// Creates an empty assembler for an unnamed program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty assembler for a named program.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        Assembler { name: name.into(), ..Self::default() }
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the *next* emitted instruction's index.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (re-binding is always a bug in
    /// the generator; the error is also reported by [`finish`]).
    ///
    /// [`finish`]: Assembler::finish
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label L{} bound more than once", label.0);
        *slot = Some(self.insts.len() as u64);
        self
    }

    /// Binds `label` to an explicit instruction index (used by the text
    /// parser for absolute `@N` targets).
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind_at(&mut self, label: Label, pc: u64) -> &mut Self {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label L{} bound more than once", label.0);
        *slot = Some(pc);
        self
    }

    /// Allocates a label already bound to the next instruction.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// The index the next emitted instruction will occupy.
    #[must_use]
    pub fn next_pc(&self) -> u64 {
        self.insts.len() as u64
    }

    /// Mutable access to the program's initial data image.
    pub fn data_mut(&mut self) -> &mut DataImage {
        &mut self.data
    }

    /// Emits an already-resolved instruction.
    pub fn emit(&mut self, inst: Instruction) -> &mut Self {
        self.insts.push(Inst::Ready(inst));
        self
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound.
    pub fn finish(&mut self) -> Result<Program, AsmError> {
        let mut out = Vec::with_capacity(self.insts.len());
        for (idx, inst) in self.insts.iter().enumerate() {
            let resolved = match *inst {
                Inst::Ready(i) => i,
                Inst::Branch { cond, lhs, rhs, target } => Instruction::Branch {
                    cond,
                    lhs,
                    rhs,
                    target: self.resolve(target, idx)?,
                },
                Inst::Jal { dst, target } => {
                    Instruction::Jal { dst, target: self.resolve(target, idx)? }
                }
            };
            out.push(resolved);
        }
        let name = if self.name.is_empty() { "anonymous".to_string() } else { self.name.clone() };
        Ok(Program::new(name, out, std::mem::take(&mut self.data)))
    }

    fn resolve(&self, label: Label, used_at: usize) -> Result<u64, AsmError> {
        self.labels[label.0].ok_or(AsmError::UnboundLabel { label: label.0, used_at })
    }
}

macro_rules! alu_rr {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, dst: Reg, lhs: Reg, rhs: Reg) -> &mut Self {
                    self.emit(Instruction::Alu { op: AluOp::$op, dst, lhs, rhs })
                }
            )*
        }
    };
}

alu_rr! {
    /// `dst = lhs + rhs` (wrapping).
    add => Add,
    /// `dst = lhs - rhs` (wrapping).
    sub => Sub,
    /// `dst = lhs & rhs`.
    and_ => And,
    /// `dst = lhs | rhs`.
    or_ => Or,
    /// `dst = lhs ^ rhs`.
    xor => Xor,
    /// `dst = lhs << (rhs & 63)`.
    sll => Sll,
    /// `dst = lhs >> (rhs & 63)` (logical).
    srl => Srl,
    /// `dst = lhs >> (rhs & 63)` (arithmetic).
    sra => Sra,
    /// `dst = (lhs < rhs) as u64`, signed.
    slt => Slt,
    /// `dst = (lhs < rhs) as u64`, unsigned.
    sltu => Sltu,
    /// `dst = lhs * rhs` (wrapping, low 64 bits).
    mul => Mul,
    /// `dst = lhs / rhs` unsigned; division by zero yields `u64::MAX`.
    divu => Divu,
    /// `dst = sext32(lhs + rhs)` (32-bit wrapping, RV64 `addw`).
    addw => AddW,
    /// `dst = sext32(lhs - rhs)` (32-bit wrapping).
    subw => SubW,
    /// `dst = sext32(lhs << (rhs & 31))` (32-bit logical).
    sllw => SllW,
    /// `dst = sext32(lhs32 >> (rhs & 31))` (32-bit logical).
    srlw => SrlW,
    /// `dst = sext32(lhs32 >> (rhs & 31))` (32-bit arithmetic).
    sraw => SraW,
    /// `dst = sext32(lhs * rhs)` (32-bit wrapping, low half).
    mulw => MulW,
    /// `dst = sext32(lhs32 / rhs32)` signed, RISC-V edge rules.
    divw => DivW,
    /// `dst = sext32(lhs32 / rhs32)` unsigned; by-zero yields all ones.
    divuw => DivuW,
    /// `dst = sext32(lhs32 % rhs32)` signed, RISC-V edge rules.
    remw => RemW,
    /// `dst = sext32(lhs32 % rhs32)` unsigned; by-zero yields the dividend.
    remuw => RemuW,
}

macro_rules! alu_ri {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, dst: Reg, src: Reg, imm: i64) -> &mut Self {
                    self.emit(Instruction::AluImm { op: AluOp::$op, dst, src, imm })
                }
            )*
        }
    };
}

alu_ri! {
    /// `dst = src + imm` (wrapping).
    addi => Add,
    /// `dst = src & imm`.
    andi => And,
    /// `dst = src | imm`.
    ori => Or,
    /// `dst = src ^ imm`.
    xori => Xor,
    /// `dst = src << (imm & 63)`.
    slli => Sll,
    /// `dst = src >> (imm & 63)` (logical).
    srli => Srl,
    /// `dst = src * imm` (wrapping).
    muli => Mul,
    /// `dst = (src < imm) as u64`, signed.
    slti => Slt,
    /// `dst = src >> (imm & 63)` (arithmetic).
    srai => Sra,
    /// `dst = sext32(src + imm)` (32-bit wrapping, RV64 `addiw`).
    addwi => AddW,
    /// `dst = sext32(src << (imm & 31))` (32-bit logical).
    sllwi => SllW,
    /// `dst = sext32(src32 >> (imm & 31))` (32-bit logical).
    srlwi => SrlW,
    /// `dst = sext32(src32 >> (imm & 31))` (32-bit arithmetic).
    srawi => SraW,
}

macro_rules! branches {
    ($($(#[$doc:meta])* $name:ident => $cond:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, lhs: Reg, rhs: Reg, target: Label) -> &mut Self {
                    self.insts.push(Inst::Branch { cond: BranchCond::$cond, lhs, rhs, target });
                    self
                }
            )*
        }
    };
}

branches! {
    /// Branch to `target` iff `lhs == rhs`.
    beq => Eq,
    /// Branch to `target` iff `lhs != rhs`.
    bne => Ne,
    /// Branch to `target` iff `lhs < rhs` (signed).
    blt => Lt,
    /// Branch to `target` iff `lhs >= rhs` (signed).
    bge => Ge,
    /// Branch to `target` iff `lhs < rhs` (unsigned).
    bltu => LtU,
    /// Branch to `target` iff `lhs >= rhs` (unsigned).
    bgeu => GeU,
}

macro_rules! fpu_rr {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, dst: FReg, lhs: FReg, rhs: FReg) -> &mut Self {
                    self.emit(Instruction::Fpu { op: FpuOp::$op, dst, lhs, rhs })
                }
            )*
        }
    };
}

fpu_rr! {
    /// `dst = lhs + rhs` (binary64).
    fadd => Add,
    /// `dst = lhs - rhs` (binary64).
    fsub => Sub,
    /// `dst = lhs * rhs` (binary64; FP transmit op).
    fmul => Mul,
    /// `dst = lhs / rhs` (binary64; FP transmit op).
    fdiv => Div,
}

impl Assembler {
    /// `dst = imm`.
    pub fn li(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.emit(Instruction::Li { dst, imm })
    }

    /// Word load: `dst = mem64[base + offset]`.
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Load { dst, base, offset, width: MemWidth::Word })
    }

    /// Byte load (zero-extended): `dst = mem8[base + offset]`.
    pub fn ldb(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Load { dst, base, offset, width: MemWidth::Byte })
    }

    /// Halfword load (zero-extended): `dst = mem16[base + offset]`.
    pub fn ldh(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Load { dst, base, offset, width: MemWidth::Half })
    }

    /// 32-bit load (zero-extended): `dst = mem32[base + offset]`.
    pub fn ldw(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Load { dst, base, offset, width: MemWidth::Word4 })
    }

    /// Word store: `mem64[base + offset] = src`.
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Store { src, base, offset, width: MemWidth::Word })
    }

    /// Byte store: `mem8[base + offset] = src & 0xff`.
    pub fn stb(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Store { src, base, offset, width: MemWidth::Byte })
    }

    /// Halfword store: `mem16[base + offset] = src & 0xffff`.
    pub fn sth(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Store { src, base, offset, width: MemWidth::Half })
    }

    /// 32-bit store: `mem32[base + offset] = src & 0xffff_ffff`.
    pub fn stw(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Store { src, base, offset, width: MemWidth::Word4 })
    }

    /// FP word load: `dst = mem64[base + offset]` (bit-exact).
    pub fn fld(&mut self, dst: FReg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::FLoad { dst, base, offset })
    }

    /// FP word store: `mem64[base + offset] = bits(src)`.
    pub fn fst(&mut self, src: FReg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::FStore { src, base, offset })
    }

    /// `dst = sqrt(src)` (binary64; FP transmit op).
    pub fn fsqrt(&mut self, dst: FReg, src: FReg) -> &mut Self {
        self.emit(Instruction::Fpu { op: FpuOp::Sqrt, dst, lhs: src, rhs: src })
    }

    /// Bit-move FP → integer register.
    pub fn fmv_to_int(&mut self, dst: Reg, src: FReg) -> &mut Self {
        self.emit(Instruction::FMvToInt { dst, src })
    }

    /// Bit-move integer → FP register.
    pub fn fmv_from_int(&mut self, dst: FReg, src: Reg) -> &mut Self {
        self.emit(Instruction::FMvFromInt { dst, src })
    }

    /// Unconditional direct jump, link in `dst` (use [`Reg::ZERO`] to
    /// discard the link).
    pub fn jal(&mut self, dst: Reg, target: Label) -> &mut Self {
        self.insts.push(Inst::Jal { dst, target });
        self
    }

    /// Unconditional direct jump with no link: `j target`.
    pub fn j(&mut self, target: Label) -> &mut Self {
        self.jal(Reg::ZERO, target)
    }

    /// Indirect jump to `base + offset`, link in `dst`.
    pub fn jalr(&mut self, dst: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instruction::Jalr { dst, base, offset })
    }

    /// Return through `base` with no link: `jr base`.
    pub fn jr(&mut self, base: Reg) -> &mut Self {
        self.jalr(Reg::ZERO, base, 0)
    }

    /// No operation.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instruction::Nop)
    }

    /// Architectural halt.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instruction::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Instruction;

    #[test]
    fn forward_label_resolves() {
        let mut asm = Assembler::new();
        let end = asm.label();
        asm.beq(Reg::ZERO, Reg::ZERO, end);
        asm.nop();
        asm.bind(end);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(p.fetch(0).direct_target(), Some(2));
    }

    #[test]
    fn backward_label_resolves() {
        let mut asm = Assembler::new();
        let top = asm.here();
        asm.nop();
        asm.j(top);
        let p = asm.finish().unwrap();
        assert_eq!(p.fetch(1).direct_target(), Some(0));
    }

    #[test]
    fn unbound_label_is_error() {
        let mut asm = Assembler::new();
        let dangling = asm.label();
        asm.j(dangling);
        let err = asm.finish().unwrap_err();
        assert!(matches!(err, AsmError::UnboundLabel { used_at: 0, .. }));
        assert!(err.to_string().contains("never bound"));
    }

    #[test]
    #[should_panic(expected = "bound more than once")]
    fn rebinding_panics() {
        let mut asm = Assembler::new();
        let l = asm.label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn named_program_keeps_name() {
        let mut asm = Assembler::named("kernel");
        asm.halt();
        assert_eq!(asm.finish().unwrap().name(), "kernel");
    }

    #[test]
    fn anonymous_program_gets_placeholder_name() {
        let mut asm = Assembler::new();
        asm.halt();
        assert_eq!(asm.finish().unwrap().name(), "anonymous");
    }

    #[test]
    fn emit_helpers_produce_expected_forms() {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        let f1 = FReg::new(1);
        asm.li(r1, 5).ld(r2, r1, 8).st(r2, r1, 16).fld(f1, r1, 0).fsqrt(f1, f1);
        asm.halt();
        let p = asm.finish().unwrap();
        assert!(matches!(p.fetch(0), Instruction::Li { .. }));
        assert!(p.fetch(1).is_load());
        assert!(p.fetch(2).is_store());
        assert!(p.fetch(3).is_load());
        assert!(p.fetch(4).is_fp_transmit());
    }

    #[test]
    fn data_image_travels_with_program() {
        let mut asm = Assembler::new();
        asm.data_mut().set_word(0x40, 77);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(p.data().word(0x40), 77);
    }

    #[test]
    fn next_pc_tracks_emission() {
        let mut asm = Assembler::new();
        assert_eq!(asm.next_pc(), 0);
        asm.nop().nop();
        assert_eq!(asm.next_pc(), 2);
    }
}
