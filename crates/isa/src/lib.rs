//! # sdo-isa — the mini-ISA of the SDO simulator
//!
//! This crate defines the instruction set that the cycle-level simulator in
//! `sdo-uarch` executes, together with:
//!
//! * [`Reg`]/[`FReg`] — architectural integer and floating-point registers,
//! * [`Instruction`] — the instruction set (ALU, multiply/divide, FP
//!   add/mul/div/sqrt, loads/stores, branches and jumps),
//! * [`Program`] — an executable image (instruction memory + initial data
//!   memory image),
//! * [`Assembler`] — a label-based builder API for writing programs in Rust,
//! * [`Interpreter`] — a functional, in-order reference interpreter used as
//!   the *golden model* for differential testing of the out-of-order core.
//!
//! The ISA is deliberately RISC-like and word-oriented: the program counter
//! counts *instructions* (not bytes), data memory is byte-addressed with
//! 1/8-byte accesses, and integer registers are 64-bit. Floating point uses
//! IEEE-754 `f64` carried in 64-bit registers; the FP transmit instructions
//! of the paper (`fmul`, `fdiv`, `fsqrt`) are modeled directly.
//!
//! ## Example
//!
//! ```rust
//! use sdo_isa::{Assembler, Reg, Interpreter};
//!
//! # fn main() -> Result<(), sdo_isa::AsmError> {
//! let mut asm = Assembler::new();
//! let (r1, r2) = (Reg::new(1), Reg::new(2));
//! asm.addi(r1, Reg::ZERO, 21);
//! asm.add(r2, r1, r1);
//! asm.halt();
//! let program = asm.finish()?;
//!
//! let mut interp = Interpreter::new(&program);
//! interp.run(1_000).expect("program halts");
//! assert_eq!(interp.reg(r2), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asm;
mod inst;
mod interp;
mod parse;
mod program;
mod reg;

pub use asm::{AsmError, Assembler, Label};
pub use inst::{AluOp, BranchCond, FpuOp, Instruction, MemWidth, OpClass};
pub use interp::{ExecutedInst, InterpError, Interpreter, StepOutcome};
pub use parse::{parse_asm, ParseError};
pub use program::{DataImage, Program};
pub use reg::{FReg, Reg, NUM_FREGS, NUM_REGS};
