//! Disassemble → parse round trips: `sdo_isa::parse_asm` accepts the
//! listings `Program::disassemble` produces (absolute `@N` targets
//! included), and the reparsed program is instruction-identical.

use sdo_isa::parse_asm;
use sdo_rng::SdoRng;
use sdo_workloads::random::random_program;
use sdo_workloads::suite;

#[test]
fn suite_kernels_roundtrip_through_disassembly() {
    for w in suite() {
        let listing = w.program().disassemble();
        let reparsed = parse_asm(&listing)
            .unwrap_or_else(|e| panic!("{} disassembly failed to reparse: {e}", w.name()));
        assert_eq!(
            reparsed.instructions(),
            w.program().instructions(),
            "{}: reparse changed the instruction stream",
            w.name()
        );
    }
}

#[test]
fn random_programs_roundtrip_through_disassembly() {
    let mut rng = SdoRng::seed_from_u64(0x707_0000);
    for _ in 0..24 {
        let seed = rng.gen_range(0u64..100_000);
        let prog = random_program(seed, 8);
        let listing = prog.disassemble();
        let reparsed = parse_asm(&listing)
            .unwrap_or_else(|e| panic!("seed {seed}: disassembly failed to reparse: {e}"));
        assert_eq!(reparsed.instructions(), prog.instructions(), "seed {seed}");
    }
}
