//! The Spectre V1 attack program used by the penetration test
//! (Section VIII-A: "we confirmed that all SDO design variants block the
//! Spectre V1 attack, to which the Unsafe baseline is vulnerable").
//!
//! The program is the paper's Figure 1 made concrete:
//!
//! 1. a *training* phase runs the bounds-checked access with in-bounds
//!    indices so the branch predictor learns "in bounds";
//! 2. the *attack* iteration supplies an out-of-bounds index pointing at
//!    the secret. The bound used by the check is produced by a chain of
//!    long-latency divides, so the mispredicted branch stays unresolved
//!    for tens of cycles — a speculative window in which the secret is
//!    read and *transmitted* by a dependent load into the probe array;
//! 3. the branch finally resolves, the wrong path squashes, and the
//!    architectural state is clean — but on an unprotected core the probe
//!    array's cache state now encodes the secret.
//!
//! The receiver half (a flush+reload-style residency probe over the probe
//! array) lives in the harness, which has access to the simulated memory
//! system.

use sdo_isa::{Assembler, Program, Reg};

/// Everything the harness needs to run the attack and read out the
/// covert channel.
#[derive(Debug, Clone)]
pub struct SpectreScenario {
    /// The victim+attacker program.
    pub program: Program,
    /// Base address of the 256-line probe array (one line per byte
    /// value).
    pub probe_base: u64,
    /// The secret byte planted out of bounds.
    pub secret: u8,
    /// Byte value the in-bounds (training) elements hold; its probe line
    /// is legitimately warmed during training and must be ignored by the
    /// receiver.
    pub trained_byte: u8,
}

impl SpectreScenario {
    /// Address of the probe line that encodes `byte`.
    #[must_use]
    pub fn probe_addr(&self, byte: u8) -> u64 {
        self.probe_base + u64::from(byte) * 64
    }
}

/// Builds the Spectre V1 scenario with the canonical planted secret
/// (`0x2A`). See [`spectre_v1_with_secret`].
#[must_use]
pub fn spectre_v1_victim() -> SpectreScenario {
    spectre_v1_with_secret(0x2A)
}

/// Builds the Spectre V1 scenario with a caller-chosen secret byte —
/// the parameterization the secret-swap differential checker needs
/// (run twice with different secrets, diff the observables).
///
/// Array layout: `A` is a 10-byte bounds-checked array of zeros; the
/// secret byte sits at `A + 200` (out of bounds but in the same address
/// space); the probe array starts at a distant, initially-cold address.
#[must_use]
pub fn spectre_v1_with_secret(secret: u8) -> SpectreScenario {
    let a_base = 0x4000u64;
    let probe_base = 0x100_0000u64;
    let secret_offset = 200i64;

    let mut asm = Assembler::named("spectre_v1");
    // A[0..10] = 0; the "secret" out of bounds.
    for k in 0..10 {
        asm.data_mut().set_byte(a_base + k, 0);
    }
    asm.data_mut().set_byte(a_base + secret_offset as u64, secret);

    let r = Reg::new;
    let (abase, pbase, idx, val, off) = (r(1), r(2), r(3), r(4), r(5));
    let (big, div, bound) = (r(6), r(7), r(8));
    asm.li(abase, a_base as i64);
    asm.li(pbase, probe_base as i64);
    // bound = 10 after twelve *dependent* divides: the check resolves
    // ~240 cycles after the call, a window long enough to cover even a
    // DRAM fetch of the secret.
    asm.li(big, 10_000_000_000_000); // 10 * 10^12
    asm.li(div, 10);

    // victim(idx): bounds check against a slowly-computed bound, then the
    // speculative access + transmit.
    let do_access = asm.label();
    let skip = asm.label();
    let victim = asm.label();
    let ra = r(31);

    // Main: train with idx in 0..10, then attack with the secret offset.
    let train_i = r(10);
    asm.li(train_i, 64);
    let train_top = asm.here();
    asm.andi(idx, train_i, 0x7); // in bounds (0..8)
    asm.jal(ra, victim);
    asm.addi(train_i, train_i, -1);
    asm.bne(train_i, Reg::ZERO, train_top);
    // Attack iteration.
    asm.li(idx, secret_offset);
    asm.jal(ra, victim);
    asm.halt();

    asm.bind(victim);
    // bound = big / div^12 = 10, as a dependent divide chain.
    asm.divu(bound, big, div);
    for _ in 0..11 {
        asm.divu(bound, bound, div);
    }
    asm.blt(idx, bound, do_access);
    asm.j(skip);
    asm.bind(do_access);
    asm.add(val, abase, idx);
    asm.ldb(val, val, 0); // the access: reads the secret when OOB
    asm.slli(off, val, 6); // one probe line per byte value
    asm.add(off, off, pbase);
    asm.ld(Reg::ZERO, off, 0); // the transmit: fills probe[val]
    asm.bind(skip);
    asm.jr(ra);

    SpectreScenario {
        program: asm.finish().expect("spectre assembles"),
        probe_base,
        secret,
        trained_byte: 0,
    }
}


/// Builds the **FP-timing Spectre** variant (the paper's Section I-A
/// motivation, NetSpectre-style): the speculatively-read secret is moved
/// into an FP register — non-zero secrets form *subnormal* bit patterns —
/// and multiplied. On an unprotected core the subnormal slow path ties up
/// an FP unit, delaying the victim's own (architectural) FP work, so
/// **total runtime** encodes the secret. No cache line is touched: this
/// channel defeats cache-only defenses and `STT{ld}`, and is closed only
/// by `STT{ld+fp}` and by the SDO configurations (whose predict-normal DO
/// variant executes the tainted multiply with operand-independent
/// latency and occupancy).
///
/// The receiver is runtime comparison across secrets — see
/// `tests/fp_channel.rs`.
#[must_use]
pub fn spectre_fp_victim(secret: u8) -> Program {
    let a_base = 0x4000u64;
    // The secret shares A's cache line (offset 48 > bound 10, < line 64):
    // it is architecturally out of bounds yet cache-hot after training —
    // the common case of a secret the victim recently used itself.
    let secret_offset = 48i64;
    let bounds_base = 0x20_0000u64;

    let mut asm = Assembler::named("spectre_fp");
    for k in 0..10 {
        asm.data_mut().set_byte(a_base + k, 0);
    }
    asm.data_mut().set_byte(a_base + secret_offset as u64, secret);
    // One cold bound line per victim call (the window opener), plus the
    // attack call's displaced line (see below).
    for k in 0..200u64 {
        asm.data_mut().set_word(bounds_base + k * 512, 10);
    }
    // FP constants for the victim's legitimate FP work.
    asm.data_mut().set_f64(0x5000, 3.5);
    asm.data_mut().set_f64(0x5008, 1.25);

    let r = Reg::new;
    let f = sdo_isa::FReg::new;
    let (abase, idx, val, bptr, bound) = (r(1), r(3), r(4), r(5), r(8));
    asm.li(abase, a_base as i64);
    asm.li(bptr, bounds_base as i64);
    asm.li(r(9), 0x5000);
    asm.fld(f(1), r(9), 0);
    asm.fld(f(2), r(9), 8);

    let do_access = asm.label();
    let skip = asm.label();
    let victim = asm.label();
    let ra = r(31);

    let train_i = r(10);
    asm.li(train_i, 64);
    let train_top = asm.here();
    asm.andi(idx, train_i, 0x7);
    asm.jal(ra, victim);
    asm.addi(train_i, train_i, -1);
    asm.bne(train_i, Reg::ZERO, train_top);
    // Drain: a long dependent divide chain that gates the attack call's
    // bound pointer, so every training instruction has retired and the
    // attack's timing is not hidden behind the commit backlog.
    let (d, one) = (r(20), r(21));
    asm.li(d, 1_000_000_000);
    asm.li(one, 1);
    for _ in 0..40 {
        asm.divu(d, d, one);
    }
    asm.andi(d, d, 0); // d = 0, but only once the chain finishes
    asm.add(bptr, bptr, d);
    // Displace the attack's bound line into territory the wrong path of
    // the training loop's exit cannot reach (its phantom 65th iteration
    // would otherwise prefetch the attack's line and close the window).
    asm.addi(bptr, bptr, 0x8000);
    // Gate the attack index on the drain as well, so the doomed FP work
    // cannot start (and finish) during the drain itself.
    asm.li(idx, secret_offset);
    asm.add(idx, idx, d);
    asm.jal(ra, victim);
    asm.halt();

    asm.bind(victim);
    // Window opener: the bound comes from a cold (DRAM) line, so the
    // check stays unresolved for a couple hundred cycles.
    asm.ld(bound, bptr, 0);
    asm.addi(bptr, bptr, 512);
    asm.blt(idx, bound, do_access);
    asm.j(skip);
    asm.bind(do_access);
    asm.add(val, abase, idx);
    asm.ldb(val, val, 0); // the access: reads the (hot) secret when OOB
    asm.fmv_from_int(f(3), val); // non-zero secret => subnormal bits
    // The transmit: two dependent subnormal multiply chains, one per FP
    // unit. A subnormal times a modest normal stays subnormal, so every
    // link takes the slow microcoded path — the units are still occupied
    // when the mispredicted branch finally squashes.
    asm.fmul(f(10), f(3), f(1));
    for k in 11..=16 {
        asm.fmul(f(k), f(k - 1), f(1));
    }
    // Stagger the second chain by ~half a slow-multiply latency (a chain
    // of single-cycle adds) so that, whatever phase the squash lands on,
    // one of the two units is still mid-link when the correct path
    // re-issues its FP work.
    let stag = r(22);
    asm.addi(stag, val, 0);
    for _ in 0..21 {
        asm.addi(stag, stag, 0);
    }
    asm.fmv_from_int(f(19), stag);
    asm.fmul(f(20), f(19), f(2));
    for k in 21..=26 {
        asm.fmul(f(k), f(k - 1), f(2));
    }
    asm.bind(skip);
    // The victim's own FP work: two *independent* divides that want both
    // FP units at once — delayed iff a doomed subnormal chain still
    // occupies one of them.
    asm.fdiv(f(5), f(1), f(2));
    asm.fdiv(f(6), f(2), f(1));
    asm.jr(ra);

    asm.finish().expect("spectre_fp assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_isa::Interpreter;

    #[test]
    fn victim_halts_and_never_architecturally_reads_oob() {
        let s = spectre_v1_victim();
        let mut interp = Interpreter::new(&s.program);
        interp.run(100_000).expect("halts");
        // Architecturally, the out-of-bounds access never commits: the
        // bound is 10 and the attack index 200 takes the skip path, so
        // r4 last holds an in-bounds (zero) value.
        assert_eq!(interp.reg(Reg::new(4)), 0);
    }

    #[test]
    fn scenario_probe_addresses_are_distinct_lines() {
        let s = spectre_v1_victim();
        assert_eq!(s.probe_addr(1) - s.probe_addr(0), 64);
        assert_ne!(s.secret, s.trained_byte, "receiver must be able to distinguish");
    }

    #[test]
    fn fp_victim_halts_for_any_secret() {
        for secret in [0u8, 1, 42, 255] {
            let prog = spectre_fp_victim(secret);
            let mut interp = Interpreter::new(&prog);
            interp.run(200_000).expect("halts");
        }
    }

    #[test]
    fn fp_victim_architectural_state_is_secret_independent() {
        // The out-of-bounds read never commits, so final registers match.
        let run = |secret: u8| {
            let prog = spectre_fp_victim(secret);
            let mut i = Interpreter::new(&prog);
            i.run(200_000).unwrap();
            i.int_regs()
        };
        let a = run(0);
        let b = run(42);
        assert_eq!(a, b);
    }

    #[test]
    fn secret_is_planted_out_of_bounds() {
        let s = spectre_v1_victim();
        assert_eq!(s.program.data().byte(0x4000 + 200), s.secret);
        for k in 0..10 {
            assert_eq!(s.program.data().byte(0x4000 + k), 0);
        }
    }
}
