//! RV32 corpus wiring: the compiled-benchmark corpus of `sdo-rv32`
//! exposed as [`Workload`]s with behavioural class tags, plus the
//! Spectre-v1 gadget entry as a litmus-style secret-swap case for
//! `sdo-verify` and pinned static verdicts for `sdo-analyze`.
//!
//! The corpus programs themselves (raw RV32 words, data segments,
//! expected outputs) live in `sdo_rv32::corpus`; this module only
//! adapts them to the workload/litmus vocabulary the harness speaks.

use crate::kernels::Workload;
use crate::litmus::{Channel, LitmusCase, StaticExpect};
use sdo_isa::Program;
use sdo_rv32::corpus;

/// The four compiled RV32 benchmark kernels as workloads (the gadget
/// entry is exposed via [`rv32_litmus_cases`] instead).
#[must_use]
pub fn rv32_suite() -> Vec<Workload> {
    corpus::CORPUS
        .iter()
        .filter(|e| e.secret_addr.is_none())
        .map(|e| Workload::new(e.name, e.program()))
        .collect()
}

/// The behavioural class of an RV32 corpus kernel (same vocabulary as
/// [`crate::workload_class`]); `cache_resident` for unknown names.
#[must_use]
pub fn rv32_class(name: &str) -> &'static str {
    corpus::entry(name).map_or("cache_resident", |e| e.class)
}

fn build_rv32_gadget(secret: u8) -> Program {
    corpus::entry("rv32_gadget")
        .expect("gadget entry is part of the pinned corpus")
        .with_secret(secret)
}

/// Litmus-style secret-swap cases over the RV32 corpus, kept separate
/// from [`crate::CORPUS`] so the mini-ISA litmus campaign stays as
/// pinned. The gadget's secret byte sits out of bounds of `array1` and
/// is only touched by the mis-speculated access, so it leaks via the
/// cache on an unprotected core and must be closed by any variant
/// whose policy closes the cache channel.
#[must_use]
pub fn rv32_litmus_cases() -> Vec<LitmusCase> {
    vec![LitmusCase {
        name: "rv32_gadget",
        leaks_via: Some(Channel::Cache),
        build: build_rv32_gadget,
        expect: rv32_expect("rv32_gadget").expect("gadget verdict is pinned"),
    }]
}

/// The pinned static verdict of an RV32 corpus program under
/// `sdo-analyze`'s taint fixpoint (`None` for kernels without one).
/// As with [`crate::kernels::kernel_expect`], the verdicts are
/// conservative: any loaded value that can reach a later load address
/// or branch counts as a potential transmitter/trainer even though the
/// benchmarks carry no secret. The table-driven kernels (crc32, sort's
/// comparisons, strsearch's byte matches) feed loads into branches and
/// so carry training findings; matmul's inner product never branches
/// on data, and its final accumulator store leaves one architecturally
/// dead load in the epilogue. The gadget is the one cache transmitter.
#[must_use]
pub fn rv32_expect(name: &str) -> Option<StaticExpect> {
    let e = |transmit, training, dead_access| {
        Some(StaticExpect { transmit, training, dead_access })
    };
    const CACHE: &[Channel] = &[Channel::Cache];
    match name {
        "rv32_crc32" => e(&[], true, false),
        "rv32_matmul" => e(&[], false, true),
        "rv32_sort" => e(&[], true, true),
        "rv32_strsearch" => e(&[], true, false),
        "rv32_gadget" => e(CACHE, false, false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_isa::Interpreter;

    #[test]
    fn rv32_suite_has_four_classed_kernels() {
        let suite = rv32_suite();
        assert_eq!(suite.len(), 4);
        for w in &suite {
            assert!(
                crate::WORKLOAD_CLASSES.contains(&rv32_class(w.name())),
                "{}: unknown class",
                w.name()
            );
        }
    }

    #[test]
    fn every_rv32_workload_halts_with_its_pinned_result() {
        for w in rv32_suite() {
            let mut interp = Interpreter::new(w.program());
            interp.run(50_000_000).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            let entry = corpus::entry(w.name()).expect("corpus entry");
            assert_eq!(corpus::read_result(&interp), entry.expected_result, "{}", w.name());
        }
    }

    #[test]
    fn rv32_gadget_case_is_architecturally_secret_independent() {
        let case = &rv32_litmus_cases()[0];
        let mut regs = Vec::new();
        for secret in [0u8, 42] {
            let program = (case.build)(secret);
            let mut interp = Interpreter::new(&program);
            interp.run(50_000_000).expect("gadget halts for any secret");
            regs.push(interp.int_regs());
        }
        assert_eq!(regs[0], regs[1], "secret must not reach architectural state");
    }
}
