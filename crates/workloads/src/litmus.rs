//! Litmus corpus for the secret-swap differential checker.
//!
//! Each [`LitmusCase`] is a program builder parameterized by a secret
//! byte, plus ground truth about *whether* and *how* that secret can
//! reach an attacker on an unprotected core. The checker in
//! `sdo-verify` runs each case twice with different secrets and
//! compares attacker observables:
//!
//! * cases with `leaks_via: Some(_)` are **positive controls** — the
//!   unsafe baseline (and, for the FP channel, `STT{ld}`) must show a
//!   divergence, or the checker itself is broken;
//! * cases with `leaks_via: None` are **negative controls** — if even
//!   the unsafe baseline diverges, the program's observables depend on
//!   the secret architecturally and the case (or the observable model)
//!   is wrong.
//!
//! Which protection closes which channel is policy, not corpus — it
//! lives with the checker (`sdo-verify`), next to the code that acts
//! on it.

use crate::spectre::{spectre_fp_victim, spectre_v1_with_secret};
use sdo_isa::{Assembler, Program, Reg};

/// The covert channel a litmus case transmits through on an
/// unprotected core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Channel {
    /// Cache state: a speculative load whose address depends on the
    /// secret warms a secret-indexed line (Spectre V1, Figure 1).
    Cache,
    /// FP timing: a speculative FP op whose latency/occupancy depends
    /// on the secret operand delays architectural work (Section I-A).
    FpTiming,
}

/// The pinned *static* verdict of a program under `sdo-analyze`'s
/// taint fixpoint, before any per-variant channel projection. Distinct
/// from [`LitmusCase::leaks_via`], which is dynamic ground truth: the
/// static analysis is conservative, so a program can be flagged (e.g.
/// `benign_branchy`'s public-data loop branch looks like tainted
/// training) without actually leaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticExpect {
    /// Channels with at least one potential transmit site.
    pub transmit: &'static [Channel],
    /// Whether some branch/indirect jump is steered by a possibly
    /// tainted value.
    pub training: bool,
    /// Whether some speculative access's taint reaches nothing.
    pub dead_access: bool,
}

impl StaticExpect {
    /// A program with no speculative findings at all.
    pub const CLEAN: StaticExpect =
        StaticExpect { transmit: &[], training: false, dead_access: false };
}

/// One litmus program: a builder plus its expected leakage behaviour.
#[derive(Debug, Clone, Copy)]
pub struct LitmusCase {
    /// Stable case name (used in reports and CLI filters).
    pub name: &'static str,
    /// The channel the secret leaks through on an unprotected core, or
    /// `None` if the program's observables are secret-independent even
    /// without protection (negative control).
    pub leaks_via: Option<Channel>,
    /// Builds the program with the given secret byte planted.
    pub build: fn(u8) -> Program,
    /// Pinned static verdict (golden value for `sdo-analyze`).
    pub expect: StaticExpect,
}

/// The fixed litmus corpus, in canonical order.
pub const CORPUS: &[LitmusCase] = &[
    LitmusCase {
        name: "spectre_v1",
        leaks_via: Some(Channel::Cache),
        build: build_spectre_v1,
        expect: StaticExpect { transmit: &[Channel::Cache], training: false, dead_access: false },
    },
    LitmusCase {
        name: "spectre_fp",
        leaks_via: Some(Channel::FpTiming),
        build: spectre_fp_victim,
        expect: StaticExpect {
            transmit: &[Channel::FpTiming],
            training: false,
            dead_access: false,
        },
    },
    LitmusCase {
        name: "spectre_v1_dead",
        leaks_via: None,
        build: build_spectre_v1_dead,
        expect: StaticExpect { transmit: &[], training: false, dead_access: true },
    },
    LitmusCase {
        name: "benign_branchy",
        leaks_via: None,
        build: build_benign_branchy,
        expect: StaticExpect { transmit: &[], training: true, dead_access: false },
    },
];

/// Looks a case up by name.
#[must_use]
pub fn litmus_case(name: &str) -> Option<&'static LitmusCase> {
    CORPUS.iter().find(|c| c.name == name)
}

fn build_spectre_v1(secret: u8) -> Program {
    spectre_v1_with_secret(secret).program
}

/// Spectre V1 with the transmitter amputated: the secret is still read
/// speculatively on the mispredicted path, but nothing depends on the
/// loaded value, so no observable can encode it — even on the unsafe
/// baseline. Distinguishes "speculatively accessed" from "leaked".
fn build_spectre_v1_dead(secret: u8) -> Program {
    let a_base = 0x4000u64;
    let secret_offset = 200i64;

    let mut asm = Assembler::named("spectre_v1_dead");
    for k in 0..10 {
        asm.data_mut().set_byte(a_base + k, 0);
    }
    asm.data_mut().set_byte(a_base + secret_offset as u64, secret);

    let r = Reg::new;
    let (abase, idx, val) = (r(1), r(3), r(4));
    let (big, div, bound) = (r(6), r(7), r(8));
    asm.li(abase, a_base as i64);
    asm.li(big, 10_000_000_000_000);
    asm.li(div, 10);

    let do_access = asm.label();
    let skip = asm.label();
    let victim = asm.label();
    let ra = r(31);

    let train_i = r(10);
    asm.li(train_i, 64);
    let train_top = asm.here();
    asm.andi(idx, train_i, 0x7);
    asm.jal(ra, victim);
    asm.addi(train_i, train_i, -1);
    asm.bne(train_i, Reg::ZERO, train_top);
    asm.li(idx, secret_offset);
    asm.jal(ra, victim);
    asm.halt();

    asm.bind(victim);
    // Same slow divide-chain bound as spectre_v1: the window is open,
    // the secret is read — the transmit just isn't there.
    asm.divu(bound, big, div);
    for _ in 0..11 {
        asm.divu(bound, bound, div);
    }
    asm.blt(idx, bound, do_access);
    asm.j(skip);
    asm.bind(do_access);
    asm.add(val, abase, idx);
    asm.ldb(val, val, 0); // reads the secret when OOB; dead afterwards
    asm.bind(skip);
    asm.jr(ra);

    asm.finish().expect("spectre_v1_dead assembles")
}

/// A branchy loop over public data with the secret planted but never
/// read (not even speculatively): the checker's baseline negative
/// control. Any divergence here means the harness, not the core,
/// depends on the secret.
fn build_benign_branchy(secret: u8) -> Program {
    let a_base = 0x6000u64;

    let mut asm = Assembler::named("benign_branchy");
    for k in 0..64u64 {
        asm.data_mut().set_byte(a_base + k, (k * 7 % 13) as u8);
    }
    // Planted far from anything the program touches.
    asm.data_mut().set_byte(a_base + 0x1000, secret);

    let r = Reg::new;
    let (abase, i, v, acc) = (r(1), r(2), r(3), r(4));
    asm.li(abase, a_base as i64);
    asm.li(i, 63);
    asm.li(acc, 0);
    let top = asm.here();
    let even = asm.label();
    let next = asm.label();
    asm.add(v, abase, i);
    asm.ldb(v, v, 0);
    asm.andi(v, v, 1);
    asm.bne(v, Reg::ZERO, even); // data-dependent (public) branch
    asm.addi(acc, acc, 2);
    asm.j(next);
    asm.bind(even);
    asm.addi(acc, acc, 5);
    asm.bind(next);
    asm.addi(i, i, -1);
    asm.bne(i, Reg::ZERO, top);
    asm.halt();

    asm.finish().expect("benign_branchy assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_isa::Interpreter;

    #[test]
    fn corpus_cases_halt_for_any_secret() {
        for case in CORPUS {
            for secret in [0u8, 42, 255] {
                let prog = (case.build)(secret);
                let mut i = Interpreter::new(&prog);
                i.run(500_000).unwrap_or_else(|e| panic!("{} halts: {e:?}", case.name));
            }
        }
    }

    #[test]
    fn corpus_architectural_state_is_secret_independent() {
        // The planted secret must never architecturally escape: final
        // integer registers are identical under any secret.
        for case in CORPUS {
            let run = |secret: u8| {
                let prog = (case.build)(secret);
                let mut i = Interpreter::new(&prog);
                i.run(500_000).unwrap();
                i.int_regs()
            };
            assert_eq!(run(0), run(42), "case {}", case.name);
        }
    }

    #[test]
    fn corpus_names_are_unique_and_resolvable() {
        for (i, a) in CORPUS.iter().enumerate() {
            assert!(litmus_case(a.name).is_some());
            for b in &CORPUS[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
        assert!(litmus_case("nope").is_none());
    }
}
