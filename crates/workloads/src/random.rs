//! Structured random program generation for differential fuzzing.
//!
//! [`random_program`] emits programs that are random enough to shake out
//! pipeline bugs (dependency chains, branches, memory aliasing, FP) but
//! guaranteed to halt: control flow is restricted to forward skips and
//! counted-down loops, and every memory address is masked into a small
//! scratch region before use.

use sdo_rng::SdoRng;
use sdo_isa::{Assembler, FReg, Program, Reg};

/// Scratch data region base; all generated loads/stores land in
/// `[SCRATCH_BASE, SCRATCH_BASE + 0x1000)`.
pub const SCRATCH_BASE: u64 = 0x8000;

/// Generates a deterministic, always-halting random program.
///
/// `blocks` controls program size (roughly 12 instructions per block);
/// the same `(seed, blocks)` pair always yields the same program.
///
/// # Examples
///
/// ```rust
/// use sdo_workloads::random::random_program;
/// use sdo_isa::Interpreter;
///
/// let prog = random_program(7, 10);
/// let mut interp = Interpreter::new(&prog);
/// interp.run(1_000_000).expect("generated programs always halt");
/// ```
#[must_use]
pub fn random_program(seed: u64, blocks: usize) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named(format!("random_{seed}"));

    // Seed some registers and scratch memory.
    let base = Reg::new(13);
    asm.li(base, SCRATCH_BASE as i64);
    for i in 1..=8u8 {
        asm.li(Reg::new(i), rng.gen_range(-(1 << 20)..(1 << 20)));
    }
    for w in 0..64u64 {
        asm.data_mut().set_word(SCRATCH_BASE + w * 64, rng.gen());
    }
    for f in 1..=4u8 {
        asm.data_mut().set_f64(SCRATCH_BASE + 0x800 + u64::from(f) * 8, rng.gen_range(0.1f64..8.0));
    }
    for f in 1..=4u8 {
        asm.fld(FReg::new(f), base, 0x800 + i64::from(f) * 8);
    }

    for block in 0..blocks {
        // Optionally wrap the block in a counted loop.
        let looped = rng.gen_bool(0.4);
        let counter = Reg::new(20 + (block % 4) as u8);
        let top = if looped {
            asm.li(counter, rng.gen_range(2..10));
            Some(asm.here())
        } else {
            None
        };
        emit_block(&mut asm, &mut rng);
        if let (true, Some(top)) = (looped, top) {
            asm.addi(counter, counter, -1);
            asm.bne(counter, Reg::ZERO, top);
        }
    }
    asm.halt();
    asm.finish().expect("generated programs always assemble")
}

fn gp(rng: &mut SdoRng) -> Reg {
    Reg::new(rng.gen_range(1..=12))
}

fn fpr(rng: &mut SdoRng) -> FReg {
    FReg::new(rng.gen_range(1..=6))
}

fn emit_block(asm: &mut Assembler, rng: &mut SdoRng) {
    let base = Reg::new(13);
    let n = rng.gen_range(6..14);
    for _ in 0..n {
        match rng.gen_range(0..100) {
            0..=34 => {
                // Register-register ALU.
                let (d, a, b) = (gp(rng), gp(rng), gp(rng));
                match rng.gen_range(0..8) {
                    0 => asm.add(d, a, b),
                    1 => asm.sub(d, a, b),
                    2 => asm.and_(d, a, b),
                    3 => asm.or_(d, a, b),
                    4 => asm.xor(d, a, b),
                    5 => asm.sltu(d, a, b),
                    6 => asm.mul(d, a, b),
                    _ => asm.divu(d, a, b),
                };
            }
            35..=54 => {
                // Immediate ALU.
                let (d, a) = (gp(rng), gp(rng));
                let imm = rng.gen_range(-4096..4096);
                match rng.gen_range(0..4) {
                    0 => asm.addi(d, a, imm),
                    1 => asm.xori(d, a, imm),
                    2 => asm.slli(d, a, rng.gen_range(0..16)),
                    _ => asm.srli(d, a, rng.gen_range(0..16)),
                };
            }
            55..=74 => {
                // Memory op through a masked address.
                let addr = gp(rng);
                let idx = gp(rng);
                asm.andi(addr, idx, 0xff8);
                asm.add(addr, addr, base);
                let v = gp(rng);
                match rng.gen_range(0..4) {
                    0 => asm.ld(v, addr, 0),
                    1 => asm.st(v, addr, 0),
                    2 => asm.ldb(v, addr, rng.gen_range(0..7)),
                    _ => asm.stb(v, addr, rng.gen_range(0..7)),
                };
            }
            75..=86 => {
                // Forward skip over a couple of instructions.
                let (a, b) = (gp(rng), gp(rng));
                let skip = asm.label();
                if rng.gen_bool(0.5) {
                    asm.beq(a, b, skip);
                } else {
                    asm.blt(a, b, skip);
                }
                let d = gp(rng);
                asm.addi(d, d, rng.gen_range(-8..8));
                asm.xori(d, d, 1);
                asm.bind(skip);
            }
            _ => {
                // FP op (mul/div/sqrt are transmit ops under SDO).
                let (d, a, b) = (fpr(rng), fpr(rng), fpr(rng));
                match rng.gen_range(0..5) {
                    0 => asm.fadd(d, a, b),
                    1 => asm.fsub(d, a, b),
                    2 => asm.fmul(d, a, b),
                    3 => asm.fdiv(d, a, b),
                    _ => asm.fsqrt(d, a),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_isa::Interpreter;

    #[test]
    fn generated_programs_halt() {
        for seed in 0..20 {
            let prog = random_program(seed, 12);
            let mut interp = Interpreter::new(&prog);
            interp
                .run(2_000_000)
                .unwrap_or_else(|e| panic!("seed {seed} did not halt: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_program(5, 8), random_program(5, 8));
        assert_ne!(random_program(5, 8), random_program(6, 8));
    }

    #[test]
    fn memory_stays_in_scratch_region() {
        for seed in 0..10 {
            let prog = random_program(seed, 10);
            let mut interp = Interpreter::new(&prog);
            let trace = interp.run_trace(2_000_000).unwrap();
            for e in trace {
                if let Some(addr) = e.mem_addr {
                    assert!(
                        (SCRATCH_BASE..SCRATCH_BASE + 0x1010).contains(&addr),
                        "seed {seed}: access at {addr:#x} escaped the scratch region"
                    );
                }
            }
        }
    }
}
