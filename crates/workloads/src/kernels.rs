//! The ten SPEC17-stand-in kernels (see crate docs and DESIGN.md §4).
//!
//! Every generator is deterministic (seeded) and returns a self-contained
//! [`Program`] (code + initial data image). Loop trip counts are sized so
//! each kernel commits a few tens of thousands of instructions — enough
//! for caches and predictors to reach steady state while keeping the full
//! Table II × kernel sweep fast.

use sdo_rng::SdoRng;
use sdo_isa::{Assembler, FReg, Program, Reg};
use sdo_mem::CacheLevel;

/// A named benchmark kernel, with its cache warm-start hints.
///
/// The paper simulates SimPoint checkpoints whose caches are warmed by
/// the preceding billions of instructions; a fresh simulator would charge
/// every first touch to DRAM instead. `prewarm` lists the byte ranges
/// (and levels) the harness installs before measuring — see DESIGN.md §5.
#[derive(Debug, Clone)]
pub struct Workload {
    name: &'static str,
    program: Program,
    prewarm: Vec<(u64, u64, CacheLevel)>,
}

impl Workload {
    /// Wraps a program as a named workload with no warm-start hints.
    #[must_use]
    pub fn new(name: &'static str, program: Program) -> Self {
        Workload { name, program, prewarm: Vec::new() }
    }

    /// Adds a warm-start range `(start, bytes)` at `level`.
    #[must_use]
    pub fn warmed(mut self, start: u64, bytes: u64, level: CacheLevel) -> Self {
        self.prewarm.push((start, bytes, level));
        self
    }

    /// The kernel's display name (row label in Figure 6).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The executable program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Warm-start ranges `(start, bytes, level)` to install before
    /// simulation.
    #[must_use]
    pub fn prewarm_ranges(&self) -> &[(u64, u64, CacheLevel)] {
        &self.prewarm
    }

    /// Consumes the workload, returning the program.
    #[must_use]
    pub fn into_program(self) -> Program {
        self.program
    }
}

fn r(i: u8) -> Reg {
    Reg::new(i)
}
fn fr(i: u8) -> FReg {
    FReg::new(i)
}

/// Writes a Sattolo-cycle permutation of `lines` cache lines starting at
/// `base` into the image: `mem[p]` holds the next pointer, forming a
/// single cycle visiting every line.
fn pointer_ring(asm: &mut Assembler, base: u64, lines: u64, rng: &mut SdoRng) -> u64 {
    let mut order: Vec<u64> = (0..lines).collect();
    // Sattolo's algorithm: a single n-cycle.
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..i);
        order.swap(i, j);
    }
    for k in 0..order.len() {
        let from = base + order[k] * 64;
        let to = base + order[(k + 1) % order.len()] * 64;
        asm.data_mut().set_word(from, to);
    }
    base + order[0] * 64
}

/// `ptr_chase` — mcf-like random pointer chasing over `footprint` bytes.
///
/// Each iteration loads the next pointer, bounds-checks the *loaded*
/// value (Figure-1 shape; never actually taken) and chases one more step
/// through the tainted pointer. With the default 1 MiB footprint the
/// chain lives mostly in the L3.
#[must_use]
pub fn ptr_chase(footprint: u64, iters: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("ptr_chase");
    let base = 0x10_0000;
    let start = pointer_ring(&mut asm, base, footprint / 64, &mut rng);
    let (ptr, val, acc) = (r(1), r(2), r(7));
    asm.li(ptr, start as i64);
    let iter = r(10);
    asm.li(iter, iters as i64);
    let esc = asm.label();
    let top = asm.here();
    asm.ld(val, ptr, 0); // access: next pointer
    asm.blt(val, Reg::ZERO, esc); // bounds check on loaded data (never taken)
    asm.ld(ptr, val, 0); // transmit: chase through the tainted pointer
    asm.add(acc, acc, val);
    asm.addi(iter, iter, -1);
    asm.bne(iter, Reg::ZERO, top);
    asm.bind(esc);
    asm.halt();
    asm.finish().expect("ptr_chase assembles")
}

/// `stream` — lbm-like unit-stride streaming with one L1 miss per 8
/// words, plus an indirect access into a small hot table gated by a
/// bounds check on the streamed value.
#[must_use]
pub fn stream(words: u64, passes: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("stream");
    let a_base = 0x20_0000u64;
    let t_base = 0x1000u64; // 4 KiB hot table
    for i in 0..words {
        asm.data_mut().set_word(a_base + i * 8, rng.gen_range(0u64..1 << 20));
    }
    for i in 0..512 {
        asm.data_mut().set_word(t_base + i * 8, i * 3);
    }
    let (ap, av, tv, acc, limit, tb) = (r(1), r(2), r(3), r(7), r(8), r(9));
    asm.li(limit, 1 << 30);
    asm.li(tb, t_base as i64);
    let pass = r(11);
    asm.li(pass, passes as i64);
    let esc = asm.label();
    let pass_top = asm.here();
    asm.li(ap, a_base as i64);
    let iter = r(10);
    asm.li(iter, words as i64);
    let top = asm.here();
    asm.ld(av, ap, 0); // streamed access
    asm.bge(av, limit, esc); // bounds check on the data (never taken)
    asm.andi(r(4), av, 0xff8);
    asm.add(r(4), r(4), tb);
    asm.ld(tv, r(4), 0); // transmit: indirect into the hot table
    asm.add(acc, acc, tv);
    asm.addi(ap, ap, 8);
    asm.addi(iter, iter, -1);
    asm.bne(iter, Reg::ZERO, top);
    asm.addi(pass, pass, -1);
    asm.bne(pass, Reg::ZERO, pass_top);
    asm.bind(esc);
    asm.halt();
    asm.finish().expect("stream assembles")
}

/// `stride` — cactuBSSN-like constant non-unit stride: every access
/// touches a new line, so the location pattern is uniform (all deep).
#[must_use]
pub fn stride(lines: u64, stride_lines: u64, passes: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("stride");
    let a_base = 0x40_0000u64;
    for i in 0..lines {
        asm.data_mut().set_word(a_base + i * 64, rng.gen_range(0u64..1 << 20));
    }
    let t_base = 0x1000u64;
    for i in 0..512 {
        asm.data_mut().set_word(t_base + i * 8, i);
    }
    let (ap, av, acc, limit, tb) = (r(1), r(2), r(7), r(8), r(9));
    asm.li(limit, 1 << 30);
    asm.li(tb, t_base as i64);
    let pass = r(11);
    asm.li(pass, passes as i64);
    let esc = asm.label();
    let pass_top = asm.here();
    asm.li(ap, a_base as i64);
    let iter = r(10);
    asm.li(iter, (lines / stride_lines) as i64);
    let top = asm.here();
    asm.ld(av, ap, 0);
    asm.bge(av, limit, esc); // never taken
    asm.andi(r(4), av, 0xff8);
    asm.add(r(4), r(4), tb);
    asm.ld(r(5), r(4), 0); // transmit
    asm.add(acc, acc, r(5));
    asm.addi(ap, ap, (stride_lines * 64) as i64);
    asm.addi(iter, iter, -1);
    asm.bne(iter, Reg::ZERO, top);
    asm.addi(pass, pass, -1);
    asm.bne(pass, Reg::ZERO, pass_top);
    asm.bind(esc);
    asm.halt();
    asm.finish().expect("stride assembles")
}

/// `mix_branchy` — gcc/perlbench-like: the same taint-serialization
/// idiom as `hash_lookup` but over an L2-sized table, plus a genuinely
/// unpredictable 50/50 branch on the probed value (mispredicts mix with
/// protection overhead).
#[must_use]
pub fn mix_branchy(table_words: u64, iters: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("mix_branchy");
    let t_base = 0x30_0000u64;
    for i in 0..table_words {
        asm.data_mut().set_word(t_base + i * 8, rng.gen::<u64>() >> 1);
    }
    let i_base = 0x1000u64;
    let idx_words = 512u64;
    for i in 0..idx_words {
        asm.data_mut().set_word(i_base + i * 8, rng.gen_range(0..table_words) * 8);
    }
    let (io, iv, tv, acc, tb, ib, thr) = (r(1), r(2), r(3), r(7), r(8), r(9), r(12));
    asm.li(tb, t_base as i64);
    asm.li(ib, i_base as i64);
    asm.li(thr, (u64::MAX / 4) as i64);
    asm.li(io, 0);
    let iter = r(10);
    asm.li(iter, iters as i64);
    let top = asm.here();
    asm.add(r(4), ib, io);
    asm.ld(iv, r(4), 0); // access: streamed index
    asm.add(r(5), tb, iv);
    asm.ld(tv, r(5), 0); // transmit: independent L2/L3 probe
    let other = asm.label();
    let join = asm.label();
    asm.blt(tv, thr, other); // data-dependent, ~50/50 on the slow value
    asm.addi(acc, acc, 3);
    asm.j(join);
    asm.bind(other);
    asm.xori(acc, acc, 0x55);
    asm.bind(join);
    asm.addi(io, io, 8);
    asm.andi(io, io, ((idx_words - 1) * 8) as i64);
    asm.addi(iter, iter, -1);
    asm.bne(iter, Reg::ZERO, top);
    asm.halt();
    asm.finish().expect("mix_branchy assembles")
}

/// `hash_lookup` — xalancbmk-like. The paper's high-overhead idiom: a
/// streamed index feeds an *independent* indirect probe of an L3-sized
/// table, and the loop branches on the probed (slow) value. On the
/// insecure baseline the probes enjoy full memory-level parallelism;
/// under STT each probe's address is tainted until the previous probe's
/// branch resolves, serializing the misses — exactly the overhead SDO
/// recovers by issuing the probes as Obl-Lds.
#[must_use]
pub fn hash_lookup(table_words: u64, iters: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("hash_lookup");
    let t_base = 0x80_0000u64;
    for i in 0..table_words {
        asm.data_mut().set_word(t_base + i * 8, rng.gen_range(0u64..1 << 24));
    }
    // Streamed index array (hot after the first lap).
    let i_base = 0x1000u64;
    let idx_words = 512u64;
    for i in 0..idx_words {
        asm.data_mut().set_word(i_base + i * 8, rng.gen_range(0..table_words) * 8);
    }
    let (io, iv, tv, acc, tb, ib, magic) = (r(1), r(2), r(3), r(7), r(8), r(9), r(12));
    asm.li(tb, t_base as i64);
    asm.li(ib, i_base as i64);
    asm.li(magic, -1); // never matches (table values are small positives)
    asm.li(io, 0);
    let iter = r(10);
    asm.li(iter, iters as i64);
    let esc = asm.label();
    let top = asm.here();
    asm.add(r(4), ib, io);
    asm.ld(iv, r(4), 0); // access: streamed index (hot)
    asm.add(r(5), tb, iv);
    asm.ld(tv, r(5), 0); // transmit: independent L3 probe, tainted address
    asm.beq(tv, magic, esc); // branch on the slow probed value (never taken)
    asm.add(acc, acc, tv);
    asm.addi(io, io, 8);
    asm.andi(io, io, ((idx_words - 1) * 8) as i64);
    asm.addi(iter, iter, -1);
    asm.bne(iter, Reg::ZERO, top);
    asm.bind(esc);
    asm.halt();
    asm.finish().expect("hash_lookup assembles")
}

/// `stencil` — fotonik3d-like 3-point stencil with a guard branch on the
/// loaded center value; high spatial locality with periodic line misses.
#[must_use]
pub fn stencil(words: u64, passes: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("stencil");
    let a_base = 0x50_0000u64;
    let b_base = 0x60_0000u64;
    for i in 0..words + 2 {
        asm.data_mut().set_word(a_base + i * 8, rng.gen_range(0u64..1 << 16));
    }
    let (ap, bp, c, l, rr, acc, limit) = (r(1), r(2), r(3), r(4), r(5), r(7), r(12));
    asm.li(limit, 1 << 30);
    let pass = r(11);
    asm.li(pass, passes as i64);
    let esc = asm.label();
    let pass_top = asm.here();
    asm.li(ap, (a_base + 8) as i64);
    asm.li(bp, b_base as i64);
    let iter = r(10);
    asm.li(iter, words as i64);
    let top = asm.here();
    asm.ld(c, ap, 0); // center
    asm.bge(c, limit, esc); // guard on loaded value (never taken)
    asm.ld(l, ap, -8);
    asm.ld(rr, ap, 8);
    asm.add(r(6), l, rr);
    asm.add(r(6), r(6), c);
    asm.st(r(6), bp, 0);
    asm.add(acc, acc, r(6));
    asm.addi(ap, ap, 8);
    asm.addi(bp, bp, 8);
    asm.addi(iter, iter, -1);
    asm.bne(iter, Reg::ZERO, top);
    asm.addi(pass, pass, -1);
    asm.bne(pass, Reg::ZERO, pass_top);
    asm.bind(esc);
    asm.halt();
    asm.finish().expect("stencil assembles")
}

/// `matmul_blocked` — FP-heavy blocked matrix kernel: `C[i][j] +=
/// A[i][k] * B[k][j]` over `n × n` binary64 matrices (FP multiply is a
/// transmit op under `STT{ld+fp}` and FP-SDO).
#[must_use]
pub fn matmul_blocked(n: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("matmul_blocked");
    let a_base = 0x70_0000u64;
    let b_base = a_base + n * n * 8;
    let c_base = b_base + n * n * 8;
    for i in 0..n * n {
        asm.data_mut().set_f64(a_base + i * 8, rng.gen_range(0.5f64..2.0));
        asm.data_mut().set_f64(b_base + i * 8, rng.gen_range(0.5f64..2.0));
    }
    let (ai, bj, ci) = (r(1), r(2), r(3));
    let (i, j, k) = (r(10), r(11), r(12));
    let (fa, fb, fc) = (fr(1), fr(2), fr(3));
    let nn = r(9);
    asm.li(nn, n as i64);

    asm.li(i, 0);
    let i_top = asm.here();
    asm.li(j, 0);
    let j_top = asm.here();
    // ci = &C[i][j]
    asm.mul(r(4), i, nn);
    asm.add(r(4), r(4), j);
    asm.slli(r(4), r(4), 3);
    asm.li(ci, c_base as i64);
    asm.add(ci, ci, r(4));
    asm.fld(fc, ci, 0);
    asm.li(k, 0);
    let k_top = asm.here();
    // ai = &A[i][k], bj = &B[k][j]
    asm.mul(r(5), i, nn);
    asm.add(r(5), r(5), k);
    asm.slli(r(5), r(5), 3);
    asm.li(ai, a_base as i64);
    asm.add(ai, ai, r(5));
    asm.mul(r(6), k, nn);
    asm.add(r(6), r(6), j);
    asm.slli(r(6), r(6), 3);
    asm.li(bj, b_base as i64);
    asm.add(bj, bj, r(6));
    asm.fld(fa, ai, 0);
    asm.fld(fb, bj, 0);
    asm.fmul(fr(4), fa, fb);
    asm.fadd(fc, fc, fr(4));
    asm.addi(k, k, 1);
    asm.blt(k, nn, k_top);
    asm.fst(fc, ci, 0);
    asm.addi(j, j, 1);
    asm.blt(j, nn, j_top);
    asm.addi(i, i, 1);
    asm.blt(i, nn, i_top);
    asm.halt();
    asm.finish().expect("matmul assembles")
}

/// `fp_subnormal` — FP multiply stream with a controllable fraction of
/// subnormal inputs (`one subnormal per `sub_period` elements; 0 = none),
/// executed in the shadow of slow bounds loads so the FP transmit ops are
/// tainted. Exercises the predict-normal FP DO variant and its squashes.
#[must_use]
pub fn fp_subnormal(elements: u64, sub_period: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("fp_subnormal");
    let x_base = 0x1000u64; // hot ring of FP inputs (4 KiB)
    let ring = 256u64;
    for i in 0..ring {
        let v = if sub_period > 0 && i % sub_period == 0 {
            f64::MIN_POSITIVE / 8.0
        } else {
            rng.gen_range(0.5f64..2.0)
        };
        asm.data_mut().set_f64(x_base + i * 8, v);
    }
    let bounds = 0xA0_0000u64; // cold bound lines open the windows
    let (bp, bound, xo, xb, xp) = (r(1), r(2), r(3), r(4), r(5));
    asm.li(bp, bounds as i64);
    asm.li(xb, x_base as i64);
    asm.li(xo, 0);
    let (f1, f2, facc) = (fr(1), fr(2), fr(7));
    let iter = r(10);
    asm.li(iter, elements as i64);
    let esc = asm.label();
    let top = asm.here();
    asm.ld(bound, bp, 0); // slow access opens the window
    asm.bne(bound, Reg::ZERO, esc); // never taken
    asm.add(xp, xb, xo);
    asm.fld(f1, xp, 0);
    asm.fld(f2, xp, 8);
    asm.fmul(fr(3), f1, f2); // tainted FP transmit
    asm.fadd(facc, facc, fr(3));
    // Ring advance: `ring` is a power of two, so `(ring - 1) * 8` is a
    // contiguous bit mask over the word offsets (the `xp + 8` read of the
    // final slot falls one word past the ring and reads 0.0, which is
    // harmless and identical in the golden model).
    asm.addi(xo, xo, 8);
    asm.andi(xo, xo, ((ring - 1) * 8) as i64);
    asm.addi(bp, bp, 512);
    asm.addi(iter, iter, -1);
    asm.bne(iter, Reg::ZERO, top);
    asm.bind(esc);
    asm.halt();
    asm.finish().expect("fp_subnormal assembles")
}

/// `phase_shift` — omnetpp-like: the hash-probe idiom where the probed
/// table alternates between an L1-resident 4 KiB table and an L3-sized
/// 1 MiB table every `phase_len` iterations, so the right location
/// prediction changes at coarse granularity (Section V-D pattern 1).
#[must_use]
pub fn phase_shift(phase_len: u64, phases: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("phase_shift");
    let small_base = 0x2000u64;
    let small_words = 512u64; // 4 KiB
    for i in 0..small_words {
        asm.data_mut().set_word(small_base + i * 8, rng.gen_range(0u64..1 << 16));
    }
    let big_base = 0xB0_0000u64;
    let big_words = 64 * 1024u64; // 512 KiB
    for i in 0..big_words {
        asm.data_mut().set_word(big_base + i * 8, rng.gen_range(0u64..1 << 16));
    }
    let i_base = 0x1000u64;
    let idx_words = 256u64;
    for i in 0..idx_words {
        asm.data_mut().set_word(i_base + i * 8, rng.gen::<u64>());
    }
    let (io, iv, tv, acc, ib, magic, tbase, tmask) = (r(1), r(2), r(3), r(7), r(9), r(12), r(13), r(14));
    asm.li(ib, i_base as i64);
    asm.li(magic, -1);
    asm.li(io, 0);
    let (phase, iter) = (r(11), r(10));
    asm.li(phase, (phases * 2) as i64);
    let esc = asm.label();
    let phase_top = asm.here();
    // Select the table for this phase.
    let use_small = asm.label();
    let selected = asm.label();
    asm.andi(r(4), phase, 1);
    asm.bne(r(4), Reg::ZERO, use_small);
    asm.li(tbase, big_base as i64);
    asm.li(tmask, ((big_words - 1) * 8) as i64);
    asm.j(selected);
    asm.bind(use_small);
    asm.li(tbase, small_base as i64);
    asm.li(tmask, ((small_words - 1) * 8) as i64);
    asm.bind(selected);
    asm.li(iter, phase_len as i64);
    let top = asm.here();
    asm.add(r(4), ib, io);
    asm.ld(iv, r(4), 0); // access: streamed pseudo-random index
    asm.and_(r(5), iv, tmask);
    asm.add(r(5), r(5), tbase);
    asm.ld(tv, r(5), 0); // transmit: probe of the phase's table
    asm.beq(tv, magic, esc); // branch on the probed value (never taken)
    asm.add(acc, acc, tv);
    asm.addi(io, io, 8);
    asm.andi(io, io, ((idx_words - 1) * 8) as i64);
    asm.addi(iter, iter, -1);
    asm.bne(iter, Reg::ZERO, top);
    asm.addi(phase, phase, -1);
    asm.bne(phase, Reg::ZERO, phase_top);
    asm.bind(esc);
    asm.halt();
    asm.finish().expect("phase_shift assembles")
}

/// `l1_resident` — exchange2-like control: the probe idiom with a tiny
/// (2 KiB) table and plenty of ALU work. Windows are short and every
/// prediction is trivially "L1", so protection overhead should be small.
#[must_use]
pub fn l1_resident(iters: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("l1_resident");
    let t_base = 0x2000u64;
    let t_words = 256u64;
    for i in 0..t_words {
        asm.data_mut().set_word(t_base + i * 8, rng.gen_range(0u64..1 << 12));
    }
    let (h, tv, acc, tb, magic) = (r(1), r(2), r(7), r(8), r(12));
    asm.li(tb, t_base as i64);
    asm.li(magic, -1);
    asm.li(h, 0x1234);
    let iter = r(10);
    asm.li(iter, iters as i64);
    let esc = asm.label();
    let top = asm.here();
    asm.muli(h, h, 6364136223846793005);
    asm.addi(h, h, 1442695040888963407);
    asm.srli(r(4), h, 40);
    asm.andi(r(4), r(4), ((t_words - 1) * 8) as i64);
    asm.add(r(4), r(4), tb);
    asm.ld(tv, r(4), 0); // L1-resident probe
    asm.beq(tv, magic, esc); // never taken
    asm.xor(r(5), tv, acc);
    asm.srli(r(6), r(5), 3);
    asm.add(acc, r(6), tv);
    asm.addi(iter, iter, -1);
    asm.bne(iter, Reg::ZERO, top);
    asm.bind(esc);
    asm.halt();
    asm.finish().expect("l1_resident assembles")
}

/// `bst_search` — binary-search-tree lookups (extra kernel, not in the
/// default suite): every step loads a node key, branches on it (a
/// genuinely data-dependent direction) and follows a child pointer with a
/// tainted address. Node layout: `[key, left, right]` at 64-byte-aligned
/// addresses.
#[must_use]
pub fn bst_search(nodes: u64, searches: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("bst_search");
    let base = 0xC0_0000u64;
    // Build a balanced BST over sorted keys 0, 2, 4, ... (even), so odd
    // probe keys always walk to a leaf.
    let node_addr = |i: u64| base + i * 64;
    fn place(
        asm: &mut Assembler,
        node_addr: &dyn Fn(u64) -> u64,
        next: &mut u64,
        lo: u64,
        hi: u64,
    ) -> u64 {
        if lo >= hi {
            return 0;
        }
        let mid = (lo + hi) / 2;
        let me = *next;
        *next += 1;
        let addr = node_addr(me);
        asm.data_mut().set_word(addr, mid * 2); // key
        let left = place(asm, node_addr, next, lo, mid);
        let right = place(asm, node_addr, next, mid + 1, hi);
        asm.data_mut().set_word(addr + 8, left);
        asm.data_mut().set_word(addr + 16, right);
        addr
    }
    let mut next = 0;
    let root = place(&mut asm, &node_addr, &mut next, 0, nodes);

    // Probe keys: random odd values (never found => full-depth walks).
    let k_base = 0x1000u64;
    let k_words = 256u64;
    for i in 0..k_words {
        asm.data_mut().set_word(k_base + i * 8, rng.gen_range(0..nodes) * 2 + 1);
    }

    let (node, key, probe, acc, kb, ko) = (r(1), r(2), r(3), r(7), r(8), r(9));
    asm.li(kb, k_base as i64);
    asm.li(ko, 0);
    let iter = r(10);
    asm.li(iter, searches as i64);
    let search_top = asm.here();
    asm.add(r(4), kb, ko);
    asm.ld(probe, r(4), 0); // the key to search for
    asm.li(node, root as i64);
    let walk = asm.label();
    let left = asm.label();
    let step_done = asm.label();
    let found = asm.label();
    asm.bind(walk);
    asm.ld(key, node, 0); // access: node key (output tainted in-walk)
    asm.beq(key, probe, found); // data-dependent
    asm.blt(probe, key, left);
    asm.ld(node, node, 16); // transmit: right child (tainted address)
    asm.j(step_done);
    asm.bind(left);
    asm.ld(node, node, 8); // transmit: left child
    asm.bind(step_done);
    asm.bne(node, Reg::ZERO, walk);
    asm.bind(found);
    asm.add(acc, acc, key);
    asm.addi(ko, ko, 8);
    asm.andi(ko, ko, ((k_words - 1) * 8) as i64);
    asm.addi(iter, iter, -1);
    asm.bne(iter, Reg::ZERO, search_top);
    asm.halt();
    asm.finish().expect("bst_search assembles")
}

/// `sparse_matvec` — CSR sparse matrix-vector product `y = A·x` (extra
/// kernel): column indices are loaded, then used to gather `x` (tainted
/// indirect FP loads) feeding FP multiply-adds — the FP-transmit-heavy
/// cousin of `hash_lookup`.
#[must_use]
pub fn sparse_matvec(rows: u64, nnz_per_row: u64, seed: u64) -> Program {
    let mut rng = SdoRng::seed_from_u64(seed);
    let mut asm = Assembler::named("sparse_matvec");
    let cols = rows;
    let col_base = 0xD0_0000u64; // column indices, row-major
    let val_base = 0xD8_0000u64; // matrix values
    let x_base = 0xE0_0000u64; // dense vector
    let y_base = 0xE8_0000u64; // result
    for i in 0..rows * nnz_per_row {
        asm.data_mut().set_word(col_base + i * 8, rng.gen_range(0..cols) * 8);
        asm.data_mut().set_f64(val_base + i * 8, rng.gen_range(0.5f64..1.5));
    }
    for c in 0..cols {
        asm.data_mut().set_f64(x_base + c * 8, rng.gen_range(0.5f64..1.5));
    }

    let (cp, vp, yp, xb, cidx) = (r(1), r(2), r(3), r(4), r(5));
    let (fv, fx, facc) = (fr(1), fr(2), fr(3));
    asm.li(cp, col_base as i64);
    asm.li(vp, val_base as i64);
    asm.li(yp, y_base as i64);
    asm.li(xb, x_base as i64);
    let (row, k) = (r(10), r(11));
    asm.li(row, rows as i64);
    let row_top = asm.here();
    asm.fsub(facc, facc, facc); // facc = 0
    asm.li(k, nnz_per_row as i64);
    let k_top = asm.here();
    asm.ld(cidx, cp, 0); // access: column index
    asm.blt(cidx, Reg::ZERO, k_top); // bounds check on the index (never taken)
    asm.add(r(6), xb, cidx);
    asm.fld(fx, r(6), 0); // transmit: gather x[col] (tainted address)
    asm.fld(fv, vp, 0);
    asm.fmul(fr(4), fv, fx); // FP transmit op
    asm.fadd(facc, facc, fr(4));
    asm.addi(cp, cp, 8);
    asm.addi(vp, vp, 8);
    asm.addi(k, k, -1);
    asm.bne(k, Reg::ZERO, k_top);
    asm.fst(facc, yp, 0);
    asm.addi(yp, yp, 8);
    asm.addi(row, row, -1);
    asm.bne(row, Reg::ZERO, row_top);
    asm.halt();
    asm.finish().expect("sparse_matvec assembles")
}

/// The coarse behavioural classes the suite kernels fall into, in
/// reporting order (used to aggregate per-class measurements like the
/// fast-forward skip ratio in `BENCH_suite.json`).
pub const WORKLOAD_CLASSES: &[&str] = &["dram_bound", "cache_resident", "branchy", "fp"];

/// The behavioural class of a suite kernel (one of
/// [`WORKLOAD_CLASSES`]): `dram_bound` kernels spend most cycles
/// stalled on memory beyond L2, `branchy` on mispredictions, `fp` on
/// long-latency FP units, and the rest are `cache_resident`.
#[must_use]
pub fn workload_class(name: &str) -> &'static str {
    match name {
        "ptr_chase" | "hash_lookup" | "phase_shift" => "dram_bound",
        "mix_branchy" => "branchy",
        "fp_subnormal" => "fp",
        n if n.starts_with("rv32_") => crate::rv32::rv32_class(n),
        _ => "cache_resident",
    }
}

/// The pinned static verdict of a suite kernel under `sdo-analyze`'s
/// taint fixpoint (`None` for kernels without a pinned expectation).
/// The verdicts are conservative by nature: a kernel whose loop loads
/// feed a later load address (pointer chasing, hash probing) is a
/// *potential* cache transmitter even though no secret is involved —
/// exactly the access patterns STT pays its overhead delaying.
#[must_use]
pub fn kernel_expect(name: &str) -> Option<crate::litmus::StaticExpect> {
    use crate::litmus::{Channel, StaticExpect};
    let e = |transmit, training, dead_access| {
        Some(StaticExpect { transmit, training, dead_access })
    };
    const CACHE: &[Channel] = &[Channel::Cache];
    const FP: &[Channel] = &[Channel::FpTiming];
    match name {
        "ptr_chase" => e(CACHE, true, false),
        "stream" => e(CACHE, true, false),
        "stride" => e(CACHE, true, false),
        "mix_branchy" => e(CACHE, true, false),
        "hash_lookup" => e(CACHE, true, false),
        "stencil" => e(&[], true, false),
        "matmul_blocked" => e(FP, false, false),
        "fp_subnormal" => e(FP, true, false),
        "phase_shift" => e(CACHE, true, false),
        "l1_resident" => e(&[], true, false),
        _ => None,
    }
}

/// The full evaluation suite with default sizes (used by Figures 6–8 and
/// Table III).
#[must_use]
pub fn suite() -> Vec<Workload> {
    vec![
        Workload::new("ptr_chase", ptr_chase(1 << 20, 4000, 1))
            .warmed(0x10_0000, 1 << 20, CacheLevel::L3),
        Workload::new("stream", stream(4096, 2, 2))
            .warmed(0x20_0000, 4096 * 8, CacheLevel::L3),
        Workload::new("stride", stride(1536, 3, 3, 3))
            .warmed(0x40_0000, 1536 * 64, CacheLevel::L3),
        Workload::new("mix_branchy", mix_branchy(1 << 14, 3000, 4))
            .warmed(0x30_0000, (1 << 14) * 8, CacheLevel::L2),
        Workload::new("hash_lookup", hash_lookup(1 << 16, 3000, 5))
            .warmed(0x80_0000, (1 << 16) * 8, CacheLevel::L3),
        Workload::new("stencil", stencil(2048, 3, 6))
            .warmed(0x50_0000, 2048 * 8 + 16, CacheLevel::L2),
        Workload::new("matmul_blocked", matmul_blocked(18, 7)),
        Workload::new("fp_subnormal", fp_subnormal(3000, 16, 8)),
        Workload::new("phase_shift", phase_shift(500, 5, 9))
            .warmed(0xB0_0000, (1 << 16) * 8, CacheLevel::L3),
        Workload::new("l1_resident", l1_resident(5000, 10)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_isa::Interpreter;

    #[test]
    fn suite_has_ten_distinct_kernels() {
        let s = suite();
        assert_eq!(s.len(), 10);
        let mut names: Vec<_> = s.iter().map(Workload::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "kernel names must be unique");
    }

    #[test]
    fn every_suite_kernel_has_a_known_class() {
        for w in suite() {
            let class = workload_class(w.name());
            assert!(WORKLOAD_CLASSES.contains(&class), "{}: unknown class {class}", w.name());
        }
        assert_eq!(workload_class("ptr_chase"), "dram_bound");
        assert_eq!(workload_class("hash_lookup"), "dram_bound");
        assert_eq!(workload_class("phase_shift"), "dram_bound");
        assert_eq!(workload_class("l1_resident"), "cache_resident");
        assert_eq!(workload_class("mix_branchy"), "branchy");
        assert_eq!(workload_class("fp_subnormal"), "fp");
    }

    #[test]
    fn every_kernel_halts_in_golden_model() {
        for w in suite() {
            let mut interp = Interpreter::new(w.program());
            let executed = interp
                .run(20_000_000)
                .unwrap_or_else(|e| panic!("{} did not halt: {e}", w.name()));
            assert!(
                executed > 10_000,
                "{} should run a meaningful number of instructions, got {executed}",
                w.name()
            );
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = ptr_chase(1 << 16, 100, 42);
        let b = ptr_chase(1 << 16, 100, 42);
        assert_eq!(a, b);
        let c = ptr_chase(1 << 16, 100, 43);
        assert_ne!(a, c, "different seeds give different rings");
    }

    #[test]
    fn pointer_rings_are_single_cycles() {
        for seed in 0..5u64 {
            let mut asm = Assembler::new();
            let mut rng = SdoRng::seed_from_u64(seed);
            let lines = 64;
            let start = pointer_ring(&mut asm, 0x4000, lines, &mut rng);
            asm.halt();
            let p = asm.finish().unwrap();
            // Walk the ring: must visit every line exactly once.
            let mut seen = std::collections::HashSet::new();
            let mut cur = start;
            for _ in 0..lines {
                assert!(seen.insert(cur), "ring revisits {cur:#x} early");
                cur = p.data().word(cur);
            }
            assert_eq!(cur, start, "ring closes after {lines} steps");
        }
    }

    #[test]
    fn fp_subnormal_controls_fraction() {
        let with = fp_subnormal(10, 4, 0);
        // Every 4th ring slot subnormal.
        let sub_count = (0..256u64)
            .filter(|i| f64::from_bits(with.data().word(0x1000 + i * 8)).is_subnormal())
            .count();
        assert_eq!(sub_count, 64);
        let without = fp_subnormal(10, 0, 0);
        let none = (0..256u64)
            .filter(|i| f64::from_bits(without.data().word(0x1000 + i * 8)).is_subnormal())
            .count();
        assert_eq!(none, 0);
    }

    #[test]
    fn bst_search_halts_and_walks_full_depth() {
        let prog = bst_search(255, 200, 11);
        let mut interp = Interpreter::new(&prog);
        let executed = interp.run(10_000_000).unwrap();
        // 255-node balanced tree => ~8 levels per search, ~7 insts/level.
        assert!(executed > 200 * 8 * 5, "searches must walk the tree: {executed}");
    }

    #[test]
    fn sparse_matvec_matches_reference() {
        let rows = 16u64;
        let nnz = 4u64;
        let prog = sparse_matvec(rows, nnz, 3);
        let mut interp = Interpreter::new(&prog);
        interp.run(10_000_000).unwrap();
        // Recompute row 0 from the image.
        let col = |i: u64| prog.data().word(0xD0_0000 + i * 8);
        let val = |i: u64| f64::from_bits(prog.data().word(0xD8_0000 + i * 8));
        let x = |off: u64| f64::from_bits(prog.data().word(0xE0_0000 + off));
        for row in 0..rows {
            let mut want = 0.0;
            for k in 0..nnz {
                let i = row * nnz + k;
                want += val(i) * x(col(i));
            }
            let got = f64::from_bits(interp.mem_word(0xE8_0000 + row * 8));
            assert!((got - want).abs() < 1e-9, "y[{row}] = {got}, want {want}");
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let n = 6u64;
        let prog = matmul_blocked(n, 7);
        let mut interp = Interpreter::new(&prog);
        interp.run(10_000_000).unwrap();
        // Recompute in Rust from the same image.
        let a = |i: u64, k: u64| f64::from_bits(prog.data().word(0x70_0000 + (i * n + k) * 8));
        let b_base = 0x70_0000 + n * n * 8;
        let c_base = b_base + n * n * 8;
        let b = |k: u64, j: u64| f64::from_bits(prog.data().word(b_base + (k * n + j) * 8));
        for i in 0..n {
            for j in 0..n {
                let mut c = 0.0;
                for k in 0..n {
                    c += a(i, k) * b(k, j);
                }
                let got = f64::from_bits(interp.mem_word(c_base + (i * n + j) * 8));
                assert!((got - c).abs() < 1e-9, "C[{i}][{j}] = {got}, want {c}");
            }
        }
    }
}
