//! # sdo-workloads — benchmark kernels for the SDO reproduction
//!
//! The paper evaluates on SPEC CPU2017 with reference inputs. Those
//! binaries and traces are not reproducible here, so this crate provides
//! synthetic kernels written in the mini-ISA whose *cache-level residency
//! profiles* and *branch behaviour* span the same space (see DESIGN.md §1
//! for the substitution argument):
//!
//! | kernel | models | driven by |
//! |---|---|---|
//! | `ptr_chase` | mcf | random pointer chasing, L2/L3/DRAM footprints |
//! | `stream` | lbm | unit stride, one L1 miss per 8 words |
//! | `stride` | cactuBSSN | constant non-unit stride |
//! | `mix_branchy` | gcc | data-dependent branches + mixed loads |
//! | `hash_lookup` | xalancbmk | scattered accesses into an L3-sized table |
//! | `stencil` | fotonik3d | 3-point stencil, periodic misses |
//! | `matmul_blocked` | FP compute | blocked GEMM-like FP mul/add |
//! | `fp_subnormal` | — | FP stream with controllable subnormal fraction |
//! | `phase_shift` | omnetpp | alternating L1/L3-resident phases |
//! | `l1_resident` | exchange2 | tight ALU + L1-resident loads |
//!
//! Every kernel follows the paper's Figure-1 shape naturally: loads feed
//! bounds-style branches and subsequent (indirect) loads, so speculative
//! windows with tainted transmitters arise exactly as in the motivating
//! code. All kernels halt deterministically (no input-dependent loop
//! exits actually fire).
//!
//! Also here: the executable **Spectre V1** attack ([`spectre`]) used by
//! the penetration test, and a structured [`random`] program generator
//! for differential fuzzing of the out-of-order core.
//!
//! ## Example
//!
//! ```rust
//! use sdo_workloads::suite;
//! let kernels = suite();
//! assert_eq!(kernels.len(), 10);
//! assert!(kernels.iter().any(|w| w.name() == "ptr_chase"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod kernels;
pub mod litmus;
pub mod random;
pub mod rv32;
pub mod spectre;

pub use kernels::{suite, workload_class, Workload, WORKLOAD_CLASSES};
pub use litmus::{litmus_case, Channel, LitmusCase, StaticExpect, CORPUS};
pub use rv32::{rv32_class, rv32_expect, rv32_litmus_cases, rv32_suite};
pub use spectre::{spectre_fp_victim, spectre_v1_victim, spectre_v1_with_secret, SpectreScenario};
