//! Bench target for **Figure 8**: prints the squashes-vs-time relation
//! for every SDO variant, then times the squash-heaviest configuration
//! (Static L1, whose mispredictions drive the correlation the paper
//! reports).

use criterion::{criterion_group, criterion_main, Criterion};
use sdo_bench::{quick_results, quick_suite, simulate_one};
use sdo_harness::experiments::fig8_report;
use sdo_harness::Variant;
use sdo_uarch::AttackModel;

fn fig8(c: &mut Criterion) {
    let results = quick_results();
    println!("\n{}", fig8_report(&results));

    let kernels = quick_suite();
    let hash = kernels.iter().find(|w| w.name() == "hash_lookup").expect("kernel exists");
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for attack in AttackModel::ALL {
        group.bench_function(format!("hash_lookup/StaticL1/{attack}"), |b| {
            b.iter(|| simulate_one(hash, Variant::StaticL1, attack));
        });
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
