//! Bench target for **Figure 8**: prints the squashes-vs-time relation
//! for every SDO variant, then times the squash-heaviest configuration
//! (Static L1, whose mispredictions drive the correlation the paper
//! reports). Honors `--jobs N` / `SDO_JOBS` for the figure regeneration.

use sdo_bench::{bench_case, quick_results_with, quick_suite, simulate_one};
use sdo_harness::cli::{BinSpec, CommonArgs, CsvSupport};
use sdo_harness::experiments::fig8_report;
use sdo_harness::Variant;
use sdo_uarch::AttackModel;

const SPEC: BinSpec = BinSpec {
    name: "bench-fig8",
    about: "Figure 8 bench: squashes-vs-time relation plus the squash-heaviest configuration.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: false,
    seed: false,
    no_skip: false,
    client: false,
    extra_options: &[],
};

fn main() {
    // Cargo's bench runner appends its own flags (e.g. `--bench`); they
    // land in `rest` and are deliberately ignored.
    let args = CommonArgs::parse(&SPEC);
    let pool = args.pool;

    let results = quick_results_with(&pool);
    println!("\n{}", fig8_report(&results));

    let kernels = quick_suite();
    let hash = kernels.iter().find(|w| w.name() == "hash_lookup").expect("kernel exists");
    for attack in AttackModel::ALL {
        bench_case(&format!("fig8/hash_lookup/StaticL1/{attack}"), 10, || {
            simulate_one(hash, Variant::StaticL1, attack)
        });
    }
}
