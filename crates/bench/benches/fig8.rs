//! Bench target for **Figure 8**: prints the squashes-vs-time relation
//! for every SDO variant, then times the squash-heaviest configuration
//! (Static L1, whose mispredictions drive the correlation the paper
//! reports). Honors `--jobs N` / `SDO_JOBS` for the figure regeneration.

use sdo_bench::{bench_case, quick_results_with, quick_suite, simulate_one};
use sdo_harness::engine::JobPool;
use sdo_harness::experiments::fig8_report;
use sdo_harness::Variant;
use sdo_uarch::AttackModel;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let pool = JobPool::from_args(&mut args);

    let results = quick_results_with(&pool);
    println!("\n{}", fig8_report(&results));

    let kernels = quick_suite();
    let hash = kernels.iter().find(|w| w.name() == "hash_lookup").expect("kernel exists");
    for attack in AttackModel::ALL {
        bench_case(&format!("fig8/hash_lookup/StaticL1/{attack}"), 10, || {
            simulate_one(hash, Variant::StaticL1, attack)
        });
    }
}
