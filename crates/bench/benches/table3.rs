//! Bench target for **Table III**: prints predictor precision/accuracy,
//! then times the hybrid predictor's two extreme workloads (strided loop
//! pattern vs coarse phase pattern).

use criterion::{criterion_group, criterion_main, Criterion};
use sdo_bench::{quick_results, quick_suite, simulate_one};
use sdo_harness::experiments::table3_report;
use sdo_harness::Variant;
use sdo_uarch::AttackModel;

fn table3(c: &mut Criterion) {
    let results = quick_results();
    println!("\n{}", table3_report(&results));

    let kernels = quick_suite();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for name in ["stream", "phase_shift"] {
        let w = kernels.iter().find(|w| w.name() == name).expect("kernel exists");
        group.bench_function(format!("{name}/Hybrid"), |b| {
            b.iter(|| simulate_one(w, Variant::Hybrid, AttackModel::Spectre));
        });
    }
    group.finish();
}

criterion_group!(benches, table3);
criterion_main!(benches);
