//! Bench target for **Table III**: prints predictor precision/accuracy,
//! then times the hybrid predictor's two extreme workloads (strided loop
//! pattern vs coarse phase pattern). Honors `--jobs N` / `SDO_JOBS` for
//! the table regeneration.

use sdo_bench::{bench_case, quick_results_with, quick_suite, simulate_one};
use sdo_harness::cli::{BinSpec, CommonArgs, CsvSupport};
use sdo_harness::experiments::table3_report;
use sdo_harness::Variant;
use sdo_uarch::AttackModel;

const SPEC: BinSpec = BinSpec {
    name: "bench-table3",
    about: "Table III bench: predictor precision/accuracy plus the hybrid predictor's extreme workloads.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: false,
    seed: false,
    no_skip: false,
    client: false,
    extra_options: &[],
};

fn main() {
    // Cargo's bench runner appends its own flags (e.g. `--bench`); they
    // land in `rest` and are deliberately ignored.
    let args = CommonArgs::parse(&SPEC);
    let pool = args.pool;

    let results = quick_results_with(&pool);
    println!("\n{}", table3_report(&results));

    let kernels = quick_suite();
    for name in ["stream", "phase_shift"] {
        let w = kernels.iter().find(|w| w.name() == name).expect("kernel exists");
        bench_case(&format!("table3/{name}/Hybrid"), 10, || {
            simulate_one(w, Variant::Hybrid, AttackModel::Spectre)
        });
    }
}
