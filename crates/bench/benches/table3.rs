//! Bench target for **Table III**: prints predictor precision/accuracy,
//! then times the hybrid predictor's two extreme workloads (strided loop
//! pattern vs coarse phase pattern). Honors `--jobs N` / `SDO_JOBS` for
//! the table regeneration.

use sdo_bench::{bench_case, quick_results_with, quick_suite, simulate_one};
use sdo_harness::engine::JobPool;
use sdo_harness::experiments::table3_report;
use sdo_harness::Variant;
use sdo_uarch::AttackModel;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let pool = JobPool::from_args(&mut args);

    let results = quick_results_with(&pool);
    println!("\n{}", table3_report(&results));

    let kernels = quick_suite();
    for name in ["stream", "phase_shift"] {
        let w = kernels.iter().find(|w| w.name() == name).expect("kernel exists");
        bench_case(&format!("table3/{name}/Hybrid"), 10, || {
            simulate_one(w, Variant::Hybrid, AttackModel::Spectre)
        });
    }
}
