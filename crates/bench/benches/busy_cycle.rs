//! `busy_cycle` — host throughput of the *busy* cycle path.
//!
//! Quiescence fast-forward (DESIGN.md §11) already makes stalled cycles
//! nearly free, so overall wall time is dominated by cycles where the
//! pipeline actually does work. This bench pins that busy path: the
//! branchy and cache-resident kernels (the two classes where the skip
//! ratio collapses to a few percent) simulated with fast-forward **off**,
//! reported as simulated cycles per host second. Engine-layout changes
//! (the structure-of-arrays core) move exactly this number.
//!
//! Run with `cargo bench --bench busy_cycle`. Honors `--jobs`/`SDO_JOBS`
//! like the other bench mains (measurement itself is always serial so
//! numbers are comparable across machines and runs).

use sdo_bench::bench_case;
use sdo_harness::{RunRequest, SimConfig, Simulator, Variant};
use sdo_mem::CacheLevel;
use sdo_uarch::AttackModel;
use sdo_workloads::kernels::{l1_resident, mix_branchy};
use sdo_workloads::Workload;
use std::time::Instant;

/// The measured kernels: one branchy, one cache-resident — the two
/// classes the skip ratio leaves exposed (`BENCH_suite.json` →
/// `fast_forward.skip_ratio`).
fn cases() -> Vec<(&'static str, Workload)> {
    vec![
        (
            "branchy",
            Workload::new("mix_branchy", mix_branchy(1 << 13, 4000, 4))
                .warmed(0x30_0000, (1 << 13) * 8, CacheLevel::L2),
        ),
        ("cache_resident", Workload::new("l1_resident", l1_resident(8000, 10))),
    ]
}

fn main() {
    println!("busy_cycle: simulated cycles per host second, fast-forward OFF");
    println!("(branchy + cache-resident kernels; the busy-path engine benchmark)\n");
    let sim = Simulator::new(SimConfig::table_i().with_fast_forward(false));
    let variants = [Variant::Unsafe, Variant::SttLd, Variant::Hybrid];

    for (class, w) in cases() {
        let mut class_cycles = 0u64;
        let mut class_secs = 0.0f64;
        for variant in variants {
            // Warmup run (untimed), then a timed measurement.
            let req = RunRequest::workload(&w).variant(variant).attack(AttackModel::Spectre);
            let r = sim.run(&req).expect("kernel completes").into_result();
            assert_eq!(r.skipped_cycles, 0, "busy-cycle bench must not fast-forward");
            let t0 = Instant::now();
            let r = sim.run(&req).expect("kernel completes").into_result();
            let secs = t0.elapsed().as_secs_f64();
            class_cycles += r.cycles;
            class_secs += secs;
            println!(
                "{class:>14} {:14} {:>10} cycles  {:>8.1} ms  {:>10.0} cycles/s",
                format!("{}/{variant}", w.name()),
                r.cycles,
                secs * 1e3,
                r.cycles as f64 / secs
            );
        }
        println!(
            "{class:>14} {:14} {:>10} cycles  {:>8.1} ms  {:>10.0} cycles/s  <- class aggregate\n",
            "TOTAL",
            class_cycles,
            class_secs * 1e3,
            class_cycles as f64 / class_secs
        );
    }

    // Relative cost sanity: the same work timed end-to-end through
    // bench_case, for eyeballing run-to-run spread.
    for (class, w) in cases() {
        let req = RunRequest::workload(&w).variant(Variant::Unsafe).attack(AttackModel::Spectre);
        bench_case(&format!("busy_cycle/{class}/unsafe"), 3, || {
            sim.run(&req).expect("completes").into_result().cycles
        });
    }
}
