//! Bench target for **Figure 6**: prints the normalized-execution-time
//! table (quick-suite sizes), then times representative simulations of
//! each Table II variant with Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use sdo_bench::{quick_results, quick_suite, simulate_one};
use sdo_harness::experiments::fig6_report;
use sdo_harness::Variant;
use sdo_uarch::AttackModel;

fn fig6(c: &mut Criterion) {
    // Regenerate the figure once (quick sizes) so `cargo bench` emits the
    // same rows/series the paper reports.
    let results = quick_results();
    println!("\n{}", fig6_report(&results));

    let kernels = quick_suite();
    let hash = kernels.iter().find(|w| w.name() == "hash_lookup").expect("kernel exists");
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for variant in [Variant::Unsafe, Variant::SttLd, Variant::StaticL2, Variant::Hybrid] {
        group.bench_function(format!("hash_lookup/{variant}"), |b| {
            b.iter(|| simulate_one(hash, variant, AttackModel::Spectre));
        });
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
