//! Bench target for **Figure 6**: prints the normalized-execution-time
//! table (quick-suite sizes), then times representative simulations of
//! each Table II variant. Honors `--jobs N` / `SDO_JOBS` for the figure
//! regeneration.

use sdo_bench::{bench_case, quick_results_with, quick_suite, simulate_one};
use sdo_harness::engine::JobPool;
use sdo_harness::experiments::fig6_report;
use sdo_harness::Variant;
use sdo_uarch::AttackModel;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let pool = JobPool::from_args(&mut args);

    // Regenerate the figure once (quick sizes) so `cargo bench` emits the
    // same rows/series the paper reports.
    let results = quick_results_with(&pool);
    println!("\n{}", fig6_report(&results));

    let kernels = quick_suite();
    let hash = kernels.iter().find(|w| w.name() == "hash_lookup").expect("kernel exists");
    for variant in [Variant::Unsafe, Variant::SttLd, Variant::StaticL2, Variant::Hybrid] {
        bench_case(&format!("fig6/hash_lookup/{variant}"), 10, || {
            simulate_one(hash, variant, AttackModel::Spectre)
        });
    }
}
