//! Bench target for **Figure 6**: prints the normalized-execution-time
//! table (quick-suite sizes), then times representative simulations of
//! each Table II variant. Honors `--jobs N` / `SDO_JOBS` for the figure
//! regeneration.

use sdo_bench::{bench_case, quick_results_with, quick_suite, simulate_one};
use sdo_harness::cli::{BinSpec, CommonArgs, CsvSupport};
use sdo_harness::experiments::fig6_report;
use sdo_harness::Variant;
use sdo_uarch::AttackModel;

const SPEC: BinSpec = BinSpec {
    name: "bench-fig6",
    about: "Figure 6 bench: normalized-execution-time table plus representative variant simulations.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: false,
    seed: false,
    no_skip: false,
    client: false,
    extra_options: &[],
};

fn main() {
    // Cargo's bench runner appends its own flags (e.g. `--bench`); they
    // land in `rest` and are deliberately ignored.
    let args = CommonArgs::parse(&SPEC);
    let pool = args.pool;

    // Regenerate the figure once (quick sizes) so `cargo bench` emits the
    // same rows/series the paper reports.
    let results = quick_results_with(&pool);
    println!("\n{}", fig6_report(&results));

    let kernels = quick_suite();
    let hash = kernels.iter().find(|w| w.name() == "hash_lookup").expect("kernel exists");
    for variant in [Variant::Unsafe, Variant::SttLd, Variant::StaticL2, Variant::Hybrid] {
        bench_case(&format!("fig6/hash_lookup/{variant}"), 10, || {
            simulate_one(hash, variant, AttackModel::Spectre)
        });
    }
}
