//! Bench target for **Figure 7**: prints the overhead breakdown for the
//! SDO variants, then times the breakdown computation pipeline. Honors
//! `--jobs N` / `SDO_JOBS` for the figure regeneration.

use sdo_bench::{bench_case, quick_results_with, quick_suite, simulate_one};
use sdo_harness::cli::{BinSpec, CommonArgs, CsvSupport};
use sdo_harness::experiments::fig7_report;
use sdo_harness::Variant;
use sdo_uarch::AttackModel;

const SPEC: BinSpec = BinSpec {
    name: "bench-fig7",
    about: "Figure 7 bench: SDO overhead breakdown plus its dominant simulations.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: false,
    seed: false,
    no_skip: false,
    client: false,
    extra_options: &[],
};

fn main() {
    // Cargo's bench runner appends its own flags (e.g. `--bench`); they
    // land in `rest` and are deliberately ignored.
    let args = CommonArgs::parse(&SPEC);
    let pool = args.pool;

    let results = quick_results_with(&pool);
    println!("\n{}", fig7_report(&results));

    // The dominant cost in regenerating Figure 7 is the SDO simulations;
    // time one imprecision-heavy and one squash-heavy configuration.
    let kernels = quick_suite();
    let phase = kernels.iter().find(|w| w.name() == "phase_shift").expect("kernel exists");
    for variant in [Variant::StaticL1, Variant::StaticL3] {
        bench_case(&format!("fig7/phase_shift/{variant}"), 10, || {
            simulate_one(phase, variant, AttackModel::Futuristic)
        });
    }
}
