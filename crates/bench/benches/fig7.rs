//! Bench target for **Figure 7**: prints the overhead breakdown for the
//! SDO variants, then times the breakdown computation pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use sdo_bench::{quick_results, quick_suite, simulate_one};
use sdo_harness::experiments::fig7_report;
use sdo_harness::Variant;
use sdo_uarch::AttackModel;

fn fig7(c: &mut Criterion) {
    let results = quick_results();
    println!("\n{}", fig7_report(&results));

    // The dominant cost in regenerating Figure 7 is the SDO simulations;
    // time one imprecision-heavy and one squash-heavy configuration.
    let kernels = quick_suite();
    let phase = kernels.iter().find(|w| w.name() == "phase_shift").expect("kernel exists");
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for variant in [Variant::StaticL1, Variant::StaticL3] {
        group.bench_function(format!("phase_shift/{variant}"), |b| {
            b.iter(|| simulate_one(phase, variant, AttackModel::Futuristic));
        });
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
