//! Ablation benches for the design choices DESIGN.md §6 calls out:
//!
//! 1. **early forwarding** from the wait buffer on/off (Section V-C2),
//! 2. **hybrid components**: greedy-only vs loop-only vs the hybrid
//!    chooser (Section V-D),
//! 3. **greedy history window** *m* sweep (predictor-level),
//! 4. **DRAM predictions**: allow (revert to delay) vs clamp to L3
//!    (force a fail + squash) (Section VI-B).
//!
//! Each ablation prints its comparison table, then the main times one
//! representative configuration. The pairwise ablation runs honor
//! `--jobs N` / `SDO_JOBS` via the shared worker pool.

use sdo_bench::{bench_case, quick_suite};
use sdo_core::predictor::{GreedyPredictor, LocationPredictor};
use sdo_harness::cli::{BinSpec, CommonArgs, CsvSupport};
use sdo_harness::engine::JobPool;
use sdo_harness::SimConfig;
use sdo_mem::{CacheLevel, MemorySystem};
use sdo_uarch::{AttackModel, Core, PredictorKind, Protection, SdoConfig, SecurityConfig};
use sdo_workloads::kernels::Workload;

/// Runs one workload under a custom SDO configuration (beyond Table II).
fn run_custom(w: &Workload, sdo: SdoConfig, attack: AttackModel) -> u64 {
    let cfg = SimConfig::table_i();
    let mut mem = MemorySystem::new(cfg.mem, 1);
    mem.load_image(w.program().data());
    for &(start, bytes, level) in w.prewarm_ranges() {
        mem.prewarm(0, start, bytes, level);
    }
    let sec = SecurityConfig { protection: Protection::Sdo(sdo), attack };
    let mut core = Core::new(0, cfg.core, sec, w.program().clone());
    core.run(&mut mem, cfg.max_cycles).expect("kernel completes");
    core.now()
}

fn ablation_early_forward(kernels: &[Workload], pool: &JobPool) {
    println!("\nABLATION: early forwarding from the wait buffer (Section V-C2)");
    println!("{:14} {:>12} {:>12} {:>8}", "kernel", "early-fwd on", "off", "delta");
    let names = ["hash_lookup", "phase_shift", "stream"];
    let jobs: Vec<(&Workload, bool)> = names
        .iter()
        .map(|name| kernels.iter().find(|w| w.name() == *name).expect("kernel"))
        .flat_map(|w| [(w, true), (w, false)])
        .collect();
    let cycles = pool.run(&jobs, |_, &(w, early)| {
        let mut sdo = SdoConfig::with_predictor(PredictorKind::Static(CacheLevel::L3));
        sdo.early_forward = early;
        run_custom(w, sdo, AttackModel::Spectre)
    });
    for (pair, name) in cycles.chunks(2).zip(names) {
        let (on, off) = (pair[0], pair[1]);
        println!(
            "{:14} {:>12} {:>12} {:>7.1}%",
            name,
            on,
            off,
            100.0 * (off as f64 - on as f64) / on as f64
        );
    }
}

fn ablation_hybrid_parts(kernels: &[Workload], pool: &JobPool) {
    println!("\nABLATION: hybrid predictor components (Section V-D)");
    println!("{:14} {:>10} {:>10} {:>10} {:>10}", "kernel", "greedy", "loop", "hybrid", "pattern");
    const KINDS: [PredictorKind; 4] =
        [PredictorKind::Greedy, PredictorKind::Loop, PredictorKind::Hybrid, PredictorKind::Pattern];
    let names = ["stream", "phase_shift", "hash_lookup"];
    let jobs: Vec<(&Workload, PredictorKind)> = names
        .iter()
        .map(|name| kernels.iter().find(|w| w.name() == *name).expect("kernel"))
        .flat_map(|w| KINDS.map(|kind| (w, kind)))
        .collect();
    let cycles = pool.run(&jobs, |_, &(w, kind)| {
        run_custom(w, SdoConfig::with_predictor(kind), AttackModel::Spectre)
    });
    for (row, name) in cycles.chunks(KINDS.len()).zip(names) {
        let mut line = format!("{name:14}");
        for c in row {
            line.push_str(&format!(" {c:>10}"));
        }
        println!("{line}");
    }
}

fn ablation_greedy_window() {
    println!("\nABLATION: greedy history window m (predictor-level)");
    // Strided pattern: 7×L1 then one L2, the loop predictor's home turf —
    // larger windows make greedy more accurate but less precise.
    println!("{:>4} {:>10} {:>10}", "m", "precision", "accuracy");
    for m in [1usize, 2, 4, 8, 16] {
        let mut p = GreedyPredictor::new(512, m);
        let pc = 0x40;
        let (mut precise, mut accurate, mut total) = (0u32, 0u32, 0u32);
        for i in 0..4000u32 {
            let actual = if i % 8 == 7 { CacheLevel::L2 } else { CacheLevel::L1 };
            let pred = p.predict(pc, actual);
            total += 1;
            precise += u32::from(pred == actual);
            accurate += u32::from(pred.depth() >= actual.depth());
            p.update(pc, actual);
        }
        println!(
            "{m:>4} {:>9.1}% {:>9.1}%",
            100.0 * f64::from(precise) / f64::from(total),
            100.0 * f64::from(accurate) / f64::from(total)
        );
    }
}

fn ablation_dram_prediction(kernels: &[Workload], pool: &JobPool) {
    println!("\nABLATION: DRAM predictions — delay (paper) vs clamp-to-L3 (Section VI-B)");
    println!("{:14} {:>12} {:>12}", "kernel", "delay", "clamp-to-L3");
    let names = ["hash_lookup", "ptr_chase"];
    // Strip the warm-start hints: DRAM-resident data is the point here.
    let cold: Vec<Workload> = names
        .iter()
        .map(|name| {
            kernels
                .iter()
                .find(|w| w.name() == *name)
                .map(|w| Workload::new(w.name(), w.program().clone()))
                .expect("kernel")
        })
        .collect();
    let jobs: Vec<(&Workload, bool)> =
        cold.iter().flat_map(|w| [(w, true), (w, false)]).collect();
    let cycles = pool.run(&jobs, |_, &(w, allow)| {
        let mut sdo = SdoConfig::with_predictor(PredictorKind::Hybrid);
        sdo.allow_dram_prediction = allow;
        run_custom(w, sdo, AttackModel::Futuristic)
    });
    for (pair, name) in cycles.chunks(2).zip(names) {
        println!("{name:14} {:>12} {:>12}", pair[0], pair[1]);
    }
}

const SPEC: BinSpec = BinSpec {
    name: "bench-ablations",
    about: "Ablation benches for the DESIGN.md §6 design choices.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: false,
    seed: false,
    no_skip: false,
    client: false,
    extra_options: &[],
};

fn main() {
    // Cargo's bench runner appends its own flags (e.g. `--bench`); they
    // land in `rest` and are deliberately ignored.
    let args = CommonArgs::parse(&SPEC);
    let pool = args.pool;
    let kernels = quick_suite();
    ablation_early_forward(&kernels, &pool);
    ablation_hybrid_parts(&kernels, &pool);
    ablation_greedy_window();
    ablation_dram_prediction(&kernels, &pool);

    let hash = kernels.iter().find(|w| w.name() == "hash_lookup").expect("kernel");
    bench_case("ablations/hash_lookup/hybrid-no-early-forward", 10, || {
        let mut sdo = SdoConfig::with_predictor(PredictorKind::Hybrid);
        sdo.early_forward = false;
        run_custom(hash, sdo, AttackModel::Spectre)
    });
}
