//! # sdo-bench — benchmark support for the SDO reproduction
//!
//! Shared helpers for the Criterion bench targets. Each bench target
//! regenerates one of the paper's evaluation artifacts (the same rows and
//! series, printed before measurement) and then times representative
//! simulations with Criterion:
//!
//! * `fig6` — normalized execution time per kernel/variant,
//! * `fig7` — overhead breakdown,
//! * `fig8` — squashes vs execution time,
//! * `table3` — predictor precision/accuracy,
//! * `ablations` — early-forwarding, hybrid components, greedy window and
//!   DRAM-prediction design-choice sweeps (DESIGN.md §6).
//!
//! Bench runs use [`quick_suite`] — the same kernels at reduced trip
//! counts — so `cargo bench` completes in minutes; the `sdo-harness`
//! binaries run the full-size versions.

#![warn(missing_docs)]

use sdo_harness::sim::RunResult;
use sdo_harness::{SimConfig, Simulator, Variant};
use sdo_mem::CacheLevel;
use sdo_uarch::AttackModel;
use sdo_workloads::kernels::{
    fp_subnormal, hash_lookup, l1_resident, matmul_blocked, mix_branchy, phase_shift, ptr_chase,
    stencil, stream, stride, Workload,
};

/// The evaluation suite at reduced trip counts (same kernels, same
/// warm-start hints, faster runs).
#[must_use]
pub fn quick_suite() -> Vec<Workload> {
    vec![
        Workload::new("ptr_chase", ptr_chase(1 << 18, 800, 1)).warmed(0x10_0000, 1 << 18, CacheLevel::L3),
        Workload::new("stream", stream(2048, 1, 2)).warmed(0x20_0000, 2048 * 8, CacheLevel::L3),
        Workload::new("stride", stride(512, 3, 2, 3)).warmed(0x40_0000, 512 * 64, CacheLevel::L3),
        Workload::new("mix_branchy", mix_branchy(1 << 13, 800, 4))
            .warmed(0x30_0000, (1 << 13) * 8, CacheLevel::L2),
        Workload::new("hash_lookup", hash_lookup(1 << 14, 800, 5))
            .warmed(0x80_0000, (1 << 14) * 8, CacheLevel::L3),
        Workload::new("stencil", stencil(1024, 2, 6)).warmed(0x50_0000, 1024 * 8 + 16, CacheLevel::L2),
        Workload::new("matmul_blocked", matmul_blocked(10, 7)),
        Workload::new("fp_subnormal", fp_subnormal(800, 16, 8)),
        Workload::new("phase_shift", phase_shift(200, 3, 9))
            .warmed(0xB0_0000, (1 << 16) * 8, CacheLevel::L3),
        Workload::new("l1_resident", l1_resident(1500, 10)),
    ]
}

/// Runs the quick suite over all variants/attacks, mirroring
/// `sdo_harness::experiments::run_suite` but on [`quick_suite`].
#[must_use]
pub fn quick_results() -> sdo_harness::experiments::SuiteResults {
    let sim = Simulator::new(SimConfig::table_i());
    let kernels = quick_suite();
    let workloads: Vec<String> = kernels.iter().map(|w| w.name().to_string()).collect();
    let mut runs = Vec::new();
    for attack in AttackModel::ALL {
        let mut per_workload: Vec<Vec<RunResult>> = Vec::new();
        for w in &kernels {
            per_workload.push(
                sim.run_workload_all_variants(w, attack).expect("quick suite completes"),
            );
        }
        runs.push((attack, per_workload));
    }
    sdo_harness::experiments::SuiteResults { runs, workloads }
}

/// Simulates one quick-suite kernel under one variant (the unit of work
/// Criterion times).
#[must_use]
pub fn simulate_one(workload: &Workload, variant: Variant, attack: AttackModel) -> u64 {
    let sim = Simulator::new(SimConfig::table_i());
    sim.run_workload(workload, variant, attack).expect("kernel completes").cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_complete_and_fast() {
        let q = quick_suite();
        assert_eq!(q.len(), 10);
        // A representative run stays well under the full-size cost.
        let cycles = simulate_one(&q[9], Variant::Unsafe, AttackModel::Spectre);
        assert!(cycles > 0);
    }
}
