//! # sdo-bench — benchmark support for the SDO reproduction
//!
//! Shared helpers for the bench targets (plain `harness = false` mains
//! timed with [`std::time::Instant`] — the workspace builds offline, so
//! no external bench framework). Each bench target regenerates one of
//! the paper's evaluation artifacts (the same rows and series, printed
//! before measurement) and then times representative simulations:
//!
//! * `fig6` — normalized execution time per kernel/variant,
//! * `fig7` — overhead breakdown,
//! * `fig8` — squashes vs execution time,
//! * `table3` — predictor precision/accuracy,
//! * `ablations` — early-forwarding, hybrid components, greedy window and
//!   DRAM-prediction design-choice sweeps (DESIGN.md §6).
//!
//! Bench runs use [`quick_suite`] — the same kernels at reduced trip
//! counts — so `cargo bench` completes in minutes; the `sdo-harness`
//! binaries run the full-size versions. All bench mains honor `--jobs N`
//! / `SDO_JOBS` for the artifact-regeneration phase.

#![warn(missing_docs)]

use sdo_harness::engine::JobPool;
use sdo_harness::{Runner, RunRequest, SimConfig, Variant};
use sdo_mem::CacheLevel;
use sdo_uarch::AttackModel;
use sdo_workloads::kernels::{
    fp_subnormal, hash_lookup, l1_resident, matmul_blocked, mix_branchy, phase_shift, ptr_chase,
    stencil, stream, stride, Workload,
};
use std::time::Instant;

/// The evaluation suite at reduced trip counts (same kernels, same
/// warm-start hints, faster runs).
#[must_use]
pub fn quick_suite() -> Vec<Workload> {
    vec![
        Workload::new("ptr_chase", ptr_chase(1 << 18, 800, 1)).warmed(0x10_0000, 1 << 18, CacheLevel::L3),
        Workload::new("stream", stream(2048, 1, 2)).warmed(0x20_0000, 2048 * 8, CacheLevel::L3),
        Workload::new("stride", stride(512, 3, 2, 3)).warmed(0x40_0000, 512 * 64, CacheLevel::L3),
        Workload::new("mix_branchy", mix_branchy(1 << 13, 800, 4))
            .warmed(0x30_0000, (1 << 13) * 8, CacheLevel::L2),
        Workload::new("hash_lookup", hash_lookup(1 << 14, 800, 5))
            .warmed(0x80_0000, (1 << 14) * 8, CacheLevel::L3),
        Workload::new("stencil", stencil(1024, 2, 6)).warmed(0x50_0000, 1024 * 8 + 16, CacheLevel::L2),
        Workload::new("matmul_blocked", matmul_blocked(10, 7)),
        Workload::new("fp_subnormal", fp_subnormal(800, 16, 8)),
        Workload::new("phase_shift", phase_shift(200, 3, 9))
            .warmed(0xB0_0000, (1 << 16) * 8, CacheLevel::L3),
        Workload::new("l1_resident", l1_resident(1500, 10)),
    ]
}

/// Runs the quick suite over all variants/attacks, mirroring
/// `sdo_harness::experiments::run_suite` but on [`quick_suite`].
#[must_use]
pub fn quick_results() -> sdo_harness::experiments::SuiteResults {
    quick_results_with(&JobPool::serial())
}

/// [`quick_results`] with the simulations fanned out through `pool`.
/// Byte-identical to the serial path regardless of worker count.
#[must_use]
pub fn quick_results_with(pool: &JobPool) -> sdo_harness::experiments::SuiteResults {
    let runner = Runner::local(SimConfig::table_i());
    sdo_harness::experiments::run_suite_on(&runner, &quick_suite(), pool)
        .expect("quick suite completes")
}

/// Simulates one quick-suite kernel under one variant (the unit of work
/// the bench mains time).
#[must_use]
pub fn simulate_one(workload: &Workload, variant: Variant, attack: AttackModel) -> u64 {
    let runner = Runner::local(SimConfig::table_i());
    runner
        .run_one(&RunRequest::workload(workload).variant(variant).attack(attack))
        .expect("kernel completes")
        .cycles
}

/// Times `f` for `samples` iterations (after one untimed warmup run) and
/// prints a `name: mean ± spread` line, mirroring the shape of the old
/// Criterion output closely enough for eyeballing regressions.
pub fn bench_case<T>(name: &str, samples: u32, mut f: impl FnMut() -> T) {
    let samples = samples.max(1);
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    let mean = times.iter().sum::<f64>() / f64::from(samples);
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{name:44} {:>10.3} ms  [{:.3} .. {:.3}] x{samples}",
        mean * 1e3,
        min * 1e3,
        max * 1e3
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_complete_and_fast() {
        let q = quick_suite();
        assert_eq!(q.len(), 10);
        // A representative run stays well under the full-size cost.
        let cycles = simulate_one(&q[9], Variant::Unsafe, AttackModel::Spectre);
        assert!(cycles > 0);
    }
}
