//! # sdo-rv32 — an RV32I+M frontend for the SDO simulator
//!
//! This crate lets the simulator run *real compiled programs*: raw
//! RV32I+M machine code is decoded, loaded and lowered onto the SDO
//! mini-ISA, then executed cycle-exactly by `sdo-uarch` under any of
//! the Unsafe/STT/SDO protection variants. It provides:
//!
//! * [`mod@decode`] — an RV32I+M decoder where every unsupported encoding
//!   is a typed [`DecodeError`] carrying pc + raw word (never a panic),
//! * [`loader`] — flat-binary and minimal static ELF32 loaders
//!   producing an [`Rv32Image`],
//! * [`lower`] — a two-pass translator from an image to an
//!   `sdo_isa::Program`, keeping every register sign-extended from 32
//!   to 64 bits and resolving `jalr` through a translation table in
//!   data memory (see [`lower::TABLE_BASE`]),
//! * [`corpus`] — an in-tree corpus of compiled C benchmark kernels
//!   checked in as raw instruction words with pinned expected outputs,
//!   plus a Spectre-v1 gadget with an annotated secret byte for the
//!   `sdo-verify` secret-swap checker.
//!
//! The decode/lowering rules, register mapping and the unsupported
//! subset are documented in `DESIGN.md` §14.
//!
//! ## Example
//!
//! ```rust
//! use sdo_isa::Interpreter;
//!
//! // Run a corpus kernel through the reference interpreter.
//! let entry = &sdo_rv32::corpus::CORPUS[0];
//! let program = entry.program();
//! let mut interp = Interpreter::new(&program);
//! interp.run(10_000_000).expect("corpus kernel halts");
//! assert_eq!(sdo_rv32::corpus::read_result(&interp), entry.expected_result);
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod decode;
pub mod enc;
pub mod loader;
pub mod lower;

pub use corpus::CorpusEntry;
pub use decode::{decode, DecodeError, Rv32Inst, Unsupported};
pub use loader::{load_elf32, load_flat, to_elf32, LoadError, Rv32Image};
pub use lower::{
    translate, translate_with_provenance, CallSite, LowerError, LowerErrorKind, Provenance,
    TranslateError, TABLE_BASE,
};
