//! RV32I+M instruction decoder.
//!
//! [`decode`] turns a raw little-endian 32-bit instruction word into a
//! [`Rv32Inst`]. Every encoding outside the supported RV32I+M subset is
//! a *typed* [`DecodeError`] carrying the faulting pc and raw word —
//! the decoder never panics, whatever the input bits (pinned by the
//! every-word-prefix fuzz tests in `tests/fuzz.rs`).
//!
//! The decoder is deliberately written without wildcard match arms over
//! opcode/funct fields: unknown encodings flow through named-binding
//! catch-alls that construct the error, so the lint ratchet
//! (`decoder-wildcard` in `crates/harness/tests/lint.rs`) can hold the
//! wildcard count at zero.

use sdo_isa::BranchCond;

/// Why an instruction word is outside the supported RV32I+M subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unsupported {
    /// The major opcode (bits 6:0) is not one we implement.
    Opcode {
        /// The 7-bit major opcode field.
        opcode: u8,
    },
    /// The opcode is known but the funct3/funct7 minor selector is not.
    Funct {
        /// The 7-bit major opcode field.
        opcode: u8,
        /// The 3-bit funct3 field.
        funct3: u8,
        /// The 7-bit funct7 field (0 for formats without one).
        funct7: u8,
    },
    /// `ecall` — there is no environment to call into.
    Ecall,
    /// A Zicsr instruction (`csrrw`/`csrrs`/... — funct3 selects which).
    Csr {
        /// The 3-bit funct3 field naming the CSR op.
        funct3: u8,
    },
    /// A MISC-MEM encoding other than a plain `fence` (e.g. `fence.i`).
    Fence {
        /// The 3-bit funct3 field.
        funct3: u8,
    },
}

/// A typed decode failure: the faulting byte pc, the raw word, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte address of the instruction.
    pub pc: u32,
    /// The raw little-endian instruction word.
    pub word: u32,
    /// The classified reason.
    pub kind: Unsupported,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pc {:#010x}: word {:#010x}: ", self.pc, self.word)?;
        match self.kind {
            Unsupported::Opcode { opcode } => write!(f, "unsupported opcode {opcode:#04x}"),
            Unsupported::Funct { opcode, funct3, funct7 } => write!(
                f,
                "unsupported funct3={funct3}/funct7={funct7:#04x} for opcode {opcode:#04x}"
            ),
            Unsupported::Ecall => write!(f, "ecall has no environment here"),
            Unsupported::Csr { funct3 } => write!(f, "CSR instruction (funct3={funct3})"),
            Unsupported::Fence { funct3 } => write!(f, "non-plain fence (funct3={funct3})"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// RV32I load flavour (funct3 of the LOAD opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    /// `lb`: load byte, sign-extend.
    Lb,
    /// `lh`: load halfword, sign-extend.
    Lh,
    /// `lw`: load word.
    Lw,
    /// `lbu`: load byte, zero-extend.
    Lbu,
    /// `lhu`: load halfword, zero-extend.
    Lhu,
}

/// RV32I store flavour (funct3 of the STORE opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// `sb`: store low byte.
    Sb,
    /// `sh`: store low halfword.
    Sh,
    /// `sw`: store word.
    Sw,
}

/// Register-register ALU op (OP opcode, funct3 × funct7), including the
/// M extension (funct7 = 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the RV32 mnemonics themselves
pub enum OpKind {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

/// Register-immediate ALU op (OP-IMM opcode, funct3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the RV32 mnemonics themselves
pub enum OpImmKind {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
}

/// One decoded RV32I+M instruction. Registers are the raw 5-bit indices
/// (`x0`..`x31`); immediates and offsets are fully sign-extended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rv32Inst {
    /// `lui rd, imm`: `imm` holds the already-shifted 32-bit value.
    Lui {
        /// Destination register.
        rd: u8,
        /// The U-immediate, already shifted left by 12.
        imm: i32,
    },
    /// `auipc rd, imm`: `imm` holds the already-shifted 32-bit value.
    Auipc {
        /// Destination register.
        rd: u8,
        /// The U-immediate, already shifted left by 12.
        imm: i32,
    },
    /// `jal rd, offset` (offset relative to this instruction's pc).
    Jal {
        /// Link register (x0 for a plain jump).
        rd: u8,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// `jalr rd, offset(rs1)`.
    Jalr {
        /// Link register (x0 for a plain indirect jump).
        rd: u8,
        /// Base register holding the target address.
        rs1: u8,
        /// Signed byte offset added to `rs1`.
        offset: i32,
    },
    /// A conditional branch (`beq`/`bne`/`blt`/`bge`/`bltu`/`bgeu`).
    Branch {
        /// The comparison, reused directly from the SDO mini-ISA.
        cond: BranchCond,
        /// Left comparison operand.
        rs1: u8,
        /// Right comparison operand.
        rs2: u8,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// A load (`lb`/`lh`/`lw`/`lbu`/`lhu`).
    Load {
        /// Width and extension flavour.
        kind: LoadKind,
        /// Destination register.
        rd: u8,
        /// Base address register.
        rs1: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// A store (`sb`/`sh`/`sw`).
    Store {
        /// Width flavour.
        kind: StoreKind,
        /// Base address register.
        rs1: u8,
        /// Data register.
        rs2: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// A register-immediate ALU op.
    OpImm {
        /// Which op.
        kind: OpImmKind,
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Sign-extended 12-bit immediate (shift amount for
        /// `slli`/`srli`/`srai`).
        imm: i32,
    },
    /// A register-register ALU op (including M-extension multiply/divide).
    Op {
        /// Which op.
        kind: OpKind,
        /// Destination register.
        rd: u8,
        /// Left source register.
        rs1: u8,
        /// Right source register.
        rs2: u8,
    },
    /// A plain `fence` (a no-op on this single-hart model).
    Fence,
    /// `ebreak` — the corpus termination convention (lowers to `halt`).
    Ebreak,
}

// ---------------------------------------------------------------------
// Field extraction
// ---------------------------------------------------------------------

fn rd(word: u32) -> u8 {
    ((word >> 7) & 0x1f) as u8
}

fn rs1(word: u32) -> u8 {
    ((word >> 15) & 0x1f) as u8
}

fn rs2(word: u32) -> u8 {
    ((word >> 20) & 0x1f) as u8
}

fn funct3(word: u32) -> u8 {
    ((word >> 12) & 0x7) as u8
}

fn funct7(word: u32) -> u8 {
    ((word >> 25) & 0x7f) as u8
}

/// I-type immediate: bits 31:20, sign-extended.
fn imm_i(word: u32) -> i32 {
    (word as i32) >> 20
}

/// S-type immediate: bits 31:25 ++ 11:7, sign-extended.
fn imm_s(word: u32) -> i32 {
    (((word & 0xfe00_0000) as i32) >> 20) | (((word >> 7) & 0x1f) as i32)
}

/// B-type immediate: bit 31 ++ bit 7 ++ bits 30:25 ++ bits 11:8 ++ 0.
fn imm_b(word: u32) -> i32 {
    (((word & 0x8000_0000) as i32) >> 19)
        | (((word >> 7) & 0x1) as i32) << 11
        | (((word >> 25) & 0x3f) as i32) << 5
        | (((word >> 8) & 0xf) as i32) << 1
}

/// U-type immediate: bits 31:12, already in position.
fn imm_u(word: u32) -> i32 {
    (word & 0xffff_f000) as i32
}

/// J-type immediate: bit 31 ++ bits 19:12 ++ bit 20 ++ bits 30:21 ++ 0.
fn imm_j(word: u32) -> i32 {
    (((word & 0x8000_0000) as i32) >> 11)
        | ((word & 0x000f_f000) as i32)
        | (((word >> 20) & 0x1) as i32) << 11
        | (((word >> 21) & 0x3ff) as i32) << 1
}

// ---------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------

/// Decodes one little-endian RV32 instruction word fetched from `pc`.
///
/// # Errors
///
/// Returns a [`DecodeError`] (carrying `pc` and `word`) for any
/// encoding outside the supported RV32I+M subset — never panics.
pub fn decode(pc: u32, word: u32) -> Result<Rv32Inst, DecodeError> {
    let opcode = (word & 0x7f) as u8;
    let err = |kind| Err(DecodeError { pc, word, kind });
    match opcode {
        0x37 => Ok(Rv32Inst::Lui { rd: rd(word), imm: imm_u(word) }),
        0x17 => Ok(Rv32Inst::Auipc { rd: rd(word), imm: imm_u(word) }),
        0x6f => Ok(Rv32Inst::Jal { rd: rd(word), offset: imm_j(word) }),
        0x67 => match funct3(word) {
            0 => Ok(Rv32Inst::Jalr { rd: rd(word), rs1: rs1(word), offset: imm_i(word) }),
            f3 => err(Unsupported::Funct { opcode, funct3: f3, funct7: 0 }),
        },
        0x63 => {
            let cond = match funct3(word) {
                0 => BranchCond::Eq,
                1 => BranchCond::Ne,
                4 => BranchCond::Lt,
                5 => BranchCond::Ge,
                6 => BranchCond::LtU,
                7 => BranchCond::GeU,
                f3 => {
                    return err(Unsupported::Funct { opcode, funct3: f3, funct7: 0 });
                }
            };
            Ok(Rv32Inst::Branch { cond, rs1: rs1(word), rs2: rs2(word), offset: imm_b(word) })
        }
        0x03 => {
            let kind = match funct3(word) {
                0 => LoadKind::Lb,
                1 => LoadKind::Lh,
                2 => LoadKind::Lw,
                4 => LoadKind::Lbu,
                5 => LoadKind::Lhu,
                f3 => {
                    return err(Unsupported::Funct { opcode, funct3: f3, funct7: 0 });
                }
            };
            Ok(Rv32Inst::Load { kind, rd: rd(word), rs1: rs1(word), offset: imm_i(word) })
        }
        0x23 => {
            let kind = match funct3(word) {
                0 => StoreKind::Sb,
                1 => StoreKind::Sh,
                2 => StoreKind::Sw,
                f3 => {
                    return err(Unsupported::Funct { opcode, funct3: f3, funct7: 0 });
                }
            };
            Ok(Rv32Inst::Store { kind, rs1: rs1(word), rs2: rs2(word), offset: imm_s(word) })
        }
        0x13 => {
            // For non-shift ops funct7 is part of the immediate; only
            // the shifts constrain it.
            let (kind, imm) = match funct3(word) {
                0 => (OpImmKind::Addi, imm_i(word)),
                2 => (OpImmKind::Slti, imm_i(word)),
                3 => (OpImmKind::Sltiu, imm_i(word)),
                4 => (OpImmKind::Xori, imm_i(word)),
                6 => (OpImmKind::Ori, imm_i(word)),
                7 => (OpImmKind::Andi, imm_i(word)),
                1 => match funct7(word) {
                    0x00 => (OpImmKind::Slli, imm_i(word) & 0x1f),
                    f7 => {
                        return err(Unsupported::Funct { opcode, funct3: 1, funct7: f7 });
                    }
                },
                5 => match funct7(word) {
                    0x00 => (OpImmKind::Srli, imm_i(word) & 0x1f),
                    0x20 => (OpImmKind::Srai, imm_i(word) & 0x1f),
                    f7 => {
                        return err(Unsupported::Funct { opcode, funct3: 5, funct7: f7 });
                    }
                },
                f3 => {
                    return err(Unsupported::Funct { opcode, funct3: f3, funct7: 0 });
                }
            };
            Ok(Rv32Inst::OpImm { kind, rd: rd(word), rs1: rs1(word), imm })
        }
        0x33 => {
            let kind = match (funct3(word), funct7(word)) {
                (0, 0x00) => OpKind::Add,
                (0, 0x20) => OpKind::Sub,
                (1, 0x00) => OpKind::Sll,
                (2, 0x00) => OpKind::Slt,
                (3, 0x00) => OpKind::Sltu,
                (4, 0x00) => OpKind::Xor,
                (5, 0x00) => OpKind::Srl,
                (5, 0x20) => OpKind::Sra,
                (6, 0x00) => OpKind::Or,
                (7, 0x00) => OpKind::And,
                (0, 0x01) => OpKind::Mul,
                (1, 0x01) => OpKind::Mulh,
                (2, 0x01) => OpKind::Mulhsu,
                (3, 0x01) => OpKind::Mulhu,
                (4, 0x01) => OpKind::Div,
                (5, 0x01) => OpKind::Divu,
                (6, 0x01) => OpKind::Rem,
                (7, 0x01) => OpKind::Remu,
                (f3, f7) => {
                    return err(Unsupported::Funct { opcode, funct3: f3, funct7: f7 });
                }
            };
            Ok(Rv32Inst::Op { kind, rd: rd(word), rs1: rs1(word), rs2: rs2(word) })
        }
        0x0f => match funct3(word) {
            0 => Ok(Rv32Inst::Fence),
            f3 => err(Unsupported::Fence { funct3: f3 }),
        },
        0x73 => match word {
            0x0010_0073 => Ok(Rv32Inst::Ebreak),
            0x0000_0073 => err(Unsupported::Ecall),
            w => match funct3(w) {
                0 => err(Unsupported::Funct { opcode, funct3: 0, funct7: funct7(w) }),
                f3 => err(Unsupported::Csr { funct3: f3 }),
            },
        },
        other => err(Unsupported::Opcode { opcode: other }),
    }
}
