//! The in-tree RV32 benchmark corpus: real compiled C kernels checked
//! in as raw RV32I+M instruction words, with pinned expected outputs.
//!
//! Each entry is a complete bare-metal program following one
//! convention: execution starts at `_start` (= [`TEXT_BASE`]), which
//! sets up the stack at [`STACK_TOP`], calls `main` and executes
//! `ebreak` to halt; `main` stores the kernel's 32-bit result at
//! [`RESULT_ADDR`]. The C source each kernel was compiled from is
//! quoted in the `gen` module alongside the assembly that pins the
//! checked-in words (the `corpus_words_match_generators` test keeps
//! the two in lockstep). Programs avoid `x3`/`x4`, which the lowering
//! reserves as scratch (`-ffixed-x3 -ffixed-x4` in compiler terms).
//!
//! The fifth entry, `rv32_gadget`, is a Spectre-v1 victim with an
//! annotated secret byte ([`CorpusEntry::secret_addr`]) used by the
//! `sdo-verify` secret-swap checker: the secret is never read
//! architecturally, so the architectural results are
//! secret-independent, but the mis-speculated window transmits it
//! through the cache unless the variant closes that channel.

use crate::loader::Rv32Image;
use crate::lower::translate;
use sdo_isa::Program;

/// Byte address of `_start` — the base of every corpus text segment.
pub const TEXT_BASE: u32 = 0x1000;

/// Where each kernel stores its 32-bit result.
pub const RESULT_ADDR: u32 = 0x2_0000;

/// Initial stack pointer (grows down).
pub const STACK_TOP: u32 = 0x8_0000;

/// One checked-in corpus program.
pub struct CorpusEntry {
    /// Kernel name (doubles as the workload name in the harness).
    pub name: &'static str,
    /// Behavioural class, using the `sdo-workloads` class vocabulary.
    pub class: &'static str,
    /// The raw RV32I+M instruction words, in address order from
    /// [`TEXT_BASE`].
    pub words: &'static [u32],
    /// Builds the initialised data segments.
    pub data: fn() -> Vec<(u32, Vec<u8>)>,
    /// The pinned 32-bit value at [`RESULT_ADDR`] after a run.
    pub expected_result: u32,
    /// Byte address of the secret for gadget entries (`None` for the
    /// plain benchmarks). The byte is *outside* the initialised data
    /// and never read architecturally.
    pub secret_addr: Option<u32>,
}

impl CorpusEntry {
    /// The entry as a loaded [`Rv32Image`].
    #[must_use]
    pub fn image(&self) -> Rv32Image {
        Rv32Image {
            entry: TEXT_BASE,
            text_base: TEXT_BASE,
            text: self.words.to_vec(),
            data: (self.data)(),
        }
    }

    /// Translates the entry to a mini-ISA program (secret byte 0).
    #[must_use]
    pub fn program(&self) -> Program {
        self.with_secret(0)
    }

    /// Translates the entry with the secret byte set to `secret`
    /// (identical to [`CorpusEntry::program`] for entries without a
    /// secret).
    #[must_use]
    pub fn with_secret(&self, secret: u8) -> Program {
        let mut program =
            translate(&self.image(), self.name).expect("corpus entries are pinned translatable");
        if let Some(addr) = self.secret_addr {
            program.data_mut().set_byte(u64::from(addr), secret);
        }
        program
    }
}

/// Reads the 32-bit result a corpus kernel stored at [`RESULT_ADDR`].
#[must_use]
pub fn read_result(interp: &sdo_isa::Interpreter<'_>) -> u32 {
    let a = u64::from(RESULT_ADDR);
    u32::from_le_bytes([
        interp.mem_byte(a),
        interp.mem_byte(a + 1),
        interp.mem_byte(a + 2),
        interp.mem_byte(a + 3),
    ])
}

// ---------------------------------------------------------------------
// Data segments
// ---------------------------------------------------------------------

/// crc32: 96 message bytes at 0x10000.
fn crc32_data() -> Vec<(u32, Vec<u8>)> {
    vec![(0x1_0000, (0..96u32).map(|i| ((i * 31 + 7) & 0xff) as u8).collect())]
}

fn le_words(values: &[i32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// matmul: two 8×8 i32 matrices at 0x10100 (A) and 0x10200 (B); the
/// product is written to zero-initialised memory at 0x10300.
fn matmul_data() -> Vec<(u32, Vec<u8>)> {
    let a: Vec<i32> = (0..64).map(|t| (t * 7 + 3) % 23 - 11).collect();
    let b: Vec<i32> = (0..64).map(|t| (t * 5 + 1) % 19 - 9).collect();
    vec![(0x1_0100, le_words(&a)), (0x1_0200, le_words(&b))]
}

/// sort: 48 pseudo-random i32 (negatives included) at 0x10400.
fn sort_data() -> Vec<(u32, Vec<u8>)> {
    let mut x: u32 = 0x1234;
    let v: Vec<i32> = (0..48)
        .map(|_| {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            i32::from((x >> 16) as i16)
        })
        .collect();
    vec![(0x1_0400, le_words(&v))]
}

/// strsearch: a 160-byte haystack over {a,b,c} at 0x10600 and the
/// 4-byte needle "abca" at 0x106C0.
fn strsearch_data() -> Vec<(u32, Vec<u8>)> {
    let hay: Vec<u8> = (0..160usize).map(|i| b"abcab"[i % 5]).collect();
    vec![(0x1_0600, hay), (0x1_06c0, b"abca".to_vec())]
}

/// gadget: `array1[16]` = 0..15 at 0x10700; the secret byte lives at
/// 0x10740 (= `array1 + 64`, the out-of-bounds index the victim is
/// coaxed into) and is *not* part of the initialised data.
fn gadget_data() -> Vec<(u32, Vec<u8>)> {
    vec![(0x1_0700, (0..16u8).collect())]
}

/// Out-of-bounds byte the gadget's mis-speculated access reads.
pub const GADGET_SECRET_ADDR: u32 = 0x1_0740;

// ---------------------------------------------------------------------
// The corpus
// ---------------------------------------------------------------------

/// The checked-in corpus: four compiled benchmark kernels plus the
/// Spectre-v1 gadget.
pub const CORPUS: &[CorpusEntry] = &[
    CorpusEntry {
        name: "rv32_crc32",
        class: "cache_resident",
        words: CRC32_WORDS,
        data: crc32_data,
        expected_result: CRC32_EXPECTED,
        secret_addr: None,
    },
    CorpusEntry {
        name: "rv32_matmul",
        class: "cache_resident",
        words: MATMUL_WORDS,
        data: matmul_data,
        expected_result: MATMUL_EXPECTED,
        secret_addr: None,
    },
    CorpusEntry {
        name: "rv32_sort",
        class: "branchy",
        words: SORT_WORDS,
        data: sort_data,
        expected_result: SORT_EXPECTED,
        secret_addr: None,
    },
    CorpusEntry {
        name: "rv32_strsearch",
        class: "branchy",
        words: STRSEARCH_WORDS,
        data: strsearch_data,
        expected_result: STRSEARCH_EXPECTED,
        secret_addr: None,
    },
    CorpusEntry {
        name: "rv32_gadget",
        class: "branchy",
        words: GADGET_WORDS,
        data: gadget_data,
        expected_result: GADGET_EXPECTED,
        secret_addr: Some(GADGET_SECRET_ADDR),
    },
];

/// Looks a corpus entry up by name.
#[must_use]
pub fn entry(name: &str) -> Option<&'static CorpusEntry> {
    CORPUS.iter().find(|e| e.name == name)
}

const CRC32_WORDS: &[u32] = &[
    0x00080137, 0x008000ef, 0x00100073, 0xff010113,
    0x00112623, 0x00010537, 0x06000593, 0x018000ef,
    0x000207b7, 0x00a7a023, 0x00c12083, 0x01010113,
    0x00008067, 0xfff00793, 0x00000713, 0xedb886b7,
    0x32068693, 0x02b75a63, 0x00e502b3, 0x0002c283,
    0x0057c7b3, 0x00800313, 0x0017f393, 0x0017d793,
    0x00038463, 0x00d7c7b3, 0xfff30313, 0xfe0316e3,
    0x00170713, 0xfd1ff06f, 0xfff7c513, 0x00008067,
];
const CRC32_EXPECTED: u32 = 0xfc60bc11;
const MATMUL_WORDS: &[u32] = &[
    0x00080137, 0x008000ef, 0x00100073, 0xff010113,
    0x00112623, 0x00010537, 0x10050513, 0x000105b7,
    0x20058593, 0x00010637, 0x30060613, 0x00800693,
    0x050000ef, 0x00010637, 0x30060613, 0x00000293,
    0x00000313, 0x04000393, 0x0272d263, 0x00229e13,
    0x01c60e33, 0x000e2e03, 0x00128e93, 0x03de0e33,
    0x01c30333, 0x00128293, 0xfddff06f, 0x000207b7,
    0x0067a023, 0x00c12083, 0x01010113, 0x00008067,
    0x00000e13, 0x06de5a63, 0x00000e93, 0x06ded263,
    0x00000f13, 0x00000f93, 0x02df5e63, 0x02de02b3,
    0x01e282b3, 0x00229293, 0x005502b3, 0x0002a283,
    0x02df0333, 0x01d30333, 0x00231313, 0x00658333,
    0x00032303, 0x026282b3, 0x005f8fb3, 0x001f0f13,
    0xfc9ff06f, 0x02de02b3, 0x01d282b3, 0x00229293,
    0x005602b3, 0x01f2a023, 0x001e8e93, 0xfa1ff06f,
    0x001e0e13, 0xf91ff06f, 0x00008067,
];
const MATMUL_EXPECTED: u32 = 0xffffe99e;
const SORT_WORDS: &[u32] = &[
    0x00080137, 0x008000ef, 0x00100073, 0xff010113,
    0x00112623, 0x00010537, 0x40050513, 0x03000593,
    0x044000ef, 0x00000293, 0x00000313, 0x02b2d263,
    0x00229e13, 0x01c50e33, 0x000e2e03, 0x00128e93,
    0x03de0e33, 0x01c30333, 0x00128293, 0xfe1ff06f,
    0x000207b7, 0x0067a023, 0x00c12083, 0x01010113,
    0x00008067, 0x00100293, 0x04b2d463, 0x00229e13,
    0x01c50e33, 0x000e2303, 0xfff28393, 0x0203c063,
    0x00239e13, 0x01c50e33, 0x000e2e83, 0x01d35863,
    0x01de2223, 0xfff38393, 0xfe5ff06f, 0x00239e13,
    0x01c50e33, 0x006e2223, 0x00128293, 0xfbdff06f,
    0x00008067,
];
const SORT_EXPECTED: u32 = 0x008a7293;
const STRSEARCH_WORDS: &[u32] = &[
    0x00080137, 0x008000ef, 0x00100073, 0xff010113,
    0x00112623, 0x00010537, 0x60050513, 0x0a000593,
    0x00010637, 0x6c060613, 0x00400693, 0x018000ef,
    0x000207b7, 0x00a7a023, 0x00c12083, 0x01010113,
    0x00008067, 0x00000393, 0x00000293, 0x00d28e33,
    0x03c5cc63, 0x00000313, 0x02d35263, 0x00628e33,
    0x01c50e33, 0x000e4e03, 0x00660eb3, 0x000ece83,
    0x01de1863, 0x00130313, 0xfe1ff06f, 0x00138393,
    0x00128293, 0xfc9ff06f, 0x00700533, 0x00008067,
];
const STRSEARCH_EXPECTED: u32 = 0x00000020;
const GADGET_WORDS: &[u32] = &[
    0x00080137, 0x008000ef, 0x00100073, 0xff010113,
    0x00112623, 0x000105b7, 0x70058593, 0x00030637,
    0x03000e13, 0x007e7513, 0x02c000ef, 0xfffe0e13,
    0xfe0e1ae3, 0x04000513, 0x01c000ef, 0x000207b7,
    0x00100293, 0x0057a023, 0x00c12083, 0x01010113,
    0x00008067, 0x0081c2b7, 0xf1028293, 0x00300313,
    0x0262c2b3, 0x0262c2b3, 0x0262c2b3, 0x0262c2b3,
    0x0262c2b3, 0x0262c2b3, 0x0262c2b3, 0x0262c2b3,
    0x0262c2b3, 0x0262c2b3, 0x0262c2b3, 0x0262c2b3,
    0x00557c63, 0x00a583b3, 0x0003c383, 0x00639393,
    0x007603b3, 0x0003c383, 0x00008067,
];
const GADGET_EXPECTED: u32 = 0x00000001;

// ---------------------------------------------------------------------
// Generators: the assembly each kernel was compiled to, kept in
// lockstep with the checked-in words by `corpus_words_match_generators`.
// ---------------------------------------------------------------------

#[cfg(test)]
pub(crate) mod gen {
    use crate::enc;
    use std::collections::HashMap;

    // RV32 ABI register numbers used by the kernels (x3/x4 excluded:
    // the lowering reserves them).
    pub const RA: u8 = 1;
    pub const SP: u8 = 2;
    pub const T0: u8 = 5;
    pub const T1: u8 = 6;
    pub const T2: u8 = 7;
    pub const A0: u8 = 10;
    pub const A1: u8 = 11;
    pub const A2: u8 = 12;
    pub const A3: u8 = 13;
    pub const A4: u8 = 14;
    pub const A5: u8 = 15;
    pub const T3: u8 = 28;
    pub const T4: u8 = 29;
    pub const T5: u8 = 30;
    pub const T6: u8 = 31;

    enum Slot {
        Word(u32),
        Branch { f: fn(u8, u8, i32) -> u32, rs1: u8, rs2: u8, label: &'static str },
        Jal { rd: u8, label: &'static str },
    }

    /// A tiny two-pass assembler over the `enc` word encoders, just
    /// enough to express the corpus kernels with symbolic branch
    /// targets.
    pub struct Asm {
        base: u32,
        slots: Vec<Slot>,
        labels: HashMap<&'static str, u32>,
    }

    impl Asm {
        pub fn new(base: u32) -> Self {
            Asm { base, slots: Vec::new(), labels: HashMap::new() }
        }

        fn pc(&self) -> u32 {
            self.base + 4 * self.slots.len() as u32
        }

        pub fn label(&mut self, name: &'static str) {
            assert!(self.labels.insert(name, self.pc()).is_none(), "duplicate label {name}");
        }

        pub fn i(&mut self, word: u32) {
            self.slots.push(Slot::Word(word));
        }

        pub fn li(&mut self, rd: u8, value: i32) {
            for word in enc::li(rd, value) {
                self.i(word);
            }
        }

        pub fn br(&mut self, f: fn(u8, u8, i32) -> u32, rs1: u8, rs2: u8, label: &'static str) {
            self.slots.push(Slot::Branch { f, rs1, rs2, label });
        }

        pub fn jal(&mut self, rd: u8, label: &'static str) {
            self.slots.push(Slot::Jal { rd, label });
        }

        pub fn words(self) -> Vec<u32> {
            let Asm { base, slots, labels } = self;
            slots
                .iter()
                .enumerate()
                .map(|(i, slot)| {
                    let pc = base + 4 * i as u32;
                    let target = |label: &'static str| {
                        let at = *labels.get(label).unwrap_or_else(|| panic!("label {label}"));
                        at.wrapping_sub(pc) as i32
                    };
                    match slot {
                        Slot::Word(w) => *w,
                        Slot::Branch { f, rs1, rs2, label } => f(*rs1, *rs2, target(label)),
                        Slot::Jal { rd, label } => enc::jal(*rd, target(label)),
                    }
                })
                .collect()
        }
    }

    /// Shared `_start`: set up the stack, call main, halt.
    fn start(asm: &mut Asm) {
        asm.li(SP, super::STACK_TOP as i32);
        asm.jal(RA, "main");
        asm.i(enc::ebreak());
    }

    /// Shared main prologue/epilogue around a kernel call.
    fn main_prologue(asm: &mut Asm) {
        asm.i(enc::addi(SP, SP, -16));
        asm.i(enc::sw(RA, 12, SP));
    }

    fn main_epilogue(asm: &mut Asm) {
        asm.i(enc::lw(RA, 12, SP));
        asm.i(enc::addi(SP, SP, 16));
        asm.i(enc::jalr(0, RA, 0));
    }

    /// ```c
    /// unsigned crc32(const unsigned char *p, int n) {
    ///     unsigned crc = 0xFFFFFFFF;
    ///     for (int i = 0; i < n; i++) {
    ///         crc ^= p[i];
    ///         for (int j = 0; j < 8; j++) {
    ///             unsigned lsb = crc & 1;
    ///             crc >>= 1;
    ///             if (lsb) crc ^= 0xEDB88320;
    ///         }
    ///     }
    ///     return ~crc;
    /// }
    /// void main() { *(unsigned *)0x20000 = crc32((void *)0x10000, 96); }
    /// ```
    pub fn crc32() -> Vec<u32> {
        let mut asm = Asm::new(super::TEXT_BASE);
        start(&mut asm);
        asm.label("main");
        main_prologue(&mut asm);
        asm.li(A0, 0x1_0000);
        asm.i(enc::addi(A1, 0, 96));
        asm.jal(RA, "crc32");
        asm.li(A5, super::RESULT_ADDR as i32);
        asm.i(enc::sw(A0, 0, A5));
        main_epilogue(&mut asm);

        asm.label("crc32");
        asm.i(enc::addi(A5, 0, -1)); // crc
        asm.i(enc::addi(A4, 0, 0)); // i
        asm.li(A3, 0xEDB8_8320u32 as i32); // polynomial
        asm.label("loop_i");
        asm.br(enc::bge, A4, A1, "done");
        asm.i(enc::add(T0, A0, A4));
        asm.i(enc::lbu(T0, 0, T0));
        asm.i(enc::xor(A5, A5, T0));
        asm.i(enc::addi(T1, 0, 8)); // j
        asm.label("loop_j");
        asm.i(enc::andi(T2, A5, 1));
        asm.i(enc::srli(A5, A5, 1));
        asm.br(enc::beq, T2, 0, "skip");
        asm.i(enc::xor(A5, A5, A3));
        asm.label("skip");
        asm.i(enc::addi(T1, T1, -1));
        asm.br(enc::bne, T1, 0, "loop_j");
        asm.i(enc::addi(A4, A4, 1));
        asm.jal(0, "loop_i");
        asm.label("done");
        asm.i(enc::xori(A0, A5, -1));
        asm.i(enc::jalr(0, RA, 0));
        asm.words()
    }

    /// ```c
    /// void matmul(const int *a, const int *b, int *c, int n) {
    ///     for (int i = 0; i < n; i++)
    ///         for (int j = 0; j < n; j++) {
    ///             int s = 0;
    ///             for (int k = 0; k < n; k++) s += a[i*n+k] * b[k*n+j];
    ///             c[i*n+j] = s;
    ///         }
    /// }
    /// void main() {
    ///     matmul((int *)0x10100, (int *)0x10200, (int *)0x10300, 8);
    ///     int acc = 0;
    ///     for (int t = 0; t < 64; t++) acc += ((int *)0x10300)[t] * (t + 1);
    ///     *(int *)0x20000 = acc;
    /// }
    /// ```
    pub fn matmul() -> Vec<u32> {
        let mut asm = Asm::new(super::TEXT_BASE);
        start(&mut asm);
        asm.label("main");
        main_prologue(&mut asm);
        asm.li(A0, 0x1_0100);
        asm.li(A1, 0x1_0200);
        asm.li(A2, 0x1_0300);
        asm.i(enc::addi(A3, 0, 8));
        asm.jal(RA, "matmul");
        asm.li(A2, 0x1_0300);
        asm.i(enc::addi(T0, 0, 0)); // t
        asm.i(enc::addi(T1, 0, 0)); // acc
        asm.label("cs_loop");
        asm.i(enc::addi(T2, 0, 64));
        asm.br(enc::bge, T0, T2, "cs_done");
        asm.i(enc::slli(T3, T0, 2));
        asm.i(enc::add(T3, A2, T3));
        asm.i(enc::lw(T3, 0, T3));
        asm.i(enc::addi(T4, T0, 1));
        asm.i(enc::mul(T3, T3, T4));
        asm.i(enc::add(T1, T1, T3));
        asm.i(enc::addi(T0, T0, 1));
        asm.jal(0, "cs_loop");
        asm.label("cs_done");
        asm.li(A5, super::RESULT_ADDR as i32);
        asm.i(enc::sw(T1, 0, A5));
        main_epilogue(&mut asm);

        asm.label("matmul");
        asm.i(enc::addi(T3, 0, 0)); // i
        asm.label("mm_i");
        asm.br(enc::bge, T3, A3, "mm_done");
        asm.i(enc::addi(T4, 0, 0)); // j
        asm.label("mm_j");
        asm.br(enc::bge, T4, A3, "mm_ni");
        asm.i(enc::addi(T5, 0, 0)); // k
        asm.i(enc::addi(T6, 0, 0)); // s
        asm.label("mm_k");
        asm.br(enc::bge, T5, A3, "mm_st");
        asm.i(enc::mul(T0, T3, A3));
        asm.i(enc::add(T0, T0, T5));
        asm.i(enc::slli(T0, T0, 2));
        asm.i(enc::add(T0, A0, T0));
        asm.i(enc::lw(T0, 0, T0)); // a[i*n+k]
        asm.i(enc::mul(T1, T5, A3));
        asm.i(enc::add(T1, T1, T4));
        asm.i(enc::slli(T1, T1, 2));
        asm.i(enc::add(T1, A1, T1));
        asm.i(enc::lw(T1, 0, T1)); // b[k*n+j]
        asm.i(enc::mul(T0, T0, T1));
        asm.i(enc::add(T6, T6, T0));
        asm.i(enc::addi(T5, T5, 1));
        asm.jal(0, "mm_k");
        asm.label("mm_st");
        asm.i(enc::mul(T0, T3, A3));
        asm.i(enc::add(T0, T0, T4));
        asm.i(enc::slli(T0, T0, 2));
        asm.i(enc::add(T0, A2, T0));
        asm.i(enc::sw(T6, 0, T0));
        asm.i(enc::addi(T4, T4, 1));
        asm.jal(0, "mm_j");
        asm.label("mm_ni");
        asm.i(enc::addi(T3, T3, 1));
        asm.jal(0, "mm_i");
        asm.label("mm_done");
        asm.i(enc::jalr(0, RA, 0));
        asm.words()
    }

    /// ```c
    /// void sort(int *a, int n) { // insertion sort
    ///     for (int i = 1; i < n; i++) {
    ///         int key = a[i], j = i - 1;
    ///         while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j--; }
    ///         a[j + 1] = key;
    ///     }
    /// }
    /// void main() {
    ///     int *a = (int *)0x10400;
    ///     sort(a, 48);
    ///     int acc = 0;
    ///     for (int i = 0; i < 48; i++) acc += a[i] * (i + 1);
    ///     *(int *)0x20000 = acc;
    /// }
    /// ```
    pub fn sort() -> Vec<u32> {
        let mut asm = Asm::new(super::TEXT_BASE);
        start(&mut asm);
        asm.label("main");
        main_prologue(&mut asm);
        asm.li(A0, 0x1_0400);
        asm.i(enc::addi(A1, 0, 48));
        asm.jal(RA, "sort");
        asm.i(enc::addi(T0, 0, 0)); // i
        asm.i(enc::addi(T1, 0, 0)); // acc
        asm.label("ck_loop");
        asm.br(enc::bge, T0, A1, "ck_done");
        asm.i(enc::slli(T3, T0, 2));
        asm.i(enc::add(T3, A0, T3));
        asm.i(enc::lw(T3, 0, T3));
        asm.i(enc::addi(T4, T0, 1));
        asm.i(enc::mul(T3, T3, T4));
        asm.i(enc::add(T1, T1, T3));
        asm.i(enc::addi(T0, T0, 1));
        asm.jal(0, "ck_loop");
        asm.label("ck_done");
        asm.li(A5, super::RESULT_ADDR as i32);
        asm.i(enc::sw(T1, 0, A5));
        main_epilogue(&mut asm);

        asm.label("sort");
        asm.i(enc::addi(T0, 0, 1)); // i
        asm.label("so_i");
        asm.br(enc::bge, T0, A1, "so_done");
        asm.i(enc::slli(T3, T0, 2));
        asm.i(enc::add(T3, A0, T3));
        asm.i(enc::lw(T1, 0, T3)); // key
        asm.i(enc::addi(T2, T0, -1)); // j
        asm.label("so_w");
        asm.br(enc::blt, T2, 0, "so_ins");
        asm.i(enc::slli(T3, T2, 2));
        asm.i(enc::add(T3, A0, T3));
        asm.i(enc::lw(T4, 0, T3)); // a[j]
        asm.br(enc::bge, T1, T4, "so_ins"); // key >= a[j]: stop shifting
        asm.i(enc::sw(T4, 4, T3)); // a[j+1] = a[j]
        asm.i(enc::addi(T2, T2, -1));
        asm.jal(0, "so_w");
        asm.label("so_ins");
        asm.i(enc::slli(T3, T2, 2));
        asm.i(enc::add(T3, A0, T3));
        asm.i(enc::sw(T1, 4, T3)); // a[j+1] = key
        asm.i(enc::addi(T0, T0, 1));
        asm.jal(0, "so_i");
        asm.label("so_done");
        asm.i(enc::jalr(0, RA, 0));
        asm.words()
    }

    /// ```c
    /// int search(const unsigned char *h, int n, const unsigned char *p, int m) {
    ///     int count = 0;
    ///     for (int i = 0; i + m <= n; i++) {
    ///         int j = 0;
    ///         while (j < m && h[i + j] == p[j]) j++;
    ///         if (j == m) count++;
    ///     }
    ///     return count;
    /// }
    /// void main() {
    ///     *(int *)0x20000 =
    ///         search((void *)0x10600, 160, (void *)0x106C0, 4);
    /// }
    /// ```
    pub fn strsearch() -> Vec<u32> {
        let mut asm = Asm::new(super::TEXT_BASE);
        start(&mut asm);
        asm.label("main");
        main_prologue(&mut asm);
        asm.li(A0, 0x1_0600);
        asm.i(enc::addi(A1, 0, 160));
        asm.li(A2, 0x1_06c0);
        asm.i(enc::addi(A3, 0, 4));
        asm.jal(RA, "search");
        asm.li(A5, super::RESULT_ADDR as i32);
        asm.i(enc::sw(A0, 0, A5));
        main_epilogue(&mut asm);

        asm.label("search");
        asm.i(enc::addi(T2, 0, 0)); // count
        asm.i(enc::addi(T0, 0, 0)); // i
        asm.label("se_i");
        asm.i(enc::add(T3, T0, A3));
        asm.br(enc::blt, A1, T3, "se_done"); // i + m > n: done
        asm.i(enc::addi(T1, 0, 0)); // j
        asm.label("se_j");
        asm.br(enc::bge, T1, A3, "se_hit");
        asm.i(enc::add(T3, T0, T1));
        asm.i(enc::add(T3, A0, T3));
        asm.i(enc::lbu(T3, 0, T3)); // h[i+j]
        asm.i(enc::add(T4, A2, T1));
        asm.i(enc::lbu(T4, 0, T4)); // p[j]
        asm.br(enc::bne, T3, T4, "se_next");
        asm.i(enc::addi(T1, T1, 1));
        asm.jal(0, "se_j");
        asm.label("se_hit");
        asm.i(enc::addi(T2, T2, 1));
        asm.label("se_next");
        asm.i(enc::addi(T0, T0, 1));
        asm.jal(0, "se_i");
        asm.label("se_done");
        asm.i(enc::add(A0, 0, T2));
        asm.i(enc::jalr(0, RA, 0));
        asm.words()
    }

    /// ```c
    /// // Spectre v1. bound == 16 always, but takes ~12 chained divides
    /// // to resolve, opening the speculation window; the final call
    /// // passes idx = 64, whose mis-speculated access reads the secret
    /// // at array1 + 64 and transmits it via the probe line it touches.
    /// void victim(unsigned idx, const unsigned char *array1,
    ///             const unsigned char *probe) {
    ///     unsigned bound = 8503056; // 16 * 3^12
    ///     for (int d = 0; d < 12; d++) bound /= 3;  // unrolled
    ///     if (idx < bound) (void)probe[array1[idx] << 6];
    /// }
    /// void main() {
    ///     for (int t = 48; t != 0; t--) victim(t & 7, a1, pr); // train
    ///     victim(64, a1, pr);                                  // attack
    ///     *(int *)0x20000 = 1;
    /// }
    /// ```
    pub fn gadget() -> Vec<u32> {
        let mut asm = Asm::new(super::TEXT_BASE);
        start(&mut asm);
        asm.label("main");
        main_prologue(&mut asm);
        asm.li(A1, 0x1_0700); // array1
        asm.li(A2, 0x3_0000); // probe
        asm.i(enc::addi(T3, 0, 48)); // t
        asm.label("tr_loop");
        asm.i(enc::andi(A0, T3, 7)); // in-bounds idx
        asm.jal(RA, "victim");
        asm.i(enc::addi(T3, T3, -1));
        asm.br(enc::bne, T3, 0, "tr_loop");
        asm.i(enc::addi(A0, 0, 64)); // out-of-bounds idx
        asm.jal(RA, "victim");
        asm.li(A5, super::RESULT_ADDR as i32);
        asm.i(enc::addi(T0, 0, 1));
        asm.i(enc::sw(T0, 0, A5));
        main_epilogue(&mut asm);

        asm.label("victim");
        asm.li(T0, 8_503_056); // 16 * 3^12
        asm.i(enc::addi(T1, 0, 3));
        for _ in 0..12 {
            asm.i(enc::div(T0, T0, T1)); // slow bound chain
        }
        asm.br(enc::bgeu, A0, T0, "v_skip"); // bounds check
        asm.i(enc::add(T2, A1, A0));
        asm.i(enc::lbu(T2, 0, T2)); // access (secret when idx OOB)
        asm.i(enc::slli(T2, T2, 6));
        asm.i(enc::add(T2, A2, T2));
        asm.i(enc::lbu(T2, 0, T2)); // transmit
        asm.label("v_skip");
        asm.i(enc::jalr(0, RA, 0));
        asm.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_words_match_generators() {
        let generated: &[(&str, Vec<u32>)] = &[
            ("rv32_crc32", gen::crc32()),
            ("rv32_matmul", gen::matmul()),
            ("rv32_sort", gen::sort()),
            ("rv32_strsearch", gen::strsearch()),
            ("rv32_gadget", gen::gadget()),
        ];
        for (name, words) in generated {
            let entry = entry(name).expect("corpus entry exists");
            assert_eq!(entry.words, words.as_slice(), "{name}: checked-in words drifted");
        }
    }

    /// Regenerates the `*_WORDS`/`*_EXPECTED` consts (run with
    /// `--nocapture` and paste when a kernel changes).
    #[test]
    fn print_corpus() {
        for (name, words) in [
            ("CRC32", gen::crc32()),
            ("MATMUL", gen::matmul()),
            ("SORT", gen::sort()),
            ("STRSEARCH", gen::strsearch()),
            ("GADGET", gen::gadget()),
        ] {
            println!("const {name}_WORDS: &[u32] = &[");
            for chunk in words.chunks(4) {
                let row: Vec<String> = chunk.iter().map(|w| format!("{w:#010x},")).collect();
                println!("    {}", row.join(" "));
            }
            println!("];");
            let lower = name.to_lowercase();
            let image = Rv32Image {
                entry: TEXT_BASE,
                text_base: TEXT_BASE,
                text: words,
                data: match lower.as_str() {
                    "crc32" => crc32_data(),
                    "matmul" => matmul_data(),
                    "sort" => sort_data(),
                    "strsearch" => strsearch_data(),
                    "gadget" => gadget_data(),
                    other => panic!("unknown kernel {other}"),
                },
            };
            let program = translate(&image, &lower).expect("kernel translates");
            let mut interp = sdo_isa::Interpreter::new(&program);
            interp.run(50_000_000).expect("kernel halts");
            println!("const {name}_EXPECTED: u32 = {:#010x};", read_result(&interp));
        }
    }
}
