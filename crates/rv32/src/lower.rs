//! Lowering: decoded RV32I+M → `sdo_isa::Program` µops.
//!
//! # Register mapping and the sext32 invariant
//!
//! RV32 registers map identically onto the mini-ISA's 32 integer
//! registers (`x5` → `r5`), except that **`x3` (gp) and `x4` (tp) are
//! reserved as lowering scratch** — programs that touch them are
//! rejected with a typed [`LowerError`]. Every architectural value is
//! kept *sign-extended from 32 to 64 bits* ("sext32"). That invariant
//! makes most ops single µops: sext32 preserves both the signed order
//! (as i64) and the unsigned 32-bit order (as u64), so `slt`/`sltu`
//! and all six branch conditions work natively, and bitwise ops of two
//! sext32 values stay sext32. Width-sensitive arithmetic uses the
//! dedicated `*W` ALU ops which re-sign-extend their 32-bit result.
//!
//! # Control flow
//!
//! Direct branches and `jal` resolve at translation time: pass 1
//! decodes every word and lays out each instruction's µop start index,
//! pass 2 emits with byte targets patched to µop indices. `jalr` is
//! resolved at *run* time through a translation table materialised in
//! the data image at [`TABLE_BASE`]: for every text byte address `A`,
//! `mem64[TABLE_BASE + 2*A]` holds the µop start index of the
//! instruction at `A` (8-aligned because `A` is 4-aligned). The lowered
//! `jalr` clears bit 0, doubles the address and loads the entry — an
//! address outside the decoded text reads the image default `0` and
//! lands on µop 0, which only ever happens on wrong paths or in broken
//! programs (architecturally valid code jumps to real instructions).

use crate::decode::{self, DecodeError, LoadKind, OpImmKind, OpKind, Rv32Inst, StoreKind};
use crate::loader::Rv32Image;
use sdo_isa::{AluOp, DataImage, Instruction, MemWidth, Program, Reg};

/// Base of the `jalr` translation table in data memory: `mem64[TABLE_BASE +
/// 2*A]` is the µop index of the RV32 instruction at byte address `A`. Sits
/// at 4 GiB, far above any RV32-reachable data address.
pub const TABLE_BASE: u64 = 1 << 32;

/// The two mini-ISA registers reserved as lowering scratch (`x3`/gp and
/// `x4`/tp in RV32 terms).
#[must_use]
pub fn scratch_regs() -> [Reg; 2] {
    [Reg::new(3), Reg::new(4)]
}

/// Why a decoded instruction cannot be lowered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowerErrorKind {
    /// The instruction reads or writes a reserved scratch register.
    ReservedReg {
        /// The offending RV32 register index (3 or 4).
        reg: u8,
    },
    /// A branch/jal target is not 4-byte aligned.
    MisalignedTarget {
        /// The offending byte target.
        target: u32,
    },
    /// A branch/jal target lies outside the text segment.
    TargetOutsideText {
        /// The offending byte target.
        target: u32,
    },
}

/// A typed lowering failure, carrying the faulting pc and raw word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerError {
    /// Byte address of the instruction.
    pub pc: u32,
    /// The raw instruction word.
    pub word: u32,
    /// The classified reason.
    pub kind: LowerErrorKind,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pc {:#010x}: word {:#010x}: ", self.pc, self.word)?;
        match self.kind {
            LowerErrorKind::ReservedReg { reg } => {
                write!(f, "x{reg} is reserved as lowering scratch")
            }
            LowerErrorKind::MisalignedTarget { target } => {
                write!(f, "branch target {target:#010x} is not 4-aligned")
            }
            LowerErrorKind::TargetOutsideText { target } => {
                write!(f, "branch target {target:#010x} is outside the text segment")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Either stage of [`translate`] failing, as one error type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateError {
    /// The word did not decode as RV32I+M.
    Decode(DecodeError),
    /// The instruction decoded but cannot be expressed as µops.
    Lower(LowerError),
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::Decode(e) => write!(f, "decode: {e}"),
            TranslateError::Lower(e) => write!(f, "lower: {e}"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<DecodeError> for TranslateError {
    fn from(e: DecodeError) -> Self {
        TranslateError::Decode(e)
    }
}

impl From<LowerError> for TranslateError {
    fn from(e: LowerError) -> Self {
        TranslateError::Lower(e)
    }
}

/// Bit-exact `u32` → `i32` reinterpretation. The lint ratchet bans
/// truncating `as` casts in this file (width discipline is exactly
/// where a silent `as u32` breaks the sext32 invariant), so the two
/// reinterpretations are spelled as byte-level round-trips, which are
/// lossless by construction.
fn as_signed(x: u32) -> i32 {
    i32::from_le_bytes(x.to_le_bytes())
}

/// Bit-exact `i32` → `u32` reinterpretation (see [`as_signed`]).
fn as_unsigned(x: i32) -> u32 {
    u32::from_le_bytes(x.to_le_bytes())
}

fn sext32(x: u32) -> i64 {
    i64::from(as_signed(x))
}

/// Maps an RV32 register index to a mini-ISA register, rejecting the
/// reserved scratch registers.
fn map_reg(pc: u32, word: u32, x: u8) -> Result<Reg, LowerError> {
    if x == 3 || x == 4 {
        return Err(LowerError { pc, word, kind: LowerErrorKind::ReservedReg { reg: x } });
    }
    Ok(Reg::new(x))
}

/// The number of µops [`emit`] produces for `inst` — pass 1 uses this
/// to lay out µop start indices, and `debug_assert`s in pass 2 keep the
/// two in lockstep.
fn cost(inst: &Rv32Inst) -> u64 {
    match inst {
        Rv32Inst::Lui { .. } | Rv32Inst::Auipc { .. } => 1,
        Rv32Inst::Jal { rd, .. } => {
            if *rd == 0 {
                1
            } else {
                2
            }
        }
        Rv32Inst::Jalr { rd, .. } => {
            if *rd == 0 {
                5
            } else {
                6
            }
        }
        Rv32Inst::Branch { .. } => 1,
        Rv32Inst::Load { kind, .. } => match kind {
            LoadKind::Lbu | LoadKind::Lhu => 1,
            LoadKind::Lw => 2,
            LoadKind::Lb | LoadKind::Lh => 3,
        },
        Rv32Inst::Store { .. } => 1,
        Rv32Inst::OpImm { .. } => 1,
        Rv32Inst::Op { kind, .. } => match kind {
            OpKind::Mulh => 2,
            OpKind::Mulhsu => 3,
            OpKind::Mulhu => 5,
            OpKind::Add
            | OpKind::Sub
            | OpKind::Sll
            | OpKind::Slt
            | OpKind::Sltu
            | OpKind::Xor
            | OpKind::Srl
            | OpKind::Sra
            | OpKind::Or
            | OpKind::And
            | OpKind::Mul
            | OpKind::Div
            | OpKind::Divu
            | OpKind::Rem
            | OpKind::Remu => 1,
        },
        Rv32Inst::Fence | Rv32Inst::Ebreak => 1,
    }
}

/// Resolves a pc-relative byte target to the µop start index of the
/// targeted instruction.
fn resolve_target(
    pc: u32,
    word: u32,
    offset: i32,
    text_base: u32,
    starts: &[u64],
) -> Result<u64, LowerError> {
    let target = pc.wrapping_add(as_unsigned(offset));
    if !target.is_multiple_of(4) {
        return Err(LowerError { pc, word, kind: LowerErrorKind::MisalignedTarget { target } });
    }
    let idx = target.wrapping_sub(text_base) / 4;
    starts
        .get(idx as usize)
        .copied()
        .filter(|_| target >= text_base)
        .ok_or(LowerError { pc, word, kind: LowerErrorKind::TargetOutsideText { target } })
}

/// Emits the µop sequence for one decoded instruction.
#[allow(clippy::too_many_lines)] // one arm per RV32 instruction shape
fn emit(
    out: &mut Vec<Instruction>,
    inst: &Rv32Inst,
    pc: u32,
    word: u32,
    text_base: u32,
    starts: &[u64],
) -> Result<(), LowerError> {
    let before = out.len();
    let link = sext32(pc.wrapping_add(4));
    let [s0, s1] = scratch_regs();
    match *inst {
        Rv32Inst::Lui { rd, imm } => {
            let rd = map_reg(pc, word, rd)?;
            out.push(Instruction::Li { dst: rd, imm: i64::from(imm) });
        }
        Rv32Inst::Auipc { rd, imm } => {
            let rd = map_reg(pc, word, rd)?;
            out.push(Instruction::Li { dst: rd, imm: sext32(pc.wrapping_add(as_unsigned(imm))) });
        }
        Rv32Inst::Jal { rd, offset } => {
            let target = resolve_target(pc, word, offset, text_base, starts)?;
            if rd != 0 {
                let rd = map_reg(pc, word, rd)?;
                out.push(Instruction::Li { dst: rd, imm: link });
            }
            out.push(Instruction::Jal { dst: Reg::ZERO, target });
        }
        Rv32Inst::Jalr { rd, rs1, offset } => {
            let rs1 = map_reg(pc, word, rs1)?;
            // Compute the 32-bit target, clear bit 0 (which also
            // zero-extends a negative sext32 address), double it and
            // look up the µop index in the translation table.
            out.push(Instruction::AluImm {
                op: AluOp::AddW,
                dst: s0,
                src: rs1,
                imm: i64::from(offset),
            });
            out.push(Instruction::AluImm { op: AluOp::And, dst: s0, src: s0, imm: 0xffff_fffe });
            out.push(Instruction::AluImm { op: AluOp::Sll, dst: s0, src: s0, imm: 1 });
            out.push(Instruction::Load {
                dst: s0,
                base: s0,
                offset: TABLE_BASE as i64,
                width: MemWidth::Word,
            });
            if rd != 0 {
                let rd = map_reg(pc, word, rd)?;
                out.push(Instruction::Li { dst: rd, imm: link });
            }
            out.push(Instruction::Jalr { dst: Reg::ZERO, base: s0, offset: 0 });
        }
        Rv32Inst::Branch { cond, rs1, rs2, offset } => {
            let lhs = map_reg(pc, word, rs1)?;
            let rhs = map_reg(pc, word, rs2)?;
            let target = resolve_target(pc, word, offset, text_base, starts)?;
            out.push(Instruction::Branch { cond, lhs, rhs, target });
        }
        Rv32Inst::Load { kind, rd, rs1, offset } => {
            let rd = map_reg(pc, word, rd)?;
            let base = map_reg(pc, word, rs1)?;
            let offset = i64::from(offset);
            let (width, shift) = match kind {
                LoadKind::Lbu => (MemWidth::Byte, None),
                LoadKind::Lhu => (MemWidth::Half, None),
                LoadKind::Lw => (MemWidth::Word4, None),
                LoadKind::Lb => (MemWidth::Byte, Some(56)),
                LoadKind::Lh => (MemWidth::Half, Some(48)),
            };
            out.push(Instruction::Load { dst: rd, base, offset, width });
            if let Some(n) = shift {
                out.push(Instruction::AluImm { op: AluOp::Sll, dst: rd, src: rd, imm: n });
                out.push(Instruction::AluImm { op: AluOp::Sra, dst: rd, src: rd, imm: n });
            } else if kind == LoadKind::Lw {
                // Loaded zero-extended; re-establish the sext32 invariant.
                out.push(Instruction::AluImm { op: AluOp::AddW, dst: rd, src: rd, imm: 0 });
            }
        }
        Rv32Inst::Store { kind, rs1, rs2, offset } => {
            let base = map_reg(pc, word, rs1)?;
            let src = map_reg(pc, word, rs2)?;
            let width = match kind {
                StoreKind::Sb => MemWidth::Byte,
                StoreKind::Sh => MemWidth::Half,
                StoreKind::Sw => MemWidth::Word4,
            };
            out.push(Instruction::Store { src, base, offset: i64::from(offset), width });
        }
        Rv32Inst::OpImm { kind, rd, rs1, imm } => {
            let dst = map_reg(pc, word, rd)?;
            let src = map_reg(pc, word, rs1)?;
            let op = match kind {
                OpImmKind::Addi => AluOp::AddW,
                OpImmKind::Slti => AluOp::Slt,
                OpImmKind::Sltiu => AluOp::Sltu,
                OpImmKind::Xori => AluOp::Xor,
                OpImmKind::Ori => AluOp::Or,
                OpImmKind::Andi => AluOp::And,
                OpImmKind::Slli => AluOp::SllW,
                OpImmKind::Srli => AluOp::SrlW,
                OpImmKind::Srai => AluOp::SraW,
            };
            out.push(Instruction::AluImm { op, dst, src, imm: i64::from(imm) });
        }
        Rv32Inst::Op { kind, rd, rs1, rs2 } => {
            let dst = map_reg(pc, word, rd)?;
            let lhs = map_reg(pc, word, rs1)?;
            let rhs = map_reg(pc, word, rs2)?;
            match kind {
                OpKind::Mulh => {
                    // Exact in i64: both operands are sext32.
                    out.push(Instruction::Alu { op: AluOp::Mul, dst: s0, lhs, rhs });
                    out.push(Instruction::AluImm { op: AluOp::Sra, dst, src: s0, imm: 32 });
                }
                OpKind::Mulhsu => {
                    // Zero-extend rhs; sext(rs1) * zext(rs2) fits i64.
                    out.push(Instruction::AluImm {
                        op: AluOp::And,
                        dst: s0,
                        src: rhs,
                        imm: 0xffff_ffff,
                    });
                    out.push(Instruction::Alu { op: AluOp::Mul, dst: s0, lhs, rhs: s0 });
                    out.push(Instruction::AluImm { op: AluOp::Sra, dst, src: s0, imm: 32 });
                }
                OpKind::Mulhu => {
                    // Zero-extend both; the u64 product is exact, take
                    // its high word and re-sign-extend.
                    out.push(Instruction::AluImm {
                        op: AluOp::And,
                        dst: s0,
                        src: lhs,
                        imm: 0xffff_ffff,
                    });
                    out.push(Instruction::AluImm {
                        op: AluOp::And,
                        dst: s1,
                        src: rhs,
                        imm: 0xffff_ffff,
                    });
                    out.push(Instruction::Alu { op: AluOp::Mul, dst: s0, lhs: s0, rhs: s1 });
                    out.push(Instruction::AluImm { op: AluOp::Srl, dst: s0, src: s0, imm: 32 });
                    out.push(Instruction::AluImm { op: AluOp::AddW, dst, src: s0, imm: 0 });
                }
                OpKind::Add => out.push(Instruction::Alu { op: AluOp::AddW, dst, lhs, rhs }),
                OpKind::Sub => out.push(Instruction::Alu { op: AluOp::SubW, dst, lhs, rhs }),
                OpKind::Sll => out.push(Instruction::Alu { op: AluOp::SllW, dst, lhs, rhs }),
                OpKind::Slt => out.push(Instruction::Alu { op: AluOp::Slt, dst, lhs, rhs }),
                OpKind::Sltu => out.push(Instruction::Alu { op: AluOp::Sltu, dst, lhs, rhs }),
                OpKind::Xor => out.push(Instruction::Alu { op: AluOp::Xor, dst, lhs, rhs }),
                OpKind::Srl => out.push(Instruction::Alu { op: AluOp::SrlW, dst, lhs, rhs }),
                OpKind::Sra => out.push(Instruction::Alu { op: AluOp::SraW, dst, lhs, rhs }),
                OpKind::Or => out.push(Instruction::Alu { op: AluOp::Or, dst, lhs, rhs }),
                OpKind::And => out.push(Instruction::Alu { op: AluOp::And, dst, lhs, rhs }),
                OpKind::Mul => out.push(Instruction::Alu { op: AluOp::MulW, dst, lhs, rhs }),
                OpKind::Div => out.push(Instruction::Alu { op: AluOp::DivW, dst, lhs, rhs }),
                OpKind::Divu => out.push(Instruction::Alu { op: AluOp::DivuW, dst, lhs, rhs }),
                OpKind::Rem => out.push(Instruction::Alu { op: AluOp::RemW, dst, lhs, rhs }),
                OpKind::Remu => out.push(Instruction::Alu { op: AluOp::RemuW, dst, lhs, rhs }),
            }
        }
        Rv32Inst::Fence => out.push(Instruction::Nop),
        Rv32Inst::Ebreak => out.push(Instruction::Halt),
    }
    debug_assert_eq!(
        (out.len() - before) as u64,
        cost(inst),
        "cost() out of sync with emit() at pc {pc:#010x}"
    );
    Ok(())
}

/// One RV32 call site in a translated program, as seen at the µop
/// level. Calls are recognised by the standard RISC-V link convention:
/// any `jal`/`jalr` that writes a non-zero link register is a call, and
/// execution resumes at the instruction after it when the callee
/// returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// µop index of the transfer itself (the `Jal`/`Jalr` µop, not the
    /// first µop of the lowered sequence).
    pub uop: u64,
    /// µop index execution resumes at after the callee returns (the
    /// value the link register holds, translated to µop space).
    pub return_to: u64,
    /// Callee entry µop for direct calls (`jal ra, f`); `None` for
    /// indirect calls through `jalr`.
    pub target: Option<u64>,
    /// RV32 byte address of the call instruction.
    pub pc: u32,
}

/// The pc-provenance side table of a translation: enough structure for
/// a consumer (the `sdo-analyze` binary scanner) to map µop findings
/// back to *original RV32 addresses* and to rebuild the program's call
/// graph without re-decoding the image.
///
/// Contract: `pc_of.len() == program.instructions().len()`; every µop
/// emitted for the RV32 instruction at byte address `A` maps to `A`
/// (the entry-prologue jump, which has no source instruction, maps to
/// the entry address it jumps to). `calls`, `returns` and
/// `table_loads` are strictly increasing µop indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// RV32 byte address of the source instruction, per µop.
    pub pc_of: Vec<u32>,
    /// µop start index of each RV32 instruction, in text order
    /// (the translation-table payload, kept here for direct lookup).
    pub starts: Vec<u64>,
    /// Base byte address of the text segment.
    pub text_base: u32,
    /// Every call site, in µop order.
    pub calls: Vec<CallSite>,
    /// µop indices of return `Jalr`s (`jalr x0, 0(ra)`), in µop order.
    pub returns: Vec<u64>,
    /// µop indices of the translation-table `Load`s emitted by `jalr`
    /// lowering. These read the static table at [`TABLE_BASE`] — a
    /// translation artifact, not a program memory access.
    pub table_loads: Vec<u64>,
    /// µop index of the image entry point.
    pub entry: u64,
}

impl Provenance {
    /// RV32 byte address of the instruction that produced µop `uop`
    /// (`None` for out-of-range indices).
    #[must_use]
    pub fn rv32_pc(&self, uop: u64) -> Option<u32> {
        usize::try_from(uop).ok().and_then(|i| self.pc_of.get(i)).copied()
    }
}

/// Translates a loaded RV32 image into an `sdo_isa::Program` named
/// `name`.
///
/// Data segments land verbatim in the program's [`DataImage`]; the
/// `jalr` translation table is materialised at [`TABLE_BASE`]. When the
/// image's entry point is not the first text instruction, µop 0 is a
/// jump to the entry's µop sequence.
///
/// # Errors
///
/// A typed [`TranslateError`] for any word that does not decode as
/// RV32I+M or cannot be lowered (reserved register, bad branch target).
pub fn translate(image: &Rv32Image, name: &str) -> Result<Program, TranslateError> {
    translate_with_provenance(image, name).map(|(p, _)| p)
}

/// [`translate`], additionally returning the [`Provenance`] side table
/// that maps µops back to RV32 byte addresses and records the
/// program's call/return structure.
///
/// # Errors
///
/// Same as [`translate`].
pub fn translate_with_provenance(
    image: &Rv32Image,
    name: &str,
) -> Result<(Program, Provenance), TranslateError> {
    // Pass 1: decode every word and lay out µop start indices.
    let mut decoded = Vec::with_capacity(image.text.len());
    let mut pc = image.text_base;
    for &word in &image.text {
        decoded.push(decode::decode(pc, word)?);
        pc = pc.wrapping_add(4);
    }
    if !image.entry.is_multiple_of(4) {
        return Err(LowerError {
            pc: image.entry,
            word: 0,
            kind: LowerErrorKind::MisalignedTarget { target: image.entry },
        }
        .into());
    }
    let entry_idx = image.entry.wrapping_sub(image.text_base) / 4;
    if image.entry < image.text_base || entry_idx as usize >= decoded.len() {
        return Err(LowerError {
            pc: image.entry,
            word: 0,
            kind: LowerErrorKind::TargetOutsideText { target: image.entry },
        }
        .into());
    }
    let prologue = u64::from(entry_idx != 0);
    let mut starts = Vec::with_capacity(decoded.len());
    let mut at = prologue;
    for inst in &decoded {
        starts.push(at);
        at += cost(inst);
    }
    let entry_uop = starts[entry_idx as usize];

    // Pass 2: emit, with byte targets patched to µop indices, recording
    // the provenance rows as each instruction lands.
    let mut insts = Vec::with_capacity(at as usize);
    let mut pc_of = Vec::with_capacity(at as usize);
    let mut calls = Vec::new();
    let mut returns = Vec::new();
    let mut table_loads = Vec::new();
    if prologue == 1 {
        insts.push(Instruction::Jal { dst: Reg::ZERO, target: entry_uop });
        // The prologue jump has no source instruction; attribute it to
        // the entry it realises.
        pc_of.push(image.entry);
    }
    let mut pc = image.text_base;
    for (i, (inst, &word)) in decoded.iter().zip(&image.text).enumerate() {
        emit(&mut insts, inst, pc, word, image.text_base, &starts)?;
        let n = cost(inst);
        for _ in 0..n {
            pc_of.push(pc);
        }
        // The transfer µop is always the last of its lowered sequence,
        // and the link value (pc+4) is the next instruction's start.
        let last = starts[i] + n - 1;
        let return_to = starts[i] + n;
        match *inst {
            Rv32Inst::Jal { rd, offset } if rd != 0 => {
                let target = resolve_target(pc, word, offset, image.text_base, &starts)?;
                calls.push(CallSite { uop: last, return_to, target: Some(target), pc });
            }
            Rv32Inst::Jalr { rd, rs1, offset } => {
                table_loads.push(starts[i] + 3);
                if rd != 0 {
                    calls.push(CallSite { uop: last, return_to, target: None, pc });
                } else if rs1 == 1 && offset == 0 {
                    returns.push(last);
                }
                // `jalr x0` through a non-link register with an offset
                // is a computed jump — neither a call nor a return.
            }
            _ => {}
        }
        pc = pc.wrapping_add(4);
    }
    debug_assert_eq!(pc_of.len(), insts.len());

    let mut data = DataImage::new();
    for (base, bytes) in &image.data {
        for (j, &b) in bytes.iter().enumerate() {
            data.set_byte(u64::from(*base) + j as u64, b);
        }
    }
    for (i, &start) in starts.iter().enumerate() {
        let addr = u64::from(image.text_base) + 4 * i as u64;
        data.set_word(TABLE_BASE + 2 * addr, start);
    }
    let prov = Provenance {
        pc_of,
        starts,
        text_base: image.text_base,
        calls,
        returns,
        table_loads,
        entry: if prologue == 1 { 0 } else { entry_uop },
    };
    Ok((Program::new(name, insts, data), prov))
}
