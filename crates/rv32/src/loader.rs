//! Binary loaders: flat RV32 images and a minimal ELF32 subset.
//!
//! Both loaders produce an [`Rv32Image`] — the neutral "text words +
//! data segments" form that [`crate::lower::translate`] consumes. All
//! malformed inputs are *typed* [`LoadError`]s; the parsers never
//! panic, whatever the bytes (pinned by the every-byte-prefix fuzz
//! tests in `tests/fuzz.rs`).

/// A loaded RV32 program image, before decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rv32Image {
    /// Entry point (byte address; must land inside the text segment).
    pub entry: u32,
    /// Byte address of the first text word.
    pub text_base: u32,
    /// The executable words, in address order from `text_base`.
    pub text: Vec<u32>,
    /// Initialised data segments as `(base address, bytes)` pairs.
    pub data: Vec<(u32, Vec<u8>)>,
}

/// Why a byte blob failed to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadError {
    /// The text segment's byte length is not a multiple of 4.
    TruncatedText {
        /// Length in bytes of the offending segment.
        len: usize,
    },
    /// A segment base (or the entry point) is not 4-byte aligned.
    Misaligned {
        /// The offending address.
        addr: u32,
    },
    /// The image has no executable segment.
    NoText,
    /// The image has more than one executable segment.
    MultipleText,
    /// The entry point is outside the text segment.
    EntryOutsideText {
        /// The offending entry address.
        entry: u32,
    },
    /// The blob is too short to hold the ELF header.
    ElfTooShort {
        /// Actual length in bytes.
        len: usize,
    },
    /// The blob does not start with `\x7fELF`.
    NotElf,
    /// `e_ident[EI_CLASS]` is not ELFCLASS32.
    BadClass(u8),
    /// `e_ident[EI_DATA]` is not little-endian.
    BadEndian(u8),
    /// `e_machine` is not EM_RISCV (0xf3).
    BadMachine(u16),
    /// A program header or segment lies outside the blob.
    BadSegment {
        /// Index of the offending program header.
        index: u16,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::TruncatedText { len } => {
                write!(f, "text length {len} is not a multiple of 4")
            }
            LoadError::Misaligned { addr } => write!(f, "address {addr:#010x} is not 4-aligned"),
            LoadError::NoText => write!(f, "image has no executable segment"),
            LoadError::MultipleText => write!(f, "image has more than one executable segment"),
            LoadError::EntryOutsideText { entry } => {
                write!(f, "entry {entry:#010x} is outside the text segment")
            }
            LoadError::ElfTooShort { len } => write!(f, "{len} bytes is too short for ELF32"),
            LoadError::NotElf => write!(f, "missing \\x7fELF magic"),
            LoadError::BadClass(c) => write!(f, "ELF class {c} is not ELFCLASS32"),
            LoadError::BadEndian(d) => write!(f, "ELF data encoding {d} is not little-endian"),
            LoadError::BadMachine(m) => write!(f, "ELF machine {m:#06x} is not EM_RISCV"),
            LoadError::BadSegment { index } => {
                write!(f, "program header {index} lies outside the file")
            }
        }
    }
}

impl std::error::Error for LoadError {}

fn words_of(bytes: &[u8]) -> Result<Vec<u32>, LoadError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(LoadError::TruncatedText { len: bytes.len() });
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Loads a flat binary: the whole blob is the text segment, mapped at
/// `base` with the entry at `base`.
///
/// # Errors
///
/// [`LoadError::Misaligned`] if `base` is not 4-aligned,
/// [`LoadError::TruncatedText`] if the blob length is not a multiple
/// of 4, [`LoadError::NoText`] if it is empty.
pub fn load_flat(bytes: &[u8], base: u32) -> Result<Rv32Image, LoadError> {
    if !base.is_multiple_of(4) {
        return Err(LoadError::Misaligned { addr: base });
    }
    let text = words_of(bytes)?;
    if text.is_empty() {
        return Err(LoadError::NoText);
    }
    Ok(Rv32Image { entry: base, text_base: base, text, data: Vec::new() })
}

// -- minimal ELF32 ----------------------------------------------------

const EHDR_LEN: usize = 52;
const PHDR_LEN: usize = 32;
const PT_LOAD: u32 = 1;
const PF_X: u32 = 1;
const EM_RISCV: u16 = 0xf3;

fn u16_at(b: &[u8], off: usize) -> Option<u16> {
    Some(u16::from_le_bytes([*b.get(off)?, *b.get(off + 1)?]))
}

fn u32_at(b: &[u8], off: usize) -> Option<u32> {
    Some(u32::from_le_bytes([*b.get(off)?, *b.get(off + 1)?, *b.get(off + 2)?, *b.get(off + 3)?]))
}

/// Loads a minimal static ELF32 executable: little-endian, EM_RISCV,
/// `PT_LOAD` segments only. The unique segment with `PF_X` becomes
/// text; the others become initialised data (any `memsz > filesz` BSS
/// tail is implicit — the simulator's memory is zero by default).
///
/// # Errors
///
/// A typed [`LoadError`] for any blob this subset cannot represent;
/// never panics, whatever the bytes.
pub fn load_elf32(bytes: &[u8]) -> Result<Rv32Image, LoadError> {
    if bytes.len() < EHDR_LEN {
        return Err(LoadError::ElfTooShort { len: bytes.len() });
    }
    if &bytes[0..4] != b"\x7fELF" {
        return Err(LoadError::NotElf);
    }
    if bytes[4] != 1 {
        return Err(LoadError::BadClass(bytes[4]));
    }
    if bytes[5] != 1 {
        return Err(LoadError::BadEndian(bytes[5]));
    }
    let machine = u16_at(bytes, 18).ok_or(LoadError::ElfTooShort { len: bytes.len() })?;
    if machine != EM_RISCV {
        return Err(LoadError::BadMachine(machine));
    }
    let entry = u32_at(bytes, 24).ok_or(LoadError::ElfTooShort { len: bytes.len() })?;
    let phoff = u32_at(bytes, 28).ok_or(LoadError::ElfTooShort { len: bytes.len() })? as usize;
    let phnum = u16_at(bytes, 44).ok_or(LoadError::ElfTooShort { len: bytes.len() })?;

    let mut text: Option<(u32, Vec<u32>)> = None;
    let mut data = Vec::new();
    for i in 0..phnum {
        let ph = phoff + usize::from(i) * PHDR_LEN;
        let p_type = u32_at(bytes, ph).ok_or(LoadError::BadSegment { index: i })?;
        if p_type != PT_LOAD {
            continue;
        }
        let p_offset = u32_at(bytes, ph + 4).ok_or(LoadError::BadSegment { index: i })? as usize;
        let p_vaddr = u32_at(bytes, ph + 8).ok_or(LoadError::BadSegment { index: i })?;
        let p_filesz = u32_at(bytes, ph + 16).ok_or(LoadError::BadSegment { index: i })? as usize;
        let p_flags = u32_at(bytes, ph + 24).ok_or(LoadError::BadSegment { index: i })?;
        let contents = p_offset
            .checked_add(p_filesz)
            .and_then(|end| bytes.get(p_offset..end))
            .ok_or(LoadError::BadSegment { index: i })?;
        if p_flags & PF_X != 0 {
            if p_vaddr % 4 != 0 {
                return Err(LoadError::Misaligned { addr: p_vaddr });
            }
            if text.is_some() {
                return Err(LoadError::MultipleText);
            }
            text = Some((p_vaddr, words_of(contents)?));
        } else if p_filesz > 0 {
            data.push((p_vaddr, contents.to_vec()));
        }
    }
    let (text_base, text) = text.ok_or(LoadError::NoText)?;
    if text.is_empty() {
        return Err(LoadError::NoText);
    }
    if entry % 4 != 0 {
        return Err(LoadError::Misaligned { addr: entry });
    }
    let text_len = u32::try_from(text.len() * 4).map_err(|_| LoadError::NoText)?;
    let in_text = entry >= text_base && entry.wrapping_sub(text_base) < text_len;
    if !in_text {
        return Err(LoadError::EntryOutsideText { entry });
    }
    Ok(Rv32Image { entry, text_base, text, data })
}

/// Serialises an [`Rv32Image`] back into a minimal ELF32 executable —
/// the round-trip partner of [`load_elf32`], used by the corpus tests
/// and handy for exporting corpus entries to real tooling.
#[must_use]
pub fn to_elf32(image: &Rv32Image) -> Vec<u8> {
    let phnum = 1 + image.data.len();
    let mut out = vec![0u8; EHDR_LEN + phnum * PHDR_LEN];
    out[0..4].copy_from_slice(b"\x7fELF");
    out[4] = 1; // ELFCLASS32
    out[5] = 1; // little-endian
    out[6] = 1; // EV_CURRENT
    out[16..18].copy_from_slice(&2u16.to_le_bytes()); // ET_EXEC
    out[18..20].copy_from_slice(&EM_RISCV.to_le_bytes());
    out[20..24].copy_from_slice(&1u32.to_le_bytes()); // e_version
    out[24..28].copy_from_slice(&image.entry.to_le_bytes());
    out[28..32].copy_from_slice(&(EHDR_LEN as u32).to_le_bytes()); // e_phoff
    out[40..42].copy_from_slice(&(EHDR_LEN as u16).to_le_bytes()); // e_ehsize
    out[42..44].copy_from_slice(&(PHDR_LEN as u16).to_le_bytes()); // e_phentsize
    out[44..46].copy_from_slice(&(phnum as u16).to_le_bytes()); // e_phnum

    let mut segments: Vec<(u32, Vec<u8>, u32)> = Vec::with_capacity(phnum);
    let text_bytes: Vec<u8> = image.text.iter().flat_map(|w| w.to_le_bytes()).collect();
    segments.push((image.text_base, text_bytes, PF_X | 4)); // R+X
    for (base, bytes) in &image.data {
        segments.push((*base, bytes.clone(), 4 | 2)); // R+W
    }

    for (i, (vaddr, bytes, flags)) in segments.iter().enumerate() {
        let off = out.len() as u32;
        let ph = EHDR_LEN + i * PHDR_LEN;
        out[ph..ph + 4].copy_from_slice(&PT_LOAD.to_le_bytes());
        out[ph + 4..ph + 8].copy_from_slice(&off.to_le_bytes());
        out[ph + 8..ph + 12].copy_from_slice(&vaddr.to_le_bytes());
        out[ph + 12..ph + 16].copy_from_slice(&vaddr.to_le_bytes()); // p_paddr
        out[ph + 16..ph + 20].copy_from_slice(&(bytes.len() as u32).to_le_bytes());
        out[ph + 20..ph + 24].copy_from_slice(&(bytes.len() as u32).to_le_bytes());
        out[ph + 24..ph + 28].copy_from_slice(&flags.to_le_bytes());
        out[ph + 28..ph + 32].copy_from_slice(&4u32.to_le_bytes()); // p_align
        out.extend_from_slice(bytes);
    }
    out
}
