//! RV32I+M instruction *encoders* — the inverse of [`mod@crate::decode`].
//!
//! These exist so the corpus and the decoder can check each other: the
//! checked-in corpus word arrays are pinned equal to programs built
//! with these encoders (see `corpus::gen`), and the decode golden tests
//! assert `decode(enc(..)) == inst` for every op. They take natural
//! assembly operands (`rd, rs1, rs2` / `rd, offset(rs1)` / branch byte
//! offsets) and debug-assert the operands are encodable.

// -- format-level encoders --------------------------------------------

fn reg(r: u8) -> u32 {
    debug_assert!(r < 32, "register index {r} out of range");
    u32::from(r & 0x1f)
}

fn r_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, rs2: u8, funct7: u32) -> u32 {
    opcode | reg(rd) << 7 | funct3 << 12 | reg(rs1) << 15 | reg(rs2) << 20 | funct7 << 25
}

fn i_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "I-immediate {imm} out of range");
    opcode | reg(rd) << 7 | funct3 << 12 | reg(rs1) << 15 | ((imm as u32) & 0xfff) << 20
}

fn s_type(opcode: u32, funct3: u32, rs1: u8, rs2: u8, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "S-immediate {imm} out of range");
    let imm = imm as u32;
    opcode
        | (imm & 0x1f) << 7
        | funct3 << 12
        | reg(rs1) << 15
        | reg(rs2) << 20
        | ((imm >> 5) & 0x7f) << 25
}

fn b_type(opcode: u32, funct3: u32, rs1: u8, rs2: u8, offset: i32) -> u32 {
    debug_assert!(offset % 2 == 0, "B-offset {offset} must be even");
    debug_assert!((-4096..=4094).contains(&offset), "B-offset {offset} out of range");
    let imm = offset as u32;
    opcode
        | ((imm >> 11) & 0x1) << 7
        | ((imm >> 1) & 0xf) << 8
        | funct3 << 12
        | reg(rs1) << 15
        | reg(rs2) << 20
        | ((imm >> 5) & 0x3f) << 25
        | ((imm >> 12) & 0x1) << 31
}

fn u_type(opcode: u32, rd: u8, imm: u32) -> u32 {
    debug_assert!(imm & 0xfff == 0, "U-immediate {imm:#x} has low bits set");
    opcode | reg(rd) << 7 | imm
}

fn j_type(opcode: u32, rd: u8, offset: i32) -> u32 {
    debug_assert!(offset % 2 == 0, "J-offset {offset} must be even");
    debug_assert!((-(1 << 20)..(1 << 20)).contains(&offset), "J-offset {offset} out of range");
    let imm = offset as u32;
    opcode
        | reg(rd) << 7
        | (imm & 0xf_f000)
        | ((imm >> 11) & 0x1) << 20
        | ((imm >> 1) & 0x3ff) << 21
        | ((imm >> 20) & 0x1) << 31
}

// -- mnemonic helpers -------------------------------------------------

/// `lui rd, imm` — `imm` is the full 32-bit value (low 12 bits zero).
#[must_use]
pub fn lui(rd: u8, imm: u32) -> u32 {
    u_type(0x37, rd, imm)
}

/// `auipc rd, imm` — `imm` is the full 32-bit value (low 12 bits zero).
#[must_use]
pub fn auipc(rd: u8, imm: u32) -> u32 {
    u_type(0x17, rd, imm)
}

/// `jal rd, offset` (byte offset from this instruction).
#[must_use]
pub fn jal(rd: u8, offset: i32) -> u32 {
    j_type(0x6f, rd, offset)
}

/// `jalr rd, offset(rs1)`.
#[must_use]
pub fn jalr(rd: u8, rs1: u8, offset: i32) -> u32 {
    i_type(0x67, rd, 0, rs1, offset)
}

macro_rules! branches {
    ($($(#[$doc:meta])* $name:ident => $f3:expr;)*) => {$(
        $(#[$doc])*
        #[must_use]
        pub fn $name(rs1: u8, rs2: u8, offset: i32) -> u32 {
            b_type(0x63, $f3, rs1, rs2, offset)
        }
    )*};
}

branches! {
    /// `beq rs1, rs2, offset`.
    beq => 0;
    /// `bne rs1, rs2, offset`.
    bne => 1;
    /// `blt rs1, rs2, offset`.
    blt => 4;
    /// `bge rs1, rs2, offset`.
    bge => 5;
    /// `bltu rs1, rs2, offset`.
    bltu => 6;
    /// `bgeu rs1, rs2, offset`.
    bgeu => 7;
}

macro_rules! loads {
    ($($(#[$doc:meta])* $name:ident => $f3:expr;)*) => {$(
        $(#[$doc])*
        #[must_use]
        pub fn $name(rd: u8, offset: i32, rs1: u8) -> u32 {
            i_type(0x03, rd, $f3, rs1, offset)
        }
    )*};
}

loads! {
    /// `lb rd, offset(rs1)`.
    lb => 0;
    /// `lh rd, offset(rs1)`.
    lh => 1;
    /// `lw rd, offset(rs1)`.
    lw => 2;
    /// `lbu rd, offset(rs1)`.
    lbu => 4;
    /// `lhu rd, offset(rs1)`.
    lhu => 5;
}

macro_rules! stores {
    ($($(#[$doc:meta])* $name:ident => $f3:expr;)*) => {$(
        $(#[$doc])*
        #[must_use]
        pub fn $name(rs2: u8, offset: i32, rs1: u8) -> u32 {
            s_type(0x23, $f3, rs1, rs2, offset)
        }
    )*};
}

stores! {
    /// `sb rs2, offset(rs1)`.
    sb => 0;
    /// `sh rs2, offset(rs1)`.
    sh => 1;
    /// `sw rs2, offset(rs1)`.
    sw => 2;
}

macro_rules! op_imms {
    ($($(#[$doc:meta])* $name:ident => $f3:expr;)*) => {$(
        $(#[$doc])*
        #[must_use]
        pub fn $name(rd: u8, rs1: u8, imm: i32) -> u32 {
            i_type(0x13, rd, $f3, rs1, imm)
        }
    )*};
}

op_imms! {
    /// `addi rd, rs1, imm`.
    addi => 0;
    /// `slti rd, rs1, imm`.
    slti => 2;
    /// `sltiu rd, rs1, imm`.
    sltiu => 3;
    /// `xori rd, rs1, imm`.
    xori => 4;
    /// `ori rd, rs1, imm`.
    ori => 6;
    /// `andi rd, rs1, imm`.
    andi => 7;
}

macro_rules! shift_imms {
    ($($(#[$doc:meta])* $name:ident => ($f3:expr, $f7:expr);)*) => {$(
        $(#[$doc])*
        #[must_use]
        pub fn $name(rd: u8, rs1: u8, shamt: u8) -> u32 {
            debug_assert!(shamt < 32, "shift amount {shamt} out of range");
            r_type(0x13, rd, $f3, rs1, shamt, $f7)
        }
    )*};
}

shift_imms! {
    /// `slli rd, rs1, shamt`.
    slli => (1, 0x00);
    /// `srli rd, rs1, shamt`.
    srli => (5, 0x00);
    /// `srai rd, rs1, shamt`.
    srai => (5, 0x20);
}

macro_rules! ops {
    ($($(#[$doc:meta])* $name:ident => ($f3:expr, $f7:expr);)*) => {$(
        $(#[$doc])*
        #[must_use]
        pub fn $name(rd: u8, rs1: u8, rs2: u8) -> u32 {
            r_type(0x33, rd, $f3, rs1, rs2, $f7)
        }
    )*};
}

ops! {
    /// `add rd, rs1, rs2`.
    add => (0, 0x00);
    /// `sub rd, rs1, rs2`.
    sub => (0, 0x20);
    /// `sll rd, rs1, rs2`.
    sll => (1, 0x00);
    /// `slt rd, rs1, rs2`.
    slt => (2, 0x00);
    /// `sltu rd, rs1, rs2`.
    sltu => (3, 0x00);
    /// `xor rd, rs1, rs2`.
    xor => (4, 0x00);
    /// `srl rd, rs1, rs2`.
    srl => (5, 0x00);
    /// `sra rd, rs1, rs2`.
    sra => (5, 0x20);
    /// `or rd, rs1, rs2`.
    or => (6, 0x00);
    /// `and rd, rs1, rs2`.
    and => (7, 0x00);
    /// `mul rd, rs1, rs2` (M extension).
    mul => (0, 0x01);
    /// `mulh rd, rs1, rs2` (M extension).
    mulh => (1, 0x01);
    /// `mulhsu rd, rs1, rs2` (M extension).
    mulhsu => (2, 0x01);
    /// `mulhu rd, rs1, rs2` (M extension).
    mulhu => (3, 0x01);
    /// `div rd, rs1, rs2` (M extension).
    div => (4, 0x01);
    /// `divu rd, rs1, rs2` (M extension).
    divu => (5, 0x01);
    /// `rem rd, rs1, rs2` (M extension).
    rem => (6, 0x01);
    /// `remu rd, rs1, rs2` (M extension).
    remu => (7, 0x01);
}

/// A plain `fence` (pred/succ = iorw,iorw as GCC emits it).
#[must_use]
pub fn fence() -> u32 {
    0x0ff0_000f
}

/// `ebreak`.
#[must_use]
pub fn ebreak() -> u32 {
    0x0010_0073
}

/// `li rd, value` expanded exactly as the assembler does: `addi` when
/// the value fits 12 signed bits, else `lui` (+ `addi` when the low
/// bits are non-zero), with the carry into the upper immediate that the
/// sign-extending `addi` requires.
#[must_use]
pub fn li(rd: u8, value: i32) -> Vec<u32> {
    if (-2048..=2047).contains(&value) {
        return vec![addi(rd, 0, value)];
    }
    let low = (value << 20) >> 20; // sign-extended low 12 bits
    let high = (value.wrapping_sub(low)) as u32; // upper 20 bits + carry
    if low == 0 {
        vec![lui(rd, high)]
    } else {
        vec![lui(rd, high), addi(rd, rd, low)]
    }
}
