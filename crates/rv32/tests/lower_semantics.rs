//! RV32 semantics through the full decode → lower → interpret chain:
//! width/sign edge cases of every ALU op, the M-extension division
//! corner cases the spec pins, `jalr` through the translation table,
//! and the typed lowering errors.

use sdo_isa::Interpreter;
use sdo_rv32::enc;
use sdo_rv32::lower::{translate, LowerErrorKind, TranslateError};
use sdo_rv32::Rv32Image;

const BASE: u32 = 0x1000;
const RESULT: u32 = 0x2_0000;

/// An R-type word encoder from `enc`: `(rd, rs1, rs2) -> word`.
type RTypeEnc = fn(u8, u8, u8) -> u32;
/// A load word encoder from `enc`: `(rd, offset, rs1) -> word`.
type LoadEnc = fn(u8, i32, u8) -> u32;

fn image(text: Vec<u32>) -> Rv32Image {
    Rv32Image { entry: BASE, text_base: BASE, text, data: Vec::new() }
}

/// Runs `op(a2, a0, a1)` on 32-bit inputs `x`, `y` and returns the
/// 32-bit result, going through the full chain.
fn run_op(op: impl Fn(u8, u8, u8) -> u32, x: i32, y: i32) -> u32 {
    let mut text = Vec::new();
    text.extend(enc::li(10, x));
    text.extend(enc::li(11, y));
    text.push(op(12, 10, 11));
    text.extend(enc::li(15, RESULT as i32));
    text.push(enc::sw(12, 0, 15));
    text.push(enc::ebreak());
    let program = translate(&image(text), "op_test").expect("tiny program translates");
    let mut interp = Interpreter::new(&program);
    interp.run(100).expect("tiny program halts");
    let a = u64::from(RESULT);
    u32::from_le_bytes([
        interp.mem_byte(a),
        interp.mem_byte(a + 1),
        interp.mem_byte(a + 2),
        interp.mem_byte(a + 3),
    ])
}

/// RV32 `div` semantics (never traps).
fn rv_div(x: i32, y: i32) -> i32 {
    if y == 0 {
        -1
    } else if x == i32::MIN && y == -1 {
        i32::MIN
    } else {
        x / y
    }
}

/// RV32 `rem` semantics (never traps).
fn rv_rem(x: i32, y: i32) -> i32 {
    if y == 0 {
        x
    } else if x == i32::MIN && y == -1 {
        0
    } else {
        x % y
    }
}

const SAMPLES: &[i32] = &[0, 1, -1, 2, 3, -7, 42, 255, 0x7fff, -0x8000, i32::MAX, i32::MIN];

#[test]
fn alu_ops_match_rv32_semantics_on_sample_grid() {
    for &x in SAMPLES {
        for &y in SAMPLES {
            let ux = x as u32;
            let uy = y as u32;
            let sh = uy & 31;
            let cases: &[(&str, RTypeEnc, u32)] = &[
                ("add", enc::add, ux.wrapping_add(uy)),
                ("sub", enc::sub, ux.wrapping_sub(uy)),
                ("sll", enc::sll, ux.wrapping_shl(sh)),
                ("srl", enc::srl, ux.wrapping_shr(sh)),
                ("sra", enc::sra, (x >> sh) as u32),
                ("slt", enc::slt, u32::from(x < y)),
                ("sltu", enc::sltu, u32::from(ux < uy)),
                ("xor", enc::xor, ux ^ uy),
                ("or", enc::or, ux | uy),
                ("and", enc::and, ux & uy),
                ("mul", enc::mul, ux.wrapping_mul(uy)),
                ("mulh", enc::mulh, ((i64::from(x) * i64::from(y)) >> 32) as u32),
                ("mulhsu", enc::mulhsu, ((i64::from(x) * i64::from(uy)) >> 32) as u32),
                ("mulhu", enc::mulhu, ((u64::from(ux) * u64::from(uy)) >> 32) as u32),
                ("div", enc::div, rv_div(x, y) as u32),
                ("rem", enc::rem, rv_rem(x, y) as u32),
            ];
            for (name, f, want) in cases {
                assert_eq!(run_op(f, x, y), *want, "{name}({x}, {y})");
            }
            let divu = ux.checked_div(uy).unwrap_or(u32::MAX);
            assert_eq!(run_op(enc::divu, x, y), divu, "divu({ux}, {uy})");
            let remu = ux.checked_rem(uy).unwrap_or(ux);
            assert_eq!(run_op(enc::remu, x, y), remu, "remu({ux}, {uy})");
        }
    }
}

#[test]
fn division_corner_cases_are_pinned() {
    assert_eq!(run_op(enc::div, i32::MIN, -1), i32::MIN as u32, "signed overflow");
    assert_eq!(run_op(enc::rem, i32::MIN, -1), 0);
    assert_eq!(run_op(enc::div, 7, 0), u32::MAX, "div by zero is -1");
    assert_eq!(run_op(enc::rem, 7, 0), 7, "rem by zero is the dividend");
    assert_eq!(run_op(enc::divu, 7, 0), u32::MAX);
    assert_eq!(run_op(enc::remu, 7, 0), 7);
}

#[test]
fn loads_sign_and_zero_extend() {
    // data: 0xfe at byte 0x10000, 0x8001 halfword at 0x10002,
    // 0xffff_fffe word at 0x10004.
    let data = vec![(0x1_0000, vec![0xfe, 0x00, 0x01, 0x80, 0xfe, 0xff, 0xff, 0xff])];
    let cases: &[(LoadEnc, i32, u32)] = &[
        (enc::lb, 0, 0xffff_fffe),  // sign-extended byte
        (enc::lbu, 0, 0xfe),        // zero-extended byte
        (enc::lh, 2, 0xffff_8001),  // sign-extended halfword
        (enc::lhu, 2, 0x8001),      // zero-extended halfword
        (enc::lw, 4, 0xffff_fffe),  // word
    ];
    for (f, offset, want) in cases {
        let mut text = Vec::new();
        text.extend(enc::li(10, 0x1_0000));
        text.push(f(12, *offset, 10));
        text.extend(enc::li(15, RESULT as i32));
        text.push(enc::sw(12, 0, 15));
        text.push(enc::ebreak());
        let mut img = image(text);
        img.data.clone_from(&data);
        let program = translate(&img, "load_test").expect("translates");
        let mut interp = Interpreter::new(&program);
        interp.run(100).expect("halts");
        let a = u64::from(RESULT);
        let got = u32::from_le_bytes([
            interp.mem_byte(a),
            interp.mem_byte(a + 1),
            interp.mem_byte(a + 2),
            interp.mem_byte(a + 3),
        ]);
        assert_eq!(got, *want, "load offset {offset}");
    }
}

#[test]
fn narrow_stores_leave_neighbours_alone() {
    let mut text = Vec::new();
    text.extend(enc::li(10, RESULT as i32));
    text.extend(enc::li(11, -1)); // 0xffffffff
    text.push(enc::sw(11, 0, 10));
    text.extend(enc::li(12, 0x42));
    text.push(enc::sb(12, 1, 10)); // overwrite byte 1 only
    text.push(enc::ebreak());
    let program = translate(&image(text), "store_test").expect("translates");
    let mut interp = Interpreter::new(&program);
    interp.run(100).expect("halts");
    let a = u64::from(RESULT);
    let got = u32::from_le_bytes([
        interp.mem_byte(a),
        interp.mem_byte(a + 1),
        interp.mem_byte(a + 2),
        interp.mem_byte(a + 3),
    ]);
    assert_eq!(got, 0xffff_42ff);
}

#[test]
fn jalr_resolves_through_the_translation_table() {
    // Compute a function pointer with auipc/addi, call through it, and
    // return: four distinct jalr-table lookups (two calls, two rets).
    let mut text = Vec::new();
    text.extend(enc::li(2, 0x8_0000)); // sp
    text.push(enc::auipc(5, 0)); // t0 = pc (word 1)
    text.push(enc::addi(5, 5, 24)); // &callee (word 7 = pc + 24)
    text.push(enc::jalr(1, 5, 0)); // call through the pointer
    text.extend(enc::li(15, RESULT as i32));
    text.push(enc::sw(10, 0, 15));
    text.push(enc::ebreak());
    // callee: a0 = 0x1234
    text.extend(enc::li(10, 0x1234));
    text.push(enc::jalr(0, 1, 0)); // ret
    let program = translate(&image(text), "jalr_test").expect("translates");
    let mut interp = Interpreter::new(&program);
    interp.run(200).expect("halts");
    let a = u64::from(RESULT);
    let got = u32::from_le_bytes([
        interp.mem_byte(a),
        interp.mem_byte(a + 1),
        interp.mem_byte(a + 2),
        interp.mem_byte(a + 3),
    ]);
    assert_eq!(got, 0x1234);
}

#[test]
fn entry_not_at_text_base_gets_a_prologue_jump() {
    // Word 0 would clobber a0; the entry skips it.
    let text = vec![
        enc::addi(10, 0, 99), // skipped
        enc::addi(10, 0, 7),
        enc::ebreak(),
    ];
    let img = Rv32Image { entry: BASE + 4, text_base: BASE, text, data: Vec::new() };
    let program = translate(&img, "entry_test").expect("translates");
    let mut interp = Interpreter::new(&program);
    interp.run(100).expect("halts");
    assert_eq!(interp.reg(sdo_isa::Reg::new(10)), 7);
}

// -- typed lowering errors --------------------------------------------

fn lower_err(text: Vec<u32>) -> TranslateError {
    translate(&image(text), "err_test").expect_err("should not translate")
}

#[test]
fn reserved_registers_are_rejected_with_pc_and_word() {
    for (word, reg) in [
        (enc::addi(3, 0, 1), 3),  // writes x3 (gp)
        (enc::addi(5, 4, 1), 4),  // reads x4 (tp)
        (enc::sw(3, 0, 10), 3),   // stores x3
        (enc::jalr(0, 3, 0), 3),  // jumps through x3
    ] {
        let text = vec![enc::addi(0, 0, 0), word, enc::ebreak()];
        match lower_err(text) {
            TranslateError::Lower(e) => {
                assert_eq!(e.kind, LowerErrorKind::ReservedReg { reg });
                assert_eq!(e.pc, BASE + 4, "faulting pc");
                assert_eq!(e.word, word, "faulting word");
            }
            TranslateError::Decode(e) => panic!("unexpected decode error: {e}"),
        }
    }
}

#[test]
fn bad_branch_targets_are_rejected() {
    // Misaligned: a 2-byte branch offset (no C extension here).
    match lower_err(vec![enc::beq(0, 0, 2), enc::ebreak()]) {
        TranslateError::Lower(e) => {
            assert_eq!(e.kind, LowerErrorKind::MisalignedTarget { target: BASE + 2 });
        }
        TranslateError::Decode(e) => panic!("unexpected decode error: {e}"),
    }
    // Out of text, both directions.
    match lower_err(vec![enc::jal(0, -8), enc::ebreak()]) {
        TranslateError::Lower(e) => {
            assert_eq!(e.kind, LowerErrorKind::TargetOutsideText { target: BASE - 8 });
        }
        TranslateError::Decode(e) => panic!("unexpected decode error: {e}"),
    }
    match lower_err(vec![enc::bne(1, 2, 1024), enc::ebreak()]) {
        TranslateError::Lower(e) => {
            assert_eq!(e.kind, LowerErrorKind::TargetOutsideText { target: BASE + 1024 });
        }
        TranslateError::Decode(e) => panic!("unexpected decode error: {e}"),
    }
}

#[test]
fn decode_errors_surface_through_translate() {
    match lower_err(vec![enc::addi(1, 0, 1), 0x0000_0073, enc::ebreak()]) {
        TranslateError::Decode(e) => {
            assert_eq!(e.pc, BASE + 4);
            assert_eq!(e.word, 0x0000_0073);
        }
        TranslateError::Lower(e) => panic!("unexpected lower error: {e}"),
    }
}

// -- pc provenance ----------------------------------------------------

#[test]
fn provenance_maps_every_uop_and_records_call_structure() {
    use sdo_rv32::lower::translate_with_provenance;
    // main: call f directly, then f returns via a ret-shaped jalr.
    let mut text = Vec::new();
    text.extend(enc::li(2, 0x8_0000)); // sp
    let call_word = text.len();
    text.push(0); // patched below: jal ra, f
    text.push(enc::ebreak());
    let f_word = text.len();
    text.extend(enc::li(10, 5));
    let ret_word = text.len();
    text.push(enc::jalr(0, 1, 0)); // ret
    let off = i32::try_from(4 * (f_word - call_word)).expect("small");
    text[call_word] = enc::jal(1, off);
    let call_pc = BASE + 4 * u32::try_from(call_word).expect("small");
    let ret_pc = BASE + 4 * u32::try_from(ret_word).expect("small");
    let (program, prov) = translate_with_provenance(&image(text), "prov").expect("translates");
    assert_eq!(prov.pc_of.len(), program.instructions().len());
    assert_eq!(prov.text_base, BASE);
    assert_eq!(prov.entry, 0);
    // Addresses never decrease along the uop stream.
    for w in prov.pc_of.windows(2) {
        assert!(w[0] <= w[1]);
    }
    // The direct call: transfer uop points at f's start and resumes at
    // the word after the call.
    assert_eq!(prov.calls.len(), 1);
    let call = prov.calls[0];
    assert_eq!(call.pc, call_pc);
    assert_eq!(call.target, Some(prov.starts[f_word]));
    assert_eq!(call.return_to, prov.starts[call_word + 1]);
    assert_eq!(prov.rv32_pc(call.uop), Some(call_pc));
    // The ret: one return jalr, whose table load is recorded.
    assert_eq!(prov.returns.len(), 1);
    assert_eq!(prov.rv32_pc(prov.returns[0]), Some(ret_pc));
    assert_eq!(prov.table_loads.len(), 1);
    assert!(prov.table_loads[0] < prov.returns[0]);
}
