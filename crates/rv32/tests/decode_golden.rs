//! Exhaustive per-opcode decode golden tests: every supported RV32I+M
//! instruction shape decodes from its `enc` word to the expected
//! [`Rv32Inst`], immediates round-trip at their extremes, and every
//! unsupported encoding is the expected *typed* error carrying pc and
//! raw word.

use sdo_isa::BranchCond;
use sdo_rv32::enc;
use sdo_rv32::{decode, DecodeError, Rv32Inst, Unsupported};
use sdo_rv32::decode::{LoadKind, OpImmKind, OpKind, StoreKind};

const PC: u32 = 0x1000;

fn ok(word: u32) -> Rv32Inst {
    decode(PC, word).unwrap_or_else(|e| panic!("{word:#010x} should decode: {e}"))
}

#[test]
fn u_and_j_types_decode() {
    assert_eq!(ok(enc::lui(7, 0xdead_b000)), Rv32Inst::Lui { rd: 7, imm: 0xdead_b000u32 as i32 });
    assert_eq!(ok(enc::auipc(31, 0x1000)), Rv32Inst::Auipc { rd: 31, imm: 0x1000 });
    assert_eq!(ok(enc::jal(1, 2048)), Rv32Inst::Jal { rd: 1, offset: 2048 });
    assert_eq!(ok(enc::jal(0, -4)), Rv32Inst::Jal { rd: 0, offset: -4 });
    assert_eq!(
        ok(enc::jal(5, (1 << 20) - 2)),
        Rv32Inst::Jal { rd: 5, offset: (1 << 20) - 2 },
        "max positive J-offset"
    );
    assert_eq!(ok(enc::jal(5, -(1 << 20))), Rv32Inst::Jal { rd: 5, offset: -(1 << 20) });
    assert_eq!(ok(enc::jalr(1, 2, -16)), Rv32Inst::Jalr { rd: 1, rs1: 2, offset: -16 });
}

#[test]
fn every_branch_decodes() {
    let cases = [
        (enc::beq as fn(u8, u8, i32) -> u32, BranchCond::Eq),
        (enc::bne, BranchCond::Ne),
        (enc::blt, BranchCond::Lt),
        (enc::bge, BranchCond::Ge),
        (enc::bltu, BranchCond::LtU),
        (enc::bgeu, BranchCond::GeU),
    ];
    for (f, cond) in cases {
        for offset in [-4096, -2, 0, 2, 64, 4094] {
            assert_eq!(
                ok(f(3, 9, offset)),
                Rv32Inst::Branch { cond, rs1: 3, rs2: 9, offset },
                "{cond:?} offset {offset}"
            );
        }
    }
}

#[test]
fn every_load_and_store_decodes() {
    let loads = [
        (enc::lb as fn(u8, i32, u8) -> u32, LoadKind::Lb),
        (enc::lh, LoadKind::Lh),
        (enc::lw, LoadKind::Lw),
        (enc::lbu, LoadKind::Lbu),
        (enc::lhu, LoadKind::Lhu),
    ];
    for (f, kind) in loads {
        for offset in [-2048, -1, 0, 4, 2047] {
            assert_eq!(
                ok(f(8, offset, 2)),
                Rv32Inst::Load { kind, rd: 8, rs1: 2, offset },
                "{kind:?} offset {offset}"
            );
        }
    }
    let stores = [
        (enc::sb as fn(u8, i32, u8) -> u32, StoreKind::Sb),
        (enc::sh, StoreKind::Sh),
        (enc::sw, StoreKind::Sw),
    ];
    for (f, kind) in stores {
        for offset in [-2048, -1, 0, 4, 2047] {
            assert_eq!(
                ok(f(9, offset, 2)),
                Rv32Inst::Store { kind, rs1: 2, rs2: 9, offset },
                "{kind:?} offset {offset}"
            );
        }
    }
}

#[test]
fn every_op_imm_decodes() {
    let cases = [
        (enc::addi as fn(u8, u8, i32) -> u32, OpImmKind::Addi),
        (enc::slti, OpImmKind::Slti),
        (enc::sltiu, OpImmKind::Sltiu),
        (enc::xori, OpImmKind::Xori),
        (enc::ori, OpImmKind::Ori),
        (enc::andi, OpImmKind::Andi),
    ];
    for (f, kind) in cases {
        for imm in [-2048, -1, 0, 1, 2047] {
            assert_eq!(
                ok(f(6, 7, imm)),
                Rv32Inst::OpImm { kind, rd: 6, rs1: 7, imm },
                "{kind:?} imm {imm}"
            );
        }
    }
    let shifts = [
        (enc::slli as fn(u8, u8, u8) -> u32, OpImmKind::Slli),
        (enc::srli, OpImmKind::Srli),
        (enc::srai, OpImmKind::Srai),
    ];
    for (f, kind) in shifts {
        for shamt in [0u8, 1, 15, 31] {
            assert_eq!(
                ok(f(6, 7, shamt)),
                Rv32Inst::OpImm { kind, rd: 6, rs1: 7, imm: i32::from(shamt) },
                "{kind:?} shamt {shamt}"
            );
        }
    }
}

#[test]
fn every_op_decodes() {
    let cases = [
        (enc::add as fn(u8, u8, u8) -> u32, OpKind::Add),
        (enc::sub, OpKind::Sub),
        (enc::sll, OpKind::Sll),
        (enc::slt, OpKind::Slt),
        (enc::sltu, OpKind::Sltu),
        (enc::xor, OpKind::Xor),
        (enc::srl, OpKind::Srl),
        (enc::sra, OpKind::Sra),
        (enc::or, OpKind::Or),
        (enc::and, OpKind::And),
        (enc::mul, OpKind::Mul),
        (enc::mulh, OpKind::Mulh),
        (enc::mulhsu, OpKind::Mulhsu),
        (enc::mulhu, OpKind::Mulhu),
        (enc::div, OpKind::Div),
        (enc::divu, OpKind::Divu),
        (enc::rem, OpKind::Rem),
        (enc::remu, OpKind::Remu),
    ];
    for (f, kind) in cases {
        assert_eq!(
            ok(f(10, 20, 30)),
            Rv32Inst::Op { kind, rd: 10, rs1: 20, rs2: 30 },
            "{kind:?}"
        );
    }
}

#[test]
fn system_and_fence_decode() {
    assert_eq!(ok(enc::fence()), Rv32Inst::Fence);
    // Any pred/succ combination is still a plain fence.
    assert_eq!(ok(0x0330_000f), Rv32Inst::Fence);
    assert_eq!(ok(enc::ebreak()), Rv32Inst::Ebreak);
}

// -- typed errors -----------------------------------------------------

fn expect_err(word: u32, kind: Unsupported) {
    assert_eq!(
        decode(PC, word),
        Err(DecodeError { pc: PC, word, kind }),
        "{word:#010x} should be a typed error"
    );
}

#[test]
fn unsupported_encodings_are_typed_errors() {
    expect_err(0x0000_0073, Unsupported::Ecall);
    // csrrw x0, mstatus, x1 and csrrs (Zicsr).
    expect_err(0x3000_9073, Unsupported::Csr { funct3: 1 });
    expect_err(0x3000_2073, Unsupported::Csr { funct3: 2 });
    // fence.i (Zifencei).
    expect_err(0x0000_100f, Unsupported::Fence { funct3: 1 });
    // ld (RV64-only load, funct3 = 3).
    expect_err(0x0000_3003, Unsupported::Funct { opcode: 0x03, funct3: 3, funct7: 0 });
    // sd (RV64-only store, funct3 = 3).
    expect_err(0x0000_3023, Unsupported::Funct { opcode: 0x23, funct3: 3, funct7: 0 });
    // Branch funct3 gaps (2 and 3).
    expect_err(0x0000_2063, Unsupported::Funct { opcode: 0x63, funct3: 2, funct7: 0 });
    expect_err(0x0000_3063, Unsupported::Funct { opcode: 0x63, funct3: 3, funct7: 0 });
    // jalr with funct3 != 0.
    expect_err(0x0000_1067, Unsupported::Funct { opcode: 0x67, funct3: 1, funct7: 0 });
    // slli with a bad funct7.
    expect_err(enc::slli(1, 1, 1) | 0x4000_0000, Unsupported::Funct {
        opcode: 0x13,
        funct3: 1,
        funct7: 0x20,
    });
    // srxi with a bad funct7.
    expect_err(enc::srli(1, 1, 1) | 0x0200_0000, Unsupported::Funct {
        opcode: 0x13,
        funct3: 5,
        funct7: 0x01,
    });
    // OP with a bad funct7.
    expect_err(enc::add(1, 2, 3) | 0x0400_0000, Unsupported::Funct {
        opcode: 0x33,
        funct3: 0,
        funct7: 0x02,
    });
    // Compressed-looking and plainly unknown opcodes.
    expect_err(0x0000_0000, Unsupported::Opcode { opcode: 0x00 });
    expect_err(0xffff_ffff, Unsupported::Opcode { opcode: 0x7f });
    expect_err(0x0000_002f, Unsupported::Opcode { opcode: 0x2f }); // AMO
    expect_err(0x0000_0007, Unsupported::Opcode { opcode: 0x07 }); // FLW
    expect_err(0x0000_0053, Unsupported::Opcode { opcode: 0x53 }); // OP-FP
}

#[test]
fn error_carries_faulting_pc_and_word() {
    let word = 0x0000_0073; // ecall
    for pc in [0u32, 0x1000, 0xffff_fffc] {
        let err = decode(pc, word).expect_err("ecall is unsupported");
        assert_eq!((err.pc, err.word), (pc, word));
        let msg = err.to_string();
        assert!(msg.contains(&format!("{pc:#010x}")), "message {msg:?} names the pc");
        assert!(msg.contains(&format!("{word:#010x}")), "message {msg:?} names the word");
    }
}

// -- re-encode round trip ---------------------------------------------

/// Re-encodes a decoded instruction; `None` for shapes whose source
/// word is not canonical (`fence` ignores pred/succ bits).
fn reencode(inst: &Rv32Inst) -> Option<u32> {
    Some(match *inst {
        Rv32Inst::Lui { rd, imm } => enc::lui(rd, imm as u32),
        Rv32Inst::Auipc { rd, imm } => enc::auipc(rd, imm as u32),
        Rv32Inst::Jal { rd, offset } => enc::jal(rd, offset),
        Rv32Inst::Jalr { rd, rs1, offset } => enc::jalr(rd, rs1, offset),
        Rv32Inst::Branch { cond, rs1, rs2, offset } => {
            let f = match cond {
                BranchCond::Eq => enc::beq,
                BranchCond::Ne => enc::bne,
                BranchCond::Lt => enc::blt,
                BranchCond::Ge => enc::bge,
                BranchCond::LtU => enc::bltu,
                BranchCond::GeU => enc::bgeu,
            };
            f(rs1, rs2, offset)
        }
        Rv32Inst::Load { kind, rd, rs1, offset } => {
            let f = match kind {
                LoadKind::Lb => enc::lb,
                LoadKind::Lh => enc::lh,
                LoadKind::Lw => enc::lw,
                LoadKind::Lbu => enc::lbu,
                LoadKind::Lhu => enc::lhu,
            };
            f(rd, offset, rs1)
        }
        Rv32Inst::Store { kind, rs1, rs2, offset } => {
            let f = match kind {
                StoreKind::Sb => enc::sb,
                StoreKind::Sh => enc::sh,
                StoreKind::Sw => enc::sw,
            };
            f(rs2, offset, rs1)
        }
        Rv32Inst::OpImm { kind, rd, rs1, imm } => match kind {
            OpImmKind::Addi => enc::addi(rd, rs1, imm),
            OpImmKind::Slti => enc::slti(rd, rs1, imm),
            OpImmKind::Sltiu => enc::sltiu(rd, rs1, imm),
            OpImmKind::Xori => enc::xori(rd, rs1, imm),
            OpImmKind::Ori => enc::ori(rd, rs1, imm),
            OpImmKind::Andi => enc::andi(rd, rs1, imm),
            OpImmKind::Slli => enc::slli(rd, rs1, imm as u8),
            OpImmKind::Srli => enc::srli(rd, rs1, imm as u8),
            OpImmKind::Srai => enc::srai(rd, rs1, imm as u8),
        },
        Rv32Inst::Op { kind, rd, rs1, rs2 } => {
            let f = match kind {
                OpKind::Add => enc::add,
                OpKind::Sub => enc::sub,
                OpKind::Sll => enc::sll,
                OpKind::Slt => enc::slt,
                OpKind::Sltu => enc::sltu,
                OpKind::Xor => enc::xor,
                OpKind::Srl => enc::srl,
                OpKind::Sra => enc::sra,
                OpKind::Or => enc::or,
                OpKind::And => enc::and,
                OpKind::Mul => enc::mul,
                OpKind::Mulh => enc::mulh,
                OpKind::Mulhsu => enc::mulhsu,
                OpKind::Mulhu => enc::mulhu,
                OpKind::Div => enc::div,
                OpKind::Divu => enc::divu,
                OpKind::Rem => enc::rem,
                OpKind::Remu => enc::remu,
            };
            f(rd, rs1, rs2)
        }
        Rv32Inst::Fence => return None,
        Rv32Inst::Ebreak => enc::ebreak(),
    })
}

#[test]
fn corpus_words_round_trip_through_decode_and_encode() {
    for entry in sdo_rv32::corpus::CORPUS {
        for (i, &word) in entry.words.iter().enumerate() {
            let pc = sdo_rv32::corpus::TEXT_BASE + 4 * i as u32;
            let inst = decode(pc, word)
                .unwrap_or_else(|e| panic!("{}: corpus word fails decode: {e}", entry.name));
            if let Some(back) = reencode(&inst) {
                assert_eq!(back, word, "{}: {inst:?} re-encodes differently", entry.name);
            }
        }
    }
}
