//! Differential corpus tests: each checked-in kernel is executed by
//! the reference interpreter and its result compared against (a) the
//! pinned `expected_result` and (b) an independent Rust implementation
//! of the same C source, computed from the same data segments.

use sdo_isa::{Interpreter, Reg};
use sdo_rv32::corpus::{self, CORPUS, RESULT_ADDR, STACK_TOP};

const MAX_STEPS: u64 = 50_000_000;

fn segment(data: &[(u32, Vec<u8>)], base: u32) -> &[u8] {
    &data.iter().find(|(b, _)| *b == base).expect("segment exists").1
}

// -- independent Rust references --------------------------------------

fn crc32_ref(data: &[(u32, Vec<u8>)]) -> u32 {
    let msg = segment(data, 0x1_0000);
    let mut crc = u32::MAX;
    for &byte in &msg[..96] {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xedb8_8320;
            }
        }
    }
    !crc
}

fn i32s(bytes: &[u8]) -> Vec<i32> {
    bytes.chunks_exact(4).map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

fn matmul_ref(data: &[(u32, Vec<u8>)]) -> u32 {
    let a = i32s(segment(data, 0x1_0100));
    let b = i32s(segment(data, 0x1_0200));
    let n = 8;
    let mut c = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0i32;
            for k in 0..n {
                s = s.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            c[i * n + j] = s;
        }
    }
    let mut acc = 0i32;
    for (t, &v) in c.iter().enumerate() {
        acc = acc.wrapping_add(v.wrapping_mul(t as i32 + 1));
    }
    acc as u32
}

fn sort_ref(data: &[(u32, Vec<u8>)]) -> u32 {
    let mut v = i32s(segment(data, 0x1_0400));
    v.sort_unstable();
    let mut acc = 0i32;
    for (i, &x) in v.iter().enumerate() {
        acc = acc.wrapping_add(x.wrapping_mul(i as i32 + 1));
    }
    acc as u32
}

fn strsearch_ref(data: &[(u32, Vec<u8>)]) -> u32 {
    let hay = segment(data, 0x1_0600);
    let needle = segment(data, 0x1_06c0);
    let mut count = 0u32;
    for i in 0..=(hay.len() - needle.len()) {
        if &hay[i..i + needle.len()] == needle {
            count += 1;
        }
    }
    count
}

fn reference(name: &str, data: &[(u32, Vec<u8>)]) -> u32 {
    match name {
        "rv32_crc32" => crc32_ref(data),
        "rv32_matmul" => matmul_ref(data),
        "rv32_sort" => sort_ref(data),
        "rv32_strsearch" => strsearch_ref(data),
        "rv32_gadget" => 1, // stores a constant; the point is the side channel
        other => panic!("no reference for {other}"),
    }
}

// -- the differential tests -------------------------------------------

#[test]
fn corpus_results_match_pinned_and_reference_values() {
    for entry in CORPUS {
        let program = entry.program();
        let mut interp = Interpreter::new(&program);
        interp.run(MAX_STEPS).unwrap_or_else(|e| panic!("{}: did not halt: {e}", entry.name));
        let got = corpus::read_result(&interp);
        assert_eq!(got, entry.expected_result, "{}: pinned result", entry.name);
        let data = (entry.data)();
        assert_eq!(got, reference(entry.name, &data), "{}: Rust reference", entry.name);
    }
}

#[test]
fn corpus_registers_respect_conventions_after_halt() {
    for entry in CORPUS {
        let program = entry.program();
        let mut interp = Interpreter::new(&program);
        interp.run(MAX_STEPS).unwrap_or_else(|e| panic!("{}: did not halt: {e}", entry.name));
        // sp restored by main's epilogue.
        assert_eq!(interp.reg(Reg::new(2)), u64::from(STACK_TOP), "{}: sp", entry.name);
        // Every register holds a canonical sext32 value — the lowering
        // invariant survives a whole program.
        for r in 0..32u8 {
            let v = interp.reg(Reg::new(r));
            assert_eq!(v, (v as u32) as i32 as i64 as u64, "{}: x{r} not sext32", entry.name);
        }
    }
}

#[test]
fn sorted_array_is_actually_sorted_in_memory() {
    let entry = corpus::entry("rv32_sort").expect("sort exists");
    let program = entry.program();
    let mut interp = Interpreter::new(&program);
    interp.run(MAX_STEPS).expect("halts");
    let v: Vec<i32> = (0..48)
        .map(|i| {
            let a = 0x1_0400u64 + 4 * i;
            i32::from_le_bytes([
                interp.mem_byte(a),
                interp.mem_byte(a + 1),
                interp.mem_byte(a + 2),
                interp.mem_byte(a + 3),
            ])
        })
        .collect();
    assert!(v.windows(2).all(|w| w[0] <= w[1]), "array not sorted: {v:?}");
    let mut expect = i32s(segment(&(entry.data)(), 0x1_0400));
    expect.sort_unstable();
    assert_eq!(v, expect, "sorted array is a permutation of the input");
}

#[test]
fn gadget_is_architecturally_secret_independent() {
    let entry = corpus::entry("rv32_gadget").expect("gadget exists");
    let mut finals = Vec::new();
    for secret in [0u8, 42, 0xff] {
        let program = entry.with_secret(secret);
        let mut interp = Interpreter::new(&program);
        let executed = interp.run(MAX_STEPS).expect("gadget halts for any secret");
        finals.push((executed, interp.int_regs(), corpus::read_result(&interp)));
    }
    for pair in finals.windows(2) {
        assert_eq!(pair[0], pair[1], "architectural state must not depend on the secret");
    }
}

#[test]
fn result_is_stored_once_at_result_addr() {
    // The convention the harness relies on: the word at RESULT_ADDR is
    // zero before the run (it is not part of any data segment).
    for entry in CORPUS {
        let data = (entry.data)();
        for (base, bytes) in &data {
            let end = u64::from(*base) + bytes.len() as u64;
            assert!(
                end <= u64::from(RESULT_ADDR) || u64::from(*base) > u64::from(RESULT_ADDR) + 3,
                "{}: data segment overlaps RESULT_ADDR",
                entry.name
            );
        }
    }
}
