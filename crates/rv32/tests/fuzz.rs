//! Never-panic fuzzing of the decoder, loaders and translator:
//! a structured sweep over every opcode/funct combination, every byte
//! prefix of every corpus binary (flat and ELF), and bit-flipped ELF
//! headers. Everything must come back as `Ok` or a *typed* error —
//! a panic anywhere fails the test.

use sdo_rv32::corpus::{CORPUS, TEXT_BASE};
use sdo_rv32::{decode, load_elf32, load_flat, to_elf32, translate};

/// Every major opcode × funct3 × representative funct7 values ×
/// register corner cases. ~180k words — covers every decode arm,
/// including every typed-error path.
#[test]
fn structured_word_sweep_never_panics() {
    let funct7s = [0x00u32, 0x01, 0x20, 0x21, 0x55, 0x7f];
    let regs = [(0u32, 0u32, 0u32), (31, 31, 31), (1, 2, 3), (3, 4, 5)];
    let mut decoded = 0u64;
    let mut errors = 0u64;
    for opcode in 0..0x80u32 {
        for funct3 in 0..8u32 {
            for funct7 in funct7s {
                for (rd, rs1, rs2) in regs {
                    let word =
                        opcode | rd << 7 | funct3 << 12 | rs1 << 15 | rs2 << 20 | funct7 << 25;
                    match decode(0x4000, word) {
                        Ok(_) => decoded += 1,
                        Err(e) => {
                            assert_eq!(e.word, word, "error must carry the raw word");
                            assert_eq!(e.pc, 0x4000, "error must carry the pc");
                            errors += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(decoded > 0 && errors > 0, "sweep hit both outcomes");
}

#[test]
fn every_flat_prefix_of_every_corpus_binary_loads_or_errors() {
    for entry in CORPUS {
        let bytes: Vec<u8> = entry.words.iter().flat_map(|w| w.to_le_bytes()).collect();
        for len in 0..=bytes.len() {
            match load_flat(&bytes[..len], TEXT_BASE) {
                Ok(image) => {
                    // Truncation may cut a branch target or a call off
                    // the end — must be a typed error, never a panic.
                    let _ = translate(&image, "prefix");
                }
                Err(_) => {
                    assert!(len % 4 != 0 || len == 0, "whole-word prefixes load");
                }
            }
        }
    }
}

#[test]
fn every_elf_prefix_of_every_corpus_binary_loads_or_errors() {
    for entry in CORPUS {
        let elf = to_elf32(&entry.image());
        for len in 0..=elf.len() {
            if let Ok(image) = load_elf32(&elf[..len]) {
                let _ = translate(&image, "prefix");
            }
        }
    }
}

#[test]
fn bit_flipped_elf_headers_never_panic() {
    let elf = to_elf32(&CORPUS[0].image());
    // Flip every bit of the ELF + program headers (and a tail sample).
    let header_len = 52 + 2 * 32;
    for pos in 0..header_len.min(elf.len()) {
        for bit in 0..8 {
            let mut mutated = elf.clone();
            mutated[pos] ^= 1 << bit;
            if let Ok(image) = load_elf32(&mutated) {
                let _ = translate(&image, "mutated");
            }
        }
    }
}

#[test]
fn elf_round_trip_preserves_the_image() {
    for entry in CORPUS {
        let image = entry.image();
        let elf = to_elf32(&image);
        let back = load_elf32(&elf).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(back, image, "{}: ELF round trip", entry.name);
    }
}

#[test]
fn random_word_soup_translates_or_errors() {
    // A deterministic xorshift stream of garbage words: translate must
    // return a typed error (or succeed) for every 4-word "program".
    let mut x = 0x9e37_79b9u32;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        x
    };
    for _ in 0..10_000 {
        let text: Vec<u32> = (0..4).map(|_| step()).collect();
        let image = sdo_rv32::Rv32Image {
            entry: TEXT_BASE,
            text_base: TEXT_BASE,
            text,
            data: Vec::new(),
        };
        let _ = translate(&image, "soup");
    }
}
