//! Parallel experiment execution engine.
//!
//! Every paper artifact is built from the same kernel × variant × attack
//! cross product — hundreds of completely independent, deterministic
//! simulations. The *simulator* stays single-threaded (reproducibility by
//! construction: each simulation owns its [`Simulator`](crate::Simulator) clone, core and
//! memory system); the *harness* fans the independent runs out across a
//! [`JobPool`] of `std::thread::scope` workers and merges the results in
//! canonical submission order, so the merged output is byte-identical to
//! the serial path at any worker count.
//!
//! The worker count comes from (highest priority first) an explicit
//! `--jobs N` flag (parsed by [`crate::cli`], which turns malformed
//! values into a usage error rather than a panic), the `SDO_JOBS`
//! environment variable, or [`std::thread::available_parallelism`].
//!
//! ```rust
//! use sdo_harness::engine::JobPool;
//!
//! let pool = JobPool::new(4);
//! let squares = pool.run(&[1u64, 2, 3, 4], |_idx, n| n * n);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable naming the default worker count.
pub const JOBS_ENV: &str = "SDO_JOBS";

/// A scoped worker pool that executes independent jobs and returns their
/// results in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPool {
    jobs: usize,
}

impl JobPool {
    /// A pool with exactly `jobs` workers (clamped to at least 1).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        JobPool { jobs: jobs.max(1) }
    }

    /// The single-worker pool: runs every job inline on the caller's
    /// thread, in order.
    #[must_use]
    pub fn serial() -> Self {
        JobPool { jobs: 1 }
    }

    /// Worker count from `SDO_JOBS`, falling back to the machine's
    /// available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        let jobs = std::env::var(JOBS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        JobPool::new(jobs)
    }

    /// The worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every item and returns the results in item order.
    ///
    /// Work is handed out through a shared atomic cursor, so early-
    /// finishing workers steal remaining items (dynamic load balancing);
    /// output order is still canonical because results land in their
    /// item's slot.
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.try_run(items, |idx, item| Ok::<T, Never>(f(idx, item)))
            .unwrap_or_else(|e| match e {})
    }

    /// Fallible variant of [`JobPool::run`]: returns all results in item
    /// order, or the error of the *lowest-indexed* failing job.
    ///
    /// On a failure the pool stops handing out jobs whose index is higher
    /// than the failing one (lower-indexed jobs still run, so the
    /// reported error is the canonical first failure regardless of
    /// scheduling), then joins every worker before returning — no orphans.
    ///
    /// A job that *panics* is treated exactly like a failing job for
    /// scheduling purposes; once every worker has joined, the panic is
    /// re-raised on the caller's thread with the job index and the
    /// original panic message (instead of the old behaviour, where the
    /// unwinding worker killed the whole scope and any in-flight slot
    /// lock surfaced as an unrelated "result slot poisoned" panic).
    ///
    /// # Errors
    ///
    /// The error produced by the canonically-first failing job.
    ///
    /// # Panics
    ///
    /// Re-raises the canonically-first job panic, labelled with its job
    /// index.
    pub fn try_run<I, T, E, F>(&self, items: &[I], f: F) -> Result<Vec<T>, E>
    where
        I: Sync,
        T: Send,
        E: Send,
        F: Fn(usize, &I) -> Result<T, E> + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }

        let cursor = AtomicUsize::new(0);
        // Index of the lowest failure observed so far; jobs beyond it are
        // skipped. usize::MAX means "no failure".
        let first_err_idx = AtomicUsize::new(usize::MAX);
        let slots: Vec<Mutex<Option<JobOutcome<T, E>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() || idx > first_err_idx.load(Ordering::Acquire) {
                        break;
                    }
                    let outcome = match catch_unwind(AssertUnwindSafe(|| f(idx, &items[idx]))) {
                        Ok(Ok(v)) => JobOutcome::Ok(v),
                        Ok(Err(e)) => JobOutcome::Err(e),
                        Err(payload) => JobOutcome::Panicked(panic_message(payload.as_ref())),
                    };
                    if !matches!(outcome, JobOutcome::Ok(_)) {
                        first_err_idx.fetch_min(idx, Ordering::Release);
                    }
                    *slots[idx].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });

        let mut out = Vec::with_capacity(items.len());
        for (idx, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().expect("result slot poisoned") {
                Some(JobOutcome::Ok(v)) => out.push(v),
                // The canonically-first failure: every lower-indexed job
                // ran to completion successfully (they are never skipped).
                Some(JobOutcome::Err(e)) => return Err(e),
                Some(JobOutcome::Panicked(msg)) => panic!("job {idx} panicked: {msg}"),
                // Skipped due to a (higher-priority) earlier failure; that
                // failure was already returned above.
                None => unreachable!("job skipped without a preceding error"),
            }
        }
        Ok(out)
    }
}

/// What one job produced: a value, a domain error, or a caught panic
/// (carrying the original message so the coordinator can re-raise it
/// attributably).
enum JobOutcome<T, E> {
    Ok(T),
    Err(E),
    Panicked(String),
}

/// Extracts the human-readable message from a panic payload (`&str` and
/// `String` cover everything `panic!` produces). Public so the
/// `sdo-serve` daemon can reuse the same `catch_unwind` plumbing to turn
/// in-flight panics into typed protocol errors instead of dying.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Uninhabited error type for the infallible [`JobPool::run`] path.
enum Never {}

// ----------------------------------------------------------------------
// Throughput accounting
// ----------------------------------------------------------------------

/// Wall-clock throughput of a batch of simulations (the measured side of
/// the "fast as the hardware allows" goal: speedups are reported, never
/// asserted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Worker count used.
    pub jobs: usize,
    /// Number of simulations completed.
    pub sims: u64,
    /// Total simulated cycles across all runs.
    pub cycles: u64,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
}

impl Throughput {
    /// Simulations completed per wall-clock second.
    #[must_use]
    pub fn sims_per_sec(&self) -> f64 {
        self.sims as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Simulated cycles per wall-clock second (aggregate over workers).
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn report(&self) -> String {
        format!(
            "throughput: {} sims in {:.2}s with {} job(s) — {:.1} sims/s, {:.2}M cycles/s",
            self.sims,
            self.wall.as_secs_f64(),
            self.jobs,
            self.sims_per_sec(),
            self.cycles_per_sec() / 1e6,
        )
    }
}

/// Times `f` and pairs its output with a [`Throughput`] derived from the
/// returned `(sims, cycles)` extraction.
pub fn timed<T>(
    pool: &JobPool,
    count: impl FnOnce(&T) -> (u64, u64),
    f: impl FnOnce(&JobPool) -> T,
) -> (T, Throughput) {
    let start = Instant::now();
    let value = f(pool);
    let wall = start.elapsed();
    let (sims, cycles) = count(&value);
    (value, Throughput { jobs: pool.jobs(), sims, cycles, wall })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_order_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|n| n * 3).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let pool = JobPool::new(jobs);
            assert_eq!(pool.run(&items, |_, n| n * 3), expected, "jobs={jobs}");
        }
    }

    #[test]
    fn run_passes_item_indices() {
        let items = vec!["a", "b", "c"];
        let idxs = JobPool::new(2).run(&items, |i, _| i);
        assert_eq!(idxs, vec![0, 1, 2]);
    }

    #[test]
    fn try_run_returns_lowest_indexed_error() {
        let items: Vec<usize> = (0..50).collect();
        for jobs in [1, 4, 16] {
            let pool = JobPool::new(jobs);
            let r: Result<Vec<usize>, String> = pool.try_run(&items, |_, &n| {
                if n == 7 || n == 23 {
                    Err(format!("job {n} failed"))
                } else {
                    Ok(n)
                }
            });
            assert_eq!(r.unwrap_err(), "job 7 failed", "jobs={jobs}");
        }
    }

    #[test]
    fn try_run_all_ok_matches_serial() {
        let items: Vec<u32> = (0..31).collect();
        let serial: Result<Vec<u32>, ()> = JobPool::serial().try_run(&items, |_, &n| Ok(n + 1));
        let parallel = JobPool::new(6).try_run(&items, |_, &n| Ok(n + 1));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        assert!(JobPool::new(8).run(&items, |_, &b| b).is_empty());
    }

    #[test]
    fn pool_never_has_zero_workers() {
        assert_eq!(JobPool::new(0).jobs(), 1);
    }

    #[test]
    fn panicking_job_reports_its_own_message() {
        let items: Vec<usize> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            JobPool::new(4).run(&items, |_, &n| {
                assert!(n != 5, "job body exploded on 5");
                n
            })
        });
        let msg = panic_message(caught.unwrap_err().as_ref());
        assert!(msg.contains("job 5 panicked"), "got: {msg}");
        assert!(msg.contains("job body exploded on 5"), "got: {msg}");
    }

    #[test]
    fn earlier_error_wins_over_later_panic() {
        let items: Vec<usize> = (0..32).collect();
        let r: Result<Vec<usize>, String> = JobPool::new(4).try_run(&items, |_, &n| {
            assert!(n != 20, "late panic");
            if n == 3 { Err("job 3 failed".to_string()) } else { Ok(n) }
        });
        assert_eq!(r.unwrap_err(), "job 3 failed");
    }

    #[test]
    fn throughput_math() {
        let t = Throughput { jobs: 2, sims: 10, cycles: 5_000_000, wall: Duration::from_secs(2) };
        assert!((t.sims_per_sec() - 5.0).abs() < 1e-9);
        assert!((t.cycles_per_sec() - 2_500_000.0).abs() < 1e-3);
        assert!(t.report().contains("2 job(s)"));
    }
}
