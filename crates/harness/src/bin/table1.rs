//! Prints Table I (simulated architecture parameters).
use sdo_harness::cli::{BinSpec, CommonArgs, CsvSupport};
use sdo_harness::SimConfig;

const SPEC: BinSpec = BinSpec {
    name: "table1",
    about: "Prints Table I: the simulated architecture parameters (no simulation runs).",
    usage_args: "[options]",
    jobs: false,
    csv: CsvSupport::None,
    metrics: false,
    seed: false,
    no_skip: false,
    client: false,
    extra_options: &[],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    args.reject_rest(&SPEC);
    println!("{}", SimConfig::table_i().render_table_i());
}
