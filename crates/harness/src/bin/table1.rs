//! Prints Table I (simulated architecture parameters).
use sdo_harness::SimConfig;

fn main() {
    println!("{}", SimConfig::table_i().render_table_i());
}
