//! Regenerates Table III: predictor precision and accuracy.
use sdo_harness::experiments::{run_suite, table3_report};
use sdo_harness::{SimConfig, Simulator};

fn main() {
    let sim = Simulator::new(SimConfig::table_i());
    let results = run_suite(&sim).expect("suite completes");
    println!("{}", table3_report(&results));
}
