//! Regenerates Table III: predictor precision and accuracy.
//!
//! `--jobs N` (or `SDO_JOBS`) fans the suite out across worker threads;
//! `--metrics <path>` dumps the merged metric snapshot; the throughput
//! summary goes to stderr. `--store <dir>` / `--server <sock>` /
//! `--no-cache` select the cache-backed or daemon-backed runner.
use sdo_harness::cli::{BinSpec, CommonArgs, CsvSupport};
use sdo_harness::engine::timed;
use sdo_harness::experiments::{run_suite_with, table3_report, SuiteResults};
use sdo_harness::SimConfig;

const SPEC: BinSpec = BinSpec {
    name: "table3",
    about: "Regenerates Table III: location-predictor precision and accuracy.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: true,
    seed: false,
    no_skip: true,
    client: true,
    extra_options: &[],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    args.reject_rest(&SPEC);
    let runner = args.runner(&SPEC, SimConfig::table_i());
    let (results, throughput) = timed(&args.pool, SuiteResults::counts, |pool| {
        run_suite_with(&runner, pool).unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()))
    });
    println!("{}", table3_report(&results));
    args.write_metrics(&SPEC, &results.metrics());
    eprintln!("{}", throughput.report());
    args.report_cache(&runner);
}
