//! `run` — assemble a text program and simulate it on the Table I machine.
//!
//! ```text
//! cargo run --release -p sdo-harness --bin run -- prog.s [options]
//!
//! options:
//!   --variant <name>   Unsafe | STT{ld} | STT{ld+fp} | "Static L1" |
//!                      "Static L2" | "Static L3" | Hybrid | Perfect
//!                      (default: Unsafe)
//!   --attack <model>   spectre | futuristic   (default: spectre)
//!   --all              run every Table II variant and tabulate
//!   --disasm           print the disassembly before running
//! ```

use sdo_harness::table::TextTable;
use sdo_harness::{SimConfig, Simulator, Variant};
use sdo_isa::parse_asm;
use sdo_uarch::AttackModel;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: run <file.s> [--variant <name>] [--attack spectre|futuristic] [--all] [--disasm]"
    );
    exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut file = None;
    let mut variant = Variant::Unsafe;
    let mut attack = AttackModel::Spectre;
    let mut all = false;
    let mut disasm = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--variant" => {
                let Some(name) = args.next() else { usage() };
                variant = match Variant::ALL.iter().find(|v| v.name().eq_ignore_ascii_case(&name))
                {
                    Some(v) => *v,
                    None => {
                        eprintln!("unknown variant '{name}'");
                        exit(2);
                    }
                };
            }
            "--attack" => {
                let Some(name) = args.next() else { usage() };
                attack = match name.to_ascii_lowercase().as_str() {
                    "spectre" => AttackModel::Spectre,
                    "futuristic" => AttackModel::Futuristic,
                    _ => {
                        eprintln!("unknown attack model '{name}'");
                        exit(2);
                    }
                };
            }
            "--all" => all = true,
            "--disasm" => disasm = true,
            "--help" | "-h" => usage(),
            other if file.is_none() => file = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                usage();
            }
        }
    }
    let Some(file) = file else { usage() };

    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            exit(1);
        }
    };
    let program = match parse_asm(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{file}: {e}");
            exit(1);
        }
    };
    if disasm {
        println!("{}", program.disassemble());
    }

    let sim = Simulator::new(SimConfig::table_i());
    if all {
        let mut t = TextTable::new(vec![
            "variant".into(),
            "cycles".into(),
            "norm".into(),
            "IPC".into(),
            "delayed".into(),
            "obl".into(),
            "squashes".into(),
        ]);
        let base = match sim.run(&program, Variant::Unsafe, attack) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                exit(1);
            }
        };
        for v in Variant::ALL {
            match sim.run(&program, v, attack) {
                Ok(r) => t.row(vec![
                    v.name().to_string(),
                    r.cycles.to_string(),
                    format!("{:.3}", r.normalized_to(&base)),
                    format!("{:.2}", r.core.ipc()),
                    r.core.delayed_loads.to_string(),
                    r.core.obl.issued.to_string(),
                    r.core.squashes.total().to_string(),
                ]),
                Err(e) => {
                    eprintln!("{e}");
                    exit(1);
                }
            }
        }
        println!("{} under the {attack} model:\n{}", program.name(), t.render());
    } else {
        match sim.run(&program, variant, attack) {
            Ok(r) => {
                println!("{} under {} / {attack}:", program.name(), variant.name());
                println!("{}", r.core);
            }
            Err(e) => {
                eprintln!("{e}");
                exit(1);
            }
        }
    }
}
