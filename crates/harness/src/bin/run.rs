//! `run` — assemble a text program and simulate it on the Table I machine.
//!
//! ```text
//! cargo run --release -p sdo-harness --bin run -- prog.s [options]
//!
//! options:
//!   --variant <name>   Unsafe | STT{ld} | STT{ld+fp} | Static L1/L2/L3 |
//!                      Hybrid | Perfect — hyphen/underscore spellings
//!                      accepted (static-l1, stt_ld_fp, ...); default Unsafe
//!   --attack <model>   spectre | futuristic   (default: spectre)
//!   --all              run every Table II variant and tabulate
//!   --disasm           print the disassembly before running
//!   --metrics <path>   write the run's metric snapshot as JSON
//! ```

use sdo_harness::cli::{parse_attack, parse_variant, BinSpec, CommonArgs, CsvSupport};
use sdo_harness::table::TextTable;
use sdo_harness::{RunRequest, SimConfig, Variant};
use sdo_isa::parse_asm;
use sdo_uarch::{AttackModel, MetricsSnapshot};

const SPEC: BinSpec = BinSpec {
    name: "run",
    about: "Assembles a text program and simulates it on the Table I machine.",
    usage_args: "<file.s> [options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: true,
    seed: false,
    no_skip: true,
    client: true,
    extra_options: &[
        ("--variant <name>", "Table II variant to simulate (default: Unsafe)"),
        ("--attack <model>", "spectre | futuristic (default: spectre)"),
        ("--all", "run every Table II variant and tabulate"),
        ("--disasm", "print the disassembly before running"),
    ],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    let mut file = None;
    let mut variant = Variant::Unsafe;
    let mut attack = AttackModel::Spectre;
    let mut all = false;
    let mut disasm = false;

    let mut rest = args.rest.iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--variant" => {
                let Some(name) = rest.next() else {
                    SPEC.usage_error("--variant requires a name");
                };
                variant = parse_variant(name).unwrap_or_else(|e| SPEC.usage_error(&e));
            }
            "--attack" => {
                let Some(name) = rest.next() else {
                    SPEC.usage_error("--attack requires a model");
                };
                attack = parse_attack(name).unwrap_or_else(|e| SPEC.usage_error(&e));
            }
            "--all" => all = true,
            "--disasm" => disasm = true,
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => SPEC.usage_error(&format!("unexpected argument '{other}'")),
        }
    }
    let Some(file) = file else {
        SPEC.usage_error("missing input file");
    };

    let source = std::fs::read_to_string(&file)
        .unwrap_or_else(|e| SPEC.runtime_error(&format!("cannot read {file}: {e}")));
    let program =
        parse_asm(&source).unwrap_or_else(|e| SPEC.runtime_error(&format!("{file}: {e}")));
    if disasm {
        println!("{}", program.disassemble());
    }

    let runner = args.runner(&SPEC, SimConfig::table_i());
    let mut metrics = MetricsSnapshot::new();
    if all {
        // One request per Table II variant; Variant::ALL starts with the
        // Unsafe baseline, so the canonical first result normalizes the
        // rest.
        let reqs: Vec<RunRequest> = Variant::ALL
            .iter()
            .map(|&v| RunRequest::program(&program).variant(v).attack(attack))
            .collect();
        let runs = runner
            .run_batch(&reqs, &args.pool)
            .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()));
        let base = &runs[0];
        let mut t = TextTable::new(vec![
            "variant".into(),
            "cycles".into(),
            "norm".into(),
            "IPC".into(),
            "delayed".into(),
            "obl".into(),
            "squashes".into(),
        ]);
        for r in &runs {
            t.row(vec![
                r.variant.name().to_string(),
                r.cycles.to_string(),
                format!("{:.3}", r.normalized_to(base)),
                format!("{:.2}", r.core.ipc()),
                r.core.delayed_loads.to_string(),
                r.core.obl.issued.to_string(),
                r.core.squashes.total().to_string(),
            ]);
            metrics.merge(&r.metrics());
        }
        println!("{} under the {attack} model:\n{}", program.name(), t.render());
    } else {
        let r = runner
            .run_one(&RunRequest::program(&program).variant(variant).attack(attack))
            .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()));
        println!("{} under {} / {attack}:", program.name(), variant.name());
        println!("{}", r.core);
        metrics.merge(&r.metrics());
    }
    args.write_metrics(&SPEC, &metrics);
    args.report_cache(&runner);
}
