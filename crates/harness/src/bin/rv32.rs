//! Runs the compiled RV32 corpus (four benchmark kernels plus the
//! compiled Spectre gadget, translated by `sdo-rv32`) through the full
//! variant × attack-model sweep: normalized execution time per program,
//! same shape as Figure 6 but over real machine code.
//!
//! Pass `--csv` to emit machine-readable output (the full per-run dump
//! with `--csv=runs`), `--metrics <path>` to dump the merged metric
//! snapshot, and `--jobs N` (or `SDO_JOBS`) to fan the sweep out across
//! worker threads. `--store <dir>` memoizes the sweep in a
//! content-addressed store (a warm rerun simulates nothing) and
//! `--server <sock>` submits it to a running `sdo-serve` daemon. The
//! throughput and cache summaries go to stderr so they never perturb the
//! figure or CSV stream.
use sdo_harness::cli::{BinSpec, CommonArgs, CsvMode, CsvSupport};
use sdo_harness::engine::timed;
use sdo_harness::experiments::{fig6_report, run_suite_on, rv32_workloads, SuiteResults};
use sdo_harness::export::{fig6_csv, runs_csv};
use sdo_harness::SimConfig;

const SPEC: BinSpec = BinSpec {
    name: "rv32",
    about: "Runs the compiled RV32 corpus through every variant and attack model.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::FigureAndRuns,
    metrics: true,
    seed: false,
    no_skip: true,
    client: true,
    extra_options: &[],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    args.reject_rest(&SPEC);
    let runner = args.runner(&SPEC, SimConfig::table_i());
    let kernels = rv32_workloads();
    let (results, throughput) = timed(&args.pool, SuiteResults::counts, |pool| {
        run_suite_on(&runner, &kernels, pool)
            .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()))
    });
    match args.csv {
        Some(CsvMode::Figure) => print!("{}", fig6_csv(&results)),
        Some(CsvMode::Runs) => print!("{}", runs_csv(&results)),
        None => println!("{}", fig6_report(&results)),
    }
    args.write_metrics(&SPEC, &results.metrics());
    eprintln!("{}", throughput.report());
    args.report_cache(&runner);
}
