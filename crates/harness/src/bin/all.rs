//! Runs every experiment and prints the full evaluation report.
//!
//! `--jobs N` (or `SDO_JOBS`) fans the independent simulations out across
//! worker threads. The binary also runs the suite once serially, checks
//! the parallel results are byte-identical, and writes `BENCH_suite.json`
//! (per-phase wall-clock, sims/sec and the serial→parallel speedup) so
//! every PR leaves a performance trajectory baseline behind. Use
//! `--bench-out <path>` to redirect the JSON (empty path disables it).
use sdo_harness::engine::{timed, JobPool, Throughput};
use sdo_harness::experiments::{
    fig6_report, fig7_report, fig8_report, pentest_report, pentest_with, run_suite_with,
    table3_report, SuiteResults,
};
use sdo_harness::export::bench_suite_json;
use sdo_harness::{SimConfig, Simulator, Variant};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let pool = JobPool::from_args(&mut args);
    let mut bench_out = String::from("BENCH_suite.json");
    if let Some(i) = args.iter().position(|a| a == "--bench-out") {
        assert!(i + 1 < args.len(), "--bench-out requires a path");
        bench_out = args[i + 1].clone();
        args.drain(i..i + 2);
    }
    assert!(args.is_empty(), "unexpected arguments: {args:?}");

    let cfg = SimConfig::table_i();
    let sim = Simulator::new(cfg);

    // The suite, serially — the wall-clock baseline for the speedup.
    let (serial_results, serial_tp) = timed(&JobPool::serial(), SuiteResults::counts, |p| {
        run_suite_with(&sim, p).expect("suite completes")
    });
    // The suite again, through the pool. Byte-identical by construction;
    // check it every run rather than asserting it in a comment.
    let (results, parallel_tp) = timed(&pool, SuiteResults::counts, |p| {
        run_suite_with(&sim, p).expect("suite completes")
    });
    assert_eq!(
        fig6_report(&serial_results),
        fig6_report(&results),
        "parallel suite diverged from the serial baseline"
    );

    let (outcomes, pentest_tp) = timed(
        &pool,
        |o: &Vec<_>| (o.len() as u64, 0),
        |p| pentest_with(&sim, p).expect("victim runs complete"),
    );

    let (report, render_tp) = timed(
        &JobPool::serial(),
        |_| (0, 0),
        |_| {
            let mut out = String::new();
            out.push_str(&cfg.render_table_i());
            out.push_str("\n\n");
            out.push_str(&Variant::render_table_ii());
            out.push('\n');
            out.push_str(&fig6_report(&results));
            out.push_str(&fig7_report(&results));
            out.push_str(&fig8_report(&results));
            out.push_str(&table3_report(&results));
            out.push('\n');
            out.push_str(&pentest_report(&outcomes));
            out
        },
    );
    println!("{report}");

    let phases: Vec<(&str, Throughput)> = vec![
        ("suite_serial", serial_tp),
        ("suite_parallel", parallel_tp),
        ("pentest", pentest_tp),
        ("render", render_tp),
    ];
    let json = bench_suite_json(&phases, Some((serial_tp, parallel_tp)));
    eprintln!("suite serial:   {}", serial_tp.report());
    eprintln!("suite parallel: {}", parallel_tp.report());
    eprintln!(
        "speedup: {:.2}x at {} jobs",
        serial_tp.wall.as_secs_f64() / parallel_tp.wall.as_secs_f64().max(1e-9),
        pool.jobs()
    );
    if !bench_out.is_empty() {
        std::fs::write(&bench_out, &json)
            .unwrap_or_else(|e| panic!("cannot write {bench_out}: {e}"));
        eprintln!("wrote {bench_out}");
    }
}
