//! Runs every experiment and prints the full evaluation report.
use sdo_harness::experiments::full_report;
use sdo_harness::SimConfig;

fn main() {
    println!("{}", full_report(SimConfig::table_i()).expect("experiments complete"));
}
