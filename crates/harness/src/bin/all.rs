//! Runs every experiment and prints the full evaluation report.
//!
//! `--jobs N` (or `SDO_JOBS`) fans the independent simulations out across
//! worker threads. The binary also runs the suite once serially, checks
//! the parallel results are byte-identical, and writes `BENCH_suite.json`
//! (per-phase wall-clock, sims/sec and the serial→parallel speedup) so
//! every PR leaves a performance trajectory baseline behind. Use
//! `--bench-out <path>` to redirect the JSON (empty path disables it),
//! and `--metrics <path>` to dump the merged metric snapshot of the
//! suite plus the penetration test.
use sdo_harness::cli::{BinSpec, CommonArgs, CsvSupport};
use sdo_harness::engine::{timed, JobPool, Throughput};
use sdo_harness::experiments::{
    busy_cycle_throughput, fig6_report, fig7_report, fig8_report, pentest_metrics, pentest_report,
    pentest_with, run_suite_on, run_suite_with, rv32_busy_cycle_throughput, table3_report,
    SuiteResults,
};
use sdo_harness::export::{bench_suite_json, runs_csv, FastForwardBench, ServeBench};
use sdo_harness::{Runner, SimConfig, Variant};
use sdo_workloads::{suite, workload_class, Workload};

const SPEC: BinSpec = BinSpec {
    name: "all",
    about: "Runs every experiment (suite, figures, tables, pentest) and prints the full report.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: true,
    seed: false,
    no_skip: true,
    client: true,
    extra_options: &[(
        "--bench-out <path>",
        "write BENCH_suite.json here (empty path disables; default: BENCH_suite.json)",
    )],
};

fn main() {
    let mut args = CommonArgs::parse(&SPEC);
    let mut bench_out = String::from("BENCH_suite.json");
    if let Some(i) = args.rest.iter().position(|a| a == "--bench-out") {
        if i + 1 >= args.rest.len() {
            SPEC.usage_error("--bench-out requires a path");
        }
        bench_out = args.rest[i + 1].clone();
        args.rest.drain(i..i + 2);
    }
    args.reject_rest(&SPEC);
    let pool = args.pool;

    let cfg = args.sim_config(SimConfig::table_i());
    let runner = args.runner(&SPEC, SimConfig::table_i());

    // The suite, serially — the wall-clock baseline for the speedup.
    let (serial_results, serial_tp) = timed(&JobPool::serial(), SuiteResults::counts, |p| {
        run_suite_with(&runner, p).unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()))
    });
    // The suite again, through the pool. Byte-identical by construction;
    // check it every run rather than asserting it in a comment. The
    // *measured* pool is clamped to the host's parallelism: more workers
    // than cores only measures scheduler noise (a 4-job run on a 1-CPU
    // host once recorded a misleading 0.93x "speedup"), and host_cpus is
    // recorded alongside so the number stays interpretable.
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let bench_pool = JobPool::new(pool.jobs().min(host_cpus));
    let (results, parallel_tp) = timed(&bench_pool, SuiteResults::counts, |p| {
        run_suite_with(&runner, p).unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()))
    });
    assert_eq!(
        fig6_report(&serial_results),
        fig6_report(&results),
        "parallel suite diverged from the serial baseline"
    );

    let (outcomes, pentest_tp) = timed(
        &pool,
        |o: &Vec<_>| (o.len() as u64, 0),
        |p| {
            pentest_with(runner.simulator(), p)
                .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()))
        },
    );

    let (report, render_tp) = timed(
        &JobPool::serial(),
        |_| (0, 0),
        |_| {
            let mut out = String::new();
            out.push_str(&cfg.render_table_i());
            out.push_str("\n\n");
            out.push_str(&Variant::render_table_ii());
            out.push('\n');
            out.push_str(&fig6_report(&results));
            out.push_str(&fig7_report(&results));
            out.push_str(&fig8_report(&results));
            out.push_str(&table3_report(&results));
            out.push('\n');
            out.push_str(&pentest_report(&outcomes));
            out
        },
    );
    println!("{report}");

    let mut metrics = results.metrics();
    metrics.merge(&pentest_metrics(&outcomes));
    args.write_metrics(&SPEC, &metrics);

    // Fast-forward effectiveness: time the DRAM-bound class serially
    // with skipping on and off. The two runs must agree byte-for-byte
    // (the cycle-exactness invariant), so only the wall-clock differs.
    let dram: Vec<Workload> =
        suite().into_iter().filter(|w| workload_class(w.name()) == "dram_bound").collect();
    let (skip_results, dram_skip_tp) = timed(&JobPool::serial(), SuiteResults::counts, |p| {
        run_suite_on(&Runner::local(SimConfig::table_i().with_fast_forward(true)), &dram, p)
            .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()))
    });
    let (noskip_results, dram_noskip_tp) = timed(&JobPool::serial(), SuiteResults::counts, |p| {
        run_suite_on(&Runner::local(SimConfig::table_i().with_fast_forward(false)), &dram, p)
            .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()))
    });
    assert_eq!(
        runs_csv(&skip_results),
        runs_csv(&noskip_results),
        "fast-forward changed simulated results"
    );
    // Skip ratios come from the full-suite serial run, so every workload
    // class has data (the timed comparison above covers dram_bound only).
    let ff = FastForwardBench {
        dram_skip: dram_skip_tp,
        dram_noskip: dram_noskip_tp,
        ratios: serial_results.skip_ratios(),
    };

    // Busy-cycle throughput: every class timed serially with fast-forward
    // off, so the recorded cycles/s is the raw engine cost per class (the
    // number the data-oriented core work optimizes and future PRs must
    // not regress).
    let busy = busy_cycle_throughput(cfg).unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()));

    // The same skip-off measurement over the translated RV32 corpus:
    // tracks the frontend's lowering overhead (µops per source
    // instruction) separately from the mini-ISA kernels.
    let rv32 =
        rv32_busy_cycle_throughput(cfg).unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()));

    // Result-store effectiveness: the identical suite batch against a
    // cold content-addressed store (simulate + save) and then against
    // the warm store it just filled (pure loads, zero simulations).
    // Byte-identity of the CSV is the cache-soundness check; the
    // wall-clock ratio is the figure-regeneration win any `--store`
    // client or sdo-serve daemon gets.
    let store_dir = std::env::temp_dir().join(format!("sdo-all-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_path = store_dir.to_string_lossy().into_owned();
    let cold_runner = Runner::with_store(cfg, &store_path)
        .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()));
    let (cold_results, cold_tp) = timed(&bench_pool, SuiteResults::counts, |p| {
        run_suite_with(&cold_runner, p).unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()))
    });
    let warm_runner = Runner::with_store(cfg, &store_path)
        .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()));
    let (warm_results, warm_tp) = timed(&bench_pool, SuiteResults::counts, |p| {
        run_suite_with(&warm_runner, p).unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()))
    });
    assert_eq!(warm_runner.misses(), 0, "warm-store rerun executed simulations");
    assert_eq!(
        runs_csv(&cold_results),
        runs_csv(&warm_results),
        "warm-store results diverged from the cold pass"
    );
    let serve = ServeBench {
        cold: cold_tp,
        warm: warm_tp,
        warm_hits: warm_runner.hits(),
        warm_misses: warm_runner.misses(),
    };
    let _ = std::fs::remove_dir_all(&store_dir);

    let phases: Vec<(&str, Throughput)> = vec![
        ("suite_serial", serial_tp),
        ("suite_parallel", parallel_tp),
        ("pentest", pentest_tp),
        ("render", render_tp),
        ("store_cold", cold_tp),
        ("store_warm", warm_tp),
    ];
    let json = bench_suite_json(
        &phases,
        Some((serial_tp, parallel_tp)),
        Some(&ff),
        Some(&busy),
        Some(&rv32),
        Some(&serve),
    );
    eprintln!("suite serial:   {}", serial_tp.report());
    eprintln!("suite parallel: {}", parallel_tp.report());
    eprintln!(
        "speedup: {:.2}x at {} jobs",
        serial_tp.wall.as_secs_f64() / parallel_tp.wall.as_secs_f64().max(1e-9),
        bench_pool.jobs()
    );
    eprintln!(
        "fast-forward: dram-bound {:.2}x cycles/s (skip {:.2}M/s vs no-skip {:.2}M/s)",
        dram_skip_tp.cycles_per_sec() / dram_noskip_tp.cycles_per_sec().max(1e-9),
        dram_skip_tp.cycles_per_sec() / 1e6,
        dram_noskip_tp.cycles_per_sec() / 1e6,
    );
    for r in &ff.ratios {
        eprintln!("  skip ratio {:14} {:6.2}%", r.class, 100.0 * r.ratio());
    }
    for (class, t) in &busy {
        eprintln!("busy cycle {:14} {:9.0} cycles/s (skip off)", class, t.cycles_per_sec());
    }
    for (class, t) in &rv32 {
        eprintln!("rv32       {:14} {:9.0} cycles/s (skip off)", class, t.cycles_per_sec());
    }
    eprintln!(
        "store: cold {:.2}s -> warm {:.2}s ({:.1}x), warm pass {} hits / {} misses",
        cold_tp.wall.as_secs_f64(),
        warm_tp.wall.as_secs_f64(),
        cold_tp.wall.as_secs_f64() / warm_tp.wall.as_secs_f64().max(1e-9),
        warm_runner.hits(),
        warm_runner.misses(),
    );
    if !bench_out.is_empty() {
        if let Err(e) = std::fs::write(&bench_out, &json) {
            SPEC.runtime_error(&format!("cannot write {bench_out}: {e}"));
        }
        eprintln!("wrote {bench_out}");
    }
}
