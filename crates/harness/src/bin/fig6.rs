//! Regenerates Figure 6: normalized execution time per kernel/variant.
//!
//! Pass `--csv` to emit machine-readable output (the full per-run dump
//! with `--csv=runs`).
use sdo_harness::experiments::{fig6_report, run_suite};
use sdo_harness::export::{fig6_csv, runs_csv};
use sdo_harness::{SimConfig, Simulator};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let sim = Simulator::new(SimConfig::table_i());
    let results = run_suite(&sim).expect("suite completes");
    match mode.as_str() {
        "--csv" => print!("{}", fig6_csv(&results)),
        "--csv=runs" => print!("{}", runs_csv(&results)),
        _ => println!("{}", fig6_report(&results)),
    }
}
