//! Regenerates Figure 6: normalized execution time per kernel/variant.
//!
//! Pass `--csv` to emit machine-readable output (the full per-run dump
//! with `--csv=runs`), and `--jobs N` (or `SDO_JOBS`) to fan the suite
//! out across worker threads. The throughput summary goes to stderr so
//! it never perturbs the figure or CSV stream.
use sdo_harness::engine::{timed, JobPool};
use sdo_harness::experiments::{fig6_report, run_suite_with, SuiteResults};
use sdo_harness::export::{fig6_csv, runs_csv};
use sdo_harness::{SimConfig, Simulator};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let pool = JobPool::from_args(&mut args);
    let mode = args.first().cloned().unwrap_or_default();
    let sim = Simulator::new(SimConfig::table_i());
    let (results, throughput) = timed(&pool, SuiteResults::counts, |pool| {
        run_suite_with(&sim, pool).expect("suite completes")
    });
    match mode.as_str() {
        "--csv" => print!("{}", fig6_csv(&results)),
        "--csv=runs" => print!("{}", runs_csv(&results)),
        _ => println!("{}", fig6_report(&results)),
    }
    eprintln!("{}", throughput.report());
}
