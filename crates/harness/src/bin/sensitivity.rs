//! Sweeps microarchitecture parameters (ROB depth, MSHR count) and shows
//! how STT's and STT+SDO's overheads move — the abstract's "depending on
//! the microarchitecture" claim, quantified.
//!
//! `--jobs N` (or `SDO_JOBS`) fans the sweep points out across worker
//! threads.
use sdo_harness::engine::JobPool;
use sdo_harness::experiments::sensitivity_report_with;
use sdo_harness::SimConfig;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let pool = JobPool::from_args(&mut args);
    println!(
        "{}",
        sensitivity_report_with(SimConfig::table_i(), &pool).expect("sweep completes")
    );
}
