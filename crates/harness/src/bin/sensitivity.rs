//! Sweeps microarchitecture parameters (ROB depth, MSHR count) and shows
//! how STT's and STT+SDO's overheads move — the abstract's "depending on
//! the microarchitecture" claim, quantified.
//!
//! `--jobs N` (or `SDO_JOBS`) fans the sweep points out across worker
//! threads; `--metrics <path>` dumps the merged metric snapshot.
use sdo_harness::cli::{BinSpec, CommonArgs, CsvSupport};
use sdo_harness::experiments::sensitivity_with_metrics;
use sdo_harness::SimConfig;

const SPEC: BinSpec = BinSpec {
    name: "sensitivity",
    about: "Sweeps ROB depth and MSHR count; reports STT vs STT+SDO overhead at each point.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: true,
    seed: false,
    no_skip: true,
    client: true,
    extra_options: &[],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    args.reject_rest(&SPEC);
    let runner = args.runner(&SPEC, SimConfig::table_i());
    let (report, metrics) = sensitivity_with_metrics(&runner, &args.pool)
        .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()));
    println!("{report}");
    args.write_metrics(&SPEC, &metrics);
    args.report_cache(&runner);
}
