//! Sweeps microarchitecture parameters (ROB depth, MSHR count) and shows
//! how STT's and STT+SDO's overheads move — the abstract's "depending on
//! the microarchitecture" claim, quantified.
use sdo_harness::experiments::sensitivity_report;
use sdo_harness::SimConfig;

fn main() {
    println!("{}", sensitivity_report(SimConfig::table_i()).expect("sweep completes"));
}
