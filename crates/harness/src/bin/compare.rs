//! `compare` — side-by-side statistics for two Table II variants on one
//! suite kernel, highlighting exactly where the protection overhead (or
//! the SDO recovery) comes from.
//!
//! ```text
//! cargo run --release -p sdo-harness --bin compare -- \
//!     [kernel] [variant-a] [variant-b] [spectre|futuristic] [--jobs N]
//! ```
//!
//! Defaults: `hash_lookup STT{ld} Hybrid spectre`.

use sdo_harness::engine::JobPool;
use sdo_harness::sim::RunResult;
use sdo_harness::table::TextTable;
use sdo_harness::{SimConfig, Simulator, Variant};
use sdo_uarch::AttackModel;
use sdo_workloads::suite;
use std::process::exit;

fn find_variant(name: &str) -> Variant {
    match Variant::ALL.iter().find(|v| v.name().eq_ignore_ascii_case(name)) {
        Some(v) => *v,
        None => {
            eprintln!(
                "unknown variant '{name}'; options: {}",
                Variant::ALL.map(|v| v.name()).join(", ")
            );
            exit(2);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let pool = JobPool::from_args(&mut args);
    let kernel = args.first().map_or("hash_lookup", String::as_str);
    let va = find_variant(args.get(1).map_or("STT{ld}", String::as_str));
    let vb = find_variant(args.get(2).map_or("Hybrid", String::as_str));
    let attack = match args.get(3).map(String::as_str) {
        None | Some("spectre") => AttackModel::Spectre,
        Some("futuristic") => AttackModel::Futuristic,
        Some(other) => {
            eprintln!("unknown attack model '{other}'");
            exit(2);
        }
    };

    let kernels = suite();
    let Some(w) = kernels.iter().find(|w| w.name() == kernel) else {
        eprintln!(
            "unknown kernel '{kernel}'; options: {}",
            kernels.iter().map(|w| w.name()).collect::<Vec<_>>().join(", ")
        );
        exit(2);
    };

    let sim = Simulator::new(SimConfig::table_i());
    let variants = [Variant::Unsafe, va, vb];
    let mut runs = pool
        .try_run(&variants, |_, &v| sim.clone().run_workload(w, v, attack))
        .expect("runs complete")
        .into_iter();
    let (base, a, b) = (
        runs.next().expect("baseline run"),
        runs.next().expect("variant A run"),
        runs.next().expect("variant B run"),
    );

    let row = |name: &str, f: &dyn Fn(&RunResult) -> String| {
        vec![name.to_string(), f(&a), f(&b)]
    };
    let mut t = TextTable::new(vec![
        format!("{kernel} / {attack}"),
        va.name().to_string(),
        vb.name().to_string(),
    ]);
    t.row(row("cycles", &|r| r.cycles.to_string()));
    t.row(row("normalized to Unsafe", &|r| format!("{:.3}", r.normalized_to(&base))));
    t.row(row("IPC", &|r| format!("{:.2}", r.core.ipc())));
    t.row(row("delayed loads", &|r| r.core.delayed_loads.to_string()));
    t.row(row("delay cycles", &|r| r.core.delay_cycles.to_string()));
    t.row(row("Obl-Ld issued", &|r| r.core.obl.issued.to_string()));
    t.row(row("Obl-Ld success/fail", &|r| {
        format!("{}/{}", r.core.obl.success, r.core.obl.fail)
    }));
    t.row(row("DRAM predictions", &|r| r.core.obl.dram_predictions.to_string()));
    t.row(row("validations/exposures", &|r| {
        format!("{}/{}", r.core.obl.validations, r.core.obl.exposures)
    }));
    t.row(row("validation stall cycles", &|r| r.core.obl.validation_stall_cycles.to_string()));
    t.row(row("squashes (SDO-related)", &|r| r.core.squashes.sdo_related().to_string()));
    t.row(row("squashes (branch)", &|r| r.core.squashes.branch.to_string()));
    t.row(row("predictor precision", &|r| format!("{:.1}%", 100.0 * r.core.obl.precision())));
    t.row(row("predictor accuracy", &|r| format!("{:.1}%", 100.0 * r.core.obl.accuracy())));
    println!("{}", t.render());
    println!("(Unsafe baseline: {} cycles)", base.cycles);
}
