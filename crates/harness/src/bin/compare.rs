//! `compare` — side-by-side statistics for two Table II variants on one
//! suite kernel, highlighting exactly where the protection overhead (or
//! the SDO recovery) comes from.
//!
//! ```text
//! cargo run --release -p sdo-harness --bin compare -- \
//!     [kernel] [variant-a] [variant-b] [spectre|futuristic] [options]
//! ```
//!
//! Defaults: `hash_lookup STT{ld} Hybrid spectre`. Variant names accept
//! hyphen/underscore spellings (`stt-ld`, `static_l2`, ...).
use sdo_harness::cli::{parse_attack, parse_variant, BinSpec, CommonArgs, CsvSupport};
use sdo_harness::sim::{RunRequest, RunResult};
use sdo_harness::table::TextTable;
use sdo_harness::{SimConfig, Variant};
use sdo_uarch::{AttackModel, MetricsSnapshot};
use sdo_workloads::suite;

const SPEC: BinSpec = BinSpec {
    name: "compare",
    about: "Compares two Table II variants side by side on one suite kernel.",
    usage_args: "[kernel] [variant-a] [variant-b] [spectre|futuristic] [options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: true,
    seed: false,
    no_skip: true,
    client: true,
    extra_options: &[],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    if args.rest.len() > 4 {
        SPEC.usage_error(&format!("unexpected argument '{}'", args.rest[4]));
    }
    let kernel = args.rest.first().map_or("hash_lookup", String::as_str);
    let va = parse_variant(args.rest.get(1).map_or("STT{ld}", String::as_str))
        .unwrap_or_else(|e| SPEC.usage_error(&e));
    let vb = parse_variant(args.rest.get(2).map_or("Hybrid", String::as_str))
        .unwrap_or_else(|e| SPEC.usage_error(&e));
    let attack: AttackModel = parse_attack(args.rest.get(3).map_or("spectre", String::as_str))
        .unwrap_or_else(|e| SPEC.usage_error(&e));

    let kernels = suite();
    let Some(w) = kernels.iter().find(|w| w.name() == kernel) else {
        SPEC.usage_error(&format!(
            "unknown kernel '{kernel}'; options: {}",
            kernels.iter().map(|w| w.name()).collect::<Vec<_>>().join(", ")
        ));
    };

    let runner = args.runner(&SPEC, SimConfig::table_i());
    let reqs: Vec<RunRequest> = [Variant::Unsafe, va, vb]
        .iter()
        .map(|&v| RunRequest::workload(w).variant(v).attack(attack))
        .collect();
    let mut runs = runner
        .run_batch(&reqs, &args.pool)
        .unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()))
        .into_iter();
    let (base, a, b) = (
        runs.next().expect("baseline run"),
        runs.next().expect("variant A run"),
        runs.next().expect("variant B run"),
    );

    let row = |name: &str, f: &dyn Fn(&RunResult) -> String| {
        vec![name.to_string(), f(&a), f(&b)]
    };
    let mut t = TextTable::new(vec![
        format!("{kernel} / {attack}"),
        va.name().to_string(),
        vb.name().to_string(),
    ]);
    t.row(row("cycles", &|r| r.cycles.to_string()));
    t.row(row("normalized to Unsafe", &|r| format!("{:.3}", r.normalized_to(&base))));
    t.row(row("IPC", &|r| format!("{:.2}", r.core.ipc())));
    t.row(row("delayed loads", &|r| r.core.delayed_loads.to_string()));
    t.row(row("delay cycles", &|r| r.core.delay_cycles.to_string()));
    t.row(row("Obl-Ld issued", &|r| r.core.obl.issued.to_string()));
    t.row(row("Obl-Ld success/fail", &|r| {
        format!("{}/{}", r.core.obl.success, r.core.obl.fail)
    }));
    t.row(row("DRAM predictions", &|r| r.core.obl.dram_predictions.to_string()));
    t.row(row("validations/exposures", &|r| {
        format!("{}/{}", r.core.obl.validations, r.core.obl.exposures)
    }));
    t.row(row("validation stall cycles", &|r| r.core.obl.validation_stall_cycles.to_string()));
    t.row(row("squashes (SDO-related)", &|r| r.core.squashes.sdo_related().to_string()));
    t.row(row("squashes (branch)", &|r| r.core.squashes.branch.to_string()));
    t.row(row("predictor precision", &|r| format!("{:.1}%", 100.0 * r.core.obl.precision())));
    t.row(row("predictor accuracy", &|r| format!("{:.1}%", 100.0 * r.core.obl.accuracy())));
    println!("{}", t.render());
    println!("(Unsafe baseline: {} cycles)", base.cycles);

    let mut metrics = MetricsSnapshot::new();
    for r in [&base, &a, &b] {
        metrics.merge(&r.metrics());
    }
    args.write_metrics(&SPEC, &metrics);
    args.report_cache(&runner);
}
