//! Regenerates Figure 7: overhead breakdown for the SDO variants.
use sdo_harness::experiments::{fig7_report, run_suite};
use sdo_harness::{SimConfig, Simulator};

fn main() {
    let sim = Simulator::new(SimConfig::table_i());
    let results = run_suite(&sim).expect("suite completes");
    println!("{}", fig7_report(&results));
}
