//! Regenerates Figure 7: overhead breakdown for the SDO variants.
//!
//! `--jobs N` (or `SDO_JOBS`) fans the suite out across worker threads;
//! the throughput summary goes to stderr.
use sdo_harness::engine::{timed, JobPool};
use sdo_harness::experiments::{fig7_report, run_suite_with, SuiteResults};
use sdo_harness::{SimConfig, Simulator};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let pool = JobPool::from_args(&mut args);
    let sim = Simulator::new(SimConfig::table_i());
    let (results, throughput) = timed(&pool, SuiteResults::counts, |pool| {
        run_suite_with(&sim, pool).expect("suite completes")
    });
    println!("{}", fig7_report(&results));
    eprintln!("{}", throughput.report());
}
