//! Regenerates Figure 8: squashes vs normalized execution time.
use sdo_harness::experiments::{fig8_report, run_suite};
use sdo_harness::{SimConfig, Simulator};

fn main() {
    let sim = Simulator::new(SimConfig::table_i());
    let results = run_suite(&sim).expect("suite completes");
    println!("{}", fig8_report(&results));
}
