//! Regenerates Figure 8: squashes vs normalized execution time.
//!
//! `--jobs N` (or `SDO_JOBS`) fans the suite out across worker threads;
//! `--metrics <path>` dumps the merged metric snapshot; the throughput
//! summary goes to stderr.
use sdo_harness::cli::{BinSpec, CommonArgs, CsvSupport};
use sdo_harness::engine::timed;
use sdo_harness::experiments::{fig8_report, run_suite_with, SuiteResults};
use sdo_harness::{SimConfig, Simulator};

const SPEC: BinSpec = BinSpec {
    name: "fig8",
    about: "Regenerates Figure 8: SDO squashes vs normalized execution time.",
    usage_args: "[options]",
    jobs: true,
    csv: CsvSupport::None,
    metrics: true,
    seed: false,
    no_skip: true,
    extra_options: &[],
};

fn main() {
    let args = CommonArgs::parse(&SPEC);
    args.reject_rest(&SPEC);
    let sim = Simulator::new(args.sim_config(SimConfig::table_i()));
    let (results, throughput) = timed(&args.pool, SuiteResults::counts, |pool| {
        run_suite_with(&sim, pool).unwrap_or_else(|e| SPEC.runtime_error(&e.to_string()))
    });
    println!("{}", fig8_report(&results));
    args.write_metrics(&SPEC, &results.metrics());
    eprintln!("{}", throughput.report());
}
