//! Plain-text table rendering for the experiment binaries.

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```rust
/// use sdo_harness::table::TextTable;
/// let mut t = TextTable::new(vec!["kernel".into(), "cycles".into()]);
/// t.row(vec!["ptr_chase".into(), "123".into()]);
/// let s = t.render();
/// assert!(s.contains("ptr_chase"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        TextTable { header, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}", w = widths[i]));
                } else {
                    line.push_str(&format!("{cell:>w$}", w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A horizontal ASCII bar chart — the terminal rendering of the paper's
/// bar figures (Figure 6) and scatter plots (Figure 8).
///
/// # Examples
///
/// ```rust
/// use sdo_harness::table::BarChart;
/// let mut c = BarChart::new("normalized time", 40);
/// c.bar("Unsafe", 1.0);
/// c.bar("STT{ld}", 1.6);
/// let s = c.render();
/// assert!(s.contains("STT{ld}"));
/// assert!(s.contains('█'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    width: usize,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates a chart whose longest bar spans `width` characters.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn new(title: impl Into<String>, width: usize) -> Self {
        assert!(width > 0, "chart width must be positive");
        BarChart { title: title.into(), width, bars: Vec::new() }
    }

    /// Appends one labelled bar. Negative values are clamped to zero.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) {
        self.bars.push((label.into(), value.max(0.0)));
    }

    /// Renders the chart with proportional bar lengths and the numeric
    /// value at each bar's end.
    #[must_use]
    pub fn render(&self) -> String {
        let max = self.bars.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = format!("{}\n", self.title);
        for (label, value) in &self.bars {
            let len = if max > 0.0 {
                ((value / max) * self.width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "{label:<label_w$} {} {value:.3}\n",
                "█".repeat(len.max(if *value > 0.0 { 1 } else { 0 }))
            ));
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal, e.g. `4.2%`.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a normalized execution time, e.g. `1.042`.
#[must_use]
pub fn norm(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["a".into(), "value".into()]);
        t.row(vec!["long-name".into(), "1".into()]);
        t.row(vec!["x".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().filter(|&c| c == '-').count(), lines[1].len());
        assert!(lines[2].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let mut c = BarChart::new("t", 10);
        c.bar("a", 2.0);
        c.bar("bb", 1.0);
        c.bar("c", 0.0);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        let count = |l: &str| l.chars().filter(|&c| c == '█').count();
        assert_eq!(count(lines[1]), 10, "max value spans full width");
        assert_eq!(count(lines[2]), 5, "half value spans half width");
        assert_eq!(count(lines[3]), 0, "zero value draws nothing");
        assert!(lines[2].starts_with("bb "));
    }

    #[test]
    fn bar_chart_handles_all_zero() {
        let mut c = BarChart::new("empty", 10);
        c.bar("x", 0.0);
        assert!(c.render().contains("0.000"));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = BarChart::new("t", 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0419), "4.2%");
        assert_eq!(norm(1.0419), "1.042");
        assert!(TextTable::new(vec!["h".into()]).is_empty());
    }
}
