//! The [`Runner`]: one façade for executing batches of [`RunRequest`]s
//! locally, memoized through a content-addressed [`ResultStore`], or
//! submitted to a running `sdo-serve` daemon — selected by the uniform
//! `--store` / `--server` / `--no-cache` client flags every bin exposes.
//!
//! Whatever the backend, a batch returns results in request order and
//! the hit/miss counters record how many simulations were actually
//! executed, so callers (and CI) can assert "second pass: 100% cache
//! hits, zero re-simulations".

use crate::engine::JobPool;
use crate::proto::{Reply, Request, BATCH_ERROR_ID};
use crate::sim::{RunRequest, RunResult, SimError, Simulator};
use crate::store::{ResultStore, RunKey};
use crate::{SimConfig, Variant};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug)]
enum Backend {
    /// Simulate on this process's pool, optionally memoizing into a
    /// store.
    Local { store: Option<ResultStore> },
    /// Submit to an `sdo-serve` daemon over its Unix socket.
    Server { path: String },
}

/// Executes batches of run requests against a selectable backend. See
/// the module docs.
#[derive(Debug)]
pub struct Runner {
    sim: Simulator,
    backend: Backend,
    no_cache: bool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Runner {
    /// A purely local runner (no store, no daemon) — the classic
    /// in-process harness behavior.
    #[must_use]
    pub fn local(cfg: SimConfig) -> Self {
        Runner {
            sim: Simulator::new(cfg),
            backend: Backend::Local { store: None },
            no_cache: false,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A local runner memoizing through the content-addressed store at
    /// `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] if the store cannot be opened.
    pub fn with_store(cfg: SimConfig, dir: &str) -> Result<Self, SimError> {
        Ok(Runner {
            sim: Simulator::new(cfg),
            backend: Backend::Local { store: Some(ResultStore::open(dir)?) },
            no_cache: false,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// A thin client submitting every batch to the daemon listening on
    /// the Unix socket at `path`.
    #[must_use]
    pub fn server(cfg: SimConfig, path: impl Into<String>) -> Self {
        Runner {
            sim: Simulator::new(cfg),
            backend: Backend::Server { path: path.into() },
            no_cache: false,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Disables store lookups (results are still saved locally when a
    /// store is configured; the daemon honors the flag per request).
    #[must_use]
    pub fn no_cache(mut self, on: bool) -> Self {
        self.no_cache = on;
        self
    }

    /// The base machine configuration requests run under when they carry
    /// no override.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        *self.sim.config()
    }

    /// The underlying local simulator (penetration tests and the
    /// verifier need raw [`Simulator::run`] access for memory residency
    /// and observability, which never route through a store).
    #[must_use]
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Results served from the store (local or daemon-side) so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Results actually simulated so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// A one-line cache report for stderr, or `None` for a plain local
    /// runner (no store, no server — nothing to report).
    #[must_use]
    pub fn cache_report(&self) -> Option<String> {
        match &self.backend {
            Backend::Local { store: None } => None,
            _ => {
                let hits = self.hits();
                let misses = self.misses();
                let total = hits + misses;
                let pct = if total == 0 { 0.0 } else { 100.0 * hits as f64 / total as f64 };
                Some(format!("cache: {hits} hits, {misses} misses ({pct:.1}% cached)"))
            }
        }
    }

    /// Runs one request (serially).
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`SimError`].
    pub fn run_one(&self, req: &RunRequest) -> Result<RunResult, SimError> {
        Ok(self
            .run_batch(std::slice::from_ref(req), &JobPool::serial())?
            .into_iter()
            .next()
            .expect("one request yields one result"))
    }

    /// Runs a batch, returning one result per request in request order
    /// (the canonical merge — byte-identical at any `--jobs`).
    ///
    /// Requests must be single-program and non-recording; multi-core and
    /// PC-recording runs need the full [`RunOutput`](crate::RunOutput)
    /// and go through [`Simulator::run`] directly.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed failure: a [`SimError::Hang`] from
    /// simulation, [`SimError::Store`] from the store, or
    /// [`SimError::Server`] from the daemon.
    ///
    /// # Panics
    ///
    /// Panics if a request is multi-program or recording.
    pub fn run_batch(
        &self,
        reqs: &[RunRequest],
        pool: &JobPool,
    ) -> Result<Vec<RunResult>, SimError> {
        for req in reqs {
            assert_eq!(req.programs.len(), 1, "Runner batches are single-program");
            assert!(!req.record, "recording runs do not route through a Runner");
        }
        match &self.backend {
            Backend::Local { store } => self.run_local(reqs, store.as_ref(), pool),
            Backend::Server { path } => self.run_remote(reqs, path),
        }
    }

    /// Runs a parameter grid — every `configs` × `variants` combination
    /// of `template` (config-major, variant-minor) — returning one
    /// result per point in that order.
    ///
    /// Against a daemon the whole grid travels as a single `grid`
    /// request line (one round-trip, one reply line); each expanded
    /// point carries the same [`RunKey`] as the equivalent individual
    /// run request, so store entries are shared between the two paths.
    /// A daemon whose queue cannot absorb the whole grid answers
    /// `Busy`, and the client transparently falls back to submitting
    /// the points as an ordinary batch.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`SimError`], exactly like
    /// [`run_batch`](Self::run_batch).
    ///
    /// # Panics
    ///
    /// Panics if `template` is multi-program or recording.
    pub fn run_grid(
        &self,
        template: &RunRequest,
        configs: &[SimConfig],
        variants: &[Variant],
        pool: &JobPool,
    ) -> Result<Vec<RunResult>, SimError> {
        assert_eq!(template.programs.len(), 1, "Runner grids are single-program");
        assert!(!template.record, "recording runs do not route through a Runner");
        let expand = || -> Vec<RunRequest> {
            configs
                .iter()
                .flat_map(|&cfg| {
                    variants.iter().map(move |&v| template.clone().variant(v).config(cfg))
                })
                .collect()
        };
        match &self.backend {
            Backend::Local { .. } => self.run_batch(&expand(), pool),
            Backend::Server { path } => {
                match self.run_grid_remote(template, configs, variants, path)? {
                    Some(results) => Ok(results),
                    // The daemon bounced the grid (queue too small for
                    // its point count): per-point submission chunks
                    // naturally through the Busy/resubmit protocol.
                    None => self.run_batch(&expand(), pool),
                }
            }
        }
    }

    /// One grid request over the socket. `Ok(None)` means the daemon
    /// answered `Busy` and the caller should fall back to a per-point
    /// batch.
    fn run_grid_remote(
        &self,
        template: &RunRequest,
        configs: &[SimConfig],
        variants: &[Variant],
        path: &str,
    ) -> Result<Option<Vec<RunResult>>, SimError> {
        let stream = UnixStream::connect(path)
            .map_err(|e| SimError::Server(format!("cannot connect to {path}: {e}")))?;
        let mut reader = BufReader::new(
            stream.try_clone().map_err(|e| SimError::Server(format!("socket clone: {e}")))?,
        );
        let mut stream = stream;
        let msg = Request::Grid {
            id: 0,
            request: template.clone(),
            configs: configs.to_vec(),
            variants: variants.to_vec(),
            no_cache: self.no_cache,
        };
        let mut batch = msg.render();
        batch.push_str("\n\n");
        stream
            .write_all(batch.as_bytes())
            .map_err(|e| SimError::Server(format!("write to {path}: {e}")))?;
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| SimError::Server(format!("read from {path}: {e}")))?;
        if n == 0 {
            return Err(SimError::Server(format!(
                "daemon at {path} closed the connection mid-batch"
            )));
        }
        match Reply::parse(line.trim_end()) {
            Ok(Reply::Grid { results, .. }) => {
                let points = configs.len() * variants.len();
                if results.len() != points {
                    return Err(SimError::Server(format!(
                        "grid reply carries {} points, expected {points}",
                        results.len()
                    )));
                }
                let mut out = Vec::with_capacity(points);
                for (result, cached) in results {
                    if cached {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    out.push(result);
                }
                Ok(Some(out))
            }
            Ok(Reply::Busy { .. }) => Ok(None),
            Ok(Reply::Error { message, .. }) => Err(SimError::Server(message)),
            Ok(other) => {
                Err(SimError::Server(format!("unexpected reply {other:?} to a grid request")))
            }
            Err(e) => Err(SimError::Server(format!("bad reply line: {e}"))),
        }
    }

    fn cacheable(&self, req: &RunRequest) -> bool {
        // Obs-carrying results cannot be serialized (the probe stays
        // in-process), so they are simulated every time.
        !req.effective_config(self.config()).obs.enabled()
    }

    fn run_local(
        &self,
        reqs: &[RunRequest],
        store: Option<&ResultStore>,
        pool: &JobPool,
    ) -> Result<Vec<RunResult>, SimError> {
        let mut slots: Vec<Option<RunResult>> = vec![None; reqs.len()];
        let mut todo: Vec<usize> = Vec::new();
        let keys: Vec<Option<RunKey>> = reqs
            .iter()
            .map(|req| {
                (store.is_some() && self.cacheable(req))
                    .then(|| RunKey::of(req, self.config()))
            })
            .collect();
        if let Some(store) = store {
            for (i, req) in reqs.iter().enumerate() {
                match &keys[i] {
                    Some(key) if !self.no_cache => match store.load(key)? {
                        Some(result) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            slots[i] = Some(result);
                        }
                        None => todo.push(i),
                    },
                    _ => {
                        let _ = req;
                        todo.push(i);
                    }
                }
            }
        } else {
            todo.extend(0..reqs.len());
        }

        let fresh = pool.try_run(&todo, |_, &i| {
            self.sim.run(&reqs[i]).map(crate::RunOutput::into_result)
        })?;
        self.misses.fetch_add(todo.len() as u64, Ordering::Relaxed);
        for (&i, result) in todo.iter().zip(fresh) {
            if let (Some(store), Some(key)) = (store, &keys[i]) {
                store.save(key, &result)?;
            }
            slots[i] = Some(result);
        }
        Ok(slots.into_iter().map(|s| s.expect("every slot filled")).collect())
    }

    fn run_remote(&self, reqs: &[RunRequest], path: &str) -> Result<Vec<RunResult>, SimError> {
        let stream = UnixStream::connect(path)
            .map_err(|e| SimError::Server(format!("cannot connect to {path}: {e}")))?;
        let mut reader = BufReader::new(
            stream.try_clone().map_err(|e| SimError::Server(format!("socket clone: {e}")))?,
        );
        let mut stream = stream;
        let mut slots: Vec<Option<RunResult>> = vec![None; reqs.len()];
        let mut first_error: Option<(u64, String)> = None;
        // Submit everything; resubmit whatever the daemon bounced with
        // `Busy` (its bounded queue is the back-pressure contract) until
        // every id has a terminal reply.
        let mut pending: Vec<usize> = (0..reqs.len()).collect();
        while !pending.is_empty() {
            let mut batch = String::new();
            for &i in &pending {
                // Resolve the config client-side: the daemon's base
                // config is its own (and not ours), so a request sent
                // with `config: None` would silently run under whatever
                // the daemon was started with. Resolving here matches
                // the RunKey canonicalization (the key hashes the
                // effective config), so cache behavior is unchanged.
                let mut request = reqs[i].clone();
                request.config = Some(request.effective_config(self.config()));
                let msg = Request::Run { id: i as u64, request, no_cache: self.no_cache };
                batch.push_str(&msg.render());
                batch.push('\n');
            }
            batch.push('\n');
            stream
                .write_all(batch.as_bytes())
                .map_err(|e| SimError::Server(format!("write to {path}: {e}")))?;
            let expected = pending.len();
            let mut bounced: Vec<usize> = Vec::new();
            for _ in 0..expected {
                let mut line = String::new();
                let n = reader
                    .read_line(&mut line)
                    .map_err(|e| SimError::Server(format!("read from {path}: {e}")))?;
                if n == 0 {
                    return Err(SimError::Server(format!(
                        "daemon at {path} closed the connection mid-batch"
                    )));
                }
                match Reply::parse(line.trim_end()) {
                    Ok(Reply::Result { id, result, cached }) => {
                        if cached {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                        }
                        match slots.get_mut(id as usize) {
                            Some(slot) => *slot = Some(result),
                            None => {
                                return Err(SimError::Server(format!(
                                    "daemon replied for unknown id {id}"
                                )))
                            }
                        }
                    }
                    Ok(Reply::Busy { id }) => bounced.push(id as usize),
                    Ok(Reply::Error { id, message }) if id == BATCH_ERROR_ID => {
                        // Batch-level: the daemon could not attribute
                        // the error to any request we sent, so no slot
                        // can be filled — fail the whole batch.
                        return Err(SimError::Server(format!(
                            "daemon rejected a request line: {message}"
                        )));
                    }
                    Ok(Reply::Error { id, message }) => {
                        if first_error.as_ref().is_none_or(|&(prev, _)| id < prev) {
                            first_error = Some((id, message));
                        }
                    }
                    Ok(other) => {
                        return Err(SimError::Server(format!(
                            "unexpected reply {other:?} to a run batch"
                        )))
                    }
                    Err(e) => return Err(SimError::Server(format!("bad reply line: {e}"))),
                }
            }
            bounced.sort_unstable();
            pending = bounced;
        }
        if let Some((_, message)) = first_error {
            return Err(SimError::Server(message));
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.ok_or_else(|| SimError::Server(format!("no reply for request {i}")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variant;
    use sdo_workloads::kernels::l1_resident;

    fn temp_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("sdo-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn local_runner_matches_direct_simulation() {
        let cfg = SimConfig::tiny();
        let prog = l1_resident(120, 1);
        let reqs: Vec<RunRequest> = Variant::ALL
            .iter()
            .map(|&v| RunRequest::program(&prog).variant(v))
            .collect();
        let runner = Runner::local(cfg);
        let batch = runner.run_batch(&reqs, &JobPool::new(4)).unwrap();
        let sim = Simulator::new(cfg);
        for (req, got) in reqs.iter().zip(&batch) {
            assert_eq!(*got, sim.run(req).unwrap().into_result());
        }
        assert_eq!(runner.hits(), 0);
        assert_eq!(runner.misses(), reqs.len() as u64);
        assert!(runner.cache_report().is_none(), "plain local runner has nothing to report");
    }

    #[test]
    fn warm_store_serves_the_whole_batch_with_zero_simulations() {
        let dir = temp_dir("warm");
        let cfg = SimConfig::tiny();
        let prog = l1_resident(120, 1);
        let reqs: Vec<RunRequest> = Variant::ALL
            .iter()
            .map(|&v| RunRequest::program(&prog).variant(v))
            .collect();

        let cold = Runner::with_store(cfg, &dir).unwrap();
        let cold_results = cold.run_batch(&reqs, &JobPool::new(2)).unwrap();
        assert_eq!(cold.hits(), 0);
        assert_eq!(cold.misses(), reqs.len() as u64);

        // A fresh runner (fresh process, in spirit) over the same store:
        // everything is a hit, nothing simulates, bytes are identical.
        let warm = Runner::with_store(cfg, &dir).unwrap();
        let warm_results = warm.run_batch(&reqs, &JobPool::new(2)).unwrap();
        assert_eq!(warm.hits(), reqs.len() as u64);
        assert_eq!(warm.misses(), 0, "warm rerun must execute zero simulations");
        assert_eq!(warm_results, cold_results);
        assert_eq!(
            warm.cache_report().unwrap(),
            format!("cache: {} hits, 0 misses (100.0% cached)", reqs.len())
        );

        // --no-cache forces re-simulation even with a warm store.
        let bypass = Runner::with_store(cfg, &dir).unwrap().no_cache(true);
        let bypass_results = bypass.run_batch(&reqs, &JobPool::serial()).unwrap();
        assert_eq!(bypass.hits(), 0);
        assert_eq!(bypass_results, cold_results);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hang_errors_propagate_through_the_store_path() {
        let dir = temp_dir("hang");
        let mut cfg = SimConfig::tiny();
        cfg.max_cycles = 500;
        let mut asm = sdo_isa::Assembler::named("spin");
        let top = asm.here();
        asm.j(top);
        let spin = asm.finish().unwrap();
        let runner = Runner::with_store(cfg, &dir).unwrap();
        let err = runner.run_one(&RunRequest::program(&spin)).unwrap_err();
        assert!(matches!(err, SimError::Hang { .. }));
        // A failed run must not poison the store.
        assert!(ResultStore::open(&dir).unwrap().is_empty().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
