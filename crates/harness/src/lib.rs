//! # sdo-harness — experiment harness for the SDO reproduction
//!
//! Drives the simulator across the configurations of Table II and
//! regenerates every evaluation artifact of the paper:
//!
//! | artifact | entry point | binary |
//! |---|---|---|
//! | Table I (architecture) | [`config::SimConfig::table_i`] | `table1` |
//! | Table II (variants) | [`config::Variant`] | printed everywhere |
//! | Figure 6 (normalized execution time) | [`experiments::fig6_report`] | `fig6` |
//! | Figure 7 (overhead breakdown) | [`experiments::fig7_report`] | `fig7` |
//! | Figure 8 (squashes vs time) | [`experiments::fig8_report`] | `fig8` |
//! | Table III (precision/accuracy) | [`experiments::table3_report`] | `table3` |
//! | Penetration test (§VIII-A) | [`experiments::pentest`] | `pentest` (in `sdo-verify`) |
//!
//! ## Example
//!
//! ```rust
//! use sdo_harness::{SimConfig, Simulator, Variant};
//! use sdo_uarch::AttackModel;
//! use sdo_workloads::kernels::l1_resident;
//!
//! let sim = Simulator::new(SimConfig::table_i());
//! let prog = l1_resident(200, 1);
//! let base = sim.run(&prog, Variant::Unsafe, AttackModel::Spectre).unwrap();
//! let stt = sim.run(&prog, Variant::SttLd, AttackModel::Spectre).unwrap();
//! assert!(stt.cycles >= base.cycles);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod config;
pub mod engine;
pub mod experiments;
pub mod export;
pub mod sim;
pub mod table;

pub use config::{SimConfig, Variant};
pub use engine::{JobPool, Throughput};
pub use sim::{RunResult, SimError, Simulator};
