//! # sdo-harness — experiment harness for the SDO reproduction
//!
//! Drives the simulator across the configurations of Table II and
//! regenerates every evaluation artifact of the paper:
//!
//! | artifact | entry point | binary |
//! |---|---|---|
//! | Table I (architecture) | [`config::SimConfig::table_i`] | `table1` |
//! | Table II (variants) | [`config::Variant`] | printed everywhere |
//! | Figure 6 (normalized execution time) | [`experiments::fig6_report`] | `fig6` |
//! | Figure 7 (overhead breakdown) | [`experiments::fig7_report`] | `fig7` |
//! | Figure 8 (squashes vs time) | [`experiments::fig8_report`] | `fig8` |
//! | Table III (precision/accuracy) | [`experiments::table3_report`] | `table3` |
//! | Penetration test (§VIII-A) | [`experiments::pentest`] | `pentest` (in `sdo-verify`) |
//!
//! Every simulation goes through one entry point, [`Simulator::run`],
//! driven by the canonical [`RunRequest`] type. Batches route through a
//! [`Runner`], which can execute locally, memoize into a
//! content-addressed [`store::ResultStore`], or submit to a running
//! `sdo-serve` daemon over the line-delimited JSON protocol in
//! [`proto`] (`--server`, `--store`, `--no-cache` on every bin).
//!
//! ## Example
//!
//! ```rust
//! use sdo_harness::{RunRequest, SimConfig, Simulator, Variant};
//! use sdo_uarch::AttackModel;
//! use sdo_workloads::kernels::l1_resident;
//!
//! let sim = Simulator::new(SimConfig::table_i());
//! let prog = l1_resident(200, 1);
//! let base = sim.run(&RunRequest::program(&prog)).unwrap().into_result();
//! let stt =
//!     sim.run(&RunRequest::program(&prog).variant(Variant::SttLd)).unwrap().into_result();
//! assert!(stt.cycles >= base.cycles);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod config;
pub mod engine;
pub mod experiments;
pub mod export;
pub mod proto;
pub mod runner;
pub mod sim;
pub mod store;
pub mod table;

pub use config::{SimConfig, Variant};
pub use engine::{JobPool, Throughput};
pub use runner::Runner;
pub use sim::{RunOutput, RunRequest, RunResult, SimError, Simulator};
pub use store::{ResultStore, RunKey};
pub use sdo_uarch::AttackModel;
