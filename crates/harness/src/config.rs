//! Simulation configuration: Table I parameters and the Table II design
//! variants.

use sdo_mem::{CacheLevel, MemConfig};
use sdo_uarch::{
    AttackModel, CoreConfig, ObsConfig, PredictorKind, Protection, SdoConfig, SecurityConfig,
};
use std::fmt;

/// Complete machine configuration (core + memory hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Pipeline parameters (Table I, pipeline row).
    pub core: CoreConfig,
    /// Memory-hierarchy parameters (Table I, remaining rows).
    pub mem: MemConfig,
    /// Cycle budget per simulation before declaring a hang.
    pub max_cycles: u64,
    /// Observability: occupancy histograms / event tracing. Defaults to
    /// fully off, which is the allocation-free path — and because the
    /// probe is a pure observer, figures are byte-identical either way.
    pub obs: ObsConfig,
    /// Quiescence fast-forward for single-core runs: skip fully stalled
    /// intervals in one cycle-exact jump. On by default — every output
    /// is byte-identical with it off (the `--no-skip` escape hatch);
    /// only wall-clock time changes. Multi-core lockstep runs ignore it.
    pub fast_forward: bool,
}

impl SimConfig {
    /// The paper's Table I machine.
    #[must_use]
    pub fn table_i() -> Self {
        SimConfig {
            core: CoreConfig::table_i(),
            mem: MemConfig::table_i(),
            max_cycles: 200_000_000,
            obs: ObsConfig::OFF,
            fast_forward: true,
        }
    }

    /// A small machine for fast unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        SimConfig {
            core: CoreConfig::tiny(),
            mem: MemConfig::tiny(),
            max_cycles: 50_000_000,
            obs: ObsConfig::OFF,
            fast_forward: true,
        }
    }

    /// The same machine with the given observability configuration.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// The same machine with quiescence fast-forward enabled/disabled.
    #[must_use]
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Renders Table I.
    #[must_use]
    pub fn render_table_i(&self) -> String {
        let c = &self.core;
        let m = &self.mem;
        format!(
            "TABLE I: Simulated architecture parameters\n\
             Pipeline   | {}-wide fetch/decode/issue/commit, {}/{} SQ/LQ, {} ROB, {} MSHRs,\n\
             \x20          | tournament branch predictor, {}-cycle frontend\n\
             L1 D-Cache | {} KB, 64B line, {}-way, {}-cycle latency\n\
             L2 Cache   | {} KB, 64B line, {}-way, {}-cycle latency\n\
             L3 Cache   | {} MB (sliced), 64B line, {}-way, {}-cycle latency\n\
             Network    | {}x{} mesh, {}-cycle hops\n\
             DRAM       | {}~{} cycles (row hit~miss), {} banks\n\
             TLB        | {} entries, {}-cycle walk",
            c.width,
            c.sq_entries,
            c.lq_entries,
            c.rob_entries,
            m.l1.mshrs,
            c.frontend_latency,
            m.l1.size_bytes / 1024,
            m.l1.ways,
            m.l1.latency,
            m.l2.size_bytes / 1024,
            m.l2.ways,
            m.l2.latency,
            m.l3.size_bytes / (1024 * 1024),
            m.l3.ways,
            m.l3.latency,
            m.mesh_cols,
            m.mesh_rows,
            m.hop_latency,
            m.dram.row_hit_latency,
            m.dram.row_miss_latency,
            m.dram.banks,
            m.tlb.entries,
            m.tlb.walk_latency,
        )
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::table_i()
    }
}

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Unmodified insecure processor.
    Unsafe,
    /// STT delaying unsafe loads only.
    SttLd,
    /// STT delaying unsafe loads and FP transmit micro-ops.
    SttLdFp,
    /// SDO always predicting L1.
    StaticL1,
    /// SDO always predicting L2.
    StaticL2,
    /// SDO always predicting L3.
    StaticL3,
    /// SDO with the hybrid location predictor.
    Hybrid,
    /// SDO with the oracle predictor.
    Perfect,
}

impl Variant {
    /// All variants in Table II order.
    pub const ALL: [Variant; 8] = [
        Variant::Unsafe,
        Variant::SttLd,
        Variant::SttLdFp,
        Variant::StaticL1,
        Variant::StaticL2,
        Variant::StaticL3,
        Variant::Hybrid,
        Variant::Perfect,
    ];

    /// The SDO variants only.
    pub const SDO: [Variant; 5] =
        [Variant::StaticL1, Variant::StaticL2, Variant::StaticL3, Variant::Hybrid, Variant::Perfect];

    /// The variant's display name (column label in the figures).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Variant::Unsafe => "Unsafe",
            Variant::SttLd => "STT{ld}",
            Variant::SttLdFp => "STT{ld+fp}",
            Variant::StaticL1 => "Static L1",
            Variant::StaticL2 => "Static L2",
            Variant::StaticL3 => "Static L3",
            Variant::Hybrid => "Hybrid",
            Variant::Perfect => "Perfect",
        }
    }

    /// A lowercase `snake_case` identifier for the variant, used in
    /// metric paths and accepted (among other spellings) by the CLI.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Variant::Unsafe => "unsafe",
            Variant::SttLd => "stt_ld",
            Variant::SttLdFp => "stt_ld_fp",
            Variant::StaticL1 => "static_l1",
            Variant::StaticL2 => "static_l2",
            Variant::StaticL3 => "static_l3",
            Variant::Hybrid => "hybrid",
            Variant::Perfect => "perfect",
        }
    }

    /// Whether this is an STT+SDO configuration.
    #[must_use]
    pub fn is_sdo(self) -> bool {
        matches!(
            self,
            Variant::StaticL1 | Variant::StaticL2 | Variant::StaticL3 | Variant::Hybrid | Variant::Perfect
        )
    }

    /// The security configuration this variant runs under, for a given
    /// attack model.
    #[must_use]
    pub fn security(self, attack: AttackModel) -> SecurityConfig {
        let protection = match self {
            Variant::Unsafe => Protection::Unsafe,
            Variant::SttLd => Protection::Stt { fp_transmitters: false },
            Variant::SttLdFp => Protection::Stt { fp_transmitters: true },
            Variant::StaticL1 => {
                Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Static(CacheLevel::L1)))
            }
            Variant::StaticL2 => {
                Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Static(CacheLevel::L2)))
            }
            Variant::StaticL3 => {
                Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Static(CacheLevel::L3)))
            }
            Variant::Hybrid => Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Hybrid)),
            Variant::Perfect => Protection::Sdo(SdoConfig::with_predictor(PredictorKind::Perfect)),
        };
        SecurityConfig { protection, attack }
    }

    /// Renders Table II.
    #[must_use]
    pub fn render_table_ii() -> String {
        let mut out = String::from("TABLE II: Evaluated design variants\n");
        for v in Variant::ALL {
            let desc = match v {
                Variant::Unsafe => "An unmodified insecure processor",
                Variant::SttLd => "STT, delaying the execution of unsafe loads only",
                Variant::SttLdFp => "STT, delaying unsafe loads and fmult/div/fsqrt micro-ops",
                Variant::StaticL1 => "SDO with predictor always predicting L1 D-Cache",
                Variant::StaticL2 => "SDO with predictor always predicting L2",
                Variant::StaticL3 => "SDO with predictor always predicting L3",
                Variant::Hybrid => "SDO with proposed hybrid location predictor",
                Variant::Perfect => "SDO with oracle predictor always predicting correct level",
            };
            out.push_str(&format!("{:12} | {desc}\n", v.name()));
        }
        out
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_build_security_configs() {
        for v in Variant::ALL {
            for attack in AttackModel::ALL {
                let sec = v.security(attack);
                assert_eq!(sec.attack, attack);
                if v == Variant::Unsafe {
                    assert_eq!(sec.protection, Protection::Unsafe);
                }
            }
        }
    }

    #[test]
    fn sdo_subset_is_consistent() {
        for v in Variant::SDO {
            assert!(v.is_sdo());
            assert!(matches!(v.security(AttackModel::Spectre).protection, Protection::Sdo(_)));
        }
        assert!(!Variant::Unsafe.is_sdo());
        assert!(!Variant::SttLd.is_sdo());
    }

    #[test]
    fn tables_render() {
        let t1 = SimConfig::table_i().render_table_i();
        assert!(t1.contains("192 ROB"));
        assert!(t1.contains("32 KB"));
        let t2 = Variant::render_table_ii();
        assert!(t2.contains("STT{ld+fp}"));
        assert!(t2.contains("hybrid"));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Variant::ALL.iter().map(|v| v.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
