//! The `sdo-serve` wire protocol: line-delimited JSON requests and
//! replies, plus the canonical codecs for [`RunRequest`], [`SimConfig`]
//! and [`RunResult`] (DESIGN.md §13).
//!
//! The grammar is deliberately tiny: every message is one JSON object on
//! one line; a blank line terminates a batch. The daemon executes the
//! batch across its warm [`JobPool`](crate::engine::JobPool) and writes
//! one reply line per request, in request order. All numbers on the wire
//! are unsigned integers — the simulator's statistics are exact counters
//! and must survive the round trip bit-for-bit (floats would silently
//! round above 2^53, so the parser rejects them).
//!
//! The [`SimConfig`] codec destructures every configuration struct
//! exhaustively (no `..` patterns): adding a field to any of them without
//! teaching the codec — and therefore the [`RunKey`](crate::store::RunKey)
//! — is a compile error. That is the schema-drift half of the
//! cache-soundness argument.

use crate::config::{SimConfig, Variant};
use crate::sim::{RunRequest, RunResult};

/// The reserved reply id for lines too malformed to carry one. Request
/// ids are client-chosen starting from 0, so a plain 0 would collide
/// with the first request of every `Runner` batch; `u64::MAX` cannot be
/// a legal request id (the daemon refuses `run` requests that claim it)
/// and clients treat an `error` reply carrying it as batch-level.
pub const BATCH_ERROR_ID: u64 = u64::MAX;
use sdo_isa::Program;
use sdo_mem::{
    CacheLevel, CacheParams, DramParams, MemConfig, MemStats, TlbParams,
};
use sdo_uarch::{
    AttackModel, CoreConfig, CoreStats, FuPool, Latencies, OblStats, ObsConfig, SquashCounts,
};

// ---------------------------------------------------------------------------
// JSON value
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are unsigned 64-bit integers only (see
/// the module docs for why floats are rejected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (the writer is
    /// deterministic, which the `RunKey` hash relies on).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders the value as compact single-line JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required `u64` field of an object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn u64_field(&self, key: &str) -> Result<u64, String> {
        match self.get(key) {
            Some(Json::UInt(n)) => Ok(*n),
            Some(_) => Err(format!("field '{key}' is not an integer")),
            None => Err(format!("missing field '{key}'")),
        }
    }

    /// A required `bool` field of an object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn bool_field(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(Json::Bool(b)) => Ok(*b),
            Some(_) => Err(format!("field '{key}' is not a bool")),
            None => Err(format!("missing field '{key}'")),
        }
    }

    /// A required string field of an object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s),
            Some(_) => Err(format!("field '{key}' is not a string")),
            None => Err(format!("missing field '{key}'")),
        }
    }

    /// A required object field of an object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn obj_field(&self, key: &str) -> Result<&Json, String> {
        match self.get(key) {
            Some(o @ Json::Obj(_)) => Ok(o),
            Some(_) => Err(format!("field '{key}' is not an object")),
            None => Err(format!("missing field '{key}'")),
        }
    }

    /// A required array field of an object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn arr_field(&self, key: &str) -> Result<&[Json], String> {
        match self.get(key) {
            Some(Json::Arr(items)) => Ok(items),
            Some(_) => Err(format!("field '{key}' is not an array")),
            None => Err(format!("missing field '{key}'")),
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value from `input` (trailing whitespace allowed,
/// trailing garbage is an error).
///
/// # Errors
///
/// Returns a byte-offset-annotated message on malformed input.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Maximum container nesting the parser accepts. The recursion in
/// [`parse_value`] is one frame per level, so without a bound a client
/// line of tens of thousands of `[` would overflow the daemon's stack —
/// an abort, not the typed error malformed input is contracted to get.
/// Real messages nest 4 deep.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
                return Err(format!(
                    "non-integer number at byte {start} (the protocol carries exact counters only)"
                ));
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are UTF-8");
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| format!("integer out of range at byte {start}"))
        }
        Some(b'-') => Err(format!("negative number at byte {pos} (unsigned counters only)")),
        Some(c) => Err(format!("unexpected byte '{}' at {pos}", *c as char)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let c = char::from_u32(u32::from(code))
                            .ok_or_else(|| format!("invalid \\u escape at byte {pos}"))?;
                        out.push(c);
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte sequences pass
                // through unmodified).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], start: usize) -> Result<u16, String> {
    if start + 4 > bytes.len() {
        return Err("truncated \\u escape".to_string());
    }
    let text = std::str::from_utf8(&bytes[start..start + 4])
        .map_err(|_| "invalid \\u escape".to_string())?;
    u16::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

// ---------------------------------------------------------------------------
// SimConfig codec
// ---------------------------------------------------------------------------

/// Encodes a [`SimConfig`] canonically. The rendering of this value is
/// the configuration's contribution to the
/// [`RunKey`](crate::store::RunKey): one representation for transport
/// and hashing, so a served run and a hashed run can never disagree
/// about what configuration they describe.
#[must_use]
pub fn config_to_json(cfg: &SimConfig) -> Json {
    // Exhaustive destructuring, no `..`: adding a field anywhere in the
    // configuration tree breaks this function until the codec (and the
    // RunKey) learn about it.
    let SimConfig { core, mem, max_cycles, obs, fast_forward } = *cfg;
    let CoreConfig {
        width,
        rob_entries,
        lq_entries,
        sq_entries,
        iq_entries,
        phys_int_regs,
        phys_fp_regs,
        frontend_latency,
        fus,
        lat,
        btb_entries,
        ras_entries,
    } = core;
    let FuPool { int_alu, int_muldiv, fp, mem_ports } = fus;
    let Latencies {
        int_alu: lat_int_alu,
        int_mul,
        int_div,
        fp_add,
        fp_mul,
        fp_div,
        fp_sqrt,
        fp_subnormal_penalty,
    } = lat;
    let MemConfig {
        l1i,
        l1,
        l2,
        l3,
        dram,
        tlb,
        mesh_cols,
        mesh_rows,
        hop_latency,
        bank_occupancy,
    } = mem;
    let DramParams { banks: dram_banks, row_bytes, row_hit_latency, row_miss_latency } = dram;
    let TlbParams { entries: tlb_entries, page_bytes, hit_latency, walk_latency } = tlb;
    let ObsConfig { occupancy, trace_capacity } = obs;
    obj(vec![
        (
            "core",
            obj(vec![
                ("width", Json::UInt(width as u64)),
                ("rob_entries", Json::UInt(rob_entries as u64)),
                ("lq_entries", Json::UInt(lq_entries as u64)),
                ("sq_entries", Json::UInt(sq_entries as u64)),
                ("iq_entries", Json::UInt(iq_entries as u64)),
                ("phys_int_regs", Json::UInt(phys_int_regs as u64)),
                ("phys_fp_regs", Json::UInt(phys_fp_regs as u64)),
                ("frontend_latency", Json::UInt(frontend_latency)),
                (
                    "fus",
                    obj(vec![
                        ("int_alu", Json::UInt(u64::from(int_alu))),
                        ("int_muldiv", Json::UInt(u64::from(int_muldiv))),
                        ("fp", Json::UInt(u64::from(fp))),
                        ("mem_ports", Json::UInt(u64::from(mem_ports))),
                    ]),
                ),
                (
                    "lat",
                    obj(vec![
                        ("int_alu", Json::UInt(lat_int_alu)),
                        ("int_mul", Json::UInt(int_mul)),
                        ("int_div", Json::UInt(int_div)),
                        ("fp_add", Json::UInt(fp_add)),
                        ("fp_mul", Json::UInt(fp_mul)),
                        ("fp_div", Json::UInt(fp_div)),
                        ("fp_sqrt", Json::UInt(fp_sqrt)),
                        ("fp_subnormal_penalty", Json::UInt(fp_subnormal_penalty)),
                    ]),
                ),
                ("btb_entries", Json::UInt(btb_entries as u64)),
                ("ras_entries", Json::UInt(ras_entries as u64)),
            ]),
        ),
        (
            "mem",
            obj(vec![
                ("l1i", cache_params_to_json(&l1i)),
                ("l1", cache_params_to_json(&l1)),
                ("l2", cache_params_to_json(&l2)),
                ("l3", cache_params_to_json(&l3)),
                (
                    "dram",
                    obj(vec![
                        ("banks", Json::UInt(u64::from(dram_banks))),
                        ("row_bytes", Json::UInt(row_bytes)),
                        ("row_hit_latency", Json::UInt(row_hit_latency)),
                        ("row_miss_latency", Json::UInt(row_miss_latency)),
                    ]),
                ),
                (
                    "tlb",
                    obj(vec![
                        ("entries", Json::UInt(u64::from(tlb_entries))),
                        ("page_bytes", Json::UInt(page_bytes)),
                        ("hit_latency", Json::UInt(hit_latency)),
                        ("walk_latency", Json::UInt(walk_latency)),
                    ]),
                ),
                ("mesh_cols", Json::UInt(u64::from(mesh_cols))),
                ("mesh_rows", Json::UInt(u64::from(mesh_rows))),
                ("hop_latency", Json::UInt(hop_latency)),
                ("bank_occupancy", Json::UInt(bank_occupancy)),
            ]),
        ),
        ("max_cycles", Json::UInt(max_cycles)),
        (
            "obs",
            obj(vec![
                ("occupancy", Json::Bool(occupancy)),
                ("trace_capacity", Json::UInt(trace_capacity as u64)),
            ]),
        ),
        ("fast_forward", Json::Bool(fast_forward)),
    ])
}

fn cache_params_to_json(p: &CacheParams) -> Json {
    let CacheParams { size_bytes, ways, latency, banks, mshrs } = *p;
    obj(vec![
        ("size_bytes", Json::UInt(size_bytes)),
        ("ways", Json::UInt(u64::from(ways))),
        ("latency", Json::UInt(latency)),
        ("banks", Json::UInt(u64::from(banks))),
        ("mshrs", Json::UInt(u64::from(mshrs))),
    ])
}

/// Decodes a [`SimConfig`] from [`config_to_json`]'s representation.
///
/// # Errors
///
/// Returns a message naming the first missing or mistyped field.
pub fn config_from_json(v: &Json) -> Result<SimConfig, String> {
    let core = v.obj_field("core")?;
    let fus = core.obj_field("fus")?;
    let lat = core.obj_field("lat")?;
    let mem = v.obj_field("mem")?;
    let dram = mem.obj_field("dram")?;
    let tlb = mem.obj_field("tlb")?;
    let obs = v.obj_field("obs")?;
    let as_u32 = |n: u64, what: &str| -> Result<u32, String> {
        u32::try_from(n).map_err(|_| format!("field '{what}' out of range"))
    };
    Ok(SimConfig {
        core: CoreConfig {
            width: core.u64_field("width")? as usize,
            rob_entries: core.u64_field("rob_entries")? as usize,
            lq_entries: core.u64_field("lq_entries")? as usize,
            sq_entries: core.u64_field("sq_entries")? as usize,
            iq_entries: core.u64_field("iq_entries")? as usize,
            phys_int_regs: core.u64_field("phys_int_regs")? as usize,
            phys_fp_regs: core.u64_field("phys_fp_regs")? as usize,
            frontend_latency: core.u64_field("frontend_latency")?,
            fus: FuPool {
                int_alu: as_u32(fus.u64_field("int_alu")?, "fus.int_alu")?,
                int_muldiv: as_u32(fus.u64_field("int_muldiv")?, "fus.int_muldiv")?,
                fp: as_u32(fus.u64_field("fp")?, "fus.fp")?,
                mem_ports: as_u32(fus.u64_field("mem_ports")?, "fus.mem_ports")?,
            },
            lat: Latencies {
                int_alu: lat.u64_field("int_alu")?,
                int_mul: lat.u64_field("int_mul")?,
                int_div: lat.u64_field("int_div")?,
                fp_add: lat.u64_field("fp_add")?,
                fp_mul: lat.u64_field("fp_mul")?,
                fp_div: lat.u64_field("fp_div")?,
                fp_sqrt: lat.u64_field("fp_sqrt")?,
                fp_subnormal_penalty: lat.u64_field("fp_subnormal_penalty")?,
            },
            btb_entries: core.u64_field("btb_entries")? as usize,
            ras_entries: core.u64_field("ras_entries")? as usize,
        },
        mem: MemConfig {
            l1i: cache_params_from_json(mem.obj_field("l1i")?)?,
            l1: cache_params_from_json(mem.obj_field("l1")?)?,
            l2: cache_params_from_json(mem.obj_field("l2")?)?,
            l3: cache_params_from_json(mem.obj_field("l3")?)?,
            dram: DramParams {
                banks: as_u32(dram.u64_field("banks")?, "dram.banks")?,
                row_bytes: dram.u64_field("row_bytes")?,
                row_hit_latency: dram.u64_field("row_hit_latency")?,
                row_miss_latency: dram.u64_field("row_miss_latency")?,
            },
            tlb: TlbParams {
                entries: as_u32(tlb.u64_field("entries")?, "tlb.entries")?,
                page_bytes: tlb.u64_field("page_bytes")?,
                hit_latency: tlb.u64_field("hit_latency")?,
                walk_latency: tlb.u64_field("walk_latency")?,
            },
            mesh_cols: as_u32(mem.u64_field("mesh_cols")?, "mesh_cols")?,
            mesh_rows: as_u32(mem.u64_field("mesh_rows")?, "mesh_rows")?,
            hop_latency: mem.u64_field("hop_latency")?,
            bank_occupancy: mem.u64_field("bank_occupancy")?,
        },
        max_cycles: v.u64_field("max_cycles")?,
        obs: ObsConfig {
            occupancy: obs.bool_field("occupancy")?,
            trace_capacity: obs.u64_field("trace_capacity")? as usize,
        },
        fast_forward: v.bool_field("fast_forward")?,
    })
}

fn cache_params_from_json(v: &Json) -> Result<CacheParams, String> {
    Ok(CacheParams {
        size_bytes: v.u64_field("size_bytes")?,
        ways: u32::try_from(v.u64_field("ways")?).map_err(|_| "ways out of range".to_string())?,
        latency: v.u64_field("latency")?,
        banks: u32::try_from(v.u64_field("banks")?)
            .map_err(|_| "banks out of range".to_string())?,
        mshrs: u32::try_from(v.u64_field("mshrs")?)
            .map_err(|_| "mshrs out of range".to_string())?,
    })
}

// ---------------------------------------------------------------------------
// Enum codecs
// ---------------------------------------------------------------------------

/// Decodes a variant from its [`Variant::slug`].
///
/// # Errors
///
/// Returns a message for an unknown slug.
pub fn variant_from_slug(slug: &str) -> Result<Variant, String> {
    Variant::ALL
        .into_iter()
        .find(|v| v.slug() == slug)
        .ok_or_else(|| format!("unknown variant slug '{slug}'"))
}

/// The attack model's wire name (`spectre` / `futuristic`).
#[must_use]
pub fn attack_slug(attack: AttackModel) -> &'static str {
    match attack {
        AttackModel::Spectre => "spectre",
        AttackModel::Futuristic => "futuristic",
    }
}

/// Decodes an attack model from [`attack_slug`]'s form.
///
/// # Errors
///
/// Returns a message for an unknown slug.
pub fn attack_from_slug(slug: &str) -> Result<AttackModel, String> {
    match slug {
        "spectre" => Ok(AttackModel::Spectre),
        "futuristic" => Ok(AttackModel::Futuristic),
        other => Err(format!("unknown attack slug '{other}'")),
    }
}

/// The cache level's wire name (`l1`/`l2`/`l3`/`dram`).
#[must_use]
pub fn level_slug(level: CacheLevel) -> &'static str {
    match level {
        CacheLevel::L1 => "l1",
        CacheLevel::L2 => "l2",
        CacheLevel::L3 => "l3",
        CacheLevel::Dram => "dram",
    }
}

/// Decodes a cache level from [`level_slug`]'s form.
///
/// # Errors
///
/// Returns a message for an unknown slug.
pub fn level_from_slug(slug: &str) -> Result<CacheLevel, String> {
    match slug {
        "l1" => Ok(CacheLevel::L1),
        "l2" => Ok(CacheLevel::L2),
        "l3" => Ok(CacheLevel::L3),
        "dram" => Ok(CacheLevel::Dram),
        other => Err(format!("unknown cache level slug '{other}'")),
    }
}

// ---------------------------------------------------------------------------
// Program + RunRequest codec
// ---------------------------------------------------------------------------

/// Encodes a program as its name, disassembly text and sparse data
/// image. The round trip through [`sdo_isa::parse_asm`] is
/// instruction-identical (pinned by `crates/workloads/tests/roundtrip.rs`),
/// so this *is* the program's canonical byte representation.
#[must_use]
pub fn program_to_json(program: &Program) -> Json {
    let data: Vec<Json> = program
        .data()
        .iter()
        .map(|(addr, byte)| Json::Arr(vec![Json::UInt(addr), Json::UInt(u64::from(byte))]))
        .collect();
    obj(vec![
        ("name", Json::Str(program.name().to_string())),
        ("asm", Json::Str(program.disassemble())),
        ("data", Json::Arr(data)),
    ])
}

/// Decodes a program from [`program_to_json`]'s representation.
///
/// # Errors
///
/// Returns a message on a missing field or an assembly parse failure.
pub fn program_from_json(v: &Json) -> Result<Program, String> {
    let name = v.str_field("name")?;
    let asm = v.str_field("asm")?;
    let mut program =
        sdo_isa::parse_asm(asm).map_err(|e| format!("program '{name}': {e}"))?;
    program.set_name(name);
    let data = program.data_mut();
    for pair in v.arr_field("data")? {
        match pair {
            Json::Arr(items) if items.len() == 2 => {
                match (&items[0], &items[1]) {
                    (Json::UInt(addr), Json::UInt(byte)) if *byte <= 0xff => {
                        data.set_byte(*addr, *byte as u8);
                    }
                    _ => return Err("data pair is not [addr, byte]".to_string()),
                }
            }
            _ => return Err("data entry is not a two-element array".to_string()),
        }
    }
    Ok(program)
}

/// Encodes a [`RunRequest`] canonically (transport *and*
/// [`RunKey`](crate::store::RunKey) representation).
#[must_use]
pub fn request_to_json(req: &RunRequest) -> Json {
    // Exhaustive: a new RunRequest field must be added here (and thus to
    // the RunKey) before this compiles again.
    let RunRequest { programs, prewarm, variant, attack, config, seed, record } = req;
    let programs_json: Vec<Json> = programs.iter().map(program_to_json).collect();
    let prewarm_json: Vec<Json> = prewarm
        .iter()
        .map(|&(start, bytes, level)| {
            Json::Arr(vec![
                Json::UInt(start),
                Json::UInt(bytes),
                Json::Str(level_slug(level).to_string()),
            ])
        })
        .collect();
    obj(vec![
        ("programs", Json::Arr(programs_json)),
        ("prewarm", Json::Arr(prewarm_json)),
        ("variant", Json::Str(variant.slug().to_string())),
        ("attack", Json::Str(attack_slug(*attack).to_string())),
        (
            "config",
            match config {
                Some(cfg) => config_to_json(cfg),
                None => Json::Null,
            },
        ),
        ("seed", Json::UInt(*seed)),
        ("record", Json::Bool(*record)),
    ])
}

/// Decodes a [`RunRequest`] from [`request_to_json`]'s representation.
///
/// # Errors
///
/// Returns a message on the first malformed field.
pub fn request_from_json(v: &Json) -> Result<RunRequest, String> {
    let programs: Vec<Program> =
        v.arr_field("programs")?.iter().map(program_from_json).collect::<Result<_, _>>()?;
    if programs.is_empty() {
        return Err("request has no programs".to_string());
    }
    let mut prewarm = Vec::new();
    for entry in v.arr_field("prewarm")? {
        match entry {
            Json::Arr(items) if items.len() == 3 => match (&items[0], &items[1], &items[2]) {
                (Json::UInt(start), Json::UInt(bytes), Json::Str(level)) => {
                    prewarm.push((*start, *bytes, level_from_slug(level)?));
                }
                _ => return Err("prewarm entry is not [start, bytes, level]".to_string()),
            },
            _ => return Err("prewarm entry is not a three-element array".to_string()),
        }
    }
    let config = match v.get("config") {
        Some(Json::Null) | None => None,
        Some(cfg) => Some(config_from_json(cfg)?),
    };
    Ok(RunRequest {
        programs,
        prewarm,
        variant: variant_from_slug(v.str_field("variant")?)?,
        attack: attack_from_slug(v.str_field("attack")?)?,
        config,
        seed: v.u64_field("seed")?,
        record: v.bool_field("record")?,
    })
}

// ---------------------------------------------------------------------------
// RunResult codec
// ---------------------------------------------------------------------------

/// Encodes a [`RunResult`]. The observability probe is never carried on
/// the wire or in the store: cacheable/servable requests run with
/// observability off (results are byte-identical either way — the probe
/// is a pure observer), and obs-carrying callers (the verifier's
/// `Checker`) execute locally.
#[must_use]
pub fn result_to_json(r: &RunResult) -> Json {
    let RunResult { workload, variant, attack, cycles, core, mem, obs: _, skipped_cycles } = r;
    let CoreStats {
        cycles: core_cycles,
        committed,
        committed_loads,
        committed_stores,
        fetched,
        squashed_insts,
        squashes,
        branches,
        mispredicts,
        delayed_loads,
        delay_cycles,
        fp_sdo_issued,
        delayed_fp,
        obl,
    } = *core;
    let SquashCounts { branch, obl_fail, validation, consistency, fp_fail } = squashes;
    let OblStats {
        issued,
        mshr_retries,
        success,
        fail,
        dram_predictions,
        sq_forwarded,
        predictions,
        precise,
        accurate,
        imprecision_cycles,
        validation_stall_cycles,
        validations: obl_validations,
        exposures: obl_exposures,
        tlb_probe_fails,
    } = obl;
    let MemStats {
        icache_hits,
        icache_misses,
        l1_hits,
        l1_misses,
        l2_hits,
        l2_misses,
        l3_hits,
        l3_misses,
        remote_hits,
        dram_row_hits,
        dram_row_misses,
        obl_lookups,
        obl_level_hits,
        obl_all_miss,
        obl_mshr_rejects,
        validations,
        validation_mismatches,
        exposures,
        stores,
        invalidations_sent,
        tlb_hits,
        tlb_misses,
        tlb_probe_hits,
        tlb_probe_misses,
    } = *mem;
    obj(vec![
        ("workload", Json::Str(workload.clone())),
        ("variant", Json::Str(variant.slug().to_string())),
        ("attack", Json::Str(attack_slug(*attack).to_string())),
        ("cycles", Json::UInt(*cycles)),
        (
            "core",
            obj(vec![
                ("cycles", Json::UInt(core_cycles)),
                ("committed", Json::UInt(committed)),
                ("committed_loads", Json::UInt(committed_loads)),
                ("committed_stores", Json::UInt(committed_stores)),
                ("fetched", Json::UInt(fetched)),
                ("squashed_insts", Json::UInt(squashed_insts)),
                (
                    "squashes",
                    obj(vec![
                        ("branch", Json::UInt(branch)),
                        ("obl_fail", Json::UInt(obl_fail)),
                        ("validation", Json::UInt(validation)),
                        ("consistency", Json::UInt(consistency)),
                        ("fp_fail", Json::UInt(fp_fail)),
                    ]),
                ),
                ("branches", Json::UInt(branches)),
                ("mispredicts", Json::UInt(mispredicts)),
                ("delayed_loads", Json::UInt(delayed_loads)),
                ("delay_cycles", Json::UInt(delay_cycles)),
                ("fp_sdo_issued", Json::UInt(fp_sdo_issued)),
                ("delayed_fp", Json::UInt(delayed_fp)),
                (
                    "obl",
                    obj(vec![
                        ("issued", Json::UInt(issued)),
                        ("mshr_retries", Json::UInt(mshr_retries)),
                        ("success", Json::UInt(success)),
                        ("fail", Json::UInt(fail)),
                        ("dram_predictions", Json::UInt(dram_predictions)),
                        ("sq_forwarded", Json::UInt(sq_forwarded)),
                        ("predictions", Json::UInt(predictions)),
                        ("precise", Json::UInt(precise)),
                        ("accurate", Json::UInt(accurate)),
                        ("imprecision_cycles", Json::UInt(imprecision_cycles)),
                        ("validation_stall_cycles", Json::UInt(validation_stall_cycles)),
                        ("validations", Json::UInt(obl_validations)),
                        ("exposures", Json::UInt(obl_exposures)),
                        ("tlb_probe_fails", Json::UInt(tlb_probe_fails)),
                    ]),
                ),
            ]),
        ),
        (
            "mem",
            obj(vec![
                ("icache_hits", Json::UInt(icache_hits)),
                ("icache_misses", Json::UInt(icache_misses)),
                ("l1_hits", Json::UInt(l1_hits)),
                ("l1_misses", Json::UInt(l1_misses)),
                ("l2_hits", Json::UInt(l2_hits)),
                ("l2_misses", Json::UInt(l2_misses)),
                ("l3_hits", Json::UInt(l3_hits)),
                ("l3_misses", Json::UInt(l3_misses)),
                ("remote_hits", Json::UInt(remote_hits)),
                ("dram_row_hits", Json::UInt(dram_row_hits)),
                ("dram_row_misses", Json::UInt(dram_row_misses)),
                ("obl_lookups", Json::UInt(obl_lookups)),
                (
                    "obl_level_hits",
                    Json::Arr(obl_level_hits.iter().map(|&n| Json::UInt(n)).collect()),
                ),
                ("obl_all_miss", Json::UInt(obl_all_miss)),
                ("obl_mshr_rejects", Json::UInt(obl_mshr_rejects)),
                ("validations", Json::UInt(validations)),
                ("validation_mismatches", Json::UInt(validation_mismatches)),
                ("exposures", Json::UInt(exposures)),
                ("stores", Json::UInt(stores)),
                ("invalidations_sent", Json::UInt(invalidations_sent)),
                ("tlb_hits", Json::UInt(tlb_hits)),
                ("tlb_misses", Json::UInt(tlb_misses)),
                ("tlb_probe_hits", Json::UInt(tlb_probe_hits)),
                ("tlb_probe_misses", Json::UInt(tlb_probe_misses)),
            ]),
        ),
        ("skipped_cycles", Json::UInt(*skipped_cycles)),
    ])
}

/// Decodes a [`RunResult`] from [`result_to_json`]'s representation
/// (`obs` is always `None`).
///
/// # Errors
///
/// Returns a message on the first malformed field.
pub fn result_from_json(v: &Json) -> Result<RunResult, String> {
    let core = v.obj_field("core")?;
    let squashes = core.obj_field("squashes")?;
    let obl = core.obj_field("obl")?;
    let mem = v.obj_field("mem")?;
    let level_hits = mem.arr_field("obl_level_hits")?;
    if level_hits.len() != 3 {
        return Err("obl_level_hits must have 3 entries".to_string());
    }
    let mut obl_level_hits = [0u64; 3];
    for (slot, item) in obl_level_hits.iter_mut().zip(level_hits) {
        match item {
            Json::UInt(n) => *slot = *n,
            _ => return Err("obl_level_hits entry is not an integer".to_string()),
        }
    }
    Ok(RunResult {
        workload: v.str_field("workload")?.to_string(),
        variant: variant_from_slug(v.str_field("variant")?)?,
        attack: attack_from_slug(v.str_field("attack")?)?,
        cycles: v.u64_field("cycles")?,
        core: CoreStats {
            cycles: core.u64_field("cycles")?,
            committed: core.u64_field("committed")?,
            committed_loads: core.u64_field("committed_loads")?,
            committed_stores: core.u64_field("committed_stores")?,
            fetched: core.u64_field("fetched")?,
            squashed_insts: core.u64_field("squashed_insts")?,
            squashes: SquashCounts {
                branch: squashes.u64_field("branch")?,
                obl_fail: squashes.u64_field("obl_fail")?,
                validation: squashes.u64_field("validation")?,
                consistency: squashes.u64_field("consistency")?,
                fp_fail: squashes.u64_field("fp_fail")?,
            },
            branches: core.u64_field("branches")?,
            mispredicts: core.u64_field("mispredicts")?,
            delayed_loads: core.u64_field("delayed_loads")?,
            delay_cycles: core.u64_field("delay_cycles")?,
            fp_sdo_issued: core.u64_field("fp_sdo_issued")?,
            delayed_fp: core.u64_field("delayed_fp")?,
            obl: OblStats {
                issued: obl.u64_field("issued")?,
                mshr_retries: obl.u64_field("mshr_retries")?,
                success: obl.u64_field("success")?,
                fail: obl.u64_field("fail")?,
                dram_predictions: obl.u64_field("dram_predictions")?,
                sq_forwarded: obl.u64_field("sq_forwarded")?,
                predictions: obl.u64_field("predictions")?,
                precise: obl.u64_field("precise")?,
                accurate: obl.u64_field("accurate")?,
                imprecision_cycles: obl.u64_field("imprecision_cycles")?,
                validation_stall_cycles: obl.u64_field("validation_stall_cycles")?,
                validations: obl.u64_field("validations")?,
                exposures: obl.u64_field("exposures")?,
                tlb_probe_fails: obl.u64_field("tlb_probe_fails")?,
            },
        },
        mem: MemStats {
            icache_hits: mem.u64_field("icache_hits")?,
            icache_misses: mem.u64_field("icache_misses")?,
            l1_hits: mem.u64_field("l1_hits")?,
            l1_misses: mem.u64_field("l1_misses")?,
            l2_hits: mem.u64_field("l2_hits")?,
            l2_misses: mem.u64_field("l2_misses")?,
            l3_hits: mem.u64_field("l3_hits")?,
            l3_misses: mem.u64_field("l3_misses")?,
            remote_hits: mem.u64_field("remote_hits")?,
            dram_row_hits: mem.u64_field("dram_row_hits")?,
            dram_row_misses: mem.u64_field("dram_row_misses")?,
            obl_lookups: mem.u64_field("obl_lookups")?,
            obl_level_hits,
            obl_all_miss: mem.u64_field("obl_all_miss")?,
            obl_mshr_rejects: mem.u64_field("obl_mshr_rejects")?,
            validations: mem.u64_field("validations")?,
            validation_mismatches: mem.u64_field("validation_mismatches")?,
            exposures: mem.u64_field("exposures")?,
            stores: mem.u64_field("stores")?,
            invalidations_sent: mem.u64_field("invalidations_sent")?,
            tlb_hits: mem.u64_field("tlb_hits")?,
            tlb_misses: mem.u64_field("tlb_misses")?,
            tlb_probe_hits: mem.u64_field("tlb_probe_hits")?,
            tlb_probe_misses: mem.u64_field("tlb_probe_misses")?,
        },
        obs: None,
        skipped_cycles: v.u64_field("skipped_cycles")?,
    })
}

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

/// A client → daemon message (one JSON object per line; a blank line
/// ends a batch).
// Run batches are overwhelmingly the large variant, so boxing the
// request would buy nothing and cost an allocation per message.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute (or serve from the store) one simulation.
    Run {
        /// Client-chosen id echoed in the reply.
        id: u64,
        /// The simulation to run.
        request: RunRequest,
        /// Skip the store for this request (always simulate).
        no_cache: bool,
    },
    /// Execute a sensitivity-style grid: one template request expanded
    /// server-side into `configs.len() × variants.len()` runs
    /// (config-major, variant-minor). Each expanded point carries the
    /// same [`RunKey`](crate::store::RunKey) as the equivalent
    /// individual `run` request, so grids and per-point runs share the
    /// store.
    Grid {
        /// Client-chosen id echoed in the reply.
        id: u64,
        /// The template: program, prewarm, attack and seed. Its
        /// `variant`/`config` fields are overwritten per point.
        request: RunRequest,
        /// The sweep's configuration points (outer loop).
        configs: Vec<SimConfig>,
        /// The variants simulated at each point (inner loop).
        variants: Vec<Variant>,
        /// Skip the store for every expanded run (always simulate).
        no_cache: bool,
    },
    /// Report daemon statistics (hits, misses, store entries).
    Stats {
        /// Client-chosen id echoed in the reply.
        id: u64,
    },
    /// Run a verification campaign on the daemon's warm pool.
    Campaign {
        /// Client-chosen id echoed in the reply.
        id: u64,
        /// Campaign seed.
        seed: u64,
        /// Quick (CI-sized) campaign rather than the full one.
        quick: bool,
        /// Extra fuzz cases on top of the corpus.
        fuzz: u64,
    },
    /// Stop the daemon after replying to the current batch.
    Shutdown,
}

impl Request {
    /// Renders the message as one JSON line (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Request::Run { id, request, no_cache } => obj(vec![
                ("op", Json::Str("run".to_string())),
                ("id", Json::UInt(*id)),
                ("request", request_to_json(request)),
                ("no_cache", Json::Bool(*no_cache)),
            ]),
            Request::Grid { id, request, configs, variants, no_cache } => obj(vec![
                ("op", Json::Str("grid".to_string())),
                ("id", Json::UInt(*id)),
                ("request", request_to_json(request)),
                ("configs", Json::Arr(configs.iter().map(config_to_json).collect())),
                (
                    "variants",
                    Json::Arr(
                        variants.iter().map(|v| Json::Str(v.slug().to_string())).collect(),
                    ),
                ),
                ("no_cache", Json::Bool(*no_cache)),
            ]),
            Request::Stats { id } => obj(vec![
                ("op", Json::Str("stats".to_string())),
                ("id", Json::UInt(*id)),
            ]),
            Request::Campaign { id, seed, quick, fuzz } => obj(vec![
                ("op", Json::Str("campaign".to_string())),
                ("id", Json::UInt(*id)),
                ("seed", Json::UInt(*seed)),
                ("quick", Json::Bool(*quick)),
                ("fuzz", Json::UInt(*fuzz)),
            ]),
            Request::Shutdown => obj(vec![("op", Json::Str("shutdown".to_string()))]),
        }
        .render()
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or an unknown `op` — the
    /// daemon turns this into a typed `error` reply rather than dying.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = parse_json(line)?;
        match v.str_field("op")? {
            "run" => Ok(Request::Run {
                id: v.u64_field("id")?,
                request: request_from_json(v.obj_field("request")?)?,
                no_cache: match v.get("no_cache") {
                    Some(Json::Bool(b)) => *b,
                    None => false,
                    Some(_) => return Err("field 'no_cache' is not a bool".to_string()),
                },
            }),
            "grid" => {
                let configs = v
                    .arr_field("configs")?
                    .iter()
                    .map(config_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                let mut variants = Vec::new();
                for item in v.arr_field("variants")? {
                    match item {
                        Json::Str(slug) => variants.push(variant_from_slug(slug)?),
                        _ => return Err("variants entry is not a string".to_string()),
                    }
                }
                Ok(Request::Grid {
                    id: v.u64_field("id")?,
                    request: request_from_json(v.obj_field("request")?)?,
                    configs,
                    variants,
                    no_cache: match v.get("no_cache") {
                        Some(Json::Bool(b)) => *b,
                        None => false,
                        Some(_) => return Err("field 'no_cache' is not a bool".to_string()),
                    },
                })
            }
            "stats" => Ok(Request::Stats { id: v.u64_field("id")? }),
            "campaign" => Ok(Request::Campaign {
                id: v.u64_field("id")?,
                seed: v.u64_field("seed")?,
                quick: v.bool_field("quick")?,
                fuzz: v.u64_field("fuzz")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op '{other}'")),
        }
    }
}

/// A daemon → client message (one JSON object per line).
// Reply streams to a run batch are overwhelmingly the large variant;
// see the note on [`Request`].
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A completed simulation.
    Result {
        /// Echoed request id.
        id: u64,
        /// The run's result.
        result: RunResult,
        /// Whether the result came from the content-addressed store.
        cached: bool,
    },
    /// A completed grid: one result per expanded point, in the grid's
    /// canonical (config-major, variant-minor) order, each with its own
    /// cached flag.
    Grid {
        /// Echoed request id.
        id: u64,
        /// `(result, cached)` per expanded point, in expansion order.
        results: Vec<(RunResult, bool)>,
    },
    /// A typed error: malformed request, hang, store failure or an
    /// in-flight panic. The daemon keeps serving after sending one.
    Error {
        /// Echoed request id ([`BATCH_ERROR_ID`] when the line was too
        /// malformed to carry one — clients treat that as batch-level).
        id: u64,
        /// Human-readable cause.
        message: String,
    },
    /// Back-pressure: the batch exceeded the daemon's queue bound; the
    /// client must resubmit this request in a later batch.
    Busy {
        /// Echoed request id.
        id: u64,
    },
    /// Daemon statistics.
    Stats {
        /// Echoed request id.
        id: u64,
        /// Requests served from the store since startup.
        hits: u64,
        /// Requests actually simulated since startup.
        misses: u64,
        /// Entries currently in the store.
        entries: u64,
    },
    /// A completed verification campaign.
    Campaign {
        /// Echoed request id.
        id: u64,
        /// Whether every check passed.
        passed: bool,
        /// Number of checks executed.
        checks: u64,
        /// The campaign's rendered summary.
        render: String,
    },
}

impl Reply {
    /// Renders the message as one JSON line (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Reply::Result { id, result, cached } => obj(vec![
                ("id", Json::UInt(*id)),
                ("result", result_to_json(result)),
                ("cached", Json::Bool(*cached)),
            ]),
            Reply::Grid { id, results } => obj(vec![
                ("id", Json::UInt(*id)),
                (
                    "grid",
                    Json::Arr(
                        results
                            .iter()
                            .map(|(r, cached)| {
                                obj(vec![
                                    ("result", result_to_json(r)),
                                    ("cached", Json::Bool(*cached)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Reply::Error { id, message } => obj(vec![
                ("id", Json::UInt(*id)),
                ("error", Json::Str(message.clone())),
            ]),
            Reply::Busy { id } => {
                obj(vec![("id", Json::UInt(*id)), ("busy", Json::Bool(true))])
            }
            Reply::Stats { id, hits, misses, entries } => obj(vec![
                ("id", Json::UInt(*id)),
                (
                    "stats",
                    obj(vec![
                        ("hits", Json::UInt(*hits)),
                        ("misses", Json::UInt(*misses)),
                        ("entries", Json::UInt(*entries)),
                    ]),
                ),
            ]),
            Reply::Campaign { id, passed, checks, render } => obj(vec![
                ("id", Json::UInt(*id)),
                (
                    "campaign",
                    obj(vec![
                        ("passed", Json::Bool(*passed)),
                        ("checks", Json::UInt(*checks)),
                        ("render", Json::Str(render.clone())),
                    ]),
                ),
            ]),
        }
        .render()
    }

    /// Parses one reply line.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or an unrecognized shape.
    pub fn parse(line: &str) -> Result<Reply, String> {
        let v = parse_json(line)?;
        let id = v.u64_field("id")?;
        if let Some(Json::Str(message)) = v.get("error") {
            return Ok(Reply::Error { id, message: message.clone() });
        }
        if let Some(Json::Bool(true)) = v.get("busy") {
            return Ok(Reply::Busy { id });
        }
        if let Some(stats) = v.get("stats") {
            return Ok(Reply::Stats {
                id,
                hits: stats.u64_field("hits")?,
                misses: stats.u64_field("misses")?,
                entries: stats.u64_field("entries")?,
            });
        }
        if let Some(campaign) = v.get("campaign") {
            return Ok(Reply::Campaign {
                id,
                passed: campaign.bool_field("passed")?,
                checks: campaign.u64_field("checks")?,
                render: campaign.str_field("render")?.to_string(),
            });
        }
        if let Some(grid) = v.get("grid") {
            let Json::Arr(points) = grid else {
                return Err("grid must be an array".to_string());
            };
            let mut results = Vec::with_capacity(points.len());
            for point in points {
                results.push((
                    result_from_json(
                        point.get("result").ok_or_else(|| "grid point lacks result".to_string())?,
                    )?,
                    point.bool_field("cached")?,
                ));
            }
            return Ok(Reply::Grid { id, results });
        }
        if let Some(result) = v.get("result") {
            return Ok(Reply::Result {
                id,
                result: result_from_json(result)?,
                cached: v.bool_field("cached")?,
            });
        }
        Err("reply carries none of result/error/busy/stats/campaign/grid".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use sdo_workloads::kernels::l1_resident;
    use sdo_workloads::suite;

    #[test]
    fn json_round_trips_values() {
        let v = obj(vec![
            ("a", Json::UInt(u64::MAX)),
            ("b", Json::Str("line\n\"quoted\"\\\u{1}".to_string())),
            ("c", Json::Arr(vec![Json::Null, Json::Bool(true), Json::Bool(false)])),
            ("d", obj(vec![("nested", Json::UInt(0))])),
        ]);
        let text = v.render();
        assert_eq!(parse_json(&text).unwrap(), v);
    }

    #[test]
    fn parser_rejects_floats_and_garbage() {
        assert!(parse_json("1.5").unwrap_err().contains("non-integer"));
        assert!(parse_json("1e3").unwrap_err().contains("non-integer"));
        assert!(parse_json("-2").unwrap_err().contains("negative"));
        assert!(parse_json("{\"a\":1} x").unwrap_err().contains("trailing"));
        assert!(parse_json("{\"a\"").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn parser_bounds_nesting_instead_of_overflowing_the_stack() {
        // A hostile line of 100k brackets must come back as a typed
        // error, not recurse once per bracket and abort the process.
        for hostile in ["[".repeat(100_000), "{\"k\":".repeat(100_000)] {
            assert!(parse_json(&hostile).unwrap_err().contains("nesting deeper"));
        }
        // Nesting at the bound still parses (depth counts containers).
        let ok = format!("{}0{}", "[".repeat(128), "]".repeat(128));
        assert!(parse_json(&ok).is_ok());
        let too_deep = format!("{}0{}", "[".repeat(129), "]".repeat(129));
        assert!(parse_json(&too_deep).unwrap_err().contains("nesting deeper"));
    }

    #[test]
    fn config_codec_round_trips_table_i_and_tiny() {
        for cfg in [SimConfig::table_i(), SimConfig::tiny()] {
            let encoded = config_to_json(&cfg).render();
            let decoded = config_from_json(&parse_json(&encoded).unwrap()).unwrap();
            assert_eq!(decoded, cfg);
        }
    }

    #[test]
    fn program_codec_round_trips_the_suite() {
        for w in suite() {
            let encoded = program_to_json(w.program()).render();
            let decoded = program_from_json(&parse_json(&encoded).unwrap()).unwrap();
            assert_eq!(decoded.name(), w.program().name());
            assert_eq!(decoded.instructions(), w.program().instructions());
            let orig: Vec<(u64, u8)> = w.program().data().iter().collect();
            let back: Vec<(u64, u8)> = decoded.data().iter().collect();
            assert_eq!(orig, back);
        }
    }

    #[test]
    fn request_codec_round_trips() {
        let w = &suite()[0];
        let req = RunRequest::workload(w)
            .variant(Variant::Hybrid)
            .attack(AttackModel::Futuristic)
            .config(SimConfig::tiny())
            .seed(7);
        let encoded = request_to_json(&req).render();
        let decoded = request_from_json(&parse_json(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.variant, req.variant);
        assert_eq!(decoded.attack, req.attack);
        assert_eq!(decoded.config, req.config);
        assert_eq!(decoded.seed, req.seed);
        assert_eq!(decoded.record, req.record);
        assert_eq!(decoded.prewarm, req.prewarm);
        assert_eq!(decoded.programs[0].instructions(), req.programs[0].instructions());
    }

    #[test]
    fn result_codec_round_trips_a_real_run() {
        let prog = l1_resident(200, 1);
        let sim = Simulator::new(SimConfig::tiny());
        let r = sim
            .run(&RunRequest::program(&prog).variant(Variant::Hybrid))
            .unwrap()
            .into_result();
        let encoded = result_to_json(&r).render();
        let decoded = result_from_json(&parse_json(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, r, "every stats field must survive the wire");
    }

    #[test]
    fn wire_messages_round_trip() {
        let prog = l1_resident(50, 1);
        let run = Request::Run {
            id: 3,
            request: RunRequest::program(&prog).variant(Variant::SttLd),
            no_cache: true,
        };
        assert_eq!(Request::parse(&run.render()).unwrap(), run);
        let stats = Request::Stats { id: 9 };
        assert_eq!(Request::parse(&stats.render()).unwrap(), stats);
        let campaign = Request::Campaign { id: 1, seed: 0, quick: true, fuzz: 4 };
        assert_eq!(Request::parse(&campaign.render()).unwrap(), campaign);
        let grid = Request::Grid {
            id: 8,
            request: RunRequest::program(&prog),
            configs: vec![SimConfig::tiny(), SimConfig::table_i()],
            variants: vec![Variant::Unsafe, Variant::SttLd],
            no_cache: true,
        };
        assert_eq!(Request::parse(&grid.render()).unwrap(), grid);
        assert_eq!(Request::parse(&Request::Shutdown.render()).unwrap(), Request::Shutdown);

        let sim = Simulator::new(SimConfig::tiny());
        let result = sim.run(&RunRequest::program(&prog)).unwrap().into_result();
        for reply in [
            Reply::Grid { id: 8, results: vec![(result.clone(), false), (result.clone(), true)] },
            Reply::Result { id: 3, result, cached: true },
            Reply::Error { id: 4, message: "boom \"quoted\"".to_string() },
            Reply::Busy { id: 5 },
            Reply::Stats { id: 6, hits: 1, misses: 2, entries: 3 },
            Reply::Campaign { id: 7, passed: false, checks: 12, render: "line1\nline2".to_string() },
        ] {
            assert_eq!(Reply::parse(&reply.render()).unwrap(), reply);
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"op\":\"launch_missiles\"}").unwrap_err().contains("unknown op"));
        assert!(Request::parse("{\"op\":\"run\",\"id\":1}").unwrap_err().contains("request"));
    }
}
