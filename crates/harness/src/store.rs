//! The content-addressed result store: `RunKey = SHA-256(canonical
//! request)` → serialized [`RunResult`] (DESIGN.md §13).
//!
//! Soundness rests on two invariants the repo already enforces:
//!
//! 1. **Determinism** — the simulator is a pure function of the request
//!    (same program, configuration, variant, attack ⇒ byte-identical
//!    `RunResult`; pinned by the merge and fast-forward equivalence
//!    tests). A stored result is therefore indistinguishable from a
//!    fresh simulation.
//! 2. **Schema coverage** — the key hashes the *canonical* request
//!    encoding from [`crate::proto`], whose codec destructures every
//!    configuration struct exhaustively. Adding a field to `SimConfig`
//!    (or any nested struct, or `RunRequest` itself) breaks compilation
//!    until the codec — and therefore the key — covers it, so a
//!    configuration change can never alias an old cache entry.

use crate::proto::{self, Json};
use crate::sim::{RunRequest, RunResult, SimError};
use crate::SimConfig;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version tag mixed into every key; bump it to invalidate all existing
/// stores when the encoding itself changes meaning.
const KEY_SCHEMA: &str = "sdo-runkey-v1";

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4), in-tree: the workspace is offline-clean.
// ---------------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Computes the SHA-256 digest of `data`.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Pad: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for chunk in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                chunk[4 * i],
                chunk[4 * i + 1],
                chunk[4 * i + 2],
                chunk[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

// ---------------------------------------------------------------------------
// RunKey
// ---------------------------------------------------------------------------

/// The content address of one simulation: the SHA-256 of the canonical
/// request encoding with the configuration fully resolved (the
/// simulator's base configuration is substituted in before hashing, so a
/// request with no override and one overriding to the same configuration
/// hash identically — they *are* the same simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey([u8; 32]);

impl RunKey {
    /// Computes the key for `req` as executed by a simulator configured
    /// with `base`.
    #[must_use]
    pub fn of(req: &RunRequest, base: SimConfig) -> RunKey {
        let mut canonical = req.clone();
        canonical.config = Some(req.effective_config(base));
        let payload = proto::request_to_json(&canonical).render();
        RunKey(sha256(format!("{KEY_SCHEMA}\n{payload}").as_bytes()))
    }

    /// The key as 64 lowercase hex digits.
    #[must_use]
    pub fn hex(&self) -> String {
        let mut out = String::with_capacity(64);
        for b in self.0 {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }
}

impl fmt::Display for RunKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

// ---------------------------------------------------------------------------
// ResultStore
// ---------------------------------------------------------------------------

/// A directory of serialized [`RunResult`]s addressed by [`RunKey`]
/// (`<dir>/<first-two-hex>/<hex>.json`, plus a regenerable
/// `manifest.tsv`). Writes are atomic (temp file + rename), so
/// concurrent clients and a daemon can share one store.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, SimError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| SimError::Store(format!("cannot create {}: {e}", dir.display())))?;
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &RunKey) -> PathBuf {
        let hex = key.hex();
        self.dir.join(&hex[..2]).join(format!("{hex}.json"))
    }

    /// Fetches a stored result, or `None` on a miss.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] on I/O failure or a corrupt entry.
    pub fn load(&self, key: &RunKey) -> Result<Option<RunResult>, SimError> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(SimError::Store(format!("cannot read {}: {e}", path.display())))
            }
        };
        let corrupt =
            |e: String| SimError::Store(format!("corrupt entry {}: {e}", path.display()));
        let value = proto::parse_json(&text).map_err(corrupt)?;
        proto::result_from_json(&value).map(Some).map_err(corrupt)
    }

    /// Persists a result under `key` (atomic; a racing identical write
    /// is harmless because content-addressed entries are immutable).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] on I/O failure.
    pub fn save(&self, key: &RunKey, result: &RunResult) -> Result<(), SimError> {
        let path = self.entry_path(key);
        if path.exists() {
            return Ok(());
        }
        let parent = path.parent().expect("entry path has a parent");
        fs::create_dir_all(parent)
            .map_err(|e| SimError::Store(format!("cannot create {}: {e}", parent.display())))?;
        let tmp = parent.join(format!(
            ".{}.tmp.{}",
            key.hex(),
            std::process::id()
        ));
        let write = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(proto::result_to_json(result).render().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
            fs::rename(&tmp, &path)
        })();
        write.map_err(|e| {
            let _ = fs::remove_file(&tmp);
            SimError::Store(format!("cannot write {}: {e}", path.display()))
        })
    }

    /// Every key currently in the store, sorted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] on I/O failure.
    pub fn keys(&self) -> Result<Vec<String>, SimError> {
        let mut keys = Vec::new();
        let shards = fs::read_dir(&self.dir)
            .map_err(|e| SimError::Store(format!("cannot list {}: {e}", self.dir.display())))?;
        for shard in shards {
            let shard =
                shard.map_err(|e| SimError::Store(format!("cannot list store: {e}")))?;
            if !shard.path().is_dir() {
                continue;
            }
            let entries = fs::read_dir(shard.path())
                .map_err(|e| SimError::Store(format!("cannot list store shard: {e}")))?;
            for entry in entries {
                let entry =
                    entry.map_err(|e| SimError::Store(format!("cannot list store: {e}")))?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(hex) = name.strip_suffix(".json") {
                    if hex.len() == 64 && !hex.starts_with('.') {
                        keys.push(hex.to_string());
                    }
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    /// Number of entries in the store.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] on I/O failure.
    pub fn len(&self) -> Result<u64, SimError> {
        Ok(self.keys()?.len() as u64)
    }

    /// Whether the store holds no entries.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] on I/O failure.
    pub fn is_empty(&self) -> Result<bool, SimError> {
        Ok(self.keys()?.is_empty())
    }

    /// Renders the store manifest: one sorted
    /// `key<TAB>workload<TAB>variant<TAB>attack<TAB>cycles` line per
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] on I/O failure or a corrupt entry.
    pub fn manifest(&self) -> Result<String, SimError> {
        let mut out = String::new();
        for hex in self.keys()? {
            let path = self.dir.join(&hex[..2]).join(format!("{hex}.json"));
            let text = fs::read_to_string(&path)
                .map_err(|e| SimError::Store(format!("cannot read {}: {e}", path.display())))?;
            let value = proto::parse_json(&text)
                .map_err(|e| SimError::Store(format!("corrupt entry {hex}: {e}")))?;
            let field = |key: &str| -> Result<String, SimError> {
                match value.get(key) {
                    Some(Json::Str(s)) => Ok(s.clone()),
                    Some(Json::UInt(n)) => Ok(n.to_string()),
                    _ => Err(SimError::Store(format!("corrupt entry {hex}: missing {key}"))),
                }
            };
            out.push_str(&format!(
                "{hex}\t{}\t{}\t{}\t{}\n",
                field("workload")?,
                field("variant")?,
                field("attack")?,
                field("cycles")?,
            ));
        }
        Ok(out)
    }

    /// Writes (atomically replaces) `manifest.tsv` in the store root and
    /// returns its path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] on I/O failure.
    pub fn write_manifest(&self) -> Result<PathBuf, SimError> {
        let manifest = self.manifest()?;
        let path = self.dir.join("manifest.tsv");
        let tmp = self.dir.join(format!(".manifest.tmp.{}", std::process::id()));
        fs::write(&tmp, manifest)
            .and_then(|()| fs::rename(&tmp, &path))
            .map_err(|e| SimError::Store(format!("cannot write manifest: {e}")))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::Variant;
    use sdo_workloads::kernels::l1_resident;

    fn hex(bytes: &[u8; 32]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Cross the one-block boundary (padding edge case).
        let long = vec![b'a'; 1_000];
        assert_eq!(
            hex(&sha256(&long)),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
    }

    #[test]
    fn run_key_is_stable_and_config_sensitive() {
        let prog = l1_resident(100, 1);
        let base = SimConfig::tiny();
        let req = RunRequest::program(&prog).variant(Variant::Hybrid);
        let k1 = RunKey::of(&req, base);
        let k2 = RunKey::of(&req.clone(), base);
        assert_eq!(k1, k2, "same request ⇒ same key");
        // An explicit override equal to the base is the same simulation.
        assert_eq!(RunKey::of(&req.clone().config(base), base), k1);
        // Any divergence — variant, seed, or a config field — changes it.
        assert_ne!(RunKey::of(&req.clone().variant(Variant::Perfect), base), k1);
        assert_ne!(RunKey::of(&req.clone().seed(1), base), k1);
        let mut other = base;
        other.max_cycles += 1;
        assert_ne!(RunKey::of(&req, other), k1);
    }

    #[test]
    fn store_round_trips_and_counts() {
        let dir = std::env::temp_dir().join(format!("sdo-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty().unwrap());

        let prog = l1_resident(100, 1);
        let base = SimConfig::tiny();
        let req = RunRequest::program(&prog).variant(Variant::Hybrid);
        let key = RunKey::of(&req, base);
        assert_eq!(store.load(&key).unwrap(), None);

        let result = Simulator::new(base).run(&req).unwrap().into_result();
        store.save(&key, &result).unwrap();
        assert_eq!(store.load(&key).unwrap(), Some(result.clone()));
        assert_eq!(store.len().unwrap(), 1);
        // Re-saving is a no-op (content-addressed, immutable).
        store.save(&key, &result).unwrap();
        assert_eq!(store.len().unwrap(), 1);

        let manifest = store.manifest().unwrap();
        assert!(manifest.starts_with(&key.hex()));
        assert!(manifest.contains("l1_resident\thybrid\tspectre"));
        let path = store.write_manifest().unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), manifest);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_store_errors() {
        let dir = std::env::temp_dir().join(format!("sdo-store-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let prog = l1_resident(50, 1);
        let key = RunKey::of(&RunRequest::program(&prog), SimConfig::tiny());
        let path = dir.join(&key.hex()[..2]).join(format!("{}.json", key.hex()));
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "not json\n").unwrap();
        assert!(matches!(store.load(&key), Err(SimError::Store(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
