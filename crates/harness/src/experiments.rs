//! The paper's experiments: Figures 6–8, Table III and the penetration
//! test.
//!
//! [`run_suite`] simulates the full kernel × variant × attack-model cross
//! product once; each report function derives its artifact from those
//! results, so a single sweep regenerates everything.

use crate::config::{SimConfig, Variant};
use crate::engine::JobPool;
use crate::runner::Runner;
use crate::sim::{RunRequest, RunResult, SimError, Simulator};
use crate::table::{norm, pct, BarChart, TextTable};
use sdo_mem::CacheLevel;
use sdo_uarch::{AttackModel, MetricsSnapshot};
use sdo_workloads::{spectre_v1_victim, suite, Workload};

/// Results of the full sweep: `runs[attack][workload][variant]`, with
/// variants in [`Variant::ALL`] order.
#[derive(Debug, Clone)]
pub struct SuiteResults {
    /// Per attack model, per workload, per variant.
    pub runs: Vec<(AttackModel, Vec<Vec<RunResult>>)>,
    /// Workload names, in suite order.
    pub workloads: Vec<String>,
}

impl SuiteResults {
    /// Mean execution time of `variant` normalized to `Unsafe`, averaged
    /// over all workloads, for one attack model.
    #[must_use]
    pub fn mean_normalized(&self, attack: AttackModel, variant: Variant) -> f64 {
        let (_, per_workload) = self
            .runs
            .iter()
            .find(|(a, _)| *a == attack)
            .expect("attack model simulated");
        let vi = Variant::ALL.iter().position(|&v| v == variant).expect("known variant");
        let mut sum = 0.0;
        for runs in per_workload {
            sum += runs[vi].normalized_to(&runs[0]);
        }
        sum / per_workload.len() as f64
    }

    /// Mean overhead (normalized time − 1) of a variant.
    #[must_use]
    pub fn mean_overhead(&self, attack: AttackModel, variant: Variant) -> f64 {
        self.mean_normalized(attack, variant) - 1.0
    }

    /// The paper's improvement metric: the fraction of STT's overhead that
    /// the SDO variant eliminates.
    #[must_use]
    pub fn improvement_vs(&self, attack: AttackModel, sdo: Variant, stt: Variant) -> f64 {
        let stt_over = self.mean_overhead(attack, stt);
        let sdo_over = self.mean_overhead(attack, sdo);
        if stt_over <= 0.0 {
            0.0
        } else {
            (stt_over - sdo_over) / stt_over
        }
    }

    /// Number of simulations in the sweep.
    #[must_use]
    pub fn sims(&self) -> u64 {
        self.runs.iter().map(|(_, pw)| pw.iter().map(|rs| rs.len() as u64).sum::<u64>()).sum()
    }

    /// Total simulated cycles across every run of the sweep.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.runs
            .iter()
            .map(|(_, pw)| {
                pw.iter().map(|rs| rs.iter().map(|r| r.cycles).sum::<u64>()).sum::<u64>()
            })
            .sum()
    }

    /// `(sims, cycles)` counts for throughput accounting
    /// ([`crate::engine::timed`]).
    #[must_use]
    pub fn counts(&self) -> (u64, u64) {
        (self.sims(), self.total_cycles())
    }

    /// Merges every run's metric snapshot ([`RunResult::metrics`]) in
    /// canonical (attack-major, workload, variant) order. Counters sum
    /// and histograms merge bucket-wise; both are commutative, so the
    /// result is byte-identical at any `--jobs` count.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        for (_, per_workload) in &self.runs {
            for runs in per_workload {
                for r in runs {
                    m.merge(&r.metrics());
                }
            }
        }
        m
    }

    /// Quiescence fast-forward effectiveness per workload class:
    /// skipped and total simulated cycles, aggregated over every run,
    /// in `WORKLOAD_CLASSES` order. All-zero `skipped` fields simply
    /// mean the sweep ran with fast-forward off (`--no-skip`).
    #[must_use]
    pub fn skip_ratios(&self) -> Vec<crate::export::SkipRatio> {
        let mut by_class: Vec<crate::export::SkipRatio> = sdo_workloads::WORKLOAD_CLASSES
            .iter()
            .map(|&class| crate::export::SkipRatio { class, skipped: 0, cycles: 0 })
            .collect();
        for (_, per_workload) in &self.runs {
            for (name, runs) in self.workloads.iter().zip(per_workload) {
                let class = sdo_workloads::workload_class(name);
                let slot =
                    by_class.iter_mut().find(|s| s.class == class).expect("class is canonical");
                for r in runs {
                    slot.skipped += r.skipped_cycles;
                    slot.cycles += r.cycles;
                }
            }
        }
        by_class
    }

    /// Sums a per-run statistic over all workloads of one variant.
    fn sum_stat(&self, attack: AttackModel, variant: Variant, f: impl Fn(&RunResult) -> u64) -> u64 {
        let (_, per_workload) =
            self.runs.iter().find(|(a, _)| *a == attack).expect("attack model simulated");
        let vi = Variant::ALL.iter().position(|&v| v == variant).expect("known variant");
        per_workload.iter().map(|runs| f(&runs[vi])).sum()
    }
}

/// Runs the full suite (10 kernels × 8 variants × 2 attack models),
/// serially.
///
/// # Errors
///
/// Returns the first simulation error (hang) encountered.
pub fn run_suite(runner: &Runner) -> Result<SuiteResults, SimError> {
    run_suite_with(runner, &JobPool::serial())
}

/// Runs the full suite across a [`JobPool`]. Results are byte-identical
/// to [`run_suite`] at any worker count.
///
/// # Errors
///
/// Returns the canonically-first simulation error (hang) encountered.
pub fn run_suite_with(runner: &Runner, pool: &JobPool) -> Result<SuiteResults, SimError> {
    run_suite_on(runner, &suite(), pool)
}

/// Runs `kernels` × [`Variant::ALL`] × [`AttackModel::ALL`] through a
/// [`Runner`], batching one [`RunRequest`] per `(workload, variant,
/// attack)` triple and merging in canonical (attack-major, workload,
/// variant) order. Locally each job owns its own core and memory system,
/// so the merged output is byte-identical to the serial nested loop —
/// and therefore also to a store hit or a daemon-served result.
///
/// # Errors
///
/// Returns the canonically-first simulation error (hang) encountered.
pub fn run_suite_on(
    runner: &Runner,
    kernels: &[Workload],
    pool: &JobPool,
) -> Result<SuiteResults, SimError> {
    let workloads: Vec<String> = kernels.iter().map(|w| w.name().to_string()).collect();
    let mut jobs = Vec::with_capacity(AttackModel::ALL.len() * kernels.len() * Variant::ALL.len());
    for attack in AttackModel::ALL {
        for w in kernels {
            for &variant in &Variant::ALL {
                jobs.push(RunRequest::workload(w).variant(variant).attack(attack));
            }
        }
    }
    let flat = runner.run_batch(&jobs, pool)?;

    let mut flat = flat.into_iter();
    let mut runs = Vec::with_capacity(AttackModel::ALL.len());
    for attack in AttackModel::ALL {
        let per_workload: Vec<Vec<RunResult>> = kernels
            .iter()
            .map(|_| (&mut flat).take(Variant::ALL.len()).collect())
            .collect();
        runs.push((attack, per_workload));
    }
    Ok(SuiteResults { runs, workloads })
}

/// Per-workload-class busy-cycle throughput: each class of the suite
/// simulated serially with quiescence fast-forward off, so the numbers
/// measure the raw per-cycle engine cost (`cycles_per_sec`) rather than
/// how much of a class fast-forward can skip. Returned in
/// [`sdo_workloads::WORKLOAD_CLASSES`] order; lands in the `busy_cycle`
/// section of `BENCH_suite.json`.
///
/// # Errors
///
/// Returns the first simulation error (hang) encountered.
pub fn busy_cycle_throughput(
    cfg: SimConfig,
) -> Result<Vec<(&'static str, crate::engine::Throughput)>, SimError> {
    let runner = Runner::local(cfg.with_fast_forward(false));
    let kernels = suite();
    let mut out = Vec::with_capacity(sdo_workloads::WORKLOAD_CLASSES.len());
    for &class in sdo_workloads::WORKLOAD_CLASSES {
        let group: Vec<Workload> = kernels
            .iter()
            .filter(|w| sdo_workloads::workload_class(w.name()) == class)
            .cloned()
            .collect();
        let start = std::time::Instant::now();
        let results = run_suite_on(&runner, &group, &JobPool::serial())?;
        let wall = start.elapsed();
        let (sims, cycles) = results.counts();
        out.push((class, crate::engine::Throughput { jobs: 1, sims, cycles, wall }));
    }
    Ok(out)
}

/// The RV32 sweep's workload set: the four compiled benchmark kernels
/// plus the compiled Spectre gadget (secret 0 — simulation timing is
/// secret-independent wherever the policy closes the channel, and the
/// secret-swap campaign in `sdo-verify` owns the divergence question).
#[must_use]
pub fn rv32_workloads() -> Vec<Workload> {
    let mut kernels = sdo_workloads::rv32_suite();
    for case in sdo_workloads::rv32_litmus_cases() {
        kernels.push(Workload::new(case.name, (case.build)(0)));
    }
    kernels
}

/// Per-workload-class busy-cycle throughput of the translated RV32
/// corpus, analogous to [`busy_cycle_throughput`] (serial, quiescence
/// fast-forward off) but grouped by [`sdo_workloads::rv32_class`] and
/// skipping classes the corpus doesn't populate. Lands in the `rv32`
/// section of `BENCH_suite.json`.
///
/// # Errors
///
/// Returns the first simulation error (hang) encountered.
pub fn rv32_busy_cycle_throughput(
    cfg: SimConfig,
) -> Result<Vec<(&'static str, crate::engine::Throughput)>, SimError> {
    let runner = Runner::local(cfg.with_fast_forward(false));
    let kernels = rv32_workloads();
    let mut out = Vec::new();
    for &class in sdo_workloads::WORKLOAD_CLASSES {
        let group: Vec<Workload> = kernels
            .iter()
            .filter(|w| sdo_workloads::rv32_class(w.name()) == class)
            .cloned()
            .collect();
        if group.is_empty() {
            continue;
        }
        let start = std::time::Instant::now();
        let results = run_suite_on(&runner, &group, &JobPool::serial())?;
        let wall = start.elapsed();
        let (sims, cycles) = results.counts();
        out.push((class, crate::engine::Throughput { jobs: 1, sims, cycles, wall }));
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Figure 6
// ----------------------------------------------------------------------

/// Renders Figure 6: execution time normalized to `Unsafe` per benchmark
/// and variant, one half per attack model, averages on the right — plus
/// the headline improvement summary of Section VIII-B.
#[must_use]
pub fn fig6_report(results: &SuiteResults) -> String {
    let mut out = String::from(
        "FIGURE 6: Execution time (normalized to Unsafe) of kernels under\n\
         STT and the SDO design variants (STT+SDO).\n\n",
    );
    for (attack, per_workload) in &results.runs {
        out.push_str(&format!("== {attack} model ==\n"));
        let mut header = vec!["kernel".to_string()];
        header.extend(Variant::ALL.iter().skip(1).map(|v| v.name().to_string()));
        let mut t = TextTable::new(header);
        for (w, runs) in results.workloads.iter().zip(per_workload) {
            let mut row = vec![w.clone()];
            for r in runs.iter().skip(1) {
                row.push(norm(r.normalized_to(&runs[0])));
            }
            t.row(row);
        }
        let mut avg = vec!["average".to_string()];
        for &v in Variant::ALL.iter().skip(1) {
            avg.push(norm(results.mean_normalized(*attack, v)));
        }
        t.row(avg);
        out.push_str(&t.render());
        out.push('\n');
        let mut chart = BarChart::new(format!("average normalized time ({attack})"), 48);
        for &v in Variant::ALL.iter() {
            chart.bar(v.name(), results.mean_normalized(*attack, v));
        }
        out.push_str(&chart.render());
        out.push('\n');
        for &sdo in &[Variant::Hybrid, Variant::StaticL2, Variant::Perfect] {
            out.push_str(&format!(
                "{:10} overhead {:>6}  (improves STT{{ld}} by {}, STT{{ld+fp}} by {})\n",
                sdo.name(),
                pct(results.mean_overhead(*attack, sdo)),
                pct(results.improvement_vs(*attack, sdo, Variant::SttLd)),
                pct(results.improvement_vs(*attack, sdo, Variant::SttLdFp)),
            ));
        }
        out.push('\n');
    }
    out
}

// ----------------------------------------------------------------------
// Figure 7
// ----------------------------------------------------------------------

/// One variant's overhead attribution (fractions of total slowdown,
/// summing to 1 when the variant has any overhead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    /// Squashes from inaccurate predictions (obl fail, validation
    /// mismatch, FP fail), at an estimated refill penalty.
    pub inaccurate: f64,
    /// Waiting for deeper-than-needed responses.
    pub imprecise: f64,
    /// ROB-head stalls on validations.
    pub validation: f64,
    /// Obl-Ld failures caused by L1-TLB probe misses.
    pub tlb: f64,
    /// Everything else (no-fill extra misses, contention, delays).
    pub other: f64,
}

/// Estimated cycles lost per squash: frontend refill plus scheduler
/// ramp-up. A proxy — see DESIGN.md §5 on overhead attribution.
const SQUASH_PENALTY: u64 = 15;

/// Computes the Figure 7 breakdown for one SDO variant under one attack
/// model, aggregated over all workloads.
#[must_use]
pub fn breakdown(results: &SuiteResults, attack: AttackModel, variant: Variant) -> Breakdown {
    let total_overhead: u64 = {
        let (_, per_workload) =
            results.runs.iter().find(|(a, _)| *a == attack).expect("attack simulated");
        let vi = Variant::ALL.iter().position(|&v| v == variant).expect("known");
        per_workload.iter().map(|runs| runs[vi].cycles.saturating_sub(runs[0].cycles)).sum()
    };
    if total_overhead == 0 {
        return Breakdown { inaccurate: 0.0, imprecise: 0.0, validation: 0.0, tlb: 0.0, other: 0.0 };
    }
    let squashes = results.sum_stat(attack, variant, |r| {
        r.core.squashes.obl_fail + r.core.squashes.validation + r.core.squashes.fp_fail
    });
    let tlb_fails = results.sum_stat(attack, variant, |r| r.core.obl.tlb_probe_fails);
    let imprecise = results.sum_stat(attack, variant, |r| r.core.obl.imprecision_cycles);
    let validation = results.sum_stat(attack, variant, |r| r.core.obl.validation_stall_cycles);

    let inaccurate = squashes.saturating_sub(tlb_fails) * SQUASH_PENALTY;
    let tlb = tlb_fails * SQUASH_PENALTY;
    let accounted = inaccurate + tlb + imprecise + validation;
    // Scale down proportionally if the proxies over-account.
    let scale = if accounted > total_overhead {
        total_overhead as f64 / accounted as f64
    } else {
        1.0
    };
    let t = total_overhead as f64;
    let inaccurate = inaccurate as f64 * scale / t;
    let imprecise = imprecise as f64 * scale / t;
    let validation = validation as f64 * scale / t;
    let tlb = tlb as f64 * scale / t;
    Breakdown {
        inaccurate,
        imprecise,
        validation,
        tlb,
        other: (1.0 - inaccurate - imprecise - validation - tlb).max(0.0),
    }
}

/// Renders Figure 7: per-variant overhead breakdown.
#[must_use]
pub fn fig7_report(results: &SuiteResults) -> String {
    let mut out = String::from(
        "FIGURE 7: Performance overhead breakdown (vs Unsafe) for the SDO\n\
         variants, averaged over the kernel suite.\n\n",
    );
    for attack in AttackModel::ALL {
        out.push_str(&format!("== {attack} model ==\n"));
        let mut t = TextTable::new(vec![
            "variant".into(),
            "inaccurate".into(),
            "imprecise".into(),
            "validation".into(),
            "TLB".into(),
            "other".into(),
            "total ovh".into(),
        ]);
        for v in Variant::SDO {
            let b = breakdown(results, attack, v);
            t.row(vec![
                v.name().to_string(),
                pct(b.inaccurate),
                pct(b.imprecise),
                pct(b.validation),
                pct(b.tlb),
                pct(b.other),
                pct(results.mean_overhead(attack, v)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

// ----------------------------------------------------------------------
// Figure 8
// ----------------------------------------------------------------------

/// Renders Figure 8: squash counts vs normalized execution time for every
/// SDO variant (the paper's scatter plot, as a table).
#[must_use]
pub fn fig8_report(results: &SuiteResults) -> String {
    let mut out = String::from(
        "FIGURE 8: Relationship between SDO squashes and execution time\n\
         (normalized to Unsafe), summed/averaged over the kernel suite.\n\n",
    );
    for attack in AttackModel::ALL {
        out.push_str(&format!("== {attack} model ==\n"));
        let mut t = TextTable::new(vec![
            "variant".into(),
            "squashes".into(),
            "norm. time".into(),
        ]);
        for v in Variant::SDO {
            let squashes = results.sum_stat(attack, v, |r| r.core.squashes.sdo_related());
            t.row(vec![
                v.name().to_string(),
                squashes.to_string(),
                norm(results.mean_normalized(attack, v)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

// ----------------------------------------------------------------------
// Table III
// ----------------------------------------------------------------------

/// Renders Table III: location-predictor precision and accuracy.
#[must_use]
pub fn table3_report(results: &SuiteResults) -> String {
    let mut out = String::from(
        "TABLE III: Precision and Accuracy of the SDO location predictors\n\
         (Spectre / Futuristic), aggregated over the kernel suite.\n\n",
    );
    let mut t = TextTable::new(vec![
        "variant".into(),
        "Spectre prec".into(),
        "Spectre acc".into(),
        "Futur. prec".into(),
        "Futur. acc".into(),
    ]);
    for v in [Variant::StaticL1, Variant::StaticL2, Variant::StaticL3, Variant::Hybrid] {
        let mut cells = vec![v.name().to_string()];
        for attack in AttackModel::ALL {
            let predictions = results.sum_stat(attack, v, |r| r.core.obl.predictions).max(1);
            let precise = results.sum_stat(attack, v, |r| r.core.obl.precise);
            let accurate = results.sum_stat(attack, v, |r| r.core.obl.accurate);
            cells.push(pct(precise as f64 / predictions as f64));
            cells.push(pct(accurate as f64 / predictions as f64));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out
}

// ----------------------------------------------------------------------
// Microarchitecture sensitivity (abstract: "depending on the
// microarchitecture and attack model")
// ----------------------------------------------------------------------

/// Sweeps a core parameter and reports STT vs STT+SDO(Hybrid) overhead at
/// each point, on the suite's highest-overhead kernel. Larger speculation
/// windows (deeper ROBs) expose more tainted transmitters, so STT's
/// overhead grows with ROB depth while SDO's stays flat — the sweep makes
/// the abstract's "depending on the microarchitecture" concrete.
///
/// # Errors
///
/// Returns the first simulation error encountered.
pub fn sensitivity_report(base: SimConfig) -> Result<String, SimError> {
    sensitivity_report_with(base, &JobPool::serial())
}

/// [`sensitivity_report`] with the sweep points fanned out across a
/// [`JobPool`].
///
/// # Errors
///
/// Returns the canonically-first simulation error encountered.
pub fn sensitivity_report_with(base: SimConfig, pool: &JobPool) -> Result<String, SimError> {
    Ok(sensitivity_with_metrics(&Runner::local(base), pool)?.0)
}

/// [`sensitivity_report_with`] that also returns the merged metric
/// snapshot of every sweep run (canonical order, `--jobs`-independent).
/// Sweep points ride as [`RunRequest::config`] overrides, so a
/// store-backed or server-backed [`Runner`] caches them like any other
/// request.
///
/// # Errors
///
/// Returns the canonically-first simulation error encountered.
pub fn sensitivity_with_metrics(
    runner: &Runner,
    pool: &JobPool,
) -> Result<(String, MetricsSnapshot), SimError> {
    use sdo_workloads::kernels::hash_lookup;

    let kernel = Workload::new("hash_lookup", hash_lookup(1 << 16, 2000, 5))
        .warmed(0x80_0000, (1 << 16) * 8, CacheLevel::L3);
    sensitivity_for_with_metrics(runner, &kernel, pool)
}

/// [`sensitivity_report`] over a caller-chosen kernel (lets tests and
/// notebooks sweep with smaller inputs).
///
/// # Errors
///
/// Returns the first simulation error encountered.
pub fn sensitivity_report_for(
    base: SimConfig,
    kernel: &sdo_workloads::Workload,
) -> Result<String, SimError> {
    sensitivity_report_for_with(base, kernel, &JobPool::serial())
}

/// The three variants each sensitivity sweep point simulates.
const SENSITIVITY_VARIANTS: [Variant; 3] = [Variant::Unsafe, Variant::SttLd, Variant::Hybrid];

/// [`sensitivity_report_for`] with every `(sweep point, variant)` pair
/// fanned out across a [`JobPool`].
///
/// # Errors
///
/// Returns the canonically-first simulation error encountered.
pub fn sensitivity_report_for_with(
    base: SimConfig,
    kernel: &sdo_workloads::Workload,
    pool: &JobPool,
) -> Result<String, SimError> {
    Ok(sensitivity_for_with_metrics(&Runner::local(base), kernel, pool)?.0)
}

/// [`sensitivity_report_for_with`] that also returns the merged metric
/// snapshot of every sweep run. The runner's base configuration anchors
/// the sweep; each point is a full [`RunRequest::config`] override.
///
/// # Errors
///
/// Returns the canonically-first simulation error encountered.
pub fn sensitivity_for_with_metrics(
    runner: &Runner,
    kernel: &sdo_workloads::Workload,
    pool: &JobPool,
) -> Result<(String, MetricsSnapshot), SimError> {
    let base = runner.config();
    let mut out = String::from(
        "SENSITIVITY: protection overhead vs. microarchitecture
         (hash_lookup kernel, Spectre model; overhead = normalized time - 1)

",
    );

    const ROBS: [usize; 4] = [64, 128, 192, 256];
    const MSHRS: [u32; 4] = [4, 8, 16, 32];
    let mut points: Vec<SimConfig> = Vec::new();
    for rob in ROBS {
        let mut cfg = base;
        cfg.core.rob_entries = rob;
        // Queues scale with the window as on real designs.
        cfg.core.lq_entries = (rob / 6).max(8);
        cfg.core.sq_entries = (rob / 6).max(8);
        points.push(cfg);
    }
    for mshrs in MSHRS {
        let mut cfg = base;
        cfg.mem.l1.mshrs = mshrs;
        cfg.mem.l2.mshrs = mshrs;
        cfg.mem.l3.mshrs = mshrs;
        points.push(cfg);
    }

    // One grid: the whole sweep travels to a daemon as a single request
    // line (and expands to the identical config-major, variant-minor
    // request list locally), so the report is byte-identical whichever
    // backend serves it.
    let template = RunRequest::workload(kernel).attack(AttackModel::Spectre);
    let flat = runner.run_grid(&template, &points, &SENSITIVITY_VARIANTS, pool)?;
    let mut metrics = MetricsSnapshot::new();
    for r in &flat {
        metrics.merge(&r.metrics());
    }
    let per_point: Vec<&[RunResult]> = flat.chunks(SENSITIVITY_VARIANTS.len()).collect();

    let mut rob_table = TextTable::new(vec![
        "ROB entries".into(),
        "Unsafe cycles".into(),
        "STT{ld} ovh".into(),
        "Hybrid ovh".into(),
        "recovered".into(),
    ]);
    for (rob, runs) in ROBS.iter().zip(&per_point[..ROBS.len()]) {
        let [unsafe_, stt, hyb] = runs else { unreachable!("three variants per point") };
        let stt_ovh = stt.normalized_to(unsafe_) - 1.0;
        let hyb_ovh = hyb.normalized_to(unsafe_) - 1.0;
        rob_table.row(vec![
            rob.to_string(),
            unsafe_.cycles.to_string(),
            pct(stt_ovh),
            pct(hyb_ovh),
            if stt_ovh > 0.0 { pct((stt_ovh - hyb_ovh) / stt_ovh) } else { "-".into() },
        ]);
    }
    out.push_str(&rob_table.render());
    out.push('\n');

    let mut mshr_table = TextTable::new(vec![
        "MSHRs/level".into(),
        "Unsafe cycles".into(),
        "STT{ld} ovh".into(),
        "Hybrid ovh".into(),
    ]);
    for (mshrs, runs) in MSHRS.iter().zip(&per_point[ROBS.len()..]) {
        let [unsafe_, stt, hyb] = runs else { unreachable!("three variants per point") };
        mshr_table.row(vec![
            mshrs.to_string(),
            unsafe_.cycles.to_string(),
            pct(stt.normalized_to(unsafe_) - 1.0),
            pct(hyb.normalized_to(unsafe_) - 1.0),
        ]);
    }
    out.push_str(&mshr_table.render());
    Ok((out, metrics))
}

// ----------------------------------------------------------------------
// Penetration test
// ----------------------------------------------------------------------

/// One variant's penetration-test outcome.
#[derive(Debug, Clone)]
pub struct PentestOutcome {
    /// Variant tested.
    pub variant: Variant,
    /// Attack model in force.
    pub attack: AttackModel,
    /// Byte values whose probe line was cache-resident after the run
    /// (excluding the legitimately-trained byte).
    pub recovered: Vec<u8>,
    /// Whether the secret byte was among them.
    pub leaked: bool,
    /// The victim run itself (cycles, stats), for the typed CSV path.
    pub result: RunResult,
}

/// Runs the Spectre V1 attack under every variant and reads out the
/// cache covert channel (flush+reload-style residency probe).
///
/// # Errors
///
/// Returns a [`SimError`] if any victim run hangs.
pub fn pentest(sim: &Simulator) -> Result<Vec<PentestOutcome>, SimError> {
    pentest_with(sim, &JobPool::serial())
}

/// [`pentest`] with each `(variant, attack)` victim run fanned out across
/// a [`JobPool`].
///
/// # Errors
///
/// Returns the canonically-first [`SimError`] if any victim run hangs.
pub fn pentest_with(sim: &Simulator, pool: &JobPool) -> Result<Vec<PentestOutcome>, SimError> {
    let scenario = spectre_v1_victim();
    let mut jobs = Vec::new();
    for attack in AttackModel::ALL {
        for &variant in &Variant::ALL {
            if variant == Variant::Unsafe && attack == AttackModel::Futuristic {
                continue; // Unsafe has no attack model; test it once.
            }
            jobs.push((variant, attack));
        }
    }
    pool.try_run(&jobs, |_, &(variant, attack)| {
        let out =
            sim.run(&RunRequest::program(&scenario.program).variant(variant).attack(attack))?;
        let mut recovered = Vec::new();
        for b in 0..=255u8 {
            if b == scenario.trained_byte {
                continue;
            }
            if out.memory().residency(0, scenario.probe_addr(b)) != CacheLevel::Dram {
                recovered.push(b);
            }
        }
        let leaked = recovered.contains(&scenario.secret);
        Ok(PentestOutcome { variant, attack, recovered, leaked, result: out.into_result() })
    })
}

/// Summarizes penetration-test outcomes as a metric snapshot: per
/// `(attack, variant)` pair, the number of covert-channel-visible bytes
/// and whether the secret leaked, plus suite-level totals.
#[must_use]
pub fn pentest_metrics(outcomes: &[PentestOutcome]) -> MetricsSnapshot {
    let mut m = MetricsSnapshot::new();
    m.add("pentest.runs", outcomes.len() as u64);
    m.add("pentest.leaks", outcomes.iter().filter(|o| o.leaked).count() as u64);
    for o in outcomes {
        let attack = match o.attack {
            AttackModel::Spectre => "spectre",
            AttackModel::Futuristic => "futuristic",
        };
        let prefix = format!("pentest.{attack}.{}", o.variant.slug());
        m.add(&format!("{prefix}.visible_bytes"), o.recovered.len() as u64);
        m.add(&format!("{prefix}.leaked"), u64::from(o.leaked));
    }
    m
}

/// Renders the penetration-test report.
#[must_use]
pub fn pentest_report(outcomes: &[PentestOutcome]) -> String {
    let mut out = String::from(
        "PENETRATION TEST: Spectre V1 (Section VIII-A)\n\
         The receiver probes the 256-line probe array for cache residency\n\
         after the victim runs; a resident line reveals the secret byte.\n\n",
    );
    let mut t = TextTable::new(vec![
        "variant".into(),
        "model".into(),
        "secret leaked?".into(),
        "bytes visible".into(),
    ]);
    for o in outcomes {
        t.row(vec![
            o.variant.name().to_string(),
            o.attack.to_string(),
            if o.leaked { "LEAKED".into() } else { "blocked".into() },
            o.recovered.len().to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Convenience wrapper: run the sweep on a fresh simulator with `cfg` and
/// return every report concatenated (used by the `all` binary).
///
/// # Errors
///
/// Returns the first simulation error encountered.
pub fn full_report(cfg: SimConfig) -> Result<String, SimError> {
    full_report_with(cfg, &JobPool::serial())
}

/// [`full_report`] with the sweep and pentest fanned out across a
/// [`JobPool`].
///
/// # Errors
///
/// Returns the canonically-first simulation error encountered.
pub fn full_report_with(cfg: SimConfig, pool: &JobPool) -> Result<String, SimError> {
    let runner = Runner::local(cfg);
    let results = run_suite_with(&runner, pool)?;
    let mut out = String::new();
    out.push_str(&cfg.render_table_i());
    out.push_str("\n\n");
    out.push_str(&Variant::render_table_ii());
    out.push('\n');
    out.push_str(&fig6_report(&results));
    out.push_str(&fig7_report(&results));
    out.push_str(&fig8_report(&results));
    out.push_str(&table3_report(&results));
    out.push('\n');
    out.push_str(&pentest_report(&pentest_with(runner.simulator(), pool)?));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast two-kernel mini-suite for unit tests.
    fn mini_results() -> SuiteResults {
        let sim = Simulator::new(SimConfig::tiny());
        let kernels = [
            sdo_workloads::kernels::l1_resident(300, 1),
            sdo_workloads::kernels::stream(256, 1, 2),
        ];
        let workloads = kernels.iter().map(|k| k.name().to_string()).collect();
        let mut runs = Vec::new();
        for attack in AttackModel::ALL {
            let per: Vec<Vec<RunResult>> = kernels
                .iter()
                .map(|k| {
                    Variant::ALL
                        .iter()
                        .map(|&v| {
                            sim.run(&RunRequest::program(k).variant(v).attack(attack))
                                .unwrap()
                                .into_result()
                        })
                        .collect()
                })
                .collect();
            runs.push((attack, per));
        }
        SuiteResults { runs, workloads }
    }

    #[test]
    fn mean_normalized_is_one_for_unsafe() {
        let r = mini_results();
        for attack in AttackModel::ALL {
            assert!((r.mean_normalized(attack, Variant::Unsafe) - 1.0).abs() < 1e-12);
            assert!(r.mean_normalized(attack, Variant::SttLd) >= 1.0);
        }
    }

    #[test]
    fn reports_render_nonempty() {
        let r = mini_results();
        let f6 = fig6_report(&r);
        assert!(f6.contains("Spectre model"));
        assert!(f6.contains("Futuristic model"));
        assert!(f6.contains("average"));
        let f7 = fig7_report(&r);
        assert!(f7.contains("imprecise"));
        let f8 = fig8_report(&r);
        assert!(f8.contains("squashes"));
        let t3 = table3_report(&r);
        assert!(t3.contains("Hybrid"));
    }

    #[test]
    fn breakdown_fractions_are_sane() {
        let r = mini_results();
        for v in Variant::SDO {
            let b = breakdown(&r, AttackModel::Futuristic, v);
            let sum = b.inaccurate + b.imprecise + b.validation + b.tlb + b.other;
            assert!((0.0..=1.0 + 1e-9).contains(&sum), "{v}: components sum to {sum}");
            for part in [b.inaccurate, b.imprecise, b.validation, b.tlb, b.other] {
                assert!((0.0..=1.0).contains(&part));
            }
        }
    }

    #[test]
    fn sensitivity_report_renders() {
        // Smoke the sweep machinery with a small kernel so the debug-mode
        // suite stays fast.
        let kernel = sdo_workloads::kernels::l1_resident(300, 1);
        let w = sdo_workloads::Workload::new("l1_resident", kernel);
        let report = sensitivity_report_for(SimConfig::table_i(), &w).unwrap();
        assert!(report.contains("ROB entries"));
        assert!(report.contains("MSHRs/level"));
        assert!(report.lines().count() > 12);
    }

    #[test]
    fn pentest_blocks_all_protected_variants() {
        let sim = Simulator::new(SimConfig::table_i());
        let outcomes = pentest(&sim).unwrap();
        for o in &outcomes {
            if o.variant == Variant::Unsafe {
                assert!(o.leaked, "the insecure baseline must leak the secret");
            } else {
                assert!(!o.leaked, "{} under {} must block Spectre V1", o.variant, o.attack);
            }
        }
        assert!(pentest_report(&outcomes).contains("LEAKED"));
    }
}
