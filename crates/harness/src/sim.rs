//! The simulation driver: one program × one Table II variant × one attack
//! model → statistics.

use crate::config::{SimConfig, Variant};
use sdo_isa::Program;
use sdo_mem::{MemStats, MemorySystem};
use sdo_uarch::{AttackModel, Core, CoreStats, MetricsSnapshot, PipelineObs};
use std::error::Error;
use std::fmt;

/// Error from a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program exceeded the configured cycle budget.
    Hang {
        /// The exhausted budget.
        max_cycles: u64,
        /// The workload's name.
        workload: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Hang { max_cycles, workload } => {
                write!(f, "workload '{workload}' did not halt within {max_cycles} cycles")
            }
        }
    }
}

impl Error for SimError {}

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// The variant simulated.
    pub variant: Variant,
    /// Attack model.
    pub attack: AttackModel,
    /// Total cycles to halt.
    pub cycles: u64,
    /// Core-side statistics.
    pub core: CoreStats,
    /// Memory-side statistics.
    pub mem: MemStats,
    /// Observability probe detached from the core after the run
    /// (`None` when the machine's [`ObsConfig`](sdo_uarch::ObsConfig)
    /// is off).
    pub obs: Option<Box<PipelineObs>>,
    /// Cycles elided by quiescence fast-forward (0 when disabled or for
    /// multi-core runs). Deliberately excluded from [`RunResult::metrics`]
    /// and the CSV export: it describes the host-side loop, not the
    /// simulated machine, and metric/CSV output must stay byte-identical
    /// with skipping on or off.
    pub skipped_cycles: u64,
}

impl RunResult {
    /// Execution time normalized to a baseline run (usually `Unsafe`).
    #[must_use]
    pub fn normalized_to(&self, baseline: &RunResult) -> f64 {
        self.cycles as f64 / baseline.cycles as f64
    }

    /// This run's metric snapshot: every core counter under `core.*`,
    /// every memory counter under `mem.*`, occupancy histograms under
    /// `pipeline.*` (when observability was enabled), plus `run.cycles`
    /// and `run.sims`. Merging snapshots of several runs aggregates
    /// them (counters sum, histograms pool).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.add("run.sims", 1);
        m.add("run.cycles", self.cycles);
        self.core.export_metrics(&mut m, "core");
        self.mem.export_metrics(&mut m, "mem");
        if let Some(obs) = &self.obs {
            obs.export(&mut m, "pipeline");
        }
        m
    }
}

/// Reusable simulation driver for a fixed machine configuration.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Creates a driver for the given machine.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Simulator { cfg }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs `program` to completion under `variant`/`attack`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hang`] if the program exceeds the cycle budget.
    pub fn run(
        &self,
        program: &Program,
        variant: Variant,
        attack: AttackModel,
    ) -> Result<RunResult, SimError> {
        let (result, _mem) = self.run_with_memory(program, variant, attack)?;
        Ok(result)
    }

    /// Like [`Simulator::run`] but also returns the final memory system —
    /// needed by the penetration test's covert-channel receiver, which
    /// inspects cache residency after the victim finishes.
    pub fn run_with_memory(
        &self,
        program: &Program,
        variant: Variant,
        attack: AttackModel,
    ) -> Result<(RunResult, MemorySystem), SimError> {
        self.run_prewarmed(program, &[], variant, attack)
    }

    /// Runs a full [`Workload`](sdo_workloads::Workload), applying its
    /// cache warm-start hints first (the SimPoint-checkpoint substitute;
    /// DESIGN.md §5).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hang`] if the program exceeds the cycle budget.
    pub fn run_workload(
        &self,
        workload: &sdo_workloads::Workload,
        variant: Variant,
        attack: AttackModel,
    ) -> Result<RunResult, SimError> {
        self.run_prewarmed(workload.program(), workload.prewarm_ranges(), variant, attack)
            .map(|(r, _)| r)
    }

    /// Like [`Simulator::run_workload`] but also records and returns the
    /// committed-PC stream — the basis of cross-layout differential
    /// testing (the engine-layout golden test pins these streams).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hang`] if the program exceeds the cycle budget.
    pub fn run_workload_recorded(
        &self,
        workload: &sdo_workloads::Workload,
        variant: Variant,
        attack: AttackModel,
    ) -> Result<(RunResult, Vec<u64>), SimError> {
        self.run_inner(workload.program(), workload.prewarm_ranges(), variant, attack, true)
            .map(|(r, _, pcs)| (r, pcs.unwrap_or_default()))
    }

    /// Runs all Table II variants on a workload (with warm-start hints).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] encountered.
    pub fn run_workload_all_variants(
        &self,
        workload: &sdo_workloads::Workload,
        attack: AttackModel,
    ) -> Result<Vec<RunResult>, SimError> {
        Variant::ALL.iter().map(|&v| self.run_workload(workload, v, attack)).collect()
    }

    fn run_prewarmed(
        &self,
        program: &Program,
        prewarm: &[(u64, u64, sdo_mem::CacheLevel)],
        variant: Variant,
        attack: AttackModel,
    ) -> Result<(RunResult, MemorySystem), SimError> {
        self.run_inner(program, prewarm, variant, attack, false).map(|(r, m, _)| (r, m))
    }

    #[allow(clippy::type_complexity)]
    fn run_inner(
        &self,
        program: &Program,
        prewarm: &[(u64, u64, sdo_mem::CacheLevel)],
        variant: Variant,
        attack: AttackModel,
        record_commits: bool,
    ) -> Result<(RunResult, MemorySystem, Option<Vec<u64>>), SimError> {
        let mut mem = MemorySystem::new(self.cfg.mem, 1);
        mem.load_image(program.data());
        for &(start, bytes, level) in prewarm {
            mem.prewarm(0, start, bytes, level);
        }
        let mut core = Core::new(0, self.cfg.core, variant.security(attack), program.clone());
        core.enable_obs(self.cfg.obs, self.cfg.mem.l1.mshrs as usize);
        core.set_fast_forward(self.cfg.fast_forward);
        if record_commits {
            core.record_commits();
        }
        core.run(&mut mem, self.cfg.max_cycles).map_err(|_| SimError::Hang {
            max_cycles: self.cfg.max_cycles,
            workload: program.name().to_string(),
        })?;
        let pcs = core.commit_pcs().map(<[u64]>::to_vec);
        let result = RunResult {
            workload: program.name().to_string(),
            variant,
            attack,
            cycles: core.now(),
            core: *core.stats(),
            mem: *mem.stats(),
            obs: core.take_obs(),
            skipped_cycles: core.skipped_cycles(),
        };
        Ok((result, mem, pcs))
    }

    /// Runs one program per core on a shared memory hierarchy (cores are
    /// ticked round-robin each cycle) and returns per-core results plus
    /// the final memory system. All cores use the same variant/attack.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hang`] if any core exceeds the cycle budget.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty or exceeds the mesh tile count.
    pub fn run_multi(
        &self,
        programs: &[Program],
        variant: Variant,
        attack: AttackModel,
    ) -> Result<(Vec<RunResult>, MemorySystem), SimError> {
        assert!(!programs.is_empty(), "need at least one program");
        let mut mem = MemorySystem::new(self.cfg.mem, programs.len());
        for p in programs {
            mem.load_image(p.data());
        }
        let sec = variant.security(attack);
        let mut cores: Vec<Core> = programs
            .iter()
            .enumerate()
            .map(|(id, p)| {
                let mut c = Core::new(id, self.cfg.core, sec, p.clone());
                c.enable_obs(self.cfg.obs, self.cfg.mem.l1.mshrs as usize);
                c
            })
            .collect();
        let mut elapsed = 0u64;
        while cores.iter().any(|c| !c.halted()) {
            if elapsed >= self.cfg.max_cycles {
                let stuck = cores.iter().position(|c| !c.halted()).expect("someone is stuck");
                return Err(SimError::Hang {
                    max_cycles: self.cfg.max_cycles,
                    workload: programs[stuck].name().to_string(),
                });
            }
            for core in &mut cores {
                core.tick(&mut mem);
            }
            elapsed += 1;
        }
        let results = cores
            .iter_mut()
            .zip(programs)
            .map(|(core, p)| RunResult {
                workload: p.name().to_string(),
                variant,
                attack,
                cycles: core.now(),
                core: *core.stats(),
                mem: *mem.stats(),
                obs: core.take_obs(),
                skipped_cycles: 0,
            })
            .collect();
        Ok((results, mem))
    }

    /// Runs every Table II variant on `program` under one attack model.
    /// Results are in [`Variant::ALL`] order (`Unsafe` first).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] encountered.
    pub fn run_all_variants(
        &self,
        program: &Program,
        attack: AttackModel,
    ) -> Result<Vec<RunResult>, SimError> {
        Variant::ALL.iter().map(|&v| self.run(program, v, attack)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_workloads::kernels::l1_resident;

    #[test]
    fn run_produces_stats() {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = l1_resident(300, 1);
        let r = sim.run(&prog, Variant::Unsafe, AttackModel::Spectre).unwrap();
        assert!(r.cycles > 0);
        assert!(r.core.committed > 1000);
        assert!(r.mem.loads() > 0);
        assert_eq!(r.workload, "l1_resident");
    }

    #[test]
    fn normalization_is_relative() {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = l1_resident(300, 1);
        let base = sim.run(&prog, Variant::Unsafe, AttackModel::Spectre).unwrap();
        let stt = sim.run(&prog, Variant::SttLd, AttackModel::Spectre).unwrap();
        assert!(stt.normalized_to(&base) >= 1.0);
        assert!((base.normalized_to(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hang_is_reported() {
        let mut asm = sdo_isa::Assembler::named("spin");
        let top = asm.here();
        asm.j(top);
        let prog = asm.finish().unwrap();
        let mut cfg = SimConfig::tiny();
        cfg.max_cycles = 1000;
        let sim = Simulator::new(cfg);
        let err = sim.run(&prog, Variant::Unsafe, AttackModel::Spectre).unwrap_err();
        assert!(matches!(err, SimError::Hang { max_cycles: 1000, .. }));
        assert!(err.to_string().contains("spin"));
    }

    #[test]
    fn run_multi_shares_one_hierarchy() {
        let sim = Simulator::new(SimConfig::tiny());
        let a = l1_resident(150, 1);
        let b = l1_resident(150, 2);
        let (results, mem) =
            sim.run_multi(&[a, b], Variant::Hybrid, AttackModel::Spectre).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.core.committed > 500));
        // Both cores' traffic landed in one shared memory system.
        assert!(mem.stats().loads() > 0);
        assert_eq!(mem.cores(), 2);
    }

    #[test]
    fn metrics_snapshot_mirrors_stats() {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = l1_resident(300, 1);
        let r = sim.run(&prog, Variant::Hybrid, AttackModel::Spectre).unwrap();
        assert!(r.obs.is_none(), "default config records no probe");
        let m = r.metrics();
        assert_eq!(m.counter("run.sims"), Some(1));
        assert_eq!(m.counter("run.cycles"), Some(r.cycles));
        assert_eq!(m.counter("core.committed"), Some(r.core.committed));
        assert_eq!(m.counter("core.obl.issued"), Some(r.core.obl.issued));
        assert_eq!(m.counter("mem.l1.hits"), Some(r.mem.l1_hits));
        assert!(m.histogram("pipeline.occupancy.rob").is_none());
    }

    #[test]
    fn obs_enabled_run_is_identical_and_carries_histograms() {
        use sdo_uarch::ObsConfig;
        let prog = l1_resident(300, 1);
        let plain = Simulator::new(SimConfig::tiny())
            .run(&prog, Variant::Hybrid, AttackModel::Spectre)
            .unwrap();
        let observed = Simulator::new(SimConfig::tiny().with_obs(ObsConfig::occupancy()))
            .run(&prog, Variant::Hybrid, AttackModel::Spectre)
            .unwrap();
        assert_eq!(observed.cycles, plain.cycles, "obs must not perturb timing");
        assert_eq!(observed.core, plain.core);
        assert_eq!(observed.mem, plain.mem);
        let obs = observed.obs.as_ref().expect("probe recorded");
        assert_eq!(obs.rob.count(), observed.cycles);
        let m = observed.metrics();
        assert_eq!(
            m.histogram("pipeline.occupancy.rob").unwrap().count(),
            observed.cycles
        );
    }

    #[test]
    fn fast_forward_run_is_byte_identical_to_stepped_run() {
        use sdo_uarch::ObsConfig;
        let prog = sdo_workloads::kernels::ptr_chase(1 << 16, 400, 7);
        let cfg = SimConfig::tiny().with_obs(ObsConfig::occupancy());
        let skip = Simulator::new(cfg.with_fast_forward(true))
            .run(&prog, Variant::Hybrid, AttackModel::Spectre)
            .unwrap();
        let step = Simulator::new(cfg.with_fast_forward(false))
            .run(&prog, Variant::Hybrid, AttackModel::Spectre)
            .unwrap();
        assert_eq!(step.skipped_cycles, 0, "--no-skip must not skip");
        assert!(skip.skipped_cycles > 0, "DRAM-bound kernel should quiesce");
        // Cycle-exactness: everything the run reports except the host-side
        // skip counter must be identical (DESIGN.md "Quiescence fast-forward").
        assert_eq!(skip.cycles, step.cycles);
        assert_eq!(skip.core, step.core);
        assert_eq!(skip.mem, step.mem);
        assert_eq!(skip.obs, step.obs);
        assert_eq!(skip.metrics().to_json(), step.metrics().to_json());
    }

    #[test]
    fn all_variants_complete_on_a_small_kernel() {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = l1_resident(200, 2);
        for attack in AttackModel::ALL {
            let results = sim.run_all_variants(&prog, attack).unwrap();
            assert_eq!(results.len(), Variant::ALL.len());
            // Committed instruction counts are identical across variants:
            // protection changes timing, never function.
            let committed = results[0].core.committed;
            for r in &results {
                assert_eq!(r.core.committed, committed, "{} commits differ", r.variant);
            }
        }
    }
}
