//! The simulation driver: one canonical [`RunRequest`] → statistics.
//!
//! Every simulation in the workspace — figures, sensitivity sweeps,
//! verification captures, penetration tests, benches — is expressed as a
//! [`RunRequest`] and executed through [`Simulator::run`], the single
//! entry point. One request type keeps the surface hashable (the
//! content-addressed result store keys off it; see `store.rs`) and
//! serializable (the `sdo-serve` daemon ships it over a line-delimited
//! JSON protocol; see `proto.rs`).

use crate::config::{SimConfig, Variant};
use sdo_isa::Program;
use sdo_mem::{CacheLevel, MemStats, MemorySystem};
use sdo_uarch::{AttackModel, Core, CoreStats, MetricsSnapshot, PipelineObs};
use std::error::Error;
use std::fmt;

/// Error from a simulation run (local or served).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program exceeded the configured cycle budget.
    Hang {
        /// The exhausted budget.
        max_cycles: u64,
        /// The workload's name.
        workload: String,
    },
    /// The content-addressed result store failed (I/O or a corrupt
    /// cached entry).
    Store(String),
    /// The `sdo-serve` transport failed or the daemon reported an error.
    Server(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Hang { max_cycles, workload } => {
                write!(f, "workload '{workload}' did not halt within {max_cycles} cycles")
            }
            SimError::Store(msg) => write!(f, "result store: {msg}"),
            SimError::Server(msg) => write!(f, "sdo-serve: {msg}"),
        }
    }
}

impl Error for SimError {}

/// The one canonical description of a simulation: program(s), optional
/// machine-configuration override, variant, attack model, seed, and
/// whether to record the committed-PC stream.
///
/// Build one with [`RunRequest::program`], [`RunRequest::workload`], or
/// [`RunRequest::multi`] and chain the setters:
///
/// ```
/// use sdo_harness::{AttackModel, RunRequest, SimConfig, Simulator, Variant};
/// let prog = sdo_workloads::kernels::l1_resident(100, 1);
/// let req = RunRequest::program(&prog).variant(Variant::Hybrid).attack(AttackModel::Spectre);
/// let result = Simulator::new(SimConfig::tiny()).run(&req)?.into_result();
/// assert!(result.cycles > 0);
/// # Ok::<(), sdo_harness::SimError>(())
/// ```
///
/// The fields are public so the wire codec and the `RunKey` hash can
/// destructure the request exhaustively — adding a field without teaching
/// both is a compile error.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// Programs to run, one per core (one ⇒ single-core with optional
    /// fast-forward; several ⇒ lockstep multi-core on a shared hierarchy).
    pub programs: Vec<Program>,
    /// Cache warm-start ranges `(start, bytes, level)` installed before
    /// the run (single-core requests only; the SimPoint-checkpoint
    /// substitute, DESIGN.md §5).
    pub prewarm: Vec<(u64, u64, CacheLevel)>,
    /// The Table II variant to simulate.
    pub variant: Variant,
    /// The attack model (untaint timing).
    pub attack: AttackModel,
    /// Machine-configuration override; `None` uses the [`Simulator`]'s
    /// configuration (sensitivity sweeps set this per request so a grid
    /// of configurations is one batch).
    pub config: Option<SimConfig>,
    /// Workload-generation seed. The simulator itself is deterministic —
    /// the seed never perturbs execution — but it is part of the
    /// [`RunKey`](crate::store::RunKey) so independently-generated
    /// programs that happen to collide textually stay distinct in the
    /// result store.
    pub seed: u64,
    /// Record the committed-PC stream (cross-layout differential
    /// testing). Recording makes a request uncacheable.
    pub record: bool,
}

impl RunRequest {
    fn base(programs: Vec<Program>, prewarm: Vec<(u64, u64, CacheLevel)>) -> Self {
        RunRequest {
            programs,
            prewarm,
            variant: Variant::Unsafe,
            attack: AttackModel::Spectre,
            config: None,
            seed: 0,
            record: false,
        }
    }

    /// A request for one program with no warm-start hints.
    #[must_use]
    pub fn program(program: &Program) -> Self {
        Self::base(vec![program.clone()], Vec::new())
    }

    /// A request for a [`Workload`](sdo_workloads::Workload): its program
    /// plus its cache warm-start hints.
    #[must_use]
    pub fn workload(workload: &sdo_workloads::Workload) -> Self {
        Self::base(vec![workload.program().clone()], workload.prewarm_ranges().to_vec())
    }

    /// A request for one program per core on a shared memory hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    #[must_use]
    pub fn multi(programs: &[Program]) -> Self {
        assert!(!programs.is_empty(), "need at least one program");
        Self::base(programs.to_vec(), Vec::new())
    }

    /// Sets the variant.
    #[must_use]
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the attack model.
    #[must_use]
    pub fn attack(mut self, attack: AttackModel) -> Self {
        self.attack = attack;
        self
    }

    /// Overrides the machine configuration for this request.
    #[must_use]
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets the workload-generation seed (cache-key disambiguation only).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Requests the committed-PC stream (see [`RunOutput::commit_pcs`]).
    #[must_use]
    pub fn record(mut self) -> Self {
        self.record = true;
        self
    }

    /// Adds a cache warm-start range.
    #[must_use]
    pub fn warmed(mut self, start: u64, bytes: u64, level: CacheLevel) -> Self {
        self.prewarm.push((start, bytes, level));
        self
    }

    /// The configuration this request runs under, given the simulator's
    /// base configuration.
    #[must_use]
    pub fn effective_config(&self, base: SimConfig) -> SimConfig {
        self.config.unwrap_or(base)
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// The variant simulated.
    pub variant: Variant,
    /// Attack model.
    pub attack: AttackModel,
    /// Total cycles to halt.
    pub cycles: u64,
    /// Core-side statistics.
    pub core: CoreStats,
    /// Memory-side statistics.
    pub mem: MemStats,
    /// Observability probe detached from the core after the run
    /// (`None` when the machine's [`ObsConfig`](sdo_uarch::ObsConfig)
    /// is off).
    pub obs: Option<Box<PipelineObs>>,
    /// Cycles elided by quiescence fast-forward (0 when disabled or for
    /// multi-core runs). Deliberately excluded from [`RunResult::metrics`]
    /// and the CSV export: it describes the host-side loop, not the
    /// simulated machine, and metric/CSV output must stay byte-identical
    /// with skipping on or off.
    pub skipped_cycles: u64,
}

impl RunResult {
    /// Execution time normalized to a baseline run (usually `Unsafe`).
    #[must_use]
    pub fn normalized_to(&self, baseline: &RunResult) -> f64 {
        self.cycles as f64 / baseline.cycles as f64
    }

    /// This run's metric snapshot: every core counter under `core.*`,
    /// every memory counter under `mem.*`, occupancy histograms under
    /// `pipeline.*` (when observability was enabled), plus `run.cycles`
    /// and `run.sims`. Merging snapshots of several runs aggregates
    /// them (counters sum, histograms pool).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.add("run.sims", 1);
        m.add("run.cycles", self.cycles);
        self.core.export_metrics(&mut m, "core");
        self.mem.export_metrics(&mut m, "mem");
        if let Some(obs) = &self.obs {
            obs.export(&mut m, "pipeline");
        }
        m
    }
}

/// Everything a simulation produced: per-core results, the final memory
/// system (covert-channel receivers inspect cache residency), and the
/// committed-PC stream when the request asked for it.
#[derive(Debug)]
pub struct RunOutput {
    results: Vec<RunResult>,
    mem: MemorySystem,
    commit_pcs: Option<Vec<u64>>,
}

impl RunOutput {
    /// The sole result of a single-core run.
    ///
    /// # Panics
    ///
    /// Panics if the request ran more than one core.
    #[must_use]
    pub fn into_result(self) -> RunResult {
        assert_eq!(self.results.len(), 1, "into_result on a multi-core output");
        self.results.into_iter().next().expect("one result")
    }

    /// Borrows the first (for single-core runs, the only) result.
    #[must_use]
    pub fn result(&self) -> &RunResult {
        &self.results[0]
    }

    /// Per-core results, in program order.
    #[must_use]
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// Consumes the output, returning the per-core results.
    #[must_use]
    pub fn into_results(self) -> Vec<RunResult> {
        self.results
    }

    /// The memory system as the run left it.
    #[must_use]
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// The committed-PC stream (`Some` iff the request set
    /// [`RunRequest::record`] on a single-core run).
    #[must_use]
    pub fn commit_pcs(&self) -> Option<&[u64]> {
        self.commit_pcs.as_deref()
    }
}

/// Reusable simulation driver for a fixed machine configuration.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Creates a driver for the given machine.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Simulator { cfg }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs a request to completion. This is the workspace's only
    /// simulation entry point.
    ///
    /// Single-program requests honor warm-start hints, quiescence
    /// fast-forward and PC recording; multi-program requests tick one
    /// core per program round-robin on a shared hierarchy (no
    /// fast-forward, no recording — lockstep timing is the point).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hang`] if any core exceeds the cycle budget.
    ///
    /// # Panics
    ///
    /// Panics if the request has no programs or more programs than mesh
    /// tiles.
    pub fn run(&self, req: &RunRequest) -> Result<RunOutput, SimError> {
        let cfg = req.effective_config(self.cfg);
        assert!(!req.programs.is_empty(), "request needs at least one program");
        if req.programs.len() == 1 {
            Self::run_single(&cfg, req)
        } else {
            Self::run_lockstep(&cfg, req)
        }
    }

    fn run_single(cfg: &SimConfig, req: &RunRequest) -> Result<RunOutput, SimError> {
        let program = &req.programs[0];
        let mut mem = MemorySystem::new(cfg.mem, 1);
        mem.load_image(program.data());
        for &(start, bytes, level) in &req.prewarm {
            mem.prewarm(0, start, bytes, level);
        }
        let mut core = Core::new(0, cfg.core, req.variant.security(req.attack), program.clone());
        core.enable_obs(cfg.obs, cfg.mem.l1.mshrs as usize);
        core.set_fast_forward(cfg.fast_forward);
        if req.record {
            core.record_commits();
        }
        core.run(&mut mem, cfg.max_cycles).map_err(|_| SimError::Hang {
            max_cycles: cfg.max_cycles,
            workload: program.name().to_string(),
        })?;
        let commit_pcs = core.commit_pcs().map(<[u64]>::to_vec);
        let result = RunResult {
            workload: program.name().to_string(),
            variant: req.variant,
            attack: req.attack,
            cycles: core.now(),
            core: *core.stats(),
            mem: *mem.stats(),
            obs: core.take_obs(),
            skipped_cycles: core.skipped_cycles(),
        };
        Ok(RunOutput { results: vec![result], mem, commit_pcs })
    }

    fn run_lockstep(cfg: &SimConfig, req: &RunRequest) -> Result<RunOutput, SimError> {
        let programs = &req.programs;
        let mut mem = MemorySystem::new(cfg.mem, programs.len());
        for p in programs {
            mem.load_image(p.data());
        }
        let sec = req.variant.security(req.attack);
        let mut cores: Vec<Core> = programs
            .iter()
            .enumerate()
            .map(|(id, p)| {
                let mut c = Core::new(id, cfg.core, sec, p.clone());
                c.enable_obs(cfg.obs, cfg.mem.l1.mshrs as usize);
                c
            })
            .collect();
        let mut elapsed = 0u64;
        while cores.iter().any(|c| !c.halted()) {
            if elapsed >= cfg.max_cycles {
                let stuck = cores.iter().position(|c| !c.halted()).expect("someone is stuck");
                return Err(SimError::Hang {
                    max_cycles: cfg.max_cycles,
                    workload: programs[stuck].name().to_string(),
                });
            }
            for core in &mut cores {
                core.tick(&mut mem);
            }
            elapsed += 1;
        }
        let results = cores
            .iter_mut()
            .zip(programs)
            .map(|(core, p)| RunResult {
                workload: p.name().to_string(),
                variant: req.variant,
                attack: req.attack,
                cycles: core.now(),
                core: *core.stats(),
                mem: *mem.stats(),
                obs: core.take_obs(),
                skipped_cycles: 0,
            })
            .collect();
        Ok(RunOutput { results, mem, commit_pcs: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_workloads::kernels::l1_resident;

    fn run_one(sim: &Simulator, prog: &Program, v: Variant, a: AttackModel) -> RunResult {
        sim.run(&RunRequest::program(prog).variant(v).attack(a)).unwrap().into_result()
    }

    #[test]
    fn run_produces_stats() {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = l1_resident(300, 1);
        let r = run_one(&sim, &prog, Variant::Unsafe, AttackModel::Spectre);
        assert!(r.cycles > 0);
        assert!(r.core.committed > 1000);
        assert!(r.mem.loads() > 0);
        assert_eq!(r.workload, "l1_resident");
    }

    #[test]
    fn normalization_is_relative() {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = l1_resident(300, 1);
        let base = run_one(&sim, &prog, Variant::Unsafe, AttackModel::Spectre);
        let stt = run_one(&sim, &prog, Variant::SttLd, AttackModel::Spectre);
        assert!(stt.normalized_to(&base) >= 1.0);
        assert!((base.normalized_to(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hang_is_reported() {
        let mut asm = sdo_isa::Assembler::named("spin");
        let top = asm.here();
        asm.j(top);
        let prog = asm.finish().unwrap();
        let mut cfg = SimConfig::tiny();
        cfg.max_cycles = 1000;
        let sim = Simulator::new(cfg);
        let err = sim.run(&RunRequest::program(&prog)).unwrap_err();
        assert!(matches!(err, SimError::Hang { max_cycles: 1000, .. }));
        assert!(err.to_string().contains("spin"));
    }

    #[test]
    fn config_override_beats_the_simulator_config() {
        // Same driver, per-request budget override: the tiny budget hangs,
        // the driver's own budget does not.
        let sim = Simulator::new(SimConfig::tiny());
        let prog = l1_resident(300, 1);
        let mut starved = SimConfig::tiny();
        starved.max_cycles = 10;
        let err = sim.run(&RunRequest::program(&prog).config(starved)).unwrap_err();
        assert!(matches!(err, SimError::Hang { max_cycles: 10, .. }));
        assert!(sim.run(&RunRequest::program(&prog)).is_ok());
    }

    #[test]
    fn run_multi_shares_one_hierarchy() {
        let sim = Simulator::new(SimConfig::tiny());
        let a = l1_resident(150, 1);
        let b = l1_resident(150, 2);
        let out = sim
            .run(&RunRequest::multi(&[a, b]).variant(Variant::Hybrid))
            .unwrap();
        assert_eq!(out.results().len(), 2);
        assert!(out.results().iter().all(|r| r.core.committed > 500));
        // Both cores' traffic landed in one shared memory system.
        assert!(out.memory().stats().loads() > 0);
        assert_eq!(out.memory().cores(), 2);
    }

    #[test]
    fn recorded_run_returns_the_commit_stream() {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = l1_resident(200, 1);
        let out = sim.run(&RunRequest::program(&prog).record()).unwrap();
        let committed = out.result().core.committed;
        let pcs = out.commit_pcs().expect("recording was requested");
        assert_eq!(pcs.len() as u64, committed);
        // Without .record() the stream is absent.
        let plain = sim.run(&RunRequest::program(&prog)).unwrap();
        assert!(plain.commit_pcs().is_none());
    }

    #[test]
    fn metrics_snapshot_mirrors_stats() {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = l1_resident(300, 1);
        let r = run_one(&sim, &prog, Variant::Hybrid, AttackModel::Spectre);
        assert!(r.obs.is_none(), "default config records no probe");
        let m = r.metrics();
        assert_eq!(m.counter("run.sims"), Some(1));
        assert_eq!(m.counter("run.cycles"), Some(r.cycles));
        assert_eq!(m.counter("core.committed"), Some(r.core.committed));
        assert_eq!(m.counter("core.obl.issued"), Some(r.core.obl.issued));
        assert_eq!(m.counter("mem.l1.hits"), Some(r.mem.l1_hits));
        assert!(m.histogram("pipeline.occupancy.rob").is_none());
    }

    #[test]
    fn obs_enabled_run_is_identical_and_carries_histograms() {
        use sdo_uarch::ObsConfig;
        let prog = l1_resident(300, 1);
        let plain = run_one(
            &Simulator::new(SimConfig::tiny()),
            &prog,
            Variant::Hybrid,
            AttackModel::Spectre,
        );
        let observed = run_one(
            &Simulator::new(SimConfig::tiny().with_obs(ObsConfig::occupancy())),
            &prog,
            Variant::Hybrid,
            AttackModel::Spectre,
        );
        assert_eq!(observed.cycles, plain.cycles, "obs must not perturb timing");
        assert_eq!(observed.core, plain.core);
        assert_eq!(observed.mem, plain.mem);
        let obs = observed.obs.as_ref().expect("probe recorded");
        assert_eq!(obs.rob.count(), observed.cycles);
        let m = observed.metrics();
        assert_eq!(
            m.histogram("pipeline.occupancy.rob").unwrap().count(),
            observed.cycles
        );
    }

    #[test]
    fn fast_forward_run_is_byte_identical_to_stepped_run() {
        use sdo_uarch::ObsConfig;
        let prog = sdo_workloads::kernels::ptr_chase(1 << 16, 400, 7);
        let cfg = SimConfig::tiny().with_obs(ObsConfig::occupancy());
        let skip = run_one(
            &Simulator::new(cfg.with_fast_forward(true)),
            &prog,
            Variant::Hybrid,
            AttackModel::Spectre,
        );
        let step = run_one(
            &Simulator::new(cfg.with_fast_forward(false)),
            &prog,
            Variant::Hybrid,
            AttackModel::Spectre,
        );
        assert_eq!(step.skipped_cycles, 0, "--no-skip must not skip");
        assert!(skip.skipped_cycles > 0, "DRAM-bound kernel should quiesce");
        // Cycle-exactness: everything the run reports except the host-side
        // skip counter must be identical (DESIGN.md "Quiescence fast-forward").
        assert_eq!(skip.cycles, step.cycles);
        assert_eq!(skip.core, step.core);
        assert_eq!(skip.mem, step.mem);
        assert_eq!(skip.obs, step.obs);
        assert_eq!(skip.metrics().to_json(), step.metrics().to_json());
    }

    #[test]
    fn all_variants_complete_on_a_small_kernel() {
        let sim = Simulator::new(SimConfig::tiny());
        let prog = l1_resident(200, 2);
        for attack in AttackModel::ALL {
            let results: Vec<RunResult> = Variant::ALL
                .iter()
                .map(|&v| run_one(&sim, &prog, v, attack))
                .collect();
            assert_eq!(results.len(), Variant::ALL.len());
            // Committed instruction counts are identical across variants:
            // protection changes timing, never function.
            let committed = results[0].core.committed;
            for r in &results {
                assert_eq!(r.core.committed, committed, "{} commits differ", r.variant);
            }
        }
    }
}
